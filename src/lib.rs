//! # Revet
//!
//! A reproduction of *"Revet: A Language and Compiler for Dataflow Threads"*
//! (HPCA 2024). This facade crate re-exports the whole stack:
//!
//! - [`sltf`] — the structured-link tensor format (on-chip streams, barriers)
//! - [`machine`] — streaming primitives and the abstract dataflow machine
//! - [`mir`] — the SSA mid-level IR the compiler operates on
//! - [`lang`] — the Revet language front-end
//! - [`compiler`] — passes, CFG→dataflow lowering, splitting, placement
//! - [`sim`] — the cycle-level vRDA simulator
//! - [`baselines`] — GPU/CPU baseline models
//! - [`apps`] — the eight evaluation applications
//!
//! ## Quickstart
//!
//! ```
//! use revet::compiler::{Compiler, PassOptions};
//!
//! let source = r#"
//!     dram<u32> output;
//!     void main(u32 n) {
//!         foreach (n) { u32 i =>
//!             output[i] = i * i;
//!         };
//!     }
//! "#;
//! let program = Compiler::new(PassOptions::default()).compile_source(source).unwrap();
//! assert!(program.context_count() > 0);
//! ```
pub use revet_apps as apps;
pub use revet_baselines as baselines;
pub use revet_core as compiler;
pub use revet_lang as lang;
pub use revet_machine as machine;
pub use revet_mir as mir;
pub use revet_sim as sim;
pub use revet_sltf as sltf;
