//! # Revet
//!
//! A reproduction of *"Revet: A Language and Compiler for Dataflow Threads"*
//! (HPCA 2024). This facade crate re-exports the whole stack:
//!
//! - [`diag`] — byte spans, structured diagnostics, rustc-style rendering
//! - [`sltf`] — the structured-link tensor format (on-chip streams, barriers)
//! - [`machine`] — streaming primitives and the abstract dataflow machine
//! - [`mir`] — the SSA mid-level IR the compiler operates on
//! - [`lang`] — the Revet language front-end
//! - [`compiler`] — passes, CFG→dataflow lowering, splitting, placement
//! - [`runtime`] — parallel batch execution of compiled program instances
//! - [`serve`] — the compile-and-execute service (wire protocol, program
//!   cache, admission queue)
//! - [`sim`] — the cycle-level vRDA simulator
//! - [`baselines`] — GPU/CPU baseline models
//! - [`apps`] — the eight evaluation applications
//!
//! See `ARCHITECTURE.md` at the repository root for how the layers fit
//! together.
//!
//! ## Quickstart: compile, load DRAM, simulate, check
//!
//! The documented happy path (the same flow as `examples/quickstart.rs`,
//! exercised here by `cargo test`): write a threaded Revet program,
//! compile it to a dataflow graph, put inputs into the program's DRAM
//! image, run the cycle-level simulator, and read the outputs back.
//!
//! ```
//! use revet::compiler::{Compiler, PassOptions};
//! use revet::sim::{IdealModels, RdaConfig, Simulator};
//! use revet::sltf::Word;
//!
//! let source = r#"
//!     dram<u32> input;
//!     dram<u32> output;
//!     void main(u32 n) {
//!         foreach (n) { u32 i =>
//!             u32 x = input[i];
//!             u32 steps = 0;
//!             while (x != 1) {
//!                 if (x & 1) {
//!                     x = 3 * x + 1;
//!                 } else {
//!                     x = x / 2;
//!                 };
//!                 steps = steps + 1;
//!             };
//!             output[i] = steps;
//!         };
//!     }
//! "#;
//! let opts = PassOptions { dram_bytes: 1 << 16, ..PassOptions::default() };
//! let mut program = Compiler::new(opts).compile_source(source).unwrap();
//! assert!(program.context_count() > 0);
//!
//! // DRAM symbols are laid out in equal slices: `input` at 0, `output`
//! // at dram_bytes/2. Load the inputs…
//! let n = 8u32;
//! for i in 0..n {
//!     let bytes = (i + 2).to_le_bytes();
//!     program.graph.mem.dram[4 * i as usize..4 * i as usize + 4].copy_from_slice(&bytes);
//! }
//! // …run the timed simulator…
//! let sim = Simulator::new(RdaConfig::default(), IdealModels::default());
//! let stats = sim.run(&mut program, &[Word(n)], 10_000_000).unwrap();
//! assert!(stats.cycles > 0);
//!
//! // …and check every Collatz step count against a host-side oracle.
//! let collatz = |mut x: u32| {
//!     let mut steps = 0;
//!     while x != 1 {
//!         x = if x & 1 == 1 { 3 * x + 1 } else { x / 2 };
//!         steps += 1;
//!     }
//!     steps
//! };
//! let half = (1 << 16) / 2;
//! for i in 0..n as usize {
//!     let got = u32::from_le_bytes(
//!         program.graph.mem.dram[half + 4 * i..half + 4 * i + 4].try_into().unwrap(),
//!     );
//!     assert_eq!(got, collatz(i as u32 + 2));
//! }
//! ```
//!
//! ## Batch execution: compile once, run many
//!
//! One [`compiler::CompiledProgram`] can be instantiated any number of
//! times; the [`runtime`] layer shards instances across a thread pool and
//! the results are bit-identical to sequential runs:
//!
//! ```
//! use revet::compiler::{Compiler, PassOptions};
//! use revet::runtime::{BatchJob, BatchRunner};
//! use revet::sltf::Word;
//!
//! let program = Compiler::new(PassOptions::default())
//!     .compile_source(
//!         "dram<u32> output;
//!          void main(u32 n) {
//!              foreach (n) { u32 i => output[i] = i * i; };
//!          }",
//!     )
//!     .unwrap();
//! let jobs: Vec<BatchJob> = (1..=8).map(|n| BatchJob::new(&program, vec![Word(n)])).collect();
//! let report = BatchRunner::new(4).run(&jobs);
//! assert_eq!(report.ok_count(), 8);
//! ```
//!
//! ## Serving: compile-once / execute-many over the network
//!
//! The [`serve`] layer runs the same compile-and-batch flow as a
//! long-lived TCP service with a content-addressed program cache —
//! repeated sources hit the cache instead of recompiling, and every
//! failure comes back as a typed error frame:
//!
//! ```
//! use revet::compiler::PassOptions;
//! use revet::serve::protocol::{ExecuteRequest, InstanceOutcome};
//! use revet::serve::{ServeClient, ServeConfig, Server};
//!
//! let server = Server::spawn(ServeConfig::default()).unwrap();
//! let mut client = ServeClient::connect(server.local_addr()).unwrap();
//!
//! let opts = PassOptions { dram_bytes: 1 << 12, ..PassOptions::default() };
//! let source = "dram<u32> output;
//!               void main(u32 n) {
//!                   foreach (n) { u32 i => output[i] = i * i; };
//!               }";
//! let first = client.compile(source, &opts).unwrap();
//! assert!(!first.cached);
//! // Byte-identical source + options → same ProgramId, served from cache.
//! assert!(client.compile(source, &opts).unwrap().cached);
//!
//! let reply = client
//!     .execute(ExecuteRequest {
//!         program_id: first.program_id,
//!         argsets: vec![vec![4]],
//!         dram_inits: vec![],
//!         window: (0, 16),
//!     })
//!     .unwrap();
//! let InstanceOutcome::Ok { dram, .. } = &reply.instances[0] else { panic!() };
//! assert_eq!(&dram[12..16], &9u32.to_le_bytes());
//! let stats = server.shutdown();
//! assert_eq!(stats.executed_instances, 1);
//! ```
//!
//! ## Staged compiles and structured diagnostics
//!
//! [`compiler::Session`] exposes the pipeline stage by stage — `parse()`
//! → `lower_mir()` → `run_passes()` → `to_dataflow()` — and reports
//! through span-carrying diagnostics instead of strings. Parser recovery
//! means one run surfaces *every* syntax error, rendered rustc-style:
//!
//! ```
//! use revet::compiler::{PassOptions, Session};
//!
//! let mut session = Session::new(
//!     "void main() {\n  u32 a = ;\n  u32 ok = 1;\n  u32 b = 1 +;\n}",
//!     PassOptions::default(),
//! );
//! assert!(session.to_dataflow().is_err());
//! assert_eq!(session.diagnostics().error_count(), 2); // both, in one run
//! let report = session.render_diagnostics(false);
//! assert!(report.contains("error[E0103]"));
//! assert!(report.contains("--> <input>:2:11"));
//! assert!(report.contains("u32 a = ;"));
//! ```

#![warn(missing_docs)]

pub use revet_apps as apps;
pub use revet_baselines as baselines;
pub use revet_core as compiler;
pub use revet_diag as diag;
pub use revet_lang as lang;
pub use revet_machine as machine;
pub use revet_mir as mir;
pub use revet_runtime as runtime;
pub use revet_serve as serve;
pub use revet_sim as sim;
pub use revet_sltf as sltf;
