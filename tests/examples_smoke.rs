//! Smoke test: every `examples/` program compiles and runs to completion,
//! printing the output its doc comment promises. Exercised through the real
//! `cargo` binary so the test fails if an example rots out of the build.

use std::path::PathBuf;
use std::process::Command;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn cargo() -> Command {
    // CARGO is set by the cargo that launched the test harness.
    Command::new(std::env::var_os("CARGO").unwrap_or_else(|| "cargo".into()))
}

#[test]
fn examples_build_and_run() {
    let root = workspace_root();

    let build = cargo()
        .args(["build", "--examples"])
        .current_dir(&root)
        .output()
        .expect("spawn cargo build --examples");
    assert!(
        build.status.success(),
        "cargo build --examples failed:\n{}",
        String::from_utf8_lossy(&build.stderr)
    );

    // (example, substring its output must contain)
    let expectations = [
        ("quickstart", "collatz_steps(6) = 8"),
        ("search", "validated against oracle"),
        ("strlen", "strlen(\"dataflow-thre\") = 13"),
    ];

    for (name, needle) in expectations {
        let run = cargo()
            .args(["run", "--example", name])
            .current_dir(&root)
            .output()
            .unwrap_or_else(|e| panic!("spawn example {name}: {e}"));
        let stdout = String::from_utf8_lossy(&run.stdout);
        assert!(
            run.status.success(),
            "example {name} exited with {:?}:\n{}",
            run.status.code(),
            String::from_utf8_lossy(&run.stderr)
        );
        assert!(
            stdout.contains(needle),
            "example {name} output missing {needle:?}:\n{stdout}"
        );
    }
}
