//! The facade crate's re-exports are usable on their own: every layer is
//! reachable through `revet::*` without importing the member crates, and the
//! layers agree on shared types.

use revet::compiler::{Compiler, PassOptions};
use revet::machine::instr::{AluOp, Operand};
use revet::machine::nodes::{CounterNode, ReduceNode, SinkNode, SourceNode};
use revet::machine::{tbar, tdata, Channel, Graph};
use revet::sltf::Word;

#[test]
fn machine_reexport_runs_a_graph() {
    // foreach-sum as counter + reduce, straight from the crate-level docs.
    let mut g = Graph::new();
    let a = g.add_chan(Channel::new(1));
    let b = g.add_chan(Channel::new(1));
    let d = g.add_chan(Channel::new(1));
    g.add_node(
        "enter",
        Box::new(SourceNode::new(vec![tdata([5u32]), tbar(1)])),
        vec![],
        vec![a],
    );
    g.add_node(
        "counter",
        Box::new(CounterNode::new(
            Operand::imm(0u32),
            Operand::Reg(0),
            Operand::imm(1u32),
        )),
        vec![a],
        vec![b],
    );
    g.add_node(
        "reduce",
        Box::new(ReduceNode::new(AluOp::Add, 0u32)),
        vec![b],
        vec![d],
    );
    let (sink, out) = SinkNode::new();
    g.add_node("exit", Box::new(sink), vec![d], vec![]);
    g.run_untimed(10_000).unwrap();
    // sum(0..5) = 10
    assert_eq!(out.tokens(), vec![tdata([10u32]), tbar(1)]);
}

#[test]
fn lang_and_mir_reexports_agree_with_compiler() {
    let src = r#"
        dram<u32> output;
        void main(u32 n) {
            foreach (n) { u32 i =>
                output[i] = i * 3;
            };
        }
    "#;
    // Front-end alone lowers to MIR…
    let lowered = revet::lang::compile_to_mir(src).expect("front-end accepts source");
    assert!(
        !lowered.module.funcs.is_empty(),
        "lowering produced no functions"
    );
    // …and the full pipeline maps the same source onto dataflow contexts.
    let program = Compiler::new(PassOptions::default())
        .compile_source(src)
        .expect("pipeline compiles source");
    assert!(program.context_count() > 0);
}

#[test]
fn sim_baselines_and_apps_reexports_interoperate() {
    let app = revet::apps::app("ip2int").expect("ip2int registered");
    let traits_ = revet::baselines::traits_for(app.name);
    assert!(traits_.cpu_ops_per_byte > 0.0);

    let workload = (app.workload)(8, 7);
    let mut program = app.compile(2, &PassOptions::default()).expect("compiles");
    app.load(&mut program, &workload);
    let args: Vec<Word> = workload.args.iter().map(|&a| Word(a)).collect();
    let sim = revet::sim::Simulator::default();
    let stats = sim
        .run(&mut program, &args, 100_000_000)
        .expect("simulates");
    assert!(stats.cycles > 0, "timed run must consume cycles");
    app.check(&program, &workload);
}

#[test]
fn runtime_reexport_runs_a_parallel_batch() {
    let program = Compiler::new(PassOptions {
        dram_bytes: 1 << 12,
        ..PassOptions::default()
    })
    .compile_source(
        "dram<u32> output;
         void main(u32 n) {
             foreach (n) { u32 i => output[i] = i + n; };
         }",
    )
    .expect("compiles");
    let argsets: Vec<Vec<Word>> = (1..=6).map(|n| vec![Word(n)]).collect();
    let report = revet::runtime::BatchRunner::new(3).run_same(&program, &argsets);
    assert_eq!(report.ok_count(), 6);
    for (n, result) in (1u32..=6).zip(&report.results) {
        let mem = &result.as_ref().expect("instance ran").mem;
        let got = u32::from_le_bytes(mem.dram[0..4].try_into().unwrap());
        assert_eq!(got, n, "output[0] = 0 + n");
    }
}

#[test]
fn all_eight_paper_apps_are_registered() {
    let apps = revet::apps::all_apps();
    assert_eq!(apps.len(), 8, "paper evaluates eight applications");
    for name in [
        "isipv4",
        "search",
        "ip2int",
        "murmur3",
        "hash-table",
        "huff-dec",
        "huff-enc",
        "kD-tree",
    ] {
        assert!(
            apps.iter().any(|a| a.name == name),
            "{name} missing from registry"
        );
    }
}
