//! Workspace-level integration: the facade crate exposes the whole stack
//! and the layers agree with each other.

use revet::compiler::{Compiler, PassOptions};
use revet_sltf::Word;

#[test]
fn facade_compiles_and_runs() {
    let src = r#"
        dram<u32> output;
        void main(u32 n) {
            foreach (n) { u32 i =>
                output[i] = i + 1;
            };
        }
    "#;
    let mut p = Compiler::new(PassOptions {
        dram_bytes: 1 << 14,
        ..PassOptions::default()
    })
    .compile_source(src)
    .unwrap();
    p.run_untimed(&[Word(6)], 1_000_000).unwrap();
    for i in 0..6usize {
        let got = u32::from_le_bytes(p.graph.mem.dram[4 * i..4 * i + 4].try_into().unwrap());
        assert_eq!(got, i as u32 + 1);
    }
}

#[test]
fn untimed_and_timed_agree_on_dram_contents() {
    let app = revet::apps::app("ip2int").unwrap();
    let w = (app.workload)(16, 99);
    let opts = PassOptions::default();

    let mut p1 = app.compile(2, &opts).unwrap();
    app.load(&mut p1, &w);
    let args: Vec<Word> = w.args.iter().map(|&a| Word(a)).collect();
    p1.run_untimed(&args, 100_000_000).unwrap();

    let mut p2 = app.compile(2, &opts).unwrap();
    app.load(&mut p2, &w);
    let sim = revet::sim::Simulator::default();
    sim.run(&mut p2, &args, 500_000_000).unwrap();

    assert_eq!(p1.graph.mem.dram, p2.graph.mem.dram);
}

#[test]
fn sltf_reexports_work() {
    use revet::sltf::{data, omega, Ragged};
    let t = Ragged::node([Ragged::leaf([1u32]), Ragged::leaf::<_, u32>([])]);
    assert_eq!(
        t.encode_canonical(2),
        vec![data(1u32), omega(1), omega(1), omega(2)]
    );
}
