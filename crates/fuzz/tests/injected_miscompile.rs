//! End-to-end sensitivity check: a deliberately injected wrong-code
//! transform (Add → Sub after the pass pipeline, on the dataflow path
//! only) must be caught by a short campaign AND the automatic reducer
//! must shrink the offending program to a reproducer a human can read
//! at a glance — under 15 source lines.

use revet_fuzz::{format_repro, run_campaign, GenConfig, Injection, OracleConfig, ReduceConfig};

#[test]
fn injected_add_to_sub_is_caught_and_minimized_small() {
    let bad_oracle = OracleConfig {
        inject: Some(Injection::FlipLastAddToSub),
        ..OracleConfig::default()
    };
    let report = run_campaign(
        42,
        40,
        &GenConfig::default(),
        &bad_oracle,
        &ReduceConfig::default(),
        false,
        |_, _| {},
    );
    let failure = report
        .failures
        .first()
        .expect("a 40-case campaign must trip the injected miscompile");

    // The reduced program still fails the injected oracle (the reducer
    // re-verified every step), and it is small enough to eyeball.
    let source_lines = failure
        .reduced
        .source
        .lines()
        .filter(|l| !l.trim().is_empty())
        .count();
    assert!(
        source_lines < 15,
        "minimized reproducer has {source_lines} non-blank lines (want < 15):\n{}",
        failure.reduced.source
    );
    assert!(
        failure.reduce_report.stmts_after <= failure.reduce_report.stmts_before,
        "reduction must never grow the program"
    );

    // The reproducer file round-trips through the replay path.
    let text = format_repro(&failure.reduced, Some(&failure.failure));
    let replayed = revet_fuzz::parse_repro(&text).expect("reproducer parses");
    assert_eq!(replayed.args, failure.reduced.args);
    assert!(
        revet_fuzz::run_case(&replayed, &bad_oracle).is_err(),
        "replayed reproducer must still fail under the injected oracle"
    );
    assert!(
        revet_fuzz::run_case(&replayed, &OracleConfig::default()).is_ok(),
        "reproducer must be green without the injection (the bug is the \
         injected transform, not the program)"
    );
}
