//! Printer/parser round-trip property: for every generated program,
//! `print(parse(print(ast)))` is a fixpoint. This pins the printer to
//! the grammar — a printer that emits something the parser reads back
//! differently would silently decouple the reducer's AST edits from the
//! reproducer files it writes.

use revet_fuzz::{case_seed, generate_case, print_program, GenConfig};

#[test]
fn print_parse_print_is_a_fixpoint_across_many_seeds() {
    let cfg = GenConfig::default();
    for i in 0..300 {
        let case = generate_case(case_seed(0x5EED_F00D, i), &cfg);
        let reparsed = revet_lang::parse_program(&case.source).unwrap_or_else(|d| {
            panic!(
                "seed {:#x} does not re-parse: {d}\n{}",
                case.seed, case.source
            )
        });
        let reprinted = print_program(&reparsed);
        assert_eq!(
            case.source, reprinted,
            "round-trip diverged for seed {:#x}",
            case.seed
        );
    }
}
