//! Corpus replay regression: every checked-in `corpus/*.rvt` seed runs
//! through the full differential oracle (three evaluators × three opt
//! levels). The corpus was generated with
//! `revet-fuzz --write-corpus crates/fuzz/corpus --seed 1000` and is
//! feature-steered — each file exercises at least two of {while,
//! foreach, reduce, readview, if} — so a lowering or pass regression in
//! any of those constructs turns a named file red instead of waiting
//! for the random campaign to resample it.

use revet_fuzz::{parse_repro, run_case, OracleConfig};
use std::path::PathBuf;

#[test]
fn every_corpus_seed_is_green_at_all_opt_levels() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("corpus");
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("corpus directory exists")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "rvt"))
        .collect();
    entries.sort();
    assert!(
        entries.len() >= 20,
        "corpus shrank to {} files (want >= 20)",
        entries.len()
    );

    let cfg = OracleConfig::default();
    let mut bad = Vec::new();
    for path in &entries {
        let text = std::fs::read_to_string(path).expect("corpus file reads");
        let case = match parse_repro(&text) {
            Ok(c) => c,
            Err(e) => {
                bad.push(format!("{}: unparseable: {e}", path.display()));
                continue;
            }
        };
        if let Err(f) = run_case(&case, &cfg) {
            bad.push(format!("{}: {f}", path.display()));
        }
    }
    assert!(bad.is_empty(), "corpus regressions:\n{}", bad.join("\n"));
}
