//! Edge-of-grammar pins, each judged by the full differential oracle
//! (three evaluators × three opt levels): zero-iteration `while`,
//! zero-trip `foreach`, a trip count that collapses to zero only at
//! runtime, and reads through a minimum-size ragged view. These are the
//! shapes most likely to regress in loop lowering, so they get explicit
//! names instead of relying on the random campaign to resample them.
//!
//! Each case is written as a reproducer document (source + header), so
//! the same text also replays via `revet-fuzz --replay`.

use revet_fuzz::{parse_repro, run_case, OracleConfig};

fn judge(doc: &str) {
    let case = parse_repro(doc).expect("edge-case document parses");
    if let Err(f) = run_case(&case, &OracleConfig::default()) {
        panic!("edge case failed the oracle: {f}\n{}", case.source);
    }
}

#[test]
fn zero_iteration_while_leaves_memory_untouched() {
    judge(
        "// seed: 0x0000000000000001\n\
         // args: 7 9\n\
         \n\
         dram<u32> d1;\n\
         void main(u32 p0, u32 p1) {\n\
             d1[0] = 11;\n\
             u32 c0 = 5;\n\
             while ((c0 < 2)) {\n\
                 d1[0] = 99;\n\
                 c0 = (c0 + 1);\n\
             };\n\
             d1[1] = c0;\n\
         }\n",
    );
}

#[test]
fn zero_trip_foreach_runs_no_threads() {
    judge(
        "// seed: 0x0000000000000002\n\
         // args: 3 4\n\
         \n\
         dram<u32> d1;\n\
         void main(u32 p0, u32 p1) {\n\
             d1[0] = 1;\n\
             foreach (0) { u32 k0 =>\n\
                 d1[k0] = 77;\n\
             };\n\
             d1[1] = 2;\n\
         }\n",
    );
}

#[test]
fn runtime_zero_trip_count_from_an_argument() {
    // p0 % 1 == 0 for every argument: the trip count is only knowably
    // zero at runtime, so no pass may fold the region away statically.
    judge(
        "// seed: 0x0000000000000003\n\
         // args: 3982531098 5\n\
         \n\
         dram<u32> d1;\n\
         void main(u32 p0, u32 p1) {\n\
             foreach ((p0 % 1)) { u32 k0 =>\n\
                 d1[k0] = p1;\n\
             };\n\
             d1[2] = 6;\n\
         }\n",
    );
}

#[test]
fn minimum_size_view_reads_agree() {
    // A 4-word readview at a base chosen per thread (ragged tiles), with
    // in-bounds reads only; all evaluators must agree on every lane.
    judge(
        "// seed: 0x0000000000000004\n\
         // args: 2 3\n\
         // init d0: 0da6261907b375d5bff0b1d64295d883e77e8237dd22daf02130430e9d7472f5\n\
         \n\
         dram<u32> d0;\n\
         dram<u32> d1;\n\
         void main(u32 p0, u32 p1) {\n\
             foreach (4) { u32 k0 =>\n\
                 readview<4> w(d0, k0);\n\
                 d1[((k0 * 9) + 8)] = (w[(k0 % 4)] + p1);\n\
             };\n\
         }\n",
    );
}

#[test]
fn zero_iteration_while_nested_in_foreach() {
    judge(
        "// seed: 0x0000000000000005\n\
         // args: 8 1\n\
         \n\
         dram<u32> d1;\n\
         void main(u32 p0, u32 p1) {\n\
             foreach (3) { u32 k0 =>\n\
                 u32 c0 = 9;\n\
                 while ((c0 < 3)) {\n\
                     c0 = (c0 + 1);\n\
                 };\n\
                 d1[((k0 * 9) + 8)] = c0;\n\
             };\n\
         }\n",
    );
}
