//! The fuzzer's deterministic random source.
//!
//! Same xorshift64* generator the workspace's other seeded harnesses use
//! (`mir/tests/opt_props.rs`, the scheduler-equivalence suite): every
//! campaign, case, and reproducer is replayable from a printed 64-bit
//! seed alone, with no external RNG dependency.

/// A deterministic xorshift64* stream.
#[derive(Clone, Debug)]
pub struct Rng(pub u64);

impl Rng {
    /// The next raw 64-bit sample.
    #[allow(clippy::should_implement_trait)] // xorshift step, not an Iterator
    pub fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `0..n` (`n` must be non-zero).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    /// Uniform in `lo..=hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo + 1)
    }

    /// True with probability `percent`/100.
    pub fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }

    /// A uniformly chosen element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len() as u64) as usize]
    }
}

/// Derives an independent per-case seed from a campaign seed and a case
/// index (splitmix64 finalizer, so neighboring indices decorrelate).
pub fn case_seed(campaign: u64, index: u64) -> u64 {
    let mut z =
        campaign.wrapping_add(0x9E37_79B9_7F4A_7C15_u64.wrapping_mul(index.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) | 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let mut a = Rng(42);
        let mut b = Rng(42);
        for _ in 0..100 {
            assert_eq!(a.next(), b.next());
        }
    }

    #[test]
    fn case_seeds_differ_and_are_odd() {
        let s: Vec<u64> = (0..64).map(|i| case_seed(42, i)).collect();
        for (i, &a) in s.iter().enumerate() {
            assert_eq!(a & 1, 1);
            for &b in &s[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn range_and_chance_bounds() {
        let mut r = Rng(7);
        for _ in 0..200 {
            let v = r.range(3, 9);
            assert!((3..=9).contains(&v));
        }
        let hits = (0..1000).filter(|_| r.chance(100)).count();
        assert_eq!(hits, 1000);
        let none = (0..1000).filter(|_| r.chance(0)).count();
        assert_eq!(none, 0);
    }
}
