//! `revet-fuzz` — seeded differential fuzzing campaigns from the
//! command line.
//!
//! ```text
//! revet-fuzz [--seed N] [--cases K] [--out DIR] [--keep-going]
//!            [--max-rounds R] [--quiet] [--replay FILE]
//!            [--write-corpus DIR [--corpus-size N]]
//! ```
//!
//! Generates `K` programs from `--seed` (default 42/500) and judges each
//! with the N-way differential oracle (three evaluators × three opt
//! levels, bit-identical DRAM + sink streams, clean diagnostics, no
//! panics). On failure, writes `case-<seed>.rvt` (the full reproducer)
//! and `case-<seed>.min.rvt` (reducer-minimized) under `--out` (default
//! `fuzz-out/`) and exits 1. `--replay FILE` re-judges one existing
//! reproducer instead. `--write-corpus` regenerates the checked-in
//! `corpus/` seed set. Exit codes: 0 green, 1 failures, 2 usage/io.

use revet_fuzz::{
    case_seed, format_repro, generate_case, parse_repro, run_campaign, run_case, GenConfig,
    OracleConfig, ReduceConfig,
};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "usage: revet-fuzz [--seed N] [--cases K] [--out DIR] [--keep-going]
       [--max-rounds R] [--quiet] [--replay FILE]
       [--write-corpus DIR [--corpus-size N]]
       (exit 0 = green, 1 = divergence found, 2 = usage/io)";

fn main() -> ExitCode {
    let mut seed = 42u64;
    let mut cases = 500u64;
    let mut out_dir = PathBuf::from("fuzz-out");
    let mut keep_going = false;
    let mut quiet = false;
    let mut max_rounds = 0u64;
    let mut replay: Option<PathBuf> = None;
    let mut corpus_dir: Option<PathBuf> = None;
    let mut corpus_size = 20usize;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut take = |what: &str| -> Option<String> {
            let v = args.next();
            if v.is_none() {
                eprintln!("{what} needs a value\n{USAGE}");
            }
            v
        };
        match a.as_str() {
            "--seed" => match take("--seed").and_then(|v| parse_u64(&v)) {
                Some(v) => seed = v,
                None => return ExitCode::from(2),
            },
            "--cases" => match take("--cases").and_then(|v| parse_u64(&v)) {
                Some(v) => cases = v,
                None => return ExitCode::from(2),
            },
            "--max-rounds" => match take("--max-rounds").and_then(|v| parse_u64(&v)) {
                Some(v) => max_rounds = v,
                None => return ExitCode::from(2),
            },
            "--out" => match take("--out") {
                Some(v) => out_dir = PathBuf::from(v),
                None => return ExitCode::from(2),
            },
            "--replay" => match take("--replay") {
                Some(v) => replay = Some(PathBuf::from(v)),
                None => return ExitCode::from(2),
            },
            "--write-corpus" => match take("--write-corpus") {
                Some(v) => corpus_dir = Some(PathBuf::from(v)),
                None => return ExitCode::from(2),
            },
            "--corpus-size" => match take("--corpus-size").and_then(|v| parse_u64(&v)) {
                Some(v) => corpus_size = v as usize,
                None => return ExitCode::from(2),
            },
            "--keep-going" => keep_going = true,
            "--quiet" => quiet = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument {other:?}\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    // Panics inside the pipeline are an expected failure class: the
    // oracle catches them and reports `FailureKind::Panic` with the
    // payload, so the default hook's backtrace spew is pure noise.
    std::panic::set_hook(Box::new(|_| {}));

    let oracle_cfg = OracleConfig {
        max_rounds,
        ..OracleConfig::default()
    };

    if let Some(file) = replay {
        return replay_one(&file, &oracle_cfg);
    }
    if let Some(dir) = corpus_dir {
        return write_corpus(&dir, seed, corpus_size, &oracle_cfg, quiet);
    }

    let gen_cfg = GenConfig::default();
    let reduce_cfg = ReduceConfig::default();
    let report = run_campaign(
        seed,
        cases,
        &gen_cfg,
        &oracle_cfg,
        &reduce_cfg,
        keep_going,
        |i, fails| {
            if !quiet && (i + 1) % 50 == 0 {
                eprintln!("[revet-fuzz] {}/{cases} cases, {fails} failure(s)", i + 1);
            }
        },
    );

    if report.failures.is_empty() {
        if !quiet {
            eprintln!(
                "[revet-fuzz] campaign green: {} cases from seed {seed} \
                 (3 evaluators x 3 opt levels, bit-identical)",
                report.cases_run
            );
        }
        return ExitCode::SUCCESS;
    }

    if std::fs::create_dir_all(&out_dir).is_err() {
        eprintln!("cannot create --out dir {}", out_dir.display());
        return ExitCode::from(2);
    }
    for f in &report.failures {
        let full = out_dir.join(format!("case-{:016x}.rvt", f.case.seed));
        let min = out_dir.join(format!("case-{:016x}.min.rvt", f.case.seed));
        let _ = std::fs::write(&full, format_repro(&f.case, Some(&f.failure)));
        let _ = std::fs::write(&min, format_repro(&f.reduced, Some(&f.failure)));
        eprintln!(
            "[revet-fuzz] case {} FAILED: {}\n  reproducer: {}\n  minimized:  {} \
             ({} -> {} stmts in {} oracle runs)",
            f.case_index,
            f.failure,
            full.display(),
            min.display(),
            f.reduce_report.stmts_before,
            f.reduce_report.stmts_after,
            f.reduce_report.oracle_runs,
        );
    }
    ExitCode::FAILURE
}

fn parse_u64(s: &str) -> Option<u64> {
    let r = if let Some(hexpart) = s.strip_prefix("0x") {
        u64::from_str_radix(hexpart, 16)
    } else {
        s.parse()
    };
    if r.is_err() {
        eprintln!("bad number {s:?}\n{USAGE}");
    }
    r.ok()
}

fn replay_one(file: &Path, oracle_cfg: &OracleConfig) -> ExitCode {
    let Ok(text) = std::fs::read_to_string(file) else {
        eprintln!("cannot read {}", file.display());
        return ExitCode::from(2);
    };
    let case = match parse_repro(&text) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{}: {e}", file.display());
            return ExitCode::from(2);
        }
    };
    match run_case(&case, oracle_cfg) {
        Ok(()) => {
            eprintln!("{}: PASS", file.display());
            ExitCode::SUCCESS
        }
        Err(f) => {
            eprintln!("{}: FAIL ({f})", file.display());
            ExitCode::FAILURE
        }
    }
}

/// Regenerates the checked-in corpus: scans case seeds from `seed`,
/// keeps oracle-green programs that hit interesting features (loops,
/// reductions, views), minimizes nothing (they pass), and writes
/// `seed-<hex>.rvt` files until `want` are collected.
fn write_corpus(
    dir: &Path,
    seed: u64,
    want: usize,
    oracle_cfg: &OracleConfig,
    quiet: bool,
) -> ExitCode {
    if std::fs::create_dir_all(dir).is_err() {
        eprintln!("cannot create corpus dir {}", dir.display());
        return ExitCode::from(2);
    }
    let gen_cfg = GenConfig::default();
    let features = ["while (", "foreach (", "reduce(", "readview<", "if ("];
    let mut kept = 0usize;
    let mut feature_counts = [0usize; 5];
    let mut i = 0u64;
    while kept < want && i < 10_000 {
        let case = generate_case(case_seed(seed, i), &gen_cfg);
        i += 1;
        let hits: Vec<usize> = features
            .iter()
            .enumerate()
            .filter(|(_, f)| case.source.contains(*f))
            .map(|(k, _)| k)
            .collect();
        // Require at least two structured features so the corpus stays
        // diverse, and steer toward under-represented ones.
        if hits.len() < 2 {
            continue;
        }
        let rare = hits
            .iter()
            .any(|&k| feature_counts[k] <= feature_counts.iter().min().copied().unwrap_or(0));
        if !rare && kept > want / 2 {
            continue;
        }
        if run_case(&case, oracle_cfg).is_err() {
            continue;
        }
        for &k in &hits {
            feature_counts[k] += 1;
        }
        let path = dir.join(format!("seed-{:016x}.rvt", case.seed));
        if std::fs::write(&path, format_repro(&case, None)).is_err() {
            eprintln!("cannot write {}", path.display());
            return ExitCode::from(2);
        }
        kept += 1;
        if !quiet {
            eprintln!("[revet-fuzz] corpus {}: {}", kept, path.display());
        }
    }
    if kept < want {
        eprintln!("only collected {kept}/{want} corpus programs");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
