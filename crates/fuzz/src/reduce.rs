//! Automatic reproducer minimization.
//!
//! Given a failing [`Case`], the reducer repeatedly applies structural
//! mutations — statement deletion, `if`/`while` body hoisting, and
//! integer-constant shrinking — and keeps a mutation only when the
//! re-run oracle still fails *the same way*: same [`crate::FailureKind`], same
//! opt level, and the same failure detail up to embedded numbers (so a
//! moving byte offset still matches, but e.g. a deletion that turns a
//! lowering bug into an unknown-variable error is rejected). Candidate
//! programs that stop compiling simply report a non-matching
//! `CompileError`, so the mutations don't need to preserve scoping by
//! construction. Constants inside store *index* expressions are never
//! shrunk — those encode the generator's race-freedom invariant, and
//! rewriting them can manufacture a divergence the original program
//! never had. The loop runs to fixpoint (or an oracle-run budget),
//! which in practice shrinks a ~30-statement divergence to a handful
//! of lines.

use crate::gen::Case;
use crate::oracle::{run_case, Failure, OracleConfig};
use crate::print::print_program;
use revet_lang::ast::{Expr, Program, Stmt, StmtKind};

/// Reducer limits.
#[derive(Clone, Debug)]
pub struct ReduceConfig {
    /// Most oracle re-runs to spend.
    pub max_oracle_runs: usize,
}

impl Default for ReduceConfig {
    fn default() -> Self {
        ReduceConfig {
            max_oracle_runs: 600,
        }
    }
}

/// What happened during a reduction.
#[derive(Clone, Debug)]
pub struct ReduceReport {
    /// Oracle runs spent.
    pub oracle_runs: usize,
    /// Statements before → after.
    pub stmts_before: usize,
    /// Statements after the final fixpoint.
    pub stmts_after: usize,
}

/// A structural mutation addressed by pre-order statement index.
#[derive(Clone, Copy, Debug)]
enum Mutation {
    Delete(usize),
    HoistThen(usize),
    HoistElse(usize),
    HoistWhileBody(usize),
    ShrinkConst { index: usize, to: i64 },
}

/// Two failures count as "the same" for reduction purposes when their
/// kind, opt level, and number-stripped detail all agree. Numbers (and
/// hex digits) are blanked because byte offsets and mismatched values
/// legitimately move as the program shrinks, while the surrounding text
/// — which evaluator pair diverged, which error was reported — must not.
fn same_failure(a: &Failure, b: &Failure) -> bool {
    fn skeleton(s: &str) -> String {
        s.chars()
            .filter(|c| !c.is_ascii_hexdigit() && *c != 'x')
            .collect()
    }
    a.kind == b.kind && a.level == b.level && skeleton(&a.detail) == skeleton(&b.detail)
}

/// Minimizes `case` while the oracle keeps failing like `failure`.
/// Returns the reduced case and a report. The input case's
/// `args`/`dram_inits` are preserved verbatim — only the program shrinks.
pub fn reduce_case(
    case: &Case,
    failure: &Failure,
    oracle: &OracleConfig,
    cfg: &ReduceConfig,
) -> (Case, ReduceReport) {
    let mut best = case.clone();
    let mut runs = 0usize;
    let stmts_before = count_stmts(&best.ast);

    loop {
        let mut improved = false;
        for m in candidate_mutations(&best.ast) {
            if runs >= cfg.max_oracle_runs {
                break;
            }
            let Some(ast) = apply_mutation(&best.ast, m) else {
                continue;
            };
            let candidate = Case {
                source: print_program(&ast),
                ast,
                ..best.clone()
            };
            runs += 1;
            if matches!(run_case(&candidate, oracle), Err(f) if same_failure(&f, failure)) {
                best = candidate;
                improved = true;
            }
        }
        if !improved || runs >= cfg.max_oracle_runs {
            break;
        }
    }

    let stmts_after = count_stmts(&best.ast);
    (
        best,
        ReduceReport {
            oracle_runs: runs,
            stmts_before,
            stmts_after,
        },
    )
}

/// All mutations worth trying against the current program, deletions
/// last-statement-first so whole trailing regions vanish early.
fn candidate_mutations(p: &Program) -> Vec<Mutation> {
    let n = count_stmts(p);
    let mut out = Vec::new();
    for k in (0..n).rev() {
        out.push(Mutation::Delete(k));
    }
    for k in 0..n {
        out.push(Mutation::HoistThen(k));
        out.push(Mutation::HoistElse(k));
        out.push(Mutation::HoistWhileBody(k));
    }
    for (index, v) in collect_consts(p).into_iter().enumerate() {
        for to in [0i64, 1, v / 2] {
            if to != v {
                out.push(Mutation::ShrinkConst { index, to });
            }
        }
    }
    out
}

fn apply_mutation(p: &Program, m: Mutation) -> Option<Program> {
    let mut p = p.clone();
    let changed = match m {
        Mutation::Delete(k) => edit_stmt(&mut p, k, |s| {
            let _ = s;
            EditAction::Remove
        }),
        Mutation::HoistThen(k) => edit_stmt(&mut p, k, |s| match &s.kind {
            StmtKind::If { then, .. } => EditAction::Splice(then.clone()),
            _ => EditAction::Keep,
        }),
        Mutation::HoistElse(k) => edit_stmt(&mut p, k, |s| match &s.kind {
            StmtKind::If { els, .. } if !els.is_empty() => EditAction::Splice(els.clone()),
            _ => EditAction::Keep,
        }),
        Mutation::HoistWhileBody(k) => edit_stmt(&mut p, k, |s| match &s.kind {
            StmtKind::While { body, .. } => EditAction::Splice(body.clone()),
            _ => EditAction::Keep,
        }),
        Mutation::ShrinkConst { index, to } => set_const(&mut p, index, to),
    };
    changed.then_some(p)
}

enum EditAction {
    Keep,
    Remove,
    Splice(Vec<Stmt>),
}

/// Counts statements in pre-order (regions included, reduce bodies too).
fn count_stmts(p: &Program) -> usize {
    fn walk(body: &[Stmt]) -> usize {
        body.iter()
            .map(|s| {
                1 + match &s.kind {
                    StmtKind::If { then, els, .. } => walk(then) + walk(els),
                    StmtKind::While { body, .. }
                    | StmtKind::Foreach { body, .. }
                    | StmtKind::Replicate { body, .. }
                    | StmtKind::Fork { body, .. } => walk(body),
                    StmtKind::Decl {
                        init: Some(Expr::ForeachReduce { body, .. }),
                        ..
                    } => walk(body),
                    _ => 0,
                }
            })
            .sum()
    }
    p.funcs.iter().map(|f| walk(&f.body)).sum()
}

/// Applies `action` to the `k`-th statement in pre-order; true if the
/// program changed.
fn edit_stmt(p: &mut Program, k: usize, action: impl Fn(&Stmt) -> EditAction) -> bool {
    fn walk(
        body: &mut Vec<Stmt>,
        next: &mut usize,
        k: usize,
        action: &dyn Fn(&Stmt) -> EditAction,
    ) -> bool {
        let mut i = 0;
        while i < body.len() {
            if *next == k {
                *next += 1;
                match action(&body[i]) {
                    EditAction::Keep => {}
                    EditAction::Remove => {
                        body.remove(i);
                        return true;
                    }
                    EditAction::Splice(repl) => {
                        body.splice(i..=i, repl);
                        return true;
                    }
                }
                i += 1;
                continue;
            }
            *next += 1;
            let hit = match &mut body[i].kind {
                StmtKind::If { then, els, .. } => {
                    walk(then, next, k, action) || walk(els, next, k, action)
                }
                StmtKind::While { body, .. }
                | StmtKind::Foreach { body, .. }
                | StmtKind::Replicate { body, .. }
                | StmtKind::Fork { body, .. } => walk(body, next, k, action),
                StmtKind::Decl {
                    init: Some(Expr::ForeachReduce { body, .. }),
                    ..
                } => walk(body, next, k, action),
                _ => false,
            };
            if hit {
                return true;
            }
            i += 1;
        }
        false
    }
    let mut next = 0;
    for f in &mut p.funcs {
        if walk(&mut f.body, &mut next, k, &action) {
            return true;
        }
    }
    false
}

/// All integer literals in the program, pre-order. (Traverses a clone
/// through the mutable walker — the AST is tiny and this avoids a
/// duplicate immutable traversal.)
fn collect_consts(p: &Program) -> Vec<i64> {
    let mut out = Vec::new();
    let mut q = p.clone();
    for_each_const_mut(&mut q, &mut |v| out.push(*v));
    out
}

/// Sets the `index`-th literal to `to`; true if it changed.
fn set_const(p: &mut Program, index: usize, to: i64) -> bool {
    let mut at = 0usize;
    let mut changed = false;
    for_each_const_mut(p, &mut |v: &mut i64| {
        if at == index && *v != to {
            *v = to;
            changed = true;
        }
        at += 1;
    });
    changed
}

fn for_each_const_mut(p: &mut Program, f: &mut dyn FnMut(&mut i64)) {
    fn expr(e: &mut Expr, f: &mut dyn FnMut(&mut i64)) {
        match e {
            Expr::Int(v) => f(v),
            Expr::Var(_) | Expr::Deref(_) => {}
            Expr::Bin(_, a, b) => {
                expr(a, f);
                expr(b, f);
            }
            Expr::Un(_, a) | Expr::Cast(_, a) => expr(a, f),
            Expr::Index(_, i) => expr(i, f),
            Expr::Peek(_, i) => expr(i, f),
            Expr::ForeachReduce {
                count, step, body, ..
            } => {
                expr(count, f);
                if let Some(s) = step {
                    expr(s, f);
                }
                stmts(body, f);
            }
        }
    }
    fn stmts(body: &mut [Stmt], f: &mut dyn FnMut(&mut i64)) {
        for s in body {
            match &mut s.kind {
                StmtKind::Decl { init, .. } => {
                    if let Some(e) = init {
                        expr(e, f);
                    }
                }
                StmtKind::Mem { decl, .. } => match decl {
                    revet_lang::ast::MemDecl::View { base, .. } => expr(base, f),
                    revet_lang::ast::MemDecl::It { seek, .. } => expr(seek, f),
                    revet_lang::ast::MemDecl::Sram { .. } => {}
                },
                StmtKind::Assign { value, .. } | StmtKind::DerefStore { value, .. } => {
                    expr(value, f)
                }
                // Store indices are deliberately skipped: thread-id index
                // expressions carry the base-9 digits that keep parallel
                // stores race-free, and shrinking them would let the
                // reducer invent schedule-dependent divergences.
                StmtKind::Store { value, .. } => expr(value, f),
                StmtKind::Inc { last, .. } => {
                    if let Some(e) = last {
                        expr(e, f);
                    }
                }
                StmtKind::If { cond, then, els } => {
                    expr(cond, f);
                    stmts(then, f);
                    stmts(els, f);
                }
                StmtKind::While { cond, body } => {
                    expr(cond, f);
                    stmts(body, f);
                }
                StmtKind::Foreach {
                    count, step, body, ..
                } => {
                    expr(count, f);
                    if let Some(e) = step {
                        expr(e, f);
                    }
                    stmts(body, f);
                }
                StmtKind::Replicate { body, .. } => stmts(body, f),
                StmtKind::Fork { count, body, .. } => {
                    expr(count, f);
                    stmts(body, f);
                }
                StmtKind::Yield(e) => expr(e, f),
                StmtKind::Return(Some(e)) => expr(e, f),
                StmtKind::Return(None) | StmtKind::Exit | StmtKind::Pragma { .. } => {}
                StmtKind::Bulk { base, len, .. } => {
                    expr(base, f);
                    expr(len, f);
                }
            }
        }
    }
    for func in &mut p.funcs {
        stmts(&mut func.body, f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use revet_diag::Span;
    use revet_lang::ast::{FuncAst, TyName};

    fn tiny() -> Program {
        let s = |kind| Stmt::new(kind, Span::new(0, 0));
        Program {
            drams: vec![],
            funcs: vec![FuncAst {
                name: "main".into(),
                ret: TyName::Void,
                params: vec![],
                body: vec![
                    s(StmtKind::Decl {
                        ty: TyName::U32,
                        name: "a".into(),
                        init: Some(Expr::Int(7)),
                    }),
                    s(StmtKind::If {
                        cond: Expr::Int(1),
                        then: vec![s(StmtKind::Assign {
                            name: "a".into(),
                            value: Expr::Int(9),
                        })],
                        els: vec![],
                    }),
                ],
                span: Span::new(0, 0),
            }],
        }
    }

    #[test]
    fn counting_and_deletion_agree() {
        let p = tiny();
        assert_eq!(count_stmts(&p), 3);
        let mut q = p.clone();
        assert!(edit_stmt(&mut q, 2, |_| EditAction::Remove));
        assert_eq!(count_stmts(&q), 2);
        let mut r = p.clone();
        assert!(edit_stmt(&mut r, 1, |_| EditAction::Remove));
        assert_eq!(count_stmts(&r), 1, "deleting the if removes its body");
    }

    #[test]
    fn hoisting_replaces_an_if_with_its_branch() {
        let mut p = tiny();
        assert!(edit_stmt(&mut p, 1, |s| match &s.kind {
            StmtKind::If { then, .. } => EditAction::Splice(then.clone()),
            _ => EditAction::Keep,
        }));
        assert_eq!(count_stmts(&p), 2);
        assert!(matches!(p.funcs[0].body[1].kind, StmtKind::Assign { .. }));
    }

    #[test]
    fn const_shrinking_targets_by_index() {
        let mut p = tiny();
        let consts = collect_consts(&p);
        assert_eq!(consts, vec![7, 1, 9]);
        assert!(set_const(&mut p, 2, 0));
        assert_eq!(collect_consts(&p), vec![7, 1, 0]);
        assert!(!set_const(&mut p, 2, 0), "idempotent set reports no change");
    }
}
