//! AST → Revet source printer.
//!
//! The generator builds [`revet_lang::ast`] values directly (with dummy
//! spans) and this module renders them back to concrete syntax. Every
//! composite expression is printed fully parenthesized, so operator
//! precedence can never reassociate a generated program, and `(ty)(e)`
//! casts stay unambiguous under the parser's three-token cast lookahead.
//! `print_program(parse(print_program(ast)))` is a fixpoint — the
//! round-trip property test in `tests/roundtrip.rs` pins that.

use revet_lang::ast::{
    BinOp, Expr, FuncAst, ItKindName, MemDecl, Program, ReduceOp, Stmt, StmtKind, TyName, UnOp,
    ViewKindName,
};
use std::fmt::Write;

/// Renders a whole program as compilable Revet source.
pub fn print_program(p: &Program) -> String {
    let mut out = String::new();
    for d in &p.drams {
        let _ = writeln!(out, "dram<{}> {};", ty(d.ty), d.name);
    }
    for f in &p.funcs {
        if !p.drams.is_empty() {
            out.push('\n');
        }
        print_func(f, &mut out);
    }
    out
}

fn print_func(f: &FuncAst, out: &mut String) {
    let params: Vec<String> = f
        .params
        .iter()
        .map(|(t, n)| format!("{} {}", ty(*t), n))
        .collect();
    let _ = writeln!(out, "{} {}({}) {{", ty(f.ret), f.name, params.join(", "));
    for s in &f.body {
        print_stmt(s, 1, out);
    }
    out.push_str("}\n");
}

fn indent(n: usize, out: &mut String) {
    for _ in 0..n {
        out.push_str("    ");
    }
}

fn print_body(body: &[Stmt], depth: usize, out: &mut String) {
    for s in body {
        print_stmt(s, depth, out);
    }
}

fn print_stmt(s: &Stmt, depth: usize, out: &mut String) {
    indent(depth, out);
    match &s.kind {
        StmtKind::Decl { ty: t, name, init } => match init {
            Some(e) => {
                let _ = writeln!(out, "{} {} = {};", ty(*t), name, expr(e));
            }
            None => {
                let _ = writeln!(out, "{} {};", ty(*t), name);
            }
        },
        StmtKind::Mem { name, decl } => match decl {
            MemDecl::Sram { ty: t, size } => {
                let _ = writeln!(out, "sram<{}, {}> {};", ty(*t), size, name);
            }
            MemDecl::View {
                kind,
                size,
                dram,
                base,
            } => {
                let kw = match kind {
                    ViewKindName::Read => "readview",
                    ViewKindName::Write => "writeview",
                    ViewKindName::Modify => "modifyview",
                };
                let _ = writeln!(out, "{kw}<{size}> {name}({dram}, {});", expr(base));
            }
            MemDecl::It {
                kind,
                tile,
                dram,
                seek,
            } => {
                let kw = match kind {
                    ItKindName::Read => "readit",
                    ItKindName::PeekRead => "peekreadit",
                    ItKindName::Write => "writeit",
                    ItKindName::ManualWrite => "manualwriteit",
                };
                let _ = writeln!(out, "{kw}<{tile}> {name}({dram}, {});", expr(seek));
            }
        },
        StmtKind::Assign { name, value } => {
            let _ = writeln!(out, "{} = {};", name, expr(value));
        }
        StmtKind::Store { base, idx, value } => {
            let _ = writeln!(out, "{}[{}] = {};", base, expr(idx), expr(value));
        }
        StmtKind::DerefStore { it, value } => {
            let _ = writeln!(out, "*{} = {};", it, expr(value));
        }
        StmtKind::Inc { it, last } => match last {
            Some(e) => {
                let _ = writeln!(out, "{}.inc({});", it, expr(e));
            }
            None => {
                let _ = writeln!(out, "{it}++;");
            }
        },
        StmtKind::If { cond, then, els } => {
            let _ = writeln!(out, "if ({}) {{", expr(cond));
            print_body(then, depth + 1, out);
            indent(depth, out);
            if els.is_empty() {
                out.push_str("};\n");
            } else {
                out.push_str("} else {\n");
                print_body(els, depth + 1, out);
                indent(depth, out);
                out.push_str("};\n");
            }
        }
        StmtKind::While { cond, body } => {
            let _ = writeln!(out, "while ({}) {{", expr(cond));
            print_body(body, depth + 1, out);
            indent(depth, out);
            out.push_str("};\n");
        }
        StmtKind::Foreach {
            count,
            step,
            ity,
            ivar,
            body,
        } => {
            let _ = write!(out, "foreach ({}", expr(count));
            if let Some(st) = step {
                let _ = write!(out, " by {}", expr(st));
            }
            let _ = writeln!(out, ") {{ {} {} =>", ty(*ity), ivar);
            print_body(body, depth + 1, out);
            indent(depth, out);
            out.push_str("};\n");
        }
        StmtKind::Replicate { ways, body } => {
            let _ = writeln!(out, "replicate ({ways}) {{");
            print_body(body, depth + 1, out);
            indent(depth, out);
            out.push_str("};\n");
        }
        StmtKind::Fork {
            count,
            ity,
            ivar,
            body,
        } => {
            let _ = writeln!(out, "fork ({}) {{ {} {} =>", expr(count), ty(*ity), ivar);
            print_body(body, depth + 1, out);
            indent(depth, out);
            out.push_str("};\n");
        }
        StmtKind::Exit => out.push_str("exit;\n"),
        StmtKind::Yield(e) => {
            let _ = writeln!(out, "yield {};", expr(e));
        }
        StmtKind::Return(None) => out.push_str("return;\n"),
        StmtKind::Return(Some(e)) => {
            let _ = writeln!(out, "return {};", expr(e));
        }
        StmtKind::Pragma { name, value } => match value {
            Some(v) => {
                let _ = writeln!(out, "pragma({name}, {v});");
            }
            None => {
                let _ = writeln!(out, "pragma({name});");
            }
        },
        StmtKind::Bulk {
            sram,
            load,
            dram,
            base,
            len,
        } => {
            let op = if *load { "load" } else { "store" };
            let _ = writeln!(out, "{sram}.{op}({dram}, {}, {});", expr(base), expr(len));
        }
    }
}

/// Renders one expression, fully parenthesized.
pub fn expr(e: &Expr) -> String {
    match e {
        Expr::Int(n) => {
            if *n < 0 {
                format!("(-{})", n.unsigned_abs())
            } else {
                n.to_string()
            }
        }
        Expr::Var(name) => name.clone(),
        Expr::Bin(op, a, b) => format!("({} {} {})", expr(a), bin(*op), expr(b)),
        Expr::Un(op, a) => {
            let sym = match op {
                UnOp::Neg => "-",
                UnOp::Not => "!",
                UnOp::BitNot => "~",
            };
            format!("({}{})", sym, expr(a))
        }
        Expr::Index(base, idx) => format!("{}[{}]", base, expr(idx)),
        Expr::Deref(it) => format!("(*{it})"),
        Expr::Peek(it, e) => format!("{}.peek({})", it, expr(e)),
        Expr::Cast(t, e) => format!("(({})({}))", ty(*t), expr(e)),
        Expr::ForeachReduce {
            count,
            step,
            op,
            ity,
            ivar,
            body,
        } => {
            let mut out = String::new();
            let _ = write!(out, "foreach ({}", expr(count));
            if let Some(st) = step {
                let _ = write!(out, " by {}", expr(st));
            }
            let _ = writeln!(out, ") reduce({}) {{ {} {} =>", reduce(*op), ty(*ity), ivar);
            // Reduce bodies nest inside an initializer; a fixed two-level
            // indent keeps them readable without threading the depth here
            // (the parser is whitespace-insensitive).
            print_body(body, 2, &mut out);
            out.push_str("    }");
            out
        }
    }
}

fn bin(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Rem => "%",
        BinOp::And => "&",
        BinOp::Or => "|",
        BinOp::Xor => "^",
        BinOp::Shl => "<<",
        BinOp::Shr => ">>",
        BinOp::Eq => "==",
        BinOp::Ne => "!=",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::LAnd => "&&",
        BinOp::LOr => "||",
    }
}

fn reduce(op: ReduceOp) -> &'static str {
    match op {
        ReduceOp::Add => "+",
        ReduceOp::Mul => "*",
        ReduceOp::And => "&",
        ReduceOp::Or => "|",
        ReduceOp::Xor => "^",
        ReduceOp::Min => "min",
        ReduceOp::Max => "max",
    }
}

fn ty(t: TyName) -> &'static str {
    match t {
        TyName::U8 => "u8",
        TyName::U16 => "u16",
        TyName::U32 => "u32",
        TyName::I8 => "i8",
        TyName::I16 => "i16",
        TyName::I32 => "i32",
        TyName::Void => "void",
    }
}
