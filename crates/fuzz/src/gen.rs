//! Seeded generation of well-typed, terminating Revet source programs.
//!
//! Every program the generator emits is correct by construction along
//! four axes, so any downstream disagreement is a compiler/executor bug
//! rather than a generator artifact:
//!
//! - **Well-typed**: expressions are built against a declared target
//!   type; cross-type variable reads go through explicit casts; scope
//!   tracking honors the front end's rule that a `foreach` body may read
//!   but never assign variables declared outside it.
//! - **Terminating**: `foreach` trip counts are masked to `< 8`, `while`
//!   loops use a dedicated counter variable that is frozen inside the
//!   body and unconditionally incremented as its last statement, and
//!   loop constructs nest at most [`GenConfig::max_loop_nest`] deep.
//! - **Memory-safe**: every DRAM/view index is masked into bounds, and
//!   view declarations keep `base + size` inside the backing symbol, so
//!   no evaluator can fault or read past an image edge.
//! - **Deterministic under parallelism**: stores inside `foreach` bodies
//!   index by an injective linear thread id (`(..(i0*8 + i1)*8..)`), so
//!   no two threads of one construct ever race on an address; the input
//!   symbol `d0` is never written, so view staging can't go stale.
//!
//! The grammar subset covers scalars of all six integer types, DRAM
//! declarations with seeded init data, bounded `readview` tiles (ragged
//! when the base depends on a loop index), `foreach` (statement and
//! `reduce` expression forms, with optional `by` steps), `while`, and
//! `if`/`else`. Iterators, `fork`/`replicate`, and raw SRAM bulk
//! transfers are deliberately out of scope for generation (the printer
//! still handles them for corpus round-trips); the grammar has no
//! function-call expression, so `main` is the whole program.

use crate::print::print_program;
use crate::rng::Rng;
use revet_diag::Span;
use revet_lang::ast::{
    BinOp, DramDeclAst, Expr, FuncAst, MemDecl, Program, ReduceOp, Stmt, StmtKind, TyName, UnOp,
    ViewKindName,
};

/// Words in the read-only input symbol `d0`.
pub const IN_WORDS: u64 = 64;
/// Elements in each output symbol (`d1` is u32, `d2` is u8). Thread-id
/// store addresses use a base-9 positional code padded with a sentinel
/// digit (see `Gen::tid_expr`), so with `max_loop_nest` ≤ 2 levels of
/// ≤ 8 threads every address stays below 9² = 81.
pub const OUT_ELEMS: u64 = 81;

/// Size/depth budgets and feature weights for one generated program.
#[derive(Clone, Debug)]
pub struct GenConfig {
    /// Most statements generated into one region.
    pub max_region_stmts: u64,
    /// Most nested statement regions (if/while/foreach bodies).
    pub max_region_depth: usize,
    /// Most nested `foreach` constructs (bounds the thread-id product).
    pub max_loop_nest: usize,
    /// Most nested expression operators.
    pub max_expr_depth: usize,
    /// Total statement budget for the whole program.
    pub max_total_stmts: u64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            max_region_stmts: 6,
            max_region_depth: 3,
            max_loop_nest: 2,
            max_expr_depth: 3,
            max_total_stmts: 28,
        }
    }
}

/// One self-contained fuzz case: the program (AST + printed source) and
/// the run inputs every evaluator receives.
#[derive(Clone, Debug)]
pub struct Case {
    /// The case seed (prints in every failure report).
    pub seed: u64,
    /// The generated program.
    pub ast: Program,
    /// `print_program(ast)` — what actually gets compiled.
    pub source: String,
    /// Arguments for `main(u32 p0, u32 p1)`.
    pub args: Vec<u32>,
    /// Initial bytes per DRAM symbol, written at each symbol's slice
    /// base (empty = left zeroed).
    pub dram_inits: Vec<Vec<u8>>,
}

/// The fixed DRAM universe every generated program declares:
/// `d0` (u32, seeded input, never stored to), `d1` (u32 output),
/// `d2` (u8 output).
fn drams() -> Vec<DramDeclAst> {
    let mk = |name: &str, ty| DramDeclAst {
        name: name.to_string(),
        ty,
        span: Span::new(0, 0),
    };
    vec![
        mk("d0", TyName::U32),
        mk("d1", TyName::U32),
        mk("d2", TyName::U8),
    ]
}

/// Seeded init image for `d0` (the only pre-loaded symbol).
pub fn input_image(seed: u64) -> Vec<u8> {
    let mut r = Rng(seed ^ 0xD0D0_D0D0_D0D0_D0D0);
    (0..IN_WORDS * 4).map(|_| r.next() as u8).collect()
}

/// Generates the complete case for `seed`.
pub fn generate_case(seed: u64, cfg: &GenConfig) -> Case {
    let mut rng = Rng(seed);
    let mut g = Gen {
        rng: &mut rng,
        cfg,
        frames: vec![Frame::root()],
        next_name: 0,
        budget: cfg.max_total_stmts,
        tid: Vec::new(),
    };
    g.frames[0].vars.push(("p0".into(), TyName::U32));
    g.frames[0].vars.push(("p1".into(), TyName::U32));
    let body = g.gen_region(cfg.max_region_depth, cfg.max_region_stmts);
    let ast = Program {
        drams: drams(),
        funcs: vec![FuncAst {
            name: "main".into(),
            ret: TyName::Void,
            params: vec![(TyName::U32, "p0".into()), (TyName::U32, "p1".into())],
            body,
            span: Span::new(0, 0),
        }],
    };
    let source = print_program(&ast);
    let mut arg_rng = Rng(seed ^ 0xA46A_A46A_A46A_A46A);
    let args = vec![arg_rng.next() as u32, arg_rng.next() as u32];
    Case {
        seed,
        ast,
        source,
        args,
        dram_inits: vec![input_image(seed), Vec::new(), Vec::new()],
    }
}

const SCALAR_TYS: &[TyName] = &[
    TyName::U32,
    TyName::U32,
    TyName::U32,
    TyName::I32,
    TyName::I32,
    TyName::U16,
    TyName::U8,
    TyName::I16,
    TyName::I8,
];

/// Wide types comparisons and logical ops are generated at.
const WIDE_TYS: &[TyName] = &[TyName::U32, TyName::I32];

struct Frame {
    /// True for `foreach`/reduce bodies: everything declared in frames
    /// below is read-only here.
    foreach_boundary: bool,
    vars: Vec<(String, TyName)>,
    /// In-scope readviews over `d0`: (name, tile size).
    views: Vec<(String, u64)>,
    /// Vars declared here that must not be reassigned (loop counters).
    frozen: Vec<String>,
}

impl Frame {
    fn root() -> Frame {
        Frame {
            foreach_boundary: false,
            vars: Vec::new(),
            views: Vec::new(),
            frozen: Vec::new(),
        }
    }
    fn new(foreach_boundary: bool) -> Frame {
        Frame {
            foreach_boundary,
            ..Frame::root()
        }
    }
}

struct Gen<'a> {
    rng: &'a mut Rng,
    cfg: &'a GenConfig,
    frames: Vec<Frame>,
    next_name: u32,
    budget: u64,
    /// Loop-index variables of enclosing `foreach` constructs, innermost
    /// last; each contributes a `< 8` digit to the injective thread id.
    tid: Vec<(String, TyName)>,
}

fn stmt(kind: StmtKind) -> Stmt {
    Stmt::new(kind, Span::new(0, 0))
}

impl Gen<'_> {
    fn fresh(&mut self, prefix: &str) -> String {
        let n = self.next_name;
        self.next_name += 1;
        format!("{prefix}{n}")
    }

    /// All readable scalar variables.
    fn readable(&self) -> Vec<(String, TyName)> {
        self.frames
            .iter()
            .flat_map(|f| f.vars.iter().cloned())
            .collect()
    }

    /// Variables the front end lets this scope assign: declared at or
    /// inside the innermost enclosing `foreach` body, and not frozen.
    fn assignable(&self) -> Vec<(String, TyName)> {
        let start = self
            .frames
            .iter()
            .rposition(|f| f.foreach_boundary)
            .unwrap_or(0);
        self.frames[start..]
            .iter()
            .flat_map(|f| {
                f.vars
                    .iter()
                    .filter(|(n, _)| !f.frozen.iter().any(|z| z == n))
                    .cloned()
            })
            .collect()
    }

    fn views(&self) -> Vec<(String, u64)> {
        self.frames
            .iter()
            .flat_map(|f| f.views.iter().cloned())
            .collect()
    }

    /// The injective linear thread id of the current `foreach` nest as a
    /// u32 expression, if inside one. Each index is `< 8` by
    /// construction, so the id stays below `8^nest ≤ 64`.
    fn tid_expr(&self) -> Option<Expr> {
        let mut it = self.tid.iter();
        let (first, fty) = it.next()?;
        let as_u32 = |name: &str, t: TyName| {
            let v = Expr::Var(name.to_string());
            if t == TyName::U32 {
                v
            } else {
                Expr::Cast(TyName::U32, Box::new(v))
            }
        };
        // Base-9 positional code over the live foreach indices (each < 8),
        // padded with the sentinel digit 8 for every unused nesting level.
        // Two stores race only if they run in distinct threads of the same
        // foreach; distinct (index-prefix, depth) pairs always produce
        // distinct padded digit strings — real digits are < 8, the pad is
        // exactly 8 — so concurrent stores never alias, at any mix of
        // nesting depths. Max address: 8*9 + 8 = 80 < OUT_ELEMS.
        let mut acc = as_u32(first, *fty);
        for (name, t) in it {
            acc = Expr::Bin(
                BinOp::Add,
                Box::new(Expr::Bin(BinOp::Mul, Box::new(acc), Box::new(Expr::Int(9)))),
                Box::new(as_u32(name, *t)),
            );
        }
        for _ in self.tid.len()..self.cfg.max_loop_nest {
            acc = Expr::Bin(
                BinOp::Add,
                Box::new(Expr::Bin(BinOp::Mul, Box::new(acc), Box::new(Expr::Int(9)))),
                Box::new(Expr::Int(8)),
            );
        }
        Some(acc)
    }

    /// `((u32)(e)) % k` — a non-negative index strictly below `k`.
    fn masked(&mut self, e: Expr, k: u64) -> Expr {
        Expr::Bin(
            BinOp::Rem,
            Box::new(Expr::Cast(TyName::U32, Box::new(e))),
            Box::new(Expr::Int(k as i64)),
        )
    }

    // ---- expressions ----

    /// An expression of type `want`, at most `depth` operators deep.
    fn gen_expr(&mut self, want: TyName, depth: usize) -> Expr {
        if depth == 0 || self.rng.chance(25) {
            return self.gen_leaf(want);
        }
        match self.rng.below(10) {
            0..=3 => {
                let op = *self.rng.pick(&[
                    BinOp::Add,
                    BinOp::Sub,
                    BinOp::Mul,
                    BinOp::Div,
                    BinOp::Rem,
                    BinOp::And,
                    BinOp::Or,
                    BinOp::Xor,
                    BinOp::Shl,
                    BinOp::Shr,
                ]);
                let a = self.gen_expr(want, depth - 1);
                let b = self.gen_expr(want, depth - 1);
                Expr::Bin(op, Box::new(a), Box::new(b))
            }
            4 if WIDE_TYS.contains(&want) => {
                let op = *self.rng.pick(&[
                    BinOp::Eq,
                    BinOp::Ne,
                    BinOp::Lt,
                    BinOp::Le,
                    BinOp::Gt,
                    BinOp::Ge,
                    BinOp::LAnd,
                    BinOp::LOr,
                ]);
                let a = self.gen_expr(want, depth - 1);
                let b = self.gen_expr(want, depth - 1);
                Expr::Bin(op, Box::new(a), Box::new(b))
            }
            5 => {
                let op = *self.rng.pick(&[UnOp::Neg, UnOp::Not, UnOp::BitNot]);
                Expr::Un(op, Box::new(self.gen_expr(want, depth - 1)))
            }
            6 => {
                let mid = *self.rng.pick(SCALAR_TYS);
                Expr::Cast(want, Box::new(self.gen_expr(mid, depth - 1)))
            }
            7 => {
                // d0[masked] — a bounded random input-tensor read.
                let idx = self.gen_expr(TyName::U32, depth - 1);
                let idx = self.masked(idx, IN_WORDS);
                self.cast_to(want, Expr::Index("d0".into(), Box::new(idx)), TyName::U32)
            }
            8 => {
                let views = self.views();
                if views.is_empty() {
                    self.gen_leaf(want)
                } else {
                    let (name, size) = self.rng.pick(&views).clone();
                    let idx = if self.rng.chance(50) {
                        Expr::Int(self.rng.below(size) as i64)
                    } else {
                        let e = self.gen_expr(TyName::U32, depth - 1);
                        self.masked(e, size)
                    };
                    self.cast_to(want, Expr::Index(name, Box::new(idx)), TyName::U32)
                }
            }
            _ => self.gen_leaf(want),
        }
    }

    fn cast_to(&self, want: TyName, e: Expr, have: TyName) -> Expr {
        if want == have {
            e
        } else {
            Expr::Cast(want, Box::new(e))
        }
    }

    fn gen_leaf(&mut self, want: TyName) -> Expr {
        let vars = self.readable();
        if !vars.is_empty() && self.rng.chance(55) {
            // Prefer a same-typed variable; fall back to a cast read.
            let same: Vec<_> = vars.iter().filter(|(_, t)| *t == want).cloned().collect();
            let (name, t) = if !same.is_empty() {
                self.rng.pick(&same).clone()
            } else {
                self.rng.pick(&vars).clone()
            };
            return self.cast_to(want, Expr::Var(name), t);
        }
        let c = *self.rng.pick(&[0i64, 1, 2, 3, 5, 7, 8, 15, 63, 100, 255]);
        let c = match want {
            TyName::U8 | TyName::I8 => c.min(100),
            _ => c,
        };
        if want.signed() && self.rng.chance(25) && c != 0 {
            Expr::Un(UnOp::Neg, Box::new(Expr::Int(c)))
        } else {
            Expr::Int(c)
        }
    }

    // ---- statements ----

    fn gen_region(&mut self, depth: usize, max_stmts: u64) -> Vec<Stmt> {
        let n = self.rng.range(1, max_stmts.max(1));
        let mut out = Vec::new();
        for _ in 0..n {
            if self.budget == 0 {
                break;
            }
            self.budget = self.budget.saturating_sub(1);
            self.gen_stmt(depth, &mut out);
        }
        out
    }

    fn gen_stmt(&mut self, depth: usize, out: &mut Vec<Stmt>) {
        let in_loop = self.tid.len() >= self.cfg.max_loop_nest;
        let roll = self.rng.below(14);
        match roll {
            0..=3 => self.gen_decl(out),
            4 => self.gen_assign(out),
            5 | 6 => self.gen_store(out),
            7 => {
                if depth > 0 {
                    self.gen_if(depth, out)
                } else {
                    self.gen_store(out)
                }
            }
            8 | 9 => {
                if depth > 0 {
                    self.gen_while(depth, out)
                } else {
                    self.gen_decl(out)
                }
            }
            10 | 11 => {
                if depth > 0 && !in_loop {
                    self.gen_foreach(depth, out)
                } else {
                    self.gen_store(out)
                }
            }
            12 => {
                if depth > 0 && !in_loop {
                    self.gen_reduce_decl(out)
                } else {
                    self.gen_decl(out)
                }
            }
            _ => self.gen_view_decl(out),
        }
    }

    fn gen_decl(&mut self, out: &mut Vec<Stmt>) {
        let ty = *self.rng.pick(SCALAR_TYS);
        let name = self.fresh("v");
        let init = if self.rng.chance(85) {
            Some(self.gen_expr(ty, self.cfg.max_expr_depth))
        } else {
            None
        };
        out.push(stmt(StmtKind::Decl {
            ty,
            name: name.clone(),
            init,
        }));
        self.frames.last_mut().expect("scope").vars.push((name, ty));
    }

    fn gen_assign(&mut self, out: &mut Vec<Stmt>) {
        let targets = self.assignable();
        if targets.is_empty() {
            return self.gen_decl(out);
        }
        let (name, ty) = self.rng.pick(&targets).clone();
        let value = self.gen_expr(ty, self.cfg.max_expr_depth);
        out.push(stmt(StmtKind::Assign { name, value }));
    }

    fn gen_store(&mut self, out: &mut Vec<Stmt>) {
        let (base, ty) = if self.rng.chance(70) {
            ("d1", TyName::U32)
        } else {
            ("d2", TyName::U8)
        };
        let idx = match self.tid_expr() {
            // Inside a foreach nest: the injective thread id, so sibling
            // threads never race on an address.
            Some(tid) => tid,
            None => {
                let e = self.gen_expr(TyName::U32, self.cfg.max_expr_depth);
                self.masked(e, OUT_ELEMS)
            }
        };
        let value = self.gen_expr(ty, self.cfg.max_expr_depth);
        out.push(stmt(StmtKind::Store {
            base: base.into(),
            idx,
            value,
        }));
    }

    fn gen_if(&mut self, depth: usize, out: &mut Vec<Stmt>) {
        let cty = *self.rng.pick(WIDE_TYS);
        let cond = self.gen_expr(cty, self.cfg.max_expr_depth);
        self.frames.push(Frame::new(false));
        let then = self.gen_region(depth - 1, self.cfg.max_region_stmts / 2);
        self.frames.pop();
        let els = if self.rng.chance(45) {
            self.frames.push(Frame::new(false));
            let e = self.gen_region(depth - 1, self.cfg.max_region_stmts / 2);
            self.frames.pop();
            e
        } else {
            Vec::new()
        };
        out.push(stmt(StmtKind::If { cond, then, els }));
    }

    /// `u32 c = init; while (c < limit) { …; c = c + 1; };` — the counter
    /// is frozen inside the body, so the final increment is the only
    /// assignment to it and the loop provably terminates. `init ≥ limit`
    /// (possible by construction) gives zero-iteration loops.
    fn gen_while(&mut self, depth: usize, out: &mut Vec<Stmt>) {
        let counter = self.fresh("c");
        let init = self.rng.below(7) as i64;
        let limit = self.rng.range(1, 5) as i64;
        out.push(stmt(StmtKind::Decl {
            ty: TyName::U32,
            name: counter.clone(),
            init: Some(Expr::Int(init)),
        }));
        let top = self.frames.last_mut().expect("scope");
        top.vars.push((counter.clone(), TyName::U32));
        top.frozen.push(counter.clone());

        let cond = Expr::Bin(
            BinOp::Lt,
            Box::new(Expr::Var(counter.clone())),
            Box::new(Expr::Int(limit)),
        );
        self.frames.push(Frame::new(false));
        let mut body = self.gen_region(depth - 1, self.cfg.max_region_stmts / 2);
        self.frames.pop();
        body.push(stmt(StmtKind::Assign {
            name: counter.clone(),
            value: Expr::Bin(
                BinOp::Add,
                Box::new(Expr::Var(counter.clone())),
                Box::new(Expr::Int(1)),
            ),
        }));
        out.push(stmt(StmtKind::While { cond, body }));

        // The loop is over; let later statements reuse the counter.
        let top = self.frames.last_mut().expect("scope");
        top.frozen.retain(|z| z != &counter);
    }

    fn gen_trip_count(&mut self) -> Expr {
        if self.rng.chance(50) {
            Expr::Int(self.rng.below(9) as i64)
        } else {
            let e = self.gen_expr(TyName::U32, 1);
            self.masked(e, 8)
        }
    }

    fn gen_foreach(&mut self, depth: usize, out: &mut Vec<Stmt>) {
        let count = self.gen_trip_count();
        let step = if self.rng.chance(25) {
            Some(Expr::Int(self.rng.range(1, 3) as i64))
        } else {
            None
        };
        let ity = if self.rng.chance(85) {
            TyName::U32
        } else {
            TyName::I32
        };
        let ivar = self.fresh("k");
        self.frames.push(Frame::new(true));
        {
            // The index is readable but must never be reassigned: thread-id
            // store indexing assumes `ivar < count` throughout the body.
            let top = self.frames.last_mut().expect("scope");
            top.vars.push((ivar.clone(), ity));
            top.frozen.push(ivar.clone());
        }
        self.tid.push((ivar.clone(), ity));
        let body = self.gen_region(depth - 1, self.cfg.max_region_stmts / 2);
        self.tid.pop();
        self.frames.pop();
        out.push(stmt(StmtKind::Foreach {
            count,
            step,
            ity,
            ivar,
            body,
        }));
    }

    /// `ty x = foreach (n) reduce(op) { u32 i => … yield e; };` — the body
    /// is kept pure (decls + yield), parallel threads reduce associatively.
    fn gen_reduce_decl(&mut self, out: &mut Vec<Stmt>) {
        let ty = *self.rng.pick(WIDE_TYS);
        let op = *self.rng.pick(&[
            ReduceOp::Add,
            ReduceOp::Mul,
            ReduceOp::And,
            ReduceOp::Or,
            ReduceOp::Xor,
            ReduceOp::Min,
            ReduceOp::Max,
        ]);
        let count = self.gen_trip_count();
        let step = if self.rng.chance(20) {
            Some(Box::new(Expr::Int(self.rng.range(1, 3) as i64)))
        } else {
            None
        };
        let ivar = self.fresh("k");
        self.frames.push(Frame::new(true));
        {
            let top = self.frames.last_mut().expect("scope");
            top.vars.push((ivar.clone(), TyName::U32));
            top.frozen.push(ivar.clone());
        }
        let mut body = Vec::new();
        for _ in 0..self.rng.below(3) {
            self.gen_decl(&mut body);
        }
        let y = self.gen_expr(ty, self.cfg.max_expr_depth);
        body.push(stmt(StmtKind::Yield(y)));
        self.frames.pop();

        let name = self.fresh("v");
        out.push(stmt(StmtKind::Decl {
            ty,
            name: name.clone(),
            init: Some(Expr::ForeachReduce {
                count: Box::new(count),
                step,
                op,
                ity: TyName::U32,
                ivar,
                body,
            }),
        }));
        self.frames.last_mut().expect("scope").vars.push((name, ty));
    }

    /// `readview<sz> w(d0, base);` with `base + sz ≤ IN_WORDS`; inside a
    /// foreach the base may depend on the loop index (ragged tiles).
    fn gen_view_decl(&mut self, out: &mut Vec<Stmt>) {
        let size = *self.rng.pick(&[4u64, 8, 16]);
        let base_bound = IN_WORDS - size + 1;
        let base = if self.rng.chance(50) {
            Expr::Int(self.rng.below(base_bound) as i64)
        } else {
            let e = self.gen_expr(TyName::U32, 2);
            self.masked(e, base_bound)
        };
        let name = self.fresh("w");
        out.push(stmt(StmtKind::Mem {
            name: name.clone(),
            decl: MemDecl::View {
                kind: ViewKindName::Read,
                size: size as u32,
                dram: "d0".into(),
                base,
            },
        }));
        self.frames
            .last_mut()
            .expect("scope")
            .views
            .push((name, size));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig::default();
        let a = generate_case(0xFEED, &cfg);
        let b = generate_case(0xFEED, &cfg);
        assert_eq!(a.source, b.source);
        assert_eq!(a.args, b.args);
        assert_eq!(a.dram_inits, b.dram_inits);
    }

    #[test]
    fn every_generated_program_parses() {
        let cfg = GenConfig::default();
        for i in 0..50u64 {
            let case = generate_case(crate::rng::case_seed(1, i), &cfg);
            revet_lang::parse_program(&case.source)
                .unwrap_or_else(|d| panic!("seed {:#x}: {d}\n{}", case.seed, case.source));
        }
    }
}
