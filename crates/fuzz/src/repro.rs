//! Self-contained `.rvt` reproducer files.
//!
//! A reproducer is an ordinary Revet source file whose leading `//`
//! comment lines carry everything needed to replay it through the
//! oracle: the case seed, `main`'s arguments, every non-empty DRAM init
//! image (hex-encoded — nothing has to be re-derived from generator
//! internals), and the failure line that produced it. The lexer treats
//! the header as comments, so a reproducer also compiles as-is with
//! `revetc`. The checked-in `corpus/` seeds use the same format.

use crate::gen::Case;
use crate::oracle::Failure;
use revet_lang::ast::Program;

/// Renders `case` (and the failure that produced it, if any) as a
/// reproducer file.
pub fn format_repro(case: &Case, failure: Option<&Failure>) -> String {
    let mut out = String::new();
    out.push_str("// revet-fuzz reproducer\n");
    out.push_str(&format!("// seed: {:#018x}\n", case.seed));
    let args: Vec<String> = case.args.iter().map(|a| a.to_string()).collect();
    out.push_str(&format!("// args: {}\n", args.join(" ")));
    for (sym, bytes) in case.dram_inits.iter().enumerate() {
        if !bytes.is_empty() {
            out.push_str(&format!("// init d{sym}: {}\n", hex(bytes)));
        }
    }
    if let Some(f) = failure {
        out.push_str(&format!("// failure: {f}\n"));
    }
    out.push('\n');
    out.push_str(&case.source);
    out
}

/// Parses a reproducer back into a replayable [`Case`].
///
/// # Errors
///
/// Describes the malformed header line or the parse failure.
pub fn parse_repro(text: &str) -> Result<Case, String> {
    let mut seed = 0u64;
    let mut args = Vec::new();
    let mut inits: Vec<(usize, Vec<u8>)> = Vec::new();
    for line in text.lines() {
        let Some(rest) = line.strip_prefix("//") else {
            continue;
        };
        let rest = rest.trim();
        if let Some(v) = rest.strip_prefix("seed:") {
            let v = v.trim().trim_start_matches("0x");
            seed = u64::from_str_radix(v, 16).map_err(|e| format!("bad seed: {e}"))?;
        } else if let Some(v) = rest.strip_prefix("args:") {
            for a in v.split_whitespace() {
                args.push(
                    a.parse::<u32>()
                        .map_err(|e| format!("bad arg {a:?}: {e}"))?,
                );
            }
        } else if let Some(v) = rest.strip_prefix("init d") {
            let (sym, hexstr) = v
                .split_once(':')
                .ok_or_else(|| format!("bad init line {rest:?}"))?;
            let sym: usize = sym
                .trim()
                .parse()
                .map_err(|e| format!("bad init symbol: {e}"))?;
            inits.push((sym, unhex(hexstr.trim())?));
        }
    }
    let ast = revet_lang::parse_program(text)
        .map_err(|d| format!("reproducer source does not parse: {d}"))?;
    let n_drams = ast.drams.len();
    let mut dram_inits = vec![Vec::new(); n_drams];
    for (sym, bytes) in inits {
        if sym >= n_drams {
            return Err(format!("init d{sym} but only {n_drams} dram symbols"));
        }
        dram_inits[sym] = bytes;
    }
    Ok(Case {
        seed,
        source: text.to_string(),
        ast,
        args,
        dram_inits,
    })
}

fn hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

fn unhex(s: &str) -> Result<Vec<u8>, String> {
    if !s.len().is_multiple_of(2) {
        return Err("odd-length hex init".into());
    }
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).map_err(|e| format!("bad hex: {e}")))
        .collect()
}

/// True when the reproducer's AST is still the printed form of `ast`
/// (used by tests to confirm the header round-trips losslessly).
pub fn same_program(a: &Program, b: &Program) -> bool {
    crate::print::print_program(a) == crate::print::print_program(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate_case, GenConfig};

    #[test]
    fn reproducers_round_trip() {
        let case = generate_case(0x5EED_1234, &GenConfig::default());
        let text = format_repro(&case, None);
        let back = parse_repro(&text).unwrap();
        assert_eq!(back.seed, case.seed);
        assert_eq!(back.args, case.args);
        assert_eq!(back.dram_inits, case.dram_inits);
        assert!(same_program(&back.ast, &case.ast));
    }

    #[test]
    fn hex_round_trips() {
        let bytes: Vec<u8> = (0..=255).collect();
        assert_eq!(unhex(&hex(&bytes)).unwrap(), bytes);
        assert!(unhex("abc").is_err());
        assert!(unhex("zz").is_err());
    }
}
