//! # revet-fuzz
//!
//! Generative differential testing for the whole Revet stack. A seeded
//! generator ([`gen`]) emits well-typed, terminating Revet source
//! programs; the oracle ([`oracle`]) feeds each one through the full
//! pipeline at -O0/-O1/-O2 and demands bit-identical final DRAM (and
//! matching sink streams) across the MIR interpreter, the interpreted
//! ready-set executor, and the compiled execution plan. Failures become
//! self-contained `.rvt` reproducers ([`repro`]) and are automatically
//! minimized ([`reduce`]) before they reach a human.
//!
//! The `revet-fuzz` binary drives campaigns:
//!
//! ```text
//! revet-fuzz --seed 42 --cases 500 [--out DIR] [--keep-going] [--quiet]
//! ```
//!
//! See the "Fuzzing & differential oracles" section of `ARCHITECTURE.md`
//! for the oracle matrix and the design constraints on the generator.

pub mod gen;
pub mod oracle;
pub mod print;
pub mod reduce;
pub mod repro;
pub mod rng;

pub use gen::{generate_case, Case, GenConfig};
pub use oracle::{run_case, Failure, FailureKind, Injection, OracleConfig};
pub use print::print_program;
pub use reduce::{reduce_case, ReduceConfig, ReduceReport};
pub use repro::{format_repro, parse_repro};
pub use rng::{case_seed, Rng};

/// One campaign failure: the case, its divergence, and the minimized
/// reproducer.
#[derive(Clone, Debug)]
pub struct CampaignFailure {
    /// Zero-based index of the case within the campaign.
    pub case_index: u64,
    /// The failing case as generated.
    pub case: Case,
    /// The divergence the oracle reported.
    pub failure: Failure,
    /// The reduced case (same failure kind, fewer statements).
    pub reduced: Case,
    /// What the reducer did.
    pub reduce_report: ReduceReport,
}

/// Aggregate campaign result.
#[derive(Clone, Debug, Default)]
pub struct CampaignReport {
    /// Cases generated and judged.
    pub cases_run: u64,
    /// Every failure found (empty = green campaign).
    pub failures: Vec<CampaignFailure>,
}

/// Runs a `cases`-long campaign from `seed`. Failing cases are reduced
/// immediately; `keep_going` continues past the first failure.
/// `progress` is called after every case with (index, failures-so-far).
pub fn run_campaign(
    seed: u64,
    cases: u64,
    gen_cfg: &GenConfig,
    oracle_cfg: &OracleConfig,
    reduce_cfg: &ReduceConfig,
    keep_going: bool,
    mut progress: impl FnMut(u64, usize),
) -> CampaignReport {
    let mut report = CampaignReport::default();
    for i in 0..cases {
        let case = generate_case(case_seed(seed, i), gen_cfg);
        report.cases_run += 1;
        if let Err(failure) = run_case(&case, oracle_cfg) {
            let (reduced, reduce_report) = reduce_case(&case, &failure, oracle_cfg, reduce_cfg);
            report.failures.push(CampaignFailure {
                case_index: i,
                case,
                failure,
                reduced,
                reduce_report,
            });
            if !keep_going {
                break;
            }
        }
        progress(i, report.failures.len());
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The in-tree smoke slice of the CLI acceptance run (`--seed 42
    /// --cases 500` runs in CI and locally; here a shorter prefix keeps
    /// `cargo test` snappy while still crossing every generator feature).
    #[test]
    fn short_campaign_from_seed_42_is_green() {
        let report = run_campaign(
            42,
            60,
            &GenConfig::default(),
            &OracleConfig::default(),
            &ReduceConfig::default(),
            true,
            |_, _| {},
        );
        assert_eq!(report.cases_run, 60);
        let msgs: Vec<String> = report
            .failures
            .iter()
            .map(|f| {
                format!(
                    "case {} (seed {:#x}): {}\n{}",
                    f.case_index, f.case.seed, f.failure, f.reduced.source
                )
            })
            .collect();
        assert!(msgs.is_empty(), "{}", msgs.join("\n---\n"));
    }
}
