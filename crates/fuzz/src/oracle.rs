//! The N-way differential oracle.
//!
//! One [`Case`] is judged by ten batch evaluator runs that must all agree
//! bit-for-bit on the final DRAM image (and, among the dataflow
//! executors, on `main`'s sink token stream):
//!
//! | # | evaluator | module | opt level |
//! |---|-----------|--------|-----------|
//! | 1 | MIR interpreter | unoptimized (`compile_to_mir`) | — (reference) |
//! | 2,5,8 | MIR interpreter | optimized (`Session::run_passes`) | O0/O1/O2 |
//! | 3,6,9 | compiled `ExecPlan` (`run_untimed`) | lowered dataflow | O0/O1/O2 |
//! | 4,7,10 | interpreted ready-set executor | lowered dataflow | O0/O1/O2 |
//!
//! On top of the batch matrix, each level runs the **chunked-feed
//! streaming lane**: the case's argset replicated and fed through a
//! resident [`StreamInstance`](revet_core::StreamInstance) at a
//! seed-derived chunk boundary must be bit-identical (final DRAM plus
//! sink stream) to one session fed everything up front, on both
//! executors — and a single-argset session must match the batch runs.
//!
//! On top of the bit-identity matrix the oracle enforces the frontend
//! invariants: compilation must succeed with *zero* diagnostics (clean
//! programs are well-typed by construction) and nothing in the stack may
//! panic — every run is wrapped in `catch_unwind`.
//!
//! Full `MemoryState` equality is deliberately not asserted (allocator
//! free-list order is schedule-dependent, see `plan_differential.rs` in
//! `revet-apps`); final DRAM plus sink streams is the observable
//! contract.
//!
//! [`Injection`] is the test-only miscompile hook: it mutates the
//! optimized MIR *only on the dataflow path* (the reference interpreter
//! still sees the honest module), exactly the shape of a broken
//! optimization pass, and is used to prove the oracle catches and the
//! reducer minimizes real miscompiles.

use crate::gen::Case;
use revet_core::{lower_to_dataflow, CompiledProgram, PassOptions, Session, StreamExecutor};
use revet_machine::{MachineError, TTok};
use revet_mir::{AluOp, DramLayout, Interp, Module, OpKind, Region};
use revet_sltf::Word;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Oracle-wide execution limits and hooks.
#[derive(Clone, Debug, Default)]
pub struct OracleConfig {
    /// DRAM image size for every evaluator (0 = the 64 KiB default).
    pub dram_bytes: usize,
    /// Executor round bound (0 = a generous default).
    pub max_rounds: u64,
    /// Interpreter op-fuel bound (0 = a generous default).
    pub interp_fuel: u64,
    /// Test-only miscompile injection on the dataflow path.
    pub inject: Option<Injection>,
}

impl OracleConfig {
    fn dram_bytes(&self) -> usize {
        if self.dram_bytes == 0 {
            1 << 16
        } else {
            self.dram_bytes
        }
    }
    fn max_rounds(&self) -> u64 {
        if self.max_rounds == 0 {
            50_000_000
        } else {
            self.max_rounds
        }
    }
    fn interp_fuel(&self) -> u64 {
        if self.interp_fuel == 0 {
            1_000_000_000
        } else {
            self.interp_fuel
        }
    }
}

/// Test-only miscompiles the oracle must catch.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Injection {
    /// Rewrites the last integer `Add` in `main` into a `Sub` after the
    /// pass pipeline, before dataflow lowering (a classic wrong-code
    /// peephole). Last rather than first: late adds are usually
    /// generator-visible arithmetic, not lowering-introduced address
    /// math, so the divergence shows up as wrong data instead of an
    /// out-of-bounds fault — but either way the oracle flags it.
    FlipLastAddToSub,
}

/// Why a case failed, stable across reduction steps (the reducer only
/// keeps a mutation when the kind survives).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FailureKind {
    /// The front end rejected a generated (well-typed!) program.
    CompileError,
    /// Compilation succeeded but left diagnostics behind.
    DirtyDiagnostics,
    /// The MIR interpreter faulted.
    InterpError,
    /// A dataflow executor faulted or deadlocked.
    ExecError,
    /// Final DRAM images differ between two evaluators.
    DramMismatch,
    /// Sink token streams differ between two evaluators.
    SinkMismatch,
    /// Something panicked.
    Panic,
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FailureKind::CompileError => "compile-error",
            FailureKind::DirtyDiagnostics => "dirty-diagnostics",
            FailureKind::InterpError => "interp-error",
            FailureKind::ExecError => "exec-error",
            FailureKind::DramMismatch => "dram-mismatch",
            FailureKind::SinkMismatch => "sink-mismatch",
            FailureKind::Panic => "panic",
        };
        f.write_str(s)
    }
}

/// A divergence report: what failed, where, and a human-readable detail
/// line naming the disagreeing evaluator pair.
#[derive(Clone, Debug)]
pub struct Failure {
    /// The stable failure class.
    pub kind: FailureKind,
    /// The opt level being evaluated when the failure surfaced.
    pub level: Option<u8>,
    /// One-line description (first differing byte, error text, …).
    pub detail: String,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.level {
            Some(l) => write!(f, "{} at O{}: {}", self.kind, l, self.detail),
            None => write!(f, "{}: {}", self.kind, self.detail),
        }
    }
}

fn fail(kind: FailureKind, level: impl Into<Option<u8>>, detail: impl Into<String>) -> Failure {
    Failure {
        kind,
        level: level.into(),
        detail: detail.into(),
    }
}

/// First differing byte between two DRAM images, as a report line.
fn diff_dram(a: &[u8], b: &[u8], who: &str) -> String {
    if a.len() != b.len() {
        return format!("{who}: image sizes differ ({} vs {})", a.len(), b.len());
    }
    match a.iter().zip(b).position(|(x, y)| x != y) {
        Some(i) => format!(
            "{who}: DRAM differs at byte {i} ({:#04x} vs {:#04x})",
            a[i], b[i]
        ),
        None => format!("{who}: images equal (internal oracle error)"),
    }
}

/// The equal-slice layout `Session::to_dataflow` builds (and the one the
/// interpreter must share for images to be comparable).
fn layout_for(module: &Module, dram_bytes: usize) -> DramLayout {
    let n = module.drams.len().max(1);
    let slice = (dram_bytes / n) as u32;
    DramLayout {
        base: (0..module.drams.len() as u32).map(|i| i * slice).collect(),
    }
}

/// Runs `module` under the MIR interpreter with the case's inputs loaded;
/// returns the final DRAM image.
fn interp_dram(
    module: &Module,
    case: &Case,
    cfg: &OracleConfig,
    level: Option<u8>,
) -> Result<Vec<u8>, Failure> {
    let dram_bytes = cfg.dram_bytes();
    let layout = layout_for(module, dram_bytes);
    let slice = dram_bytes / module.drams.len().max(1);
    let mut mem = module.build_memory(dram_bytes);
    for (sym, bytes) in case.dram_inits.iter().enumerate() {
        if !bytes.is_empty() {
            mem.dram[sym * slice..sym * slice + bytes.len()].copy_from_slice(bytes);
        }
    }
    let args: Vec<Word> = case.args.iter().map(|&a| Word(a)).collect();
    Interp::new(module, &layout, &mut mem)
        .with_fuel(cfg.interp_fuel())
        .run("main", &args)
        .map_err(|e| fail(FailureKind::InterpError, level, e.to_string()))?;
    Ok(mem.dram)
}

/// Applies the injected miscompile to `main`'s body.
fn apply_injection(module: &mut Module, inject: Injection) -> bool {
    let Injection::FlipLastAddToSub = inject;
    let Some(f) = module.func_mut("main") else {
        return false;
    };
    fn flip_last(region: &mut Region) -> bool {
        for op in region.ops.iter_mut().rev() {
            for sub in op.kind.regions_mut() {
                if flip_last(sub) {
                    return true;
                }
            }
            if let OpKind::Bin(alu @ AluOp::Add, _, _) = &mut op.kind {
                *alu = AluOp::Sub;
                return true;
            }
        }
        false
    }
    flip_last(&mut f.body)
}

/// The per-level artifacts compared across levels. (DRAM equality across
/// levels follows transitively from each level's reference comparison,
/// so only the sink stream needs to be carried.)
struct LevelRun {
    sink_planned: Vec<revet_machine::TTok>,
}

/// Judges one case. `Ok(())` means all ten runs agreed; `Err` carries the
/// first divergence found. Never panics: every stage runs under
/// `catch_unwind` and a panic is itself a reported failure.
pub fn run_case(case: &Case, cfg: &OracleConfig) -> Result<(), Failure> {
    match catch_unwind(AssertUnwindSafe(|| run_case_inner(case, cfg))) {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".into());
            Err(fail(FailureKind::Panic, None, msg))
        }
    }
}

fn run_case_inner(case: &Case, cfg: &OracleConfig) -> Result<(), Failure> {
    // Run 1: the reference — the MIR interpreter over the unoptimized
    // module straight out of the front end.
    let lowered = revet_lang::compile_to_mir(&case.source)
        .map_err(|d| fail(FailureKind::CompileError, None, format!("frontend: {d}")))?;
    let reference = interp_dram(&lowered.module, case, cfg, None)?;

    let mut first_level: Option<LevelRun> = None;
    for level in [0u8, 1, 2] {
        let run = run_level(case, cfg, level, &reference)?;
        match &first_level {
            None => first_level = Some(run),
            Some(base) => {
                if base.sink_planned != run.sink_planned {
                    return Err(fail(
                        FailureKind::SinkMismatch,
                        level,
                        format!(
                            "planned sink stream differs from O0 ({} vs {} tokens)",
                            base.sink_planned.len(),
                            run.sink_planned.len()
                        ),
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Feeds `argsets` into a fresh streaming session in `chunk`-sized
/// groups, polling to quiescence between groups (and mid-group whenever
/// the entry channel back-pressures a feed), then finishes; returns the
/// final DRAM image and the complete sink stream.
fn stream_run(
    program: &CompiledProgram,
    executor: StreamExecutor,
    argsets: &[Vec<Word>],
    chunk: usize,
    max_rounds: u64,
) -> Result<(Vec<u8>, Vec<TTok>), MachineError> {
    let mut stream = program.stream(executor);
    for group in argsets.chunks(chunk.max(1)) {
        let mut rest = group;
        while !rest.is_empty() {
            let fed = stream.feed(rest)?;
            rest = &rest[fed..];
            if !rest.is_empty() {
                stream.poll(max_rounds)?;
            }
        }
        stream.poll(max_rounds)?;
    }
    let out = stream.finish(max_rounds)?;
    Ok((out.memory.dram, out.sink))
}

fn run_level(
    case: &Case,
    cfg: &OracleConfig,
    level: u8,
    reference: &[u8],
) -> Result<LevelRun, Failure> {
    let dram_bytes = cfg.dram_bytes();
    let opts = PassOptions {
        opt_level: level,
        dram_bytes,
        ..PassOptions::default()
    };
    let mut session = Session::new(case.source.clone(), opts.clone());
    session
        .run_passes()
        .map_err(|e| fail(FailureKind::CompileError, level, e.to_string()))?;
    if !session.diagnostics().is_empty() {
        return Err(fail(
            FailureKind::DirtyDiagnostics,
            level,
            format!(
                "compile succeeded but left {} diagnostic(s)",
                session.diagnostics().as_slice().len()
            ),
        ));
    }

    // Runs 2/5/8: the interpreter over the *optimized* module.
    let optimized = session.mir().expect("run_passes succeeded").clone();
    let opt_dram = interp_dram(&optimized, case, cfg, Some(level))?;
    if opt_dram != reference {
        return Err(fail(
            FailureKind::DramMismatch,
            level,
            diff_dram(reference, &opt_dram, "optimized-interp vs reference"),
        ));
    }

    // Lower to dataflow — through the session unless a miscompile is
    // being injected, in which case we mirror `Session::to_dataflow`
    // around the mutated module.
    let program = match cfg.inject {
        None => session
            .to_dataflow()
            .map_err(|e| fail(FailureKind::CompileError, level, e.to_string()))?,
        Some(inj) => {
            let mut module = optimized.clone();
            apply_injection(&mut module, inj);
            let layout = layout_for(&module, dram_bytes);
            let mut lopts = opts.clone();
            lopts.threads = session.thread_count();
            lower_to_dataflow(&mut module, &layout, &lopts, dram_bytes)
                .map_err(|e| fail(FailureKind::CompileError, level, e.to_string()))?
        }
    };

    // Load the case's DRAM inputs into the compiled template; instances
    // deep-clone the image.
    let mut program = program;
    let slice = dram_bytes / optimized.drams.len().max(1);
    for (sym, bytes) in case.dram_inits.iter().enumerate() {
        if !bytes.is_empty() {
            program.graph.mem.dram[sym * slice..sym * slice + bytes.len()].copy_from_slice(bytes);
        }
    }
    let args: Vec<Word> = case.args.iter().map(|&a| Word(a)).collect();

    // Runs 3/6/9: the compiled execution plan.
    let mut planned = program.instance();
    planned
        .run_untimed(&args, cfg.max_rounds())
        .map_err(|e| fail(FailureKind::ExecError, level, format!("planned: {e}")))?;

    // Runs 4/7/10: the interpreted ready-set executor.
    let mut ready = program.instance();
    ready
        .run_untimed_interpreted(&args, cfg.max_rounds())
        .map_err(|e| fail(FailureKind::ExecError, level, format!("interpreted: {e}")))?;

    if planned.memory().dram != *reference {
        return Err(fail(
            FailureKind::DramMismatch,
            level,
            diff_dram(reference, &planned.memory().dram, "planned vs reference"),
        ));
    }
    if ready.memory().dram != *reference {
        return Err(fail(
            FailureKind::DramMismatch,
            level,
            diff_dram(reference, &ready.memory().dram, "interpreted vs reference"),
        ));
    }
    if planned.sink_tokens() != ready.sink_tokens() {
        return Err(fail(
            FailureKind::SinkMismatch,
            level,
            format!(
                "planned vs interpreted sink streams ({} vs {} tokens)",
                planned.sink_tokens().len(),
                ready.sink_tokens().len()
            ),
        ));
    }

    // The chunked-feed streaming lane. First tie the streaming machinery
    // into the batch matrix: a session fed the single argset must leave
    // the reference image and the planned executor's sink stream.
    let stream_err = |e: MachineError| fail(FailureKind::ExecError, level, format!("stream: {e}"));
    let (solo_dram, solo_sink) = stream_run(
        &program,
        StreamExecutor::Planned,
        std::slice::from_ref(&args),
        1,
        cfg.max_rounds(),
    )
    .map_err(stream_err)?;
    if solo_dram != *reference {
        return Err(fail(
            FailureKind::DramMismatch,
            level,
            diff_dram(reference, &solo_dram, "streamed vs reference"),
        ));
    }
    if solo_sink != planned.sink_tokens() {
        return Err(fail(
            FailureKind::SinkMismatch,
            level,
            format!(
                "streamed vs planned sink streams ({} vs {} tokens)",
                solo_sink.len(),
                planned.sink_tokens().len()
            ),
        ));
    }

    // Then the invariant itself: the argset replicated `copies` times and
    // fed at a seed-derived chunk boundary must be bit-identical to one
    // session fed everything up front, on both executors. (Replication
    // rather than fresh argsets keeps the lane cheap; distinct inputs per
    // chunk are covered by the dedicated property suite.)
    let copies = 2 + (case.seed % 2) as usize;
    let chunk = 1 + (case.seed >> 8) as usize % (copies - 1);
    let sets: Vec<Vec<Word>> = vec![args.clone(); copies];
    for executor in [StreamExecutor::Planned, StreamExecutor::Interpreted] {
        let (oneshot_dram, oneshot_sink) =
            stream_run(&program, executor, &sets, copies, cfg.max_rounds()).map_err(stream_err)?;
        let (chunked_dram, chunked_sink) =
            stream_run(&program, executor, &sets, chunk, cfg.max_rounds()).map_err(stream_err)?;
        if chunked_dram != oneshot_dram {
            return Err(fail(
                FailureKind::DramMismatch,
                level,
                diff_dram(
                    &oneshot_dram,
                    &chunked_dram,
                    &format!("chunked vs one-shot stream ({executor:?}, {copies} argsets, chunk {chunk})"),
                ),
            ));
        }
        if chunked_sink != oneshot_sink {
            return Err(fail(
                FailureKind::SinkMismatch,
                level,
                format!(
                    "chunked vs one-shot stream sinks ({executor:?}: {} vs {} tokens)",
                    chunked_sink.len(),
                    oneshot_sink.len()
                ),
            ));
        }
    }

    Ok(LevelRun {
        sink_planned: planned.sink_tokens(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate_case, GenConfig};

    #[test]
    fn a_known_good_program_passes() {
        let case = Case {
            seed: 1,
            ast: Default::default(),
            source: "dram<u32> d0;\ndram<u32> d1;\ndram<u8> d2;\n\
                     void main(u32 p0, u32 p1) {\n\
                       foreach (8) { u32 i => d1[i] = (i * p0) + p1; };\n\
                     }"
            .into(),
            args: vec![3, 9],
            dram_inits: vec![Vec::new(), Vec::new(), Vec::new()],
        };
        run_case(&case, &OracleConfig::default()).unwrap();
    }

    #[test]
    fn an_ill_formed_program_is_a_compile_error_not_a_panic() {
        let case = Case {
            seed: 2,
            ast: Default::default(),
            source: "void main() { undeclared[0] = 1; }".into(),
            args: vec![],
            dram_inits: vec![],
        };
        let f = run_case(&case, &OracleConfig::default()).unwrap_err();
        assert_eq!(f.kind, FailureKind::CompileError);
    }

    #[test]
    fn injection_is_caught_on_a_seeded_case() {
        // Find a generated case that is green normally and diverges with
        // the miscompile injected; with arithmetic flowing into stores in
        // nearly every program, the first seeds suffice.
        let cfg = GenConfig::default();
        let clean = OracleConfig::default();
        let bad = OracleConfig {
            inject: Some(Injection::FlipLastAddToSub),
            ..OracleConfig::default()
        };
        let mut caught = false;
        for i in 0..24u64 {
            let case = generate_case(crate::rng::case_seed(0xACCE_D175, i), &cfg);
            if run_case(&case, &clean).is_err() {
                continue;
            }
            if run_case(&case, &bad).is_err() {
                caught = true;
                break;
            }
        }
        assert!(caught, "no seed in the probe window tripped the injection");
    }
}
