//! Simulation statistics and derived metrics.

/// Timing results of one simulated run.
#[derive(Clone, Debug, Default)]
pub struct SimStats {
    /// Total machine cycles.
    pub cycles: u64,
    /// Clock in GHz (copied from the config for derived metrics).
    pub freq_ghz: f64,
    /// DRAM bytes read during the run.
    pub dram_read_bytes: u64,
    /// DRAM bytes written during the run.
    pub dram_written_bytes: u64,
    /// Peak deliverable DRAM bytes/cycle.
    pub peak_dram_bytes_per_cycle: f64,
    /// Busy-cycle count per node (utilization analysis).
    pub busy_cycles: Vec<u64>,
    /// High watermark of contexts that fired in any single cycle — the
    /// peak instantaneous parallelism of the run. A **max-merged**
    /// watermark, not an additive counter.
    pub peak_busy_nodes: u64,
    /// Node-cycle slots the ready-set scheduler never had to attempt
    /// (a dense sweep would have stepped `cycles × nodes` slots; this is
    /// how many of those the event-driven scheduler skipped as idle).
    pub skipped_idle_steps: u64,
}

impl SimStats {
    pub(crate) fn new(nodes: usize) -> Self {
        SimStats {
            busy_cycles: vec![0; nodes],
            ..Default::default()
        }
    }

    /// Wall-clock seconds at the configured frequency.
    pub fn seconds(&self) -> f64 {
        self.cycles as f64 / (self.freq_ghz * 1e9)
    }

    /// Application throughput in GB/s for `app_bytes` of input+output data
    /// (the paper's normalized performance metric, §VI-A b).
    pub fn throughput_gbps(&self, app_bytes: u64) -> f64 {
        app_bytes as f64 / 1e9 / self.seconds()
    }

    /// Fraction of peak HBM2 bandwidth consumed (Table IV's HBM2 %).
    pub fn dram_utilization(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        let per_cycle =
            (self.dram_read_bytes + self.dram_written_bytes) as f64 / self.cycles as f64;
        (per_cycle / self.peak_dram_bytes_per_cycle).min(1.0)
    }

    /// Read/write split of DRAM utilization.
    pub fn dram_rw_utilization(&self) -> (f64, f64) {
        if self.cycles == 0 {
            return (0.0, 0.0);
        }
        let denom = self.peak_dram_bytes_per_cycle * self.cycles as f64;
        (
            self.dram_read_bytes as f64 / denom,
            self.dram_written_bytes as f64 / denom,
        )
    }

    /// Fraction of dense-sweep node-cycle slots the scheduler skipped as
    /// idle (0.0 = every context fired every cycle).
    pub fn scheduler_skip_ratio(&self) -> f64 {
        let total = self.cycles.saturating_mul(self.busy_cycles.len() as u64);
        if total == 0 {
            return 0.0;
        }
        self.skipped_idle_steps as f64 / total as f64
    }

    /// Folds another run's counters into this one — aggregation across a
    /// batch of simulated program instances. Cycle and traffic counters
    /// add (total simulated work, as if the runs executed back-to-back on
    /// one machine); per-node busy counters add element-wise, zero-extending
    /// if `other` simulated a larger graph. Watermark-style fields merge by
    /// **max**: `peak_busy_nodes` is a peak some run actually saw (summing
    /// would invent a parallelism level no cycle ever had), and the
    /// frequency / peak-DRAM machine constants keep the larger machine so a
    /// heterogeneous merge never under-reports capacity regardless of merge
    /// order.
    pub fn merge(&mut self, other: &SimStats) {
        self.cycles += other.cycles;
        self.dram_read_bytes += other.dram_read_bytes;
        self.dram_written_bytes += other.dram_written_bytes;
        self.skipped_idle_steps += other.skipped_idle_steps;
        self.peak_busy_nodes = self.peak_busy_nodes.max(other.peak_busy_nodes);
        self.freq_ghz = self.freq_ghz.max(other.freq_ghz);
        self.peak_dram_bytes_per_cycle = self
            .peak_dram_bytes_per_cycle
            .max(other.peak_dram_bytes_per_cycle);
        if self.busy_cycles.len() < other.busy_cycles.len() {
            self.busy_cycles.resize(other.busy_cycles.len(), 0);
        }
        for (mine, theirs) in self.busy_cycles.iter_mut().zip(&other.busy_cycles) {
            *mine += theirs;
        }
    }

    /// Mean node utilization (busy cycles / total cycles).
    pub fn mean_utilization(&self) -> f64 {
        if self.cycles == 0 || self.busy_cycles.is_empty() {
            return 0.0;
        }
        let sum: u64 = self.busy_cycles.iter().sum();
        sum as f64 / (self.cycles as f64 * self.busy_cycles.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let s = SimStats {
            cycles: 1_600_000,
            freq_ghz: 1.6,
            dram_read_bytes: 450_000_000,
            dram_written_bytes: 112_500_000,
            peak_dram_bytes_per_cycle: 562.5,
            busy_cycles: vec![800_000, 1_600_000],
            peak_busy_nodes: 2,
            skipped_idle_steps: 1_600_000,
        };
        assert!((s.seconds() - 1e-3).abs() < 1e-12);
        assert!((s.throughput_gbps(1_000_000_000) - 1000.0).abs() < 1e-6);
        let u = s.dram_utilization();
        assert!((u - 0.625).abs() < 1e-9);
        let (r, w) = s.dram_rw_utilization();
        assert!((r - 0.5).abs() < 1e-9);
        assert!((w - 0.125).abs() < 1e-9);
        assert!((s.mean_utilization() - 0.75).abs() < 1e-9);
        assert!((s.scheduler_skip_ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn merge_aggregates_a_batch() {
        let mut total = SimStats::default();
        let a = SimStats {
            cycles: 100,
            freq_ghz: 1.6,
            dram_read_bytes: 640,
            dram_written_bytes: 64,
            peak_dram_bytes_per_cycle: 562.5,
            busy_cycles: vec![10, 20],
            peak_busy_nodes: 2,
            skipped_idle_steps: 5,
        };
        let b = SimStats {
            cycles: 50,
            busy_cycles: vec![1, 2, 3],
            peak_busy_nodes: 3,
            skipped_idle_steps: 7,
            ..a.clone()
        };
        total.merge(&a);
        total.merge(&b);
        assert_eq!(total.cycles, 150);
        assert_eq!(total.dram_read_bytes, 1280);
        assert_eq!(total.dram_written_bytes, 128);
        assert_eq!(total.skipped_idle_steps, 12);
        assert_eq!(total.busy_cycles, vec![11, 22, 3]);
        // Watermarks merge by max, not sum.
        assert_eq!(total.peak_busy_nodes, 3);
        // Machine constants are carried, not summed.
        assert!((total.freq_ghz - 1.6).abs() < 1e-12);
        assert!((total.peak_dram_bytes_per_cycle - 562.5).abs() < 1e-12);
        // Derived metrics still make sense on the aggregate.
        assert!(total.seconds() > 0.0);
        assert!(total.dram_utilization() > 0.0);
    }

    #[test]
    fn merge_watermarks_survive_in_either_direction() {
        // The bug this pins: a watermark merged *into* a report that
        // already has a value must not be dropped or summed.
        let big = SimStats {
            peak_busy_nodes: 9,
            freq_ghz: 1.6,
            peak_dram_bytes_per_cycle: 562.5,
            ..SimStats::default()
        };
        let small = SimStats {
            peak_busy_nodes: 4,
            freq_ghz: 1.0,
            peak_dram_bytes_per_cycle: 100.0,
            ..SimStats::default()
        };
        let mut ab = big.clone();
        ab.merge(&small);
        let mut ba = small.clone();
        ba.merge(&big);
        for m in [&ab, &ba] {
            assert_eq!(m.peak_busy_nodes, 9);
            assert!((m.freq_ghz - 1.6).abs() < 1e-12);
            assert!((m.peak_dram_bytes_per_cycle - 562.5).abs() < 1e-12);
        }
    }
}
