//! # revet-sim — cycle-level vRDA simulation
//!
//! Times compiled Revet programs on the Table II machine: 200 CUs / 200 MUs
//! / 80 AGs at 1.6 GHz with HBM2-class DRAM (~900 GB/s, 32 B bursts).
//!
//! The simulator re-executes the *same* dataflow graph as the untimed
//! functional reference, under per-cycle constraints:
//!
//! - every link moves at most its class bandwidth per cycle (vector: 16 data
//!   elements + 1 barrier; scalar: 1 + 1);
//! - channels have finite buffers (Table II input-buffer depths), so
//!   downstream congestion back-pressures producers;
//! - DRAM traffic drains a token bucket refilled at the HBM2 byte rate, with
//!   an additional issue cap per AG context per cycle (the burst/activation
//!   bound that limits random-access workloads like hash-table);
//! - each context (= physical unit) fires at most once per cycle.
//!
//! The cycle loop is **event-driven**: it shares the untimed executor's
//! channel-endpoint [`revet_machine::TopologyIndex`] and steps only the
//! contexts woken by token arrivals, back-pressure releases, allocator
//! pushes, or their own leftover work — not every context every cycle.
//! [`SimStats::skipped_idle_steps`] counts the dense-sweep node-cycle slots
//! this avoids; DRAM-gated AG contexts simply stay queued until the token
//! bucket refills.
//!
//! Identical DRAM results as the untimed run are asserted by the test suite;
//! only *when* things happen differs. Ideal-model toggles ([`IdealModels`])
//! reproduce Table V's D / SN / SND columns, and [`AurochsMode`] models the
//! §VI-B c comparison (no thread-local SRAM: live values ride the pipeline;
//! value duplication on fork; timeout-based loop synchronization overhead).

#![warn(missing_docs)]

mod aurochs;
mod config;
mod stats;

pub use aurochs::{aurochs_slowdown, AurochsMode};
pub use config::{IdealModels, RdaConfig};
pub use stats::SimStats;

use revet_core::CompiledProgram;
use revet_machine::{IoEvents, LinkClass, MachineError, NodeId, PortBudget, UnitClass};
use revet_obs::{ObsSink, StallClass, WakeCause};
use revet_sltf::Word;
use std::collections::VecDeque;

/// The cycle-level simulator.
#[derive(Debug)]
pub struct Simulator {
    /// Machine parameters.
    pub config: RdaConfig,
    /// Which subsystems are idealized (Table V ideal columns).
    pub ideal: IdealModels,
}

impl Default for Simulator {
    fn default() -> Self {
        Simulator {
            config: RdaConfig::default(),
            ideal: IdealModels::default(),
        }
    }
}

impl Simulator {
    /// A simulator with the given configuration.
    pub fn new(config: RdaConfig, ideal: IdealModels) -> Self {
        Simulator { config, ideal }
    }

    /// Runs `program` with `main` arguments to completion; returns timing
    /// statistics. DRAM inputs must already be loaded.
    ///
    /// # Errors
    ///
    /// Propagates machine protocol errors; reports livelock if the cycle cap
    /// is hit.
    pub fn run(
        &self,
        program: &mut CompiledProgram,
        args: &[Word],
        max_cycles: u64,
    ) -> Result<SimStats, MachineError> {
        self.run_obs(program, args, max_cycles, ObsSink::noop())
    }

    /// [`Simulator::run`] with an observability sink: context fires, wake
    /// causes, per-cycle DRAM traffic, and stall attribution — including
    /// the DRAM-gated deferral of address generators, which only the timed
    /// simulator can observe — are recorded into `obs`.
    ///
    /// # Errors
    ///
    /// Same as [`Simulator::run`].
    pub fn run_obs(
        &self,
        program: &mut CompiledProgram,
        args: &[Word],
        max_cycles: u64,
        obs: &ObsSink,
    ) -> Result<SimStats, MachineError> {
        let cfg = &self.config;
        // Apply buffer capacities (ideal network = unbounded).
        let chan_count = program.graph.chan_count();
        if !self.ideal.network {
            for c in 0..chan_count {
                let chan = program.graph.chan_mut(revet_machine::ChanId(c as u32));
                let cap = if chan.canonicalize {
                    match chan.class {
                        LinkClass::Vector => cfg.vector_buffer_tokens,
                        LinkClass::Scalar => cfg.scalar_buffer_tokens,
                    }
                } else {
                    // Backedges get the deadlock-avoidance depth.
                    cfg.deadlock_buffer_tokens
                };
                chan.capacity = Some(cap);
            }
        }
        // Inject the argument thread.
        {
            let chan = program.graph.chan_mut(program.entry);
            chan.capacity = None;
            chan.push(revet_sltf::Tok::Data(args.to_vec()));
            chan.push(revet_sltf::Tok::Barrier(revet_sltf::BarrierLevel::L1));
        }
        let n = program.graph.node_count();
        // The shared channel-endpoint index drives ready-set wake-ups, the
        // same as the untimed executor's (built by the compiler; cloning
        // keeps the graph borrowable while stepping).
        let topo = program.graph.finalize_topology().clone();
        let nodes: Vec<(NodeId, UnitClass, Vec<LinkClass>, Vec<LinkClass>)> = (0..n)
            .map(|i| {
                let slot = &program.graph.nodes()[i];
                let in_cls: Vec<LinkClass> = slot
                    .ins
                    .iter()
                    .map(|c| program.graph.chans()[c.0 as usize].class)
                    .collect();
                let out_cls: Vec<LinkClass> = slot
                    .outs
                    .iter()
                    .map(|c| program.graph.chans()[c.0 as usize].class)
                    .collect();
                (NodeId(i as u32), slot.unit, in_cls, out_cls)
            })
            .collect();

        let mut stats = SimStats::new(n);
        let bytes_per_cycle = cfg.dram_bytes_per_cycle();
        let mut dram_bucket: f64 = bytes_per_cycle;
        let base_read = program.graph.mem.dram_read_bytes;
        let base_written = program.graph.mem.dram_written_bytes;

        // Ready set: `current` holds the contexts that may fire this cycle,
        // `next` those woken for the following cycle. A context fires at
        // most once per cycle (`last_stepped` stamps), matching the
        // one-fire-per-context-per-cycle hardware rule; an event for a
        // context that already fired defers it to the next cycle.
        let mut current: VecDeque<u32> = (0..n as u32).collect();
        let mut next: VecDeque<u32> = VecDeque::new();
        let mut queued = vec![true; n];
        let mut last_stepped = vec![0u64; n];
        let max_in = nodes.iter().map(|x| x.2.len()).max().unwrap_or(0);
        let max_out = nodes.iter().map(|x| x.3.len()).max().unwrap_or(0);
        let mut ib = vec![PortBudget::UNLIMITED; max_in];
        let mut ob = vec![PortBudget::UNLIMITED; max_out];
        let mut events = IoEvents::default();
        let mut cycles: u64 = 0;

        while !current.is_empty() {
            if cycles >= max_cycles {
                return Err(MachineError::new(format!(
                    "cycle cap {max_cycles} reached (livelock or undersized cap)"
                )));
            }
            cycles += 1;
            if !self.ideal.dram {
                dram_bucket =
                    (dram_bucket + bytes_per_cycle).min(cfg.dram_burst_bytes as f64 * 64.0);
            }
            // DRAM gating: AG contexts stall this whole cycle when the
            // bucket is dry (they stay queued and retry once it refills).
            let dram_gated = !self.ideal.dram && dram_bucket <= 0.0;
            obs.round(current.len() as u64);
            let read_before = program.graph.mem.dram_read_bytes;
            let written_before = program.graph.mem.dram_written_bytes;
            let mut stepped_this_cycle: u64 = 0;
            while let Some(i) = current.pop_front() {
                let idx = i as usize;
                queued[idx] = false;
                let (id, unit, in_cls, out_cls) = &nodes[idx];
                if *unit == UnitClass::AddressGen && dram_gated {
                    // Not fired: keep it scheduled for the refilled cycle.
                    // This deferral is the one stall class invisible to the
                    // untimed executors.
                    obs.stall(i, StallClass::DramGated);
                    queued[idx] = true;
                    next.push_back(i);
                    continue;
                }
                let budget_for = |cls: &LinkClass| -> PortBudget {
                    if self.ideal.network {
                        return PortBudget::UNLIMITED;
                    }
                    PortBudget {
                        data: cls.width(),
                        barrier: 1,
                    }
                };
                for (b, cls) in ib.iter_mut().zip(in_cls.iter()) {
                    *b = budget_for(cls);
                }
                for (b, cls) in ob.iter_mut().zip(out_cls.iter()) {
                    *b = budget_for(cls);
                }
                let n_in = in_cls.len();
                let n_out = out_cls.len();
                if self.ideal.sram && *unit == UnitClass::Memory {
                    ib[..n_in]
                        .iter_mut()
                        .for_each(|b| *b = PortBudget::UNLIMITED);
                    ob[..n_out]
                        .iter_mut()
                        .for_each(|b| *b = PortBudget::UNLIMITED);
                }
                // AG issue cap models burst/activation limits.
                if *unit == UnitClass::AddressGen && !self.ideal.dram {
                    for b in ib[..n_in].iter_mut() {
                        b.data = b.data.min(cfg.ag_issues_per_cycle);
                    }
                }
                last_stepped[idx] = cycles;
                stepped_this_cycle += 1;
                let allocs_before = program.graph.mem.alloc_push_ops();
                let progressed = program.graph.step_node_traced(
                    *id,
                    &mut ib[..n_in],
                    &mut ob[..n_out],
                    &mut events,
                )?;
                obs.node_dispatch(i, progressed);
                if !progressed && obs.is_enabled() {
                    obs.stall(i, program.graph.classify_stall(*id));
                }
                let wake = |w: NodeId,
                            cause: WakeCause,
                            current: &mut VecDeque<u32>,
                            next: &mut VecDeque<u32>,
                            queued: &mut Vec<bool>| {
                    let wi = w.0 as usize;
                    if queued[wi] {
                        return;
                    }
                    queued[wi] = true;
                    obs.wake(w.0, cause);
                    if last_stepped[wi] == cycles {
                        // Already fired this cycle: one fire per cycle.
                        next.push_back(w.0);
                    } else {
                        current.push_back(w.0);
                    }
                };
                if progressed {
                    stats.busy_cycles[idx] += 1;
                    // Renewed budgets may allow more movement next cycle.
                    wake(
                        *id,
                        WakeCause::TokenArrival,
                        &mut current,
                        &mut next,
                        &mut queued,
                    );
                }
                for &c in &events.pushed {
                    obs.channel_push(c.0);
                    for &w in topo.consumers(c) {
                        wake(
                            w,
                            WakeCause::TokenArrival,
                            &mut current,
                            &mut next,
                            &mut queued,
                        );
                    }
                }
                for &c in &events.freed {
                    for &w in topo.producers(c) {
                        wake(
                            w,
                            WakeCause::CapacityRelease,
                            &mut current,
                            &mut next,
                            &mut queued,
                        );
                    }
                }
                if program.graph.mem.alloc_push_ops() != allocs_before {
                    for &w in topo.alloc_waiters() {
                        wake(
                            w,
                            WakeCause::AllocatorPush,
                            &mut current,
                            &mut next,
                            &mut queued,
                        );
                    }
                }
            }
            stats.skipped_idle_steps += n as u64 - stepped_this_cycle;
            stats.peak_busy_nodes = stats.peak_busy_nodes.max(stepped_this_cycle);
            let read_delta = program.graph.mem.dram_read_bytes - read_before;
            let written_delta = program.graph.mem.dram_written_bytes - written_before;
            if read_delta != 0 || written_delta != 0 {
                obs.dram_access(read_delta, written_delta);
            }
            let delta = (read_delta + written_delta) as f64;
            if !self.ideal.dram {
                dram_bucket -= delta;
            }
            std::mem::swap(&mut current, &mut next);
        }
        // Ready set empty: nothing can ever fire again. Verify nothing is
        // stuck (a silent partial result would be worse than an error).
        let stuck = program.graph.stuck_channels();
        if !stuck.is_empty() {
            return Err(MachineError::new(format!(
                "timed deadlock after {cycles} cycles: {}",
                stuck.join("; ")
            )));
        }
        stats.cycles = cycles;
        stats.freq_ghz = cfg.clock_ghz;
        stats.dram_read_bytes = program.graph.mem.dram_read_bytes - base_read;
        stats.dram_written_bytes = program.graph.mem.dram_written_bytes - base_written;
        stats.peak_dram_bytes_per_cycle = bytes_per_cycle;
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use revet_core::{Compiler, PassOptions};

    fn squares_program() -> CompiledProgram {
        let src = r#"
            dram<u32> output;
            void main(u32 n) {
                foreach (n) { u32 i =>
                    output[i] = i * i;
                };
            }
        "#;
        Compiler::new(PassOptions {
            dram_bytes: 1 << 16,
            ..PassOptions::default()
        })
        .compile_source(src)
        .unwrap()
    }

    #[test]
    fn timed_matches_untimed_results() {
        let mut p = squares_program();
        let sim = Simulator::default();
        let stats = sim.run(&mut p, &[Word(32)], 1_000_000).unwrap();
        assert!(stats.cycles > 0);
        for i in 0..32usize {
            let got = u32::from_le_bytes(p.graph.mem.dram[4 * i..4 * i + 4].try_into().unwrap());
            assert_eq!(got, (i * i) as u32);
        }
    }

    #[test]
    fn scheduler_skips_idle_work_with_identical_dram() {
        // The ready set must do strictly less work than a dense sweep would
        // (cycles × nodes slots), while the DRAM image stays bit-identical
        // to the untimed reference run.
        let mut timed = squares_program();
        let stats = Simulator::default()
            .run(&mut timed, &[Word(32)], 1_000_000)
            .unwrap();
        assert!(
            stats.skipped_idle_steps > 0,
            "scheduler never skipped an idle context"
        );
        assert!(stats.scheduler_skip_ratio() > 0.0);
        let mut untimed = squares_program();
        untimed.run_untimed(&[Word(32)], 1_000_000).unwrap();
        assert_eq!(
            timed.graph.mem.dram, untimed.graph.mem.dram,
            "timed and untimed DRAM results diverged"
        );
    }

    #[test]
    fn ideal_dram_is_not_slower() {
        let sim = Simulator::default();
        let mut p1 = squares_program();
        let real = sim.run(&mut p1, &[Word(64)], 1_000_000).unwrap();
        let ideal_sim = Simulator::new(RdaConfig::default(), IdealModels::dram_only());
        let mut p2 = squares_program();
        let ideal = ideal_sim.run(&mut p2, &[Word(64)], 1_000_000).unwrap();
        assert!(
            ideal.cycles <= real.cycles,
            "ideal DRAM {} > real {}",
            ideal.cycles,
            real.cycles
        );
    }

    #[test]
    fn stats_throughput() {
        let mut p = squares_program();
        let sim = Simulator::default();
        let stats = sim.run(&mut p, &[Word(16)], 1_000_000).unwrap();
        let gbps = stats.throughput_gbps(16 * 4);
        assert!(gbps > 0.0);
        assert!(stats.dram_utilization() >= 0.0 && stats.dram_utilization() <= 1.0);
    }

    #[test]
    fn obs_sink_sees_the_timed_run() {
        let obs = ObsSink::with_trace_capacity(1 << 16);
        let mut p = squares_program();
        let stats = Simulator::default()
            .run_obs(&mut p, &[Word(32)], 1_000_000, &obs)
            .unwrap();
        // Every context fire is a dispatch; productive fires equal the sum
        // of per-node busy cycles.
        let busy: u64 = stats.busy_cycles.iter().sum();
        assert_eq!(obs.counters.productive.get(), busy);
        assert!(obs.counters.dispatches.get() >= busy);
        assert_eq!(obs.counters.rounds.get(), stats.cycles);
        // The watermark is a real per-cycle peak: positive, bounded by n.
        assert!(stats.peak_busy_nodes > 0);
        assert!(stats.peak_busy_nodes <= stats.busy_cycles.len() as u64);
        // The simulator's DRAM traffic lands in the obs counters too.
        assert_eq!(
            obs.counters.dram_read_bytes.get() + obs.counters.dram_written_bytes.get(),
            stats.dram_read_bytes + stats.dram_written_bytes
        );
    }

    #[test]
    fn while_loops_complete_under_timing() {
        let src = r#"
            dram<u32> input;
            dram<u32> output;
            void main(u32 n) {
                foreach (n) { u32 i =>
                    u32 x = input[i];
                    u32 s = 0;
                    while (x != 0) {
                        s = s + x;
                        x = x - 1;
                    };
                    output[i] = s;
                };
            }
        "#;
        let mut p = Compiler::new(PassOptions {
            dram_bytes: 1 << 16,
            ..PassOptions::default()
        })
        .compile_source(src)
        .unwrap();
        for i in 0..8u32 {
            let b = (i + 1).to_le_bytes();
            p.graph.mem.dram[4 * i as usize..4 * i as usize + 4].copy_from_slice(&b);
        }
        let sim = Simulator::default();
        sim.run(&mut p, &[Word(8)], 10_000_000).unwrap();
        let half = (1 << 16) / 2;
        for i in 0..8u32 {
            let a = half + 4 * i as usize;
            let got = u32::from_le_bytes(p.graph.mem.dram[a..a + 4].try_into().unwrap());
            let n = i + 1;
            assert_eq!(got, n * (n + 1) / 2, "triangular({n})");
        }
    }
}
