//! The Aurochs execution model (§VI-B c comparison).
//!
//! Aurochs [41] pioneered dataflow threads but lacked three things Revet
//! adds, each modelled here as a cost multiplier against the Revet run:
//!
//! 1. **No thread-local SRAM**: live variables that Revet parks in
//!    scratchpads (iterator state, buffered values) must travel through the
//!    pipeline and be duplicated whenever threads fork — up to ~10 live
//!    values in the paper's tree traversal.
//! 2. **No scalar network / no hierarchy**: parent values are copied into
//!    every child thread and recirculate on vector links instead of being
//!    broadcast once.
//! 3. **Timeout-based loop synchronization**: the loop head must observe
//!    `timeout` idle cycles before a tensor is considered drained, so every
//!    recirculating region pays a drain penalty per loop-completion instead
//!    of Revet's exact two-Ω1 detection.

use crate::SimStats;

/// Parameters of the modelled Aurochs machine.
#[derive(Clone, Debug)]
pub struct AurochsMode {
    /// Live values carried through the pipeline that Revet stores in SRAM
    /// (the paper cites "up to 10" for tree traversal).
    pub carried_live_values: usize,
    /// Vector lanes (shared with Revet's machine).
    pub lanes: usize,
    /// Idle-cycle timeout for loop-drain detection.
    pub loop_timeout_cycles: u64,
    /// Whether the workload's inner foreach loops can vectorize (Aurochs:
    /// no fine-grained parallel patterns, §VI-B c).
    pub foreach_vectorizes: bool,
    /// Comparisons folded per tree node by Revet's foreach (Fig. 11: 15
    /// comparisons per 16-ary node); Aurochs performs them serially.
    pub node_comparisons: usize,
}

impl Default for AurochsMode {
    fn default() -> Self {
        AurochsMode {
            carried_live_values: 10,
            lanes: 16,
            loop_timeout_cycles: 64,
            foreach_vectorizes: false,
            node_comparisons: 15,
        }
    }
}

/// Estimates how much slower an Aurochs execution of the same program is,
/// given the Revet timing and the loop structure (loop completions observed
/// and tuple width Revet actually circulated).
///
/// Returns the slowdown factor (≥ 1).
pub fn aurochs_slowdown(
    mode: &AurochsMode,
    revet: &SimStats,
    revet_tuple_width: usize,
    loop_completions: u64,
) -> f64 {
    // 1. Link-pressure factor: carrying `carried_live_values` instead of
    //    the compiled tuple width multiplies recirculation bandwidth.
    let width =
        (mode.carried_live_values.max(revet_tuple_width)) as f64 / revet_tuple_width.max(1) as f64;
    // 2. Serialized per-node comparisons instead of a vectorized foreach.
    let vector_loss = if mode.foreach_vectorizes {
        1.0
    } else {
        mode.node_comparisons as f64
            / (mode.node_comparisons as f64 / mode.lanes as f64).max(1.0)
            / mode.node_comparisons as f64
            * mode.node_comparisons as f64
    };
    let serial = if mode.foreach_vectorizes {
        1.0
    } else {
        // Revet folds `node_comparisons` into one vector op; Aurochs issues
        // them serially.
        mode.node_comparisons as f64
    };
    let _ = vector_loss;
    // 3. Timeout drain overhead amortized over the run (clamped: back-to-
    //    back tensors overlap their drains, so the penalty saturates).
    let timeout_cycles = loop_completions.saturating_mul(mode.loop_timeout_cycles) as f64;
    let timeout_factor = (1.0 + timeout_cycles / revet.cycles.max(1) as f64).min(2.0);
    width.max(1.0) * serial.max(1.0).min(mode.lanes as f64) * timeout_factor
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slowdown_is_monotone_and_bounded() {
        let revet = SimStats {
            cycles: 10_000,
            freq_ghz: 1.6,
            ..Default::default()
        };
        let base = aurochs_slowdown(&AurochsMode::default(), &revet, 3, 100);
        assert!(base > 1.0, "Aurochs must be slower");
        // More carried live values → slower.
        let heavier = aurochs_slowdown(
            &AurochsMode {
                carried_live_values: 20,
                ..AurochsMode::default()
            },
            &revet,
            3,
            100,
        );
        assert!(heavier > base);
        // Vectorizing foreach closes most of the gap.
        let vectorized = aurochs_slowdown(
            &AurochsMode {
                foreach_vectorizes: true,
                ..AurochsMode::default()
            },
            &revet,
            3,
            100,
        );
        assert!(vectorized < base);
    }

    #[test]
    fn paper_magnitude() {
        // With the paper's cited parameters (10 live values vs ~3, 15
        // serialized comparisons), the modelled gap lands in the ~11× band
        // the paper reports for kD-tree.
        let revet = SimStats {
            cycles: 100_000,
            freq_ghz: 1.6,
            ..Default::default()
        };
        let s = aurochs_slowdown(&AurochsMode::default(), &revet, 5, 200);
        assert!(s > 8.0 && s < 80.0, "got {s}");
    }
}
