//! Machine configuration (Table II) and ideal-model toggles.

/// Table II RDA parameters plus the area model used for the area-normalized
/// comparison (§VI-A a: ~189 mm² in a 15 nm educational process vs. the
/// V100's 815 mm²).
#[derive(Clone, Debug)]
pub struct RdaConfig {
    /// Compute units.
    pub compute_units: usize,
    /// Memory units.
    pub memory_units: usize,
    /// DRAM address generators.
    pub address_generators: usize,
    /// SIMD lanes per CU.
    pub lanes: usize,
    /// Pipeline stages per CU.
    pub stages: usize,
    /// Vector/scalar registers per lane per stage.
    pub regs_per_lane_stage: usize,
    /// Vector input-buffer depth (tokens ≈ words per link).
    pub vector_buffer_tokens: usize,
    /// Scalar input-buffer depth.
    pub scalar_buffer_tokens: usize,
    /// Backedge (deadlock-avoidance) buffer depth.
    pub deadlock_buffer_tokens: usize,
    /// Clock frequency in GHz.
    pub clock_ghz: f64,
    /// Peak DRAM bandwidth in GB/s (HBM2, §VI-A: ~900 GB/s).
    pub dram_gbps: f64,
    /// DRAM burst granularity in bytes.
    pub dram_burst_bytes: usize,
    /// Max DRAM issues per AG context per cycle (activation-rate model).
    pub ag_issues_per_cycle: usize,
    /// Die area in mm² (Capstan + Aurochs logic, §VI-A a).
    pub area_mm2: f64,
    /// Baseline GPU die area in mm² (V100).
    pub gpu_area_mm2: f64,
}

impl Default for RdaConfig {
    fn default() -> Self {
        RdaConfig {
            compute_units: 200,
            memory_units: 200,
            address_generators: 80,
            lanes: 16,
            stages: 6,
            regs_per_lane_stage: 6,
            vector_buffer_tokens: 256,
            scalar_buffer_tokens: 64,
            deadlock_buffer_tokens: 4096,
            clock_ghz: 1.6,
            dram_gbps: 900.0,
            dram_burst_bytes: 32,
            ag_issues_per_cycle: 4,
            area_mm2: 189.0,
            gpu_area_mm2: 815.0,
        }
    }
}

impl RdaConfig {
    /// DRAM bytes deliverable per machine cycle.
    pub fn dram_bytes_per_cycle(&self) -> f64 {
        self.dram_gbps / self.clock_ghz
    }

    /// Area ratio vs. the GPU baseline (the paper's 4.3×).
    pub fn area_ratio_vs_gpu(&self) -> f64 {
        self.gpu_area_mm2 / self.area_mm2
    }

    /// Renders the configuration as the Table II rows.
    pub fn table2(&self) -> String {
        format!(
            "Compute units ({})   {} lanes, {} stages, {} vec/scal regs/lane/stage\n\
             Memory units ({})    16 banks, 256 KiB total\n\
             Buffers (per unit)    4x{} word vec., 4x{} word scal.\n\
             Outputs (per unit)    4 vector, 4 scalar\n\
             Network               3x vector, 6x scalar, dynamic\n\
             DRAM                  HBM2, ~{} GB/s, {}B burst\n\
             Clock                 {} GHz; area {} mm^2 ({}x smaller than V100)",
            self.compute_units,
            self.lanes,
            self.stages,
            self.regs_per_lane_stage,
            self.memory_units,
            self.vector_buffer_tokens,
            self.scalar_buffer_tokens,
            self.dram_gbps,
            self.dram_burst_bytes,
            self.clock_ghz,
            self.area_mm2,
            format_args!("{:.1}", self.area_ratio_vs_gpu()),
        )
    }
}

/// Which subsystems are idealized (Table V's D, SN, SND columns).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IdealModels {
    /// Unbounded DRAM bandwidth (D).
    pub dram: bool,
    /// Perfect SRAM port rates (S).
    pub sram: bool,
    /// Unbounded link bandwidth and buffers (N).
    pub network: bool,
}

impl IdealModels {
    /// Table V column "D".
    pub fn dram_only() -> Self {
        IdealModels {
            dram: true,
            ..Default::default()
        }
    }

    /// Table V column "SN".
    pub fn sram_network() -> Self {
        IdealModels {
            sram: true,
            network: true,
            ..Default::default()
        }
    }

    /// Table V column "SND".
    pub fn all() -> Self {
        IdealModels {
            dram: true,
            sram: true,
            network: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table2() {
        let c = RdaConfig::default();
        assert_eq!(c.compute_units, 200);
        assert_eq!(c.memory_units, 200);
        assert_eq!(c.address_generators, 80);
        assert_eq!(c.lanes, 16);
        assert!((c.dram_bytes_per_cycle() - 562.5).abs() < 1e-9);
        assert!((c.area_ratio_vs_gpu() - 4.31).abs() < 0.02);
        assert!(c.table2().contains("HBM2"));
    }

    #[test]
    fn ideal_presets() {
        assert!(IdealModels::dram_only().dram);
        assert!(!IdealModels::dram_only().network);
        assert!(IdealModels::all().sram);
        let sn = IdealModels::sram_network();
        assert!(sn.sram && sn.network && !sn.dram);
    }
}
