//! # revet-core — the Revet compiler
//!
//! Lowers threaded imperative Revet programs to placed, executable vRDA
//! dataflow (the paper's primary contribution, §V, Fig. 8):
//!
//! 1. **Front end** (`revet-lang`): parse → typed MIR.
//! 2. **High-level lowering** (§V-A): views & iterators → SRAM + allocator
//!    queues + bulk transfers; foreach hierarchy elimination (Fig. 9); bulk
//!    accesses → `foreach` loops.
//! 3. **Optimization** (§V-B): allocation fusion, if-to-select conversion
//!    with predicated memory ops, allocator hoisting + replicate
//!    bufferization, sub-word packing.
//! 4. **CFG→dataflow** (§V-C): structured regions → streaming contexts over
//!    the §III-B primitives, replicate distribution/merge networks.
//! 5. **Dataflow optimization** (§V-D): vector/scalar link assignment,
//!    context splitting to the Table II machine shape, retiming/deadlock
//!    buffer insertion, and placement onto the unit grid.
//!
//! ```
//! use revet_core::{Compiler, PassOptions};
//!
//! let source = r#"
//!     dram<u32> output;
//!     void main(u32 n) {
//!         foreach (n) { u32 i =>
//!             output[i] = i * i;
//!         };
//!     }
//! "#;
//! let mut program = Compiler::new(PassOptions::default())
//!     .compile_source(source)
//!     .unwrap();
//! program.run_untimed(&[revet_sltf::Word(4)], 1_000_000).unwrap();
//! let d = &program.graph.mem.dram;
//! assert_eq!(u32::from_le_bytes(d[8..12].try_into().unwrap()), 4);
//! ```

#![warn(missing_docs)]

mod fingerprint;
mod instance;
mod lower;
pub mod passes;
mod place;
pub mod report;
mod session;
mod stream;

pub use fingerprint::ProgramId;
pub use instance::ProgramInstance;
pub use lower::{lower_to_dataflow, Category, CompiledProgram, ContextInfo, LinkInfo};
pub use place::{place, Placement};
pub use session::{Session, Stage};
pub use stream::{StreamExecutor, StreamInstance, StreamOutcome};

use revet_diag::{codes, Diagnostic, SourceMap};
use revet_mir::{DramLayout, Module};
use std::fmt;

/// A compiler error: one or more structured, span-carrying diagnostics.
///
/// Every stage failure — lexing, parsing (possibly several errors thanks
/// to recovery), semantic lowering, MIR verification, dataflow lowering —
/// arrives here as [`Diagnostic`]s rather than a flattened string, so
/// callers (the `revetc` CLI, the serve layer's `CompileFailed` frame)
/// can render snippets or ship codes + line/col over the wire.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CoreError {
    /// The diagnostics, in source order (at least one).
    pub diagnostics: Vec<Diagnostic>,
}

impl CoreError {
    /// A single span-less dataflow-lowering diagnostic (the internal
    /// passes' escape hatch; front-end errors arrive already spanned).
    pub(crate) fn new(m: impl Into<String>) -> Self {
        CoreError {
            diagnostics: vec![Diagnostic::error(codes::DATAFLOW_LOWER, m)],
        }
    }

    /// Wraps already-structured diagnostics.
    pub fn from_diagnostics(diagnostics: Vec<Diagnostic>) -> Self {
        assert!(!diagnostics.is_empty(), "an error needs ≥1 diagnostic");
        CoreError { diagnostics }
    }

    pub(crate) fn from_verify(e: revet_mir::VerifyError) -> Self {
        let d = Diagnostic::error(
            codes::MIR_VERIFY,
            format!("post-pass verification failed: {e}"),
        );
        CoreError {
            diagnostics: vec![match e.span {
                Some(s) => d.with_span(s),
                None => d,
            }],
        }
    }

    /// Renders every diagnostic as a rustc-style caret snippet against
    /// `source` (the text the failed compile was given).
    pub fn render(&self, source: &str, color: bool) -> String {
        let diags: revet_diag::Diagnostics = self.diagnostics.iter().cloned().collect();
        diags.render(&SourceMap::new(source), color)
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "compile error: ")?;
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

impl std::error::Error for CoreError {}

/// Which optimizations run (the Fig. 12 ablation knobs).
///
/// `PassOptions` is part of a compiled program's identity: together with
/// the source text it determines the output, so it is `Eq + Hash` and
/// feeds the content-addressed [`ProgramId`] fingerprint.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct PassOptions {
    /// §V-B c: inline loop-free `if`s as selects + predicated memory ops.
    pub if_to_select: bool,
    /// §V-B a: one allocator pop per region instead of per object.
    pub fuse_allocators: bool,
    /// §V-B b: hoist a replicate body's allocation before the distribution
    /// network (enables pointer-keyed load balancing, Fig. 14).
    pub hoist_allocators: bool,
    /// §V-B b: park unused live values in SRAM around replicates.
    pub bufferize_replicate: bool,
    /// §V-B d: pack i8/i16 loop-carried values into shared 32-bit slots.
    pub pack_subwords: bool,
    /// §V-A b: rewrite pragma-annotated foreach loops to forks (Fig. 9).
    pub eliminate_hierarchy: bool,
    /// Classical-optimization level for the MIR pass pipeline: `0` runs no
    /// classical optimizations, `1` adds constant folding, identity
    /// simplification, and DCE, `2` (the default) additionally runs CSE
    /// plus a second clean-up round. Values above 2 behave like 2.
    pub opt_level: u8,
    /// Thread-local buffer count override (`pragma(threads, N)` wins).
    pub threads: Option<u32>,
    /// DRAM image size for the compiled program's memory state.
    pub dram_bytes: usize,
}

impl Default for PassOptions {
    /// Everything on. The default `opt_level` is 2, overridable through
    /// the `REVET_OPT_LEVEL` environment variable (`0`/`1`/`2`) so the
    /// whole test suite can be exercised at a different level without
    /// code changes — CI runs it at both 0 and the default.
    fn default() -> Self {
        PassOptions {
            if_to_select: true,
            fuse_allocators: true,
            hoist_allocators: true,
            bufferize_replicate: true,
            pack_subwords: true,
            eliminate_hierarchy: true,
            opt_level: default_opt_level(),
            threads: None,
            dram_bytes: 1 << 20,
        }
    }
}

impl PassOptions {
    /// All optimizations off (the naïve lowering baseline): every paper
    /// toggle false and `opt_level` 0.
    pub fn none() -> Self {
        PassOptions {
            if_to_select: false,
            fuse_allocators: false,
            hoist_allocators: false,
            bufferize_replicate: false,
            pack_subwords: false,
            eliminate_hierarchy: false,
            opt_level: 0,
            threads: None,
            dram_bytes: 1 << 20,
        }
    }
}

/// The `REVET_OPT_LEVEL` override, clamped to `0..=2`; 2 when unset or
/// unparsable.
fn default_opt_level() -> u8 {
    std::env::var("REVET_OPT_LEVEL")
        .ok()
        .and_then(|s| s.trim().parse::<u8>().ok())
        .map_or(2, |v| v.min(2))
}

/// The compiler driver: source (or MIR) in, [`CompiledProgram`] out.
#[derive(Clone, Debug, Default)]
pub struct Compiler {
    opts: PassOptions,
}

impl Compiler {
    /// Creates a compiler with the given pass options.
    pub fn new(opts: PassOptions) -> Self {
        Compiler { opts }
    }

    /// Compiles Revet source text to an executable dataflow program. DRAM
    /// symbols are laid out back-to-back in equal slices of
    /// `opts.dram_bytes`.
    ///
    /// This is a one-shot shim over the staged [`Session`] API — use a
    /// `Session` directly to inspect per-stage artifacts (AST, MIR text)
    /// or the accumulated diagnostics.
    ///
    /// # Errors
    ///
    /// Returns parse, semantic, or lowering diagnostics (possibly several:
    /// parser recovery reports every syntax error in one run).
    pub fn compile_source(&self, src: &str) -> Result<CompiledProgram, CoreError> {
        Session::new(src, self.opts.clone()).to_dataflow()
    }

    /// Compiles a module with an explicit DRAM layout.
    ///
    /// # Errors
    ///
    /// Returns lowering errors.
    pub fn compile_module(
        &self,
        module: &mut Module,
        layout: &DramLayout,
        threads: Option<u32>,
    ) -> Result<CompiledProgram, CoreError> {
        let mut opts = self.opts.clone();
        opts.threads = threads.or(opts.threads);
        passes::build_pipeline(&opts, opts.threads).run(module);
        revet_mir::verify_module(module).map_err(CoreError::from_verify)?;
        lower_to_dataflow(module, layout, &opts, opts.dram_bytes)
    }

    /// The options in use.
    pub fn options(&self) -> &PassOptions {
        &self.opts
    }
}
