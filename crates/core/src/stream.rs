//! Streaming sessions: a long-lived resident instance fed incrementally.
//!
//! A [`StreamInstance`] wraps a [`ProgramInstance`] and keeps it **paused
//! at quiescence** between input chunks instead of running it to
//! completion once: [`StreamInstance::feed`] appends whole `main`
//! argument sets to the entry channel (the same Data + Ω1 protocol a
//! one-shot run injects), [`StreamInstance::poll`] resumes the executor
//! and returns the sink tokens produced since the previous poll, and
//! [`StreamInstance::finish`] runs the final drain and yields the memory
//! image plus the merged execution report.
//!
//! The load-bearing invariant — pinned by the property suite and the
//! fuzzer's chunked-feed lane — is that feeding an input in K chunks is
//! **bit-identical** (sink stream and final DRAM) to a one-shot run of
//! the concatenation. Kahn semantics make this structural: chunking only
//! changes the *schedule*, and blocking-read dataflow output is
//! schedule-independent. Execution reports are *not* identical (resume
//! seeding re-steps quiescent nodes, which counts as unproductive work);
//! they accumulate across polls via [`revet_machine::ExecReport::merge`].

use crate::instance::ProgramInstance;
use crate::lower::CompiledProgram;
use revet_machine::nodes::SinkHandle;
use revet_machine::{ExecReport, MachineError, MemoryState, ResumeState, RunStatus, TTok};
use revet_sltf::{BarrierLevel, Tok, Word};

/// Which executor a streaming session runs on. A session picks one at
/// open and sticks with it — the [`ResumeState`] worklist carries over
/// between polls of the *same* executor.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum StreamExecutor {
    /// The compiled [`revet_machine::ExecPlan`] fast path (the default).
    #[default]
    Planned,
    /// The interpreted event-driven reference executor.
    Interpreted,
}

/// Everything a finished stream leaves behind (see
/// [`StreamInstance::finish`]).
#[derive(Debug)]
pub struct StreamOutcome {
    /// Execution counters merged across every poll of the session.
    pub report: ExecReport,
    /// The final memory state (DRAM image, SRAM regions, allocators).
    pub memory: MemoryState,
    /// The complete sink stream (equal to the concatenation of every
    /// poll's delta).
    pub sink: Vec<TTok>,
}

/// A resident, incrementally-fed instantiation of a [`CompiledProgram`].
///
/// ```
/// use revet_core::{Compiler, PassOptions, StreamExecutor};
/// use revet_sltf::Word;
///
/// let program = Compiler::new(PassOptions::default())
///     .compile_source(
///         "dram<u32> output;
///          void main(u32 n) {
///              foreach (n) { u32 i => output[i] = i * i; };
///          }",
///     )
///     .unwrap();
/// let mut stream = program.stream(StreamExecutor::Planned);
/// stream.feed(&[vec![Word(3)]]).unwrap();
/// stream.poll(1_000_000).unwrap();
/// stream.feed(&[vec![Word(4)]]).unwrap(); // resident state persists
/// let out = stream.finish(1_000_000).unwrap();
/// assert_eq!(u32::from_le_bytes(out.memory.dram[8..12].try_into().unwrap()), 4);
/// ```
#[derive(Debug)]
pub struct StreamInstance {
    inner: ProgramInstance,
    resume: ResumeState,
    executor: StreamExecutor,
    /// Sink read position: `poll` returns tokens from here onward.
    cursor: usize,
    /// Counters merged across every poll so far.
    report: ExecReport,
    /// Argument sets accepted so far.
    fed: u64,
}

impl StreamInstance {
    /// Wraps a fresh instance for streaming on the chosen executor.
    pub fn new(inner: ProgramInstance, executor: StreamExecutor) -> Self {
        StreamInstance {
            inner,
            resume: ResumeState::new(),
            executor,
            cursor: 0,
            report: ExecReport::default(),
            fed: 0,
        }
    }

    /// Appends whole `main` argument sets to the entry channel — each one
    /// a data tuple closed by Ω1, exactly what a one-shot run injects.
    /// Returns how many argsets were accepted: a bounded entry channel
    /// without room for a full argset stops the feed early (the caller
    /// retries the remainder after a [`StreamInstance::poll`] drains it).
    ///
    /// # Errors
    ///
    /// Currently infallible for compiled programs (the entry channel
    /// always exists); the `Result` reserves room for protocol errors.
    pub fn feed(&mut self, argsets: &[Vec<Word>]) -> Result<usize, MachineError> {
        let chan = self.inner.graph.chan_mut(self.inner.entry);
        let mut fed = 0;
        for args in argsets {
            // A full argset is two tokens; never push half of one.
            if chan.room() < 2 {
                break;
            }
            chan.push(Tok::Data(args.clone()));
            chan.push(Tok::Barrier(BarrierLevel::L1));
            fed += 1;
        }
        self.fed += fed as u64;
        Ok(fed)
    }

    /// Resumes execution until quiescence and returns the sink tokens
    /// produced by this poll, plus whether the graph drained cleanly
    /// ([`RunStatus::Finished`]) or holds tokens that need more input
    /// ([`RunStatus::Paused`]). Both statuses leave the session usable:
    /// `Finished` just means nothing is currently in flight.
    ///
    /// # Errors
    ///
    /// Node protocol errors and the round cap. Leftover tokens are not an
    /// error here — that is the `Paused` status.
    pub fn poll(&mut self, max_rounds: u64) -> Result<(Vec<TTok>, RunStatus), MachineError> {
        self.poll_obs(max_rounds, revet_obs::ObsSink::noop())
    }

    /// [`StreamInstance::poll`] with an observability sink: node labels
    /// are published, executor events recorded, and the session's peak
    /// resident footprint tracked in the `stream.resident_bytes` gauge.
    ///
    /// # Errors
    ///
    /// Same as [`StreamInstance::poll`].
    pub fn poll_obs(
        &mut self,
        max_rounds: u64,
        obs: &revet_obs::ObsSink,
    ) -> Result<(Vec<TTok>, RunStatus), MachineError> {
        self.inner.publish_labels(obs);
        let (report, status) = match self.executor {
            StreamExecutor::Planned => {
                let plan = std::sync::Arc::clone(&self.inner.plan);
                self.inner.graph.run_untimed_planned_resumable_obs(
                    &plan,
                    &mut self.resume,
                    max_rounds,
                    obs,
                )?
            }
            StreamExecutor::Interpreted => {
                self.inner
                    .graph
                    .run_untimed_resumable_obs(&mut self.resume, max_rounds, obs)?
            }
        };
        self.report.merge(&report);
        if obs.is_enabled() {
            obs.registry
                .gauge("stream.resident_bytes")
                .record_max(self.resident_bytes());
        }
        let delta = self.inner.sink.tokens_from(self.cursor);
        self.cursor += delta.len();
        Ok((delta, status))
    }

    /// Runs a final poll and closes the session. A clean drain yields the
    /// [`StreamOutcome`]; leftover stuck tokens (an argset cut short, a
    /// starved merge) are *now* an error, diagnosed with the same stuck-
    /// channel report a one-shot deadlock produces.
    ///
    /// # Errors
    ///
    /// Poll errors, plus the deadlock diagnosis when input is incomplete.
    pub fn finish(mut self, max_rounds: u64) -> Result<StreamOutcome, MachineError> {
        let (_, status) = self.poll(max_rounds)?;
        if status == RunStatus::Paused {
            // Re-run one-shot: at quiescence with stuck channels this
            // produces the labeled deadlock diagnosis.
            let res = match self.executor {
                StreamExecutor::Planned => {
                    let plan = std::sync::Arc::clone(&self.inner.plan);
                    self.inner.graph.run_untimed_planned(&plan, max_rounds)
                }
                StreamExecutor::Interpreted => self.inner.graph.run_untimed(max_rounds),
            };
            return Err(match res {
                Err(e) => e,
                Ok(_) => MachineError::new("stream closed with unconsumed input"),
            });
        }
        Ok(StreamOutcome {
            report: self.report,
            sink: self.inner.sink.tokens(),
            memory: self.inner.into_memory(),
        })
    }

    /// Approximate resident heap bytes of the session's mutable streaming
    /// state: queued channel tokens plus node-internal buffers (pending
    /// source input, collected sink output). The number that grows with
    /// buffered work — per-session memory accounting reads this.
    pub fn resident_bytes(&self) -> u64 {
        self.inner.graph.resident_bytes()
    }

    /// Counters merged across every poll so far.
    pub fn report(&self) -> &ExecReport {
        &self.report
    }

    /// Argument sets accepted by [`StreamInstance::feed`] so far.
    pub fn fed(&self) -> u64 {
        self.fed
    }

    /// The complete sink stream collected so far (every poll's delta,
    /// concatenated).
    pub fn sink_tokens(&self) -> Vec<TTok> {
        self.inner.sink.tokens()
    }

    /// Shared handle to the session's sink buffer.
    pub fn sink_handle(&self) -> SinkHandle {
        self.inner.sink.clone()
    }

    /// The session's memory state (DRAM image, SRAM regions, allocators).
    pub fn memory(&self) -> &MemoryState {
        &self.inner.graph.mem
    }
}

impl CompiledProgram {
    /// Opens a streaming session: a fresh [`ProgramInstance`] wrapped for
    /// incremental feeding (see [`StreamInstance`]).
    pub fn stream(&self, executor: StreamExecutor) -> StreamInstance {
        StreamInstance::new(self.instance(), executor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Compiler, PassOptions};

    const SQUARES: &str = r#"
        dram<u32> output;
        void main(u32 n) {
            foreach (n) { u32 i =>
                output[i] = i * i;
            };
        }
    "#;

    fn compile(opt_level: u8) -> CompiledProgram {
        let opts = PassOptions {
            opt_level,
            ..PassOptions::default()
        };
        Compiler::new(opts).compile_source(SQUARES).unwrap()
    }

    #[test]
    fn chunked_feed_matches_one_shot_for_both_executors() {
        let program = compile(2);
        let argsets: Vec<Vec<Word>> = (1..=4).map(|n| vec![Word(n)]).collect();

        // One-shot reference: ONE instance, every argset injected up
        // front, run once.
        let mut oneshot = program.stream(StreamExecutor::Planned);
        assert_eq!(oneshot.feed(&argsets).unwrap(), 4);
        let reference = oneshot.finish(1_000_000).unwrap();

        for executor in [StreamExecutor::Planned, StreamExecutor::Interpreted] {
            let mut stream = program.stream(executor);
            let mut collected = Vec::new();
            for args in &argsets {
                assert_eq!(stream.feed(std::slice::from_ref(args)).unwrap(), 1);
                let (delta, status) = stream.poll(1_000_000).unwrap();
                collected.extend(delta);
                assert_eq!(status, RunStatus::Finished);
            }
            assert_eq!(stream.fed(), 4);
            let out = stream.finish(1_000_000).unwrap();
            assert_eq!(out.sink, reference.sink, "{executor:?} sink stream");
            assert_eq!(collected, reference.sink, "{executor:?} poll deltas");
            assert_eq!(out.memory.dram, reference.memory.dram, "{executor:?} DRAM");
        }
    }

    #[test]
    fn merged_report_equals_sum_of_poll_reports() {
        // Regression: a finished stream's report must accumulate
        // steps/rounds across polls, not report only the last poll.
        let program = compile(2);
        let mut stream = program.stream(StreamExecutor::Planned);
        let mut sum = ExecReport::default();
        for n in 1..=3u32 {
            stream.feed(&[vec![Word(n)]]).unwrap();
            let before = *stream.report();
            stream.poll(1_000_000).unwrap();
            let mut delta = *stream.report();
            delta.rounds -= before.rounds;
            delta.steps -= before.steps;
            delta.productive_steps -= before.productive_steps;
            sum.merge(&delta);
            assert!(delta.steps > 0, "each poll does real work");
        }
        let merged = *stream.report();
        let out = stream.finish(1_000_000).unwrap();
        assert_eq!(merged.steps, sum.steps);
        assert_eq!(merged.rounds, sum.rounds);
        assert!(
            out.report.steps >= merged.steps,
            "finish folds its own final poll in"
        );
    }

    #[test]
    fn finish_diagnoses_stuck_input_as_deadlock() {
        // Compiled programs consume whole argsets, so a stuck session
        // needs an unbalanced graph: a zip whose second input never
        // arrives. Build the instance by hand around the entry channel.
        use revet_machine::nodes::{EwNode, SinkNode};
        use revet_machine::{Channel, ExecPlan, Graph};
        let mut g = Graph::new();
        let c0 = g.add_chan(Channel::new(1));
        let c1 = g.add_chan(Channel::new(1));
        let c2 = g.add_chan(Channel::new(2));
        g.add_node(
            "zip",
            Box::new(EwNode::passthrough(2)),
            vec![c0, c1],
            vec![c2],
        );
        let (sink_node, sink) = SinkNode::new();
        g.add_node("sink", Box::new(sink_node), vec![c2], vec![]);
        let plan = std::sync::Arc::new(ExecPlan::build(&g));
        let inner = ProgramInstance {
            graph: g,
            entry: c0,
            sink,
            plan,
        };
        let mut stream = StreamInstance::new(inner, StreamExecutor::Planned);
        stream.feed(&[vec![Word(7)]]).unwrap();
        let (_, status) = stream.poll(1_000_000).unwrap();
        assert_eq!(status, RunStatus::Paused, "starved zip pauses the stream");
        let err = stream.finish(1_000_000).unwrap_err();
        assert!(err.message.contains("deadlock"), "got: {err}");
    }

    #[test]
    fn resident_bytes_rises_with_fed_input_and_survives_pause() {
        let program = compile(0);
        let mut stream = program.stream(StreamExecutor::Interpreted);
        assert_eq!(stream.resident_bytes(), 0);
        stream.feed(&[vec![Word(8)]]).unwrap();
        assert!(stream.resident_bytes() > 0, "fed argset is resident");
        let obs = revet_obs::ObsSink::counters_only();
        stream.poll_obs(1_000_000, &obs).unwrap();
        let gauge = obs.registry.gauge("stream.resident_bytes").get();
        assert!(gauge > 0, "peak resident footprint recorded");
    }
}
