//! Content-addressed program identity.
//!
//! A [`ProgramId`] is a stable 128-bit fingerprint of everything that
//! determines a compile's output: the source text and the [`PassOptions`]
//! it was compiled with. Two requests with byte-identical source and
//! equal options always map to the same id, so a serving layer can key a
//! program cache on it (compile once, execute many) and clients can name
//! a compiled program across connections without shipping the source
//! again.
//!
//! The fingerprint is two independent FNV-1a 64-bit lanes over a
//! canonical byte encoding — deterministic across processes and
//! platforms (no `RandomState`), unlike `std`'s default hasher.

use crate::PassOptions;
use std::fmt;
use std::hash::{Hash, Hasher};

/// Stable 128-bit content fingerprint of a (source, [`PassOptions`]) pair.
///
/// Displayed (and parsed) as 32 lowercase hex characters.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProgramId(pub [u8; 16]);

impl ProgramId {
    /// Fingerprints `source` compiled under `opts`.
    pub fn of(source: &str, opts: &PassOptions) -> ProgramId {
        let mut lo = Fnv64::new(FNV_OFFSET_BASIS);
        let mut hi = Fnv64::new(FNV_OFFSET_BASIS ^ LANE_SPLIT);
        for lane in [&mut lo, &mut hi] {
            lane.write(source.as_bytes());
            // Length-prefix the source so ("ab", opts) can never collide
            // with ("a", opts') through the options encoding that follows.
            lane.write_u64(source.len() as u64);
            opts.hash(lane);
        }
        let mut bytes = [0u8; 16];
        bytes[..8].copy_from_slice(&lo.finish().to_le_bytes());
        bytes[8..].copy_from_slice(&hi.finish().to_le_bytes());
        ProgramId(bytes)
    }

    /// Parses the 32-hex-character form produced by `Display`.
    pub fn parse(s: &str) -> Option<ProgramId> {
        let s = s.trim();
        if s.len() != 32 {
            return None;
        }
        let mut bytes = [0u8; 16];
        for (i, chunk) in s.as_bytes().chunks(2).enumerate() {
            let hex = std::str::from_utf8(chunk).ok()?;
            bytes[i] = u8::from_str_radix(hex, 16).ok()?;
        }
        Some(ProgramId(bytes))
    }
}

impl fmt::Display for ProgramId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.0 {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for ProgramId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ProgramId({self})")
    }
}

const FNV_OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
/// Decorrelates the two lanes; any odd constant works.
const LANE_SPLIT: u64 = 0x9e37_79b9_7f4a_7c15;

/// FNV-1a, exposed as a [`Hasher`] so `#[derive(Hash)]` types (notably
/// [`PassOptions`]) feed it their canonical field encoding.
struct Fnv64 {
    state: u64,
}

impl Fnv64 {
    fn new(basis: u64) -> Self {
        Fnv64 { state: basis }
    }
}

impl Hasher for Fnv64 {
    fn finish(&self) -> u64 {
        self.state
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    // Fix the integer encodings to little-endian so the fingerprint does
    // not depend on the platform's native byte order.
    fn write_u8(&mut self, i: u8) {
        self.write(&[i]);
    }
    fn write_u32(&mut self, i: u32) {
        self.write(&i.to_le_bytes());
    }
    fn write_u64(&mut self, i: u64) {
        self.write(&i.to_le_bytes());
    }
    fn write_usize(&mut self, i: usize) {
        self.write(&(i as u64).to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_inputs_equal_ids() {
        let opts = PassOptions::default();
        let a = ProgramId::of("void main() {}", &opts);
        let b = ProgramId::of("void main() {}", &opts.clone());
        assert_eq!(a, b);
    }

    #[test]
    fn source_and_options_both_feed_the_id() {
        let opts = PassOptions::default();
        let base = ProgramId::of("void main() {}", &opts);
        assert_ne!(base, ProgramId::of("void main() { }", &opts));
        assert_ne!(
            base,
            ProgramId::of(
                "void main() {}",
                &PassOptions {
                    pack_subwords: false,
                    ..PassOptions::default()
                }
            )
        );
        assert_ne!(
            base,
            ProgramId::of(
                "void main() {}",
                &PassOptions {
                    threads: Some(8),
                    ..PassOptions::default()
                }
            )
        );
        assert_ne!(
            base,
            ProgramId::of(
                "void main() {}",
                &PassOptions {
                    dram_bytes: 1 << 16,
                    ..PassOptions::default()
                }
            )
        );
    }

    #[test]
    fn opt_level_feeds_the_id_and_is_stable() {
        // Two compiles of the same source at different opt levels produce
        // different programs, so they must get different cache keys — and
        // the id must not wobble across runs.
        let src = "dram<u32> output; void main(u32 n) {}";
        let at = |lvl: u8| {
            ProgramId::of(
                src,
                &PassOptions {
                    opt_level: lvl,
                    ..PassOptions::default()
                },
            )
        };
        assert_ne!(at(0), at(2));
        assert_ne!(at(1), at(2));
        assert_ne!(at(0), at(1));
        assert_eq!(at(2), at(2), "stable across evaluations");
    }

    #[test]
    fn display_parse_round_trips() {
        let id = ProgramId::of("dram<u32> x; void main(u32 n) {}", &PassOptions::default());
        let text = id.to_string();
        assert_eq!(text.len(), 32);
        assert_eq!(ProgramId::parse(&text), Some(id));
        assert_eq!(ProgramId::parse("zz"), None);
        assert_eq!(ProgramId::parse(""), None);
    }

    #[test]
    fn fingerprint_is_pinned() {
        // The id is part of the serving wire contract: a silent change to
        // the hash function (constants, lane order, PassOptions field
        // order) would orphan every cached program. Pin the literal value.
        // opt_level is pinned explicitly so the REVET_OPT_LEVEL environment
        // override cannot perturb this test.
        let id = ProgramId::of(
            "void main() {}",
            &PassOptions {
                opt_level: 2,
                ..PassOptions::default()
            },
        );
        assert_eq!(id.to_string(), "357b36452a19fec4766bc07d7f8ed3f7");
    }
}
