//! Resource reports in the shape of the paper's Table IV.

use crate::lower::{Category, CompiledProgram};
use crate::place;
use revet_machine::{LinkClass, UnitClass};

/// Per-category unit counts for one compiled program (Table IV row).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ResourceReport {
    /// Application/config label.
    pub name: String,
    /// Product of replicate ways.
    pub outer: u32,
    /// Vector lanes = 16 × vector-pipeline contexts at the innermost level.
    pub lanes: u32,
    /// Inner-pipeline CU/MU/AG.
    pub inner: (usize, usize, usize),
    /// Outer-machinery CU/MU/AG.
    pub outer_units: (usize, usize, usize),
    /// Replicate distribution/merge CU/MU.
    pub replicate: (usize, usize),
    /// Deadlock-avoidance buffer MUs.
    pub deadlock_mu: usize,
    /// Replicate bufferization MUs.
    pub buffer_mu: usize,
    /// Retiming MUs.
    pub retime_mu: usize,
    /// Total CU/MU/AG.
    pub total: (usize, usize, usize),
    /// Scalar/vector link counts (physical links = Σ arity).
    pub links: (usize, usize),
    /// Whether the program fits the Table II machine.
    pub fits: bool,
}

impl ResourceReport {
    /// Builds the report for a compiled program.
    pub fn for_program(name: &str, program: &CompiledProgram) -> Self {
        let mut r = ResourceReport {
            name: name.to_string(),
            outer: program.outer_parallelism,
            ..Default::default()
        };
        for c in &program.contexts {
            let slot = match c.category {
                Category::Inner => &mut r.inner,
                Category::Outer => &mut r.outer_units,
                Category::Replicate => {
                    match c.unit {
                        UnitClass::Compute => r.replicate.0 += 1,
                        UnitClass::Memory => r.replicate.1 += 1,
                        _ => {}
                    }
                    count(&mut r.total, c.unit);
                    continue;
                }
                Category::Buffer => {
                    r.buffer_mu += 1;
                    count(&mut r.total, c.unit);
                    continue;
                }
                Category::Retime => {
                    r.retime_mu += 1;
                    count(&mut r.total, c.unit);
                    continue;
                }
                Category::Deadlock => {
                    r.deadlock_mu += 1;
                    count(&mut r.total, c.unit);
                    continue;
                }
            };
            count(slot, c.unit);
            count(&mut r.total, c.unit);
        }
        for l in &program.links {
            match l.class {
                LinkClass::Scalar => r.links.0 += l.arity.max(1),
                LinkClass::Vector => r.links.1 += l.arity.max(1),
            }
        }
        // Lanes: 16 per inner vector pipeline per replicate way.
        r.lanes = 16 * r.outer.max(1);
        let placement = place(program);
        r.fits = placement.fits;
        r
    }

    /// A compact single-line summary.
    pub fn summary(&self) -> String {
        format!(
            "{:<12} outer={:<3} lanes={:<5} CU={:<4} MU={:<4} AG={:<3} (repl CU {} / buf {} / retime {} / deadlock {}) links s/v={}/{} fits={}",
            self.name,
            self.outer,
            self.lanes,
            self.total.0,
            self.total.1,
            self.total.2,
            self.replicate.0,
            self.buffer_mu,
            self.retime_mu,
            self.deadlock_mu,
            self.links.0,
            self.links.1,
            self.fits,
        )
    }
}

fn count(slot: &mut (usize, usize, usize), unit: UnitClass) {
    match unit {
        UnitClass::Compute => slot.0 += 1,
        UnitClass::Memory => slot.1 += 1,
        UnitClass::AddressGen => slot.2 += 1,
        UnitClass::Virtual => {}
    }
}
