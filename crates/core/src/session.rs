//! The staged compile driver.
//!
//! The paper's pipeline (§V, Fig. 8) is explicitly staged — parse → typed
//! MIR → high-level lowering / optimization → CFG→dataflow — and
//! [`Session`] exposes exactly those stages. Each stage method is
//! idempotent (it memoizes its artifact and re-running is free), runs its
//! predecessors on demand, and accumulates every finding in a
//! [`Diagnostics`] sink that survives the whole session:
//!
//! ```
//! use revet_core::{PassOptions, Session};
//!
//! let mut s = Session::new(
//!     "dram<u32> output;
//!      void main(u32 n) { foreach (n) { u32 i => output[i] = i * i; }; }",
//!     PassOptions::default(),
//! );
//! let ast = s.parse().unwrap();
//! assert_eq!(ast.funcs[0].name, "main");
//! let mir_text = s.mir_text().unwrap();         // after lower_mir()
//! assert!(mir_text.contains("func @main"));
//! let program = s.to_dataflow().unwrap();
//! assert!(program.context_count() > 0);
//! assert!(s.diagnostics().is_empty());
//! ```
//!
//! On failure the diagnostics stay on the session for rendering:
//!
//! ```
//! use revet_core::{PassOptions, Session};
//!
//! let mut s = Session::new("void main() {\n  u32 a = ;\n  b = +;\n}", PassOptions::default());
//! assert!(s.to_dataflow().is_err());
//! assert_eq!(s.diagnostics().error_count(), 2); // recovery found both
//! let text = s.render_diagnostics(false);
//! assert!(text.contains("-->"));
//! ```

use crate::lower::CompiledProgram;
use crate::{lower_to_dataflow, passes, CoreError, PassOptions};
use revet_diag::{Diagnostics, SourceMap};
use revet_lang::ast::Program;
use revet_mir::{DramLayout, Module, PassReport};

/// The pipeline stages a [`Session`] moves through, in order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Stage {
    /// Nothing run yet.
    Start,
    /// `parse()` succeeded: the AST is available.
    Parsed,
    /// `lower_mir()` succeeded: the typed MIR module is available.
    Lowered,
    /// `run_passes()` succeeded: the optimized, verified module is
    /// available.
    Optimized,
    /// A stage failed; the session's diagnostics say why.
    Failed,
}

/// A staged compile: source in, per-stage artifacts out, diagnostics
/// accumulated throughout. See the module-level docs for the flow.
#[derive(Clone, Debug)]
pub struct Session {
    source: String,
    opts: PassOptions,
    map: SourceMap,
    diags: Diagnostics,
    stage: Stage,
    ast: Option<Program>,
    mir: Option<Module>,
    optimized: bool,
    threads: Option<u32>,
    report: Option<PassReport>,
    capture: Option<String>,
    captured: Option<String>,
    timings: Vec<(&'static str, std::time::Duration)>,
}

impl Session {
    /// Starts a session over `source` with the given pass options.
    pub fn new(source: impl Into<String>, opts: PassOptions) -> Session {
        let source = source.into();
        Session {
            map: SourceMap::new(&source),
            source,
            opts,
            diags: Diagnostics::new(),
            stage: Stage::Start,
            ast: None,
            mir: None,
            optimized: false,
            threads: None,
            report: None,
            capture: None,
            captured: None,
            timings: Vec::new(),
        }
    }

    /// Names the source's origin (a file path, usually) in rendered
    /// diagnostics.
    pub fn with_source_name(mut self, name: impl Into<String>) -> Session {
        self.map = SourceMap::with_name(&self.source, name);
        self
    }

    /// Asks `run_passes()` to snapshot the MIR right after the named pass
    /// runs (see [`Session::captured_mir`]). Set before the pass stage; a
    /// name not in the pipeline simply captures nothing.
    pub fn capture_mir_after(mut self, pass: impl Into<String>) -> Session {
        self.capture = Some(pass.into());
        self
    }

    // ---- stages ----

    /// Stage 1: lex + parse (with recovery — every syntax error in the
    /// source is reported in one run).
    ///
    /// # Errors
    ///
    /// All lex/parse diagnostics, which also remain on
    /// [`Session::diagnostics`].
    pub fn parse(&mut self) -> Result<&Program, CoreError> {
        if self.stage == Stage::Failed {
            return Err(self.failure());
        }
        if self.ast.is_none() {
            let started = std::time::Instant::now();
            match revet_lang::parse_program(&self.source) {
                Ok(p) => {
                    self.ast = Some(p);
                    self.stage = self.stage.max(Stage::Parsed);
                    self.timings.push(("parse", started.elapsed()));
                }
                Err(diags) => return Err(self.fail(diags)),
            }
        }
        Ok(self.ast.as_ref().expect("just parsed"))
    }

    /// Stage 2: AST → typed MIR (symbol resolution, type checking, SSA
    /// conversion), verified.
    ///
    /// # Errors
    ///
    /// Parse diagnostics, or the first semantic diagnostic.
    pub fn lower_mir(&mut self) -> Result<&Module, CoreError> {
        self.parse()?;
        if self.mir.is_none() {
            let started = std::time::Instant::now();
            let ast = self.ast.as_ref().expect("parsed");
            match revet_lang::lower_program(ast) {
                Ok(lowered) => {
                    self.threads = self.opts.threads.or(lowered.thread_count_hint);
                    self.mir = Some(lowered.module);
                    self.stage = self.stage.max(Stage::Lowered);
                    self.timings.push(("lower_mir", started.elapsed()));
                }
                Err(diags) => return Err(self.fail(diags)),
            }
        }
        Ok(self.mir.as_ref().expect("just lowered"))
    }

    /// Stage 3: high-level lowering + optimization (§V-A/B, gated by the
    /// session's [`PassOptions`]), then MIR re-verification.
    ///
    /// # Errors
    ///
    /// Earlier-stage diagnostics, or a post-pass verification failure
    /// (which indicates a compiler bug, code `E0301`).
    pub fn run_passes(&mut self) -> Result<&Module, CoreError> {
        self.lower_mir()?;
        if !self.optimized {
            let started = std::time::Instant::now();
            let pipeline = passes::build_pipeline(&self.opts, self.threads);
            let capture = self.capture.clone();
            let mut captured = None;
            let module = self.mir.as_mut().expect("lowered");
            let report = pipeline.run_observed(module, &mut |name, m| {
                if capture.as_deref() == Some(name) {
                    captured = Some(revet_mir::print_module(m));
                }
            });
            self.captured = captured;
            self.report = Some(report);
            if let Err(e) = revet_mir::verify_module(self.mir.as_ref().expect("lowered")) {
                let err = CoreError::from_verify(e);
                return Err(self.fail(err.diagnostics.into_iter().collect()));
            }
            self.optimized = true;
            self.stage = self.stage.max(Stage::Optimized);
            self.timings.push(("run_passes", started.elapsed()));
        }
        Ok(self.mir.as_ref().expect("optimized"))
    }

    /// Stage 4: CFG→dataflow conversion, link assignment, context
    /// splitting, and placement. DRAM symbols are laid out back-to-back in
    /// equal slices of `opts.dram_bytes`.
    ///
    /// Callable repeatedly: each call materializes a fresh
    /// [`CompiledProgram`] from the memoized optimized module.
    ///
    /// # Errors
    ///
    /// Earlier-stage diagnostics, or dataflow-lowering diagnostics
    /// (code `E0401`).
    pub fn to_dataflow(&mut self) -> Result<CompiledProgram, CoreError> {
        self.run_passes()?;
        let started = std::time::Instant::now();
        let mut opts = self.opts.clone();
        opts.threads = self.threads;
        // Dataflow lowering consumes/mutates the module; clone so the
        // session's optimized artifact stays inspectable and re-runnable.
        let mut module = self.mir.clone().expect("optimized");
        let n = module.drams.len().max(1);
        let slice = (opts.dram_bytes / n) as u32;
        let layout = DramLayout {
            base: (0..module.drams.len() as u32).map(|i| i * slice).collect(),
        };
        match lower_to_dataflow(&mut module, &layout, &opts, opts.dram_bytes) {
            Ok(p) => {
                self.timings.push(("to_dataflow", started.elapsed()));
                Ok(p)
            }
            Err(e) => Err(self.fail(e.diagnostics.into_iter().collect())),
        }
    }

    // ---- artifacts & reporting ----

    /// The parsed AST, if `parse()` has succeeded.
    pub fn ast(&self) -> Option<&Program> {
        self.ast.as_ref()
    }

    /// The current MIR module: typed MIR after `lower_mir()`, the
    /// optimized module after `run_passes()`.
    pub fn mir(&self) -> Option<&Module> {
        self.mir.as_ref()
    }

    /// The current MIR module printed as text (runs `lower_mir()` on
    /// demand; `None` if the front end failed).
    pub fn mir_text(&mut self) -> Option<String> {
        self.lower_mir().ok()?;
        Some(revet_mir::print_module(self.mir.as_ref()?))
    }

    /// How far the session has progressed.
    pub fn stage(&self) -> Stage {
        self.stage
    }

    /// Everything reported so far.
    pub fn diagnostics(&self) -> &Diagnostics {
        &self.diags
    }

    /// The session's source map (byte offsets → line/col).
    pub fn source_map(&self) -> &SourceMap {
        &self.map
    }

    /// The source text being compiled.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// The pass options in use.
    pub fn options(&self) -> &PassOptions {
        &self.opts
    }

    /// The resolved thread-count hint (`PassOptions::threads` wins over
    /// `pragma(threads, N)`), once `lower_mir()` has run.
    pub fn thread_count(&self) -> Option<u32> {
        self.threads
    }

    /// Per-pass timing and op-count statistics, once `run_passes()` has
    /// run.
    pub fn pass_report(&self) -> Option<&PassReport> {
        self.report.as_ref()
    }

    /// The MIR snapshot requested with [`Session::capture_mir_after`], if
    /// that pass executed.
    pub fn captured_mir(&self) -> Option<&str> {
        self.captured.as_deref()
    }

    /// Wall time of every compile stage that actually executed this
    /// session, in execution order. Memoized re-runs add no entries, so a
    /// full compile yields exactly `parse`, `lower_mir`, `run_passes`,
    /// `to_dataflow` (the latter once per materialization). Complements
    /// [`Session::pass_report`], which times the individual passes *inside*
    /// the `run_passes` stage.
    pub fn stage_timings(&self) -> &[(&'static str, std::time::Duration)] {
        &self.timings
    }

    /// Records each stage timing into `obs` as a `compile_stage` trace
    /// event (for `--trace-out` Perfetto exports).
    pub fn emit_compile_trace(&self, obs: &revet_obs::ObsSink) {
        for (name, dur) in &self.timings {
            obs.compile_stage(name, dur.as_micros() as u64);
        }
    }

    /// Renders every accumulated diagnostic as a rustc-style snippet.
    pub fn render_diagnostics(&self, color: bool) -> String {
        self.diags.render(&self.map, color)
    }

    fn fail(&mut self, diags: Diagnostics) -> CoreError {
        self.stage = Stage::Failed;
        self.diags.extend(diags);
        self.failure()
    }

    fn failure(&self) -> CoreError {
        CoreError::from_diagnostics(self.diags.as_slice().to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use revet_diag::codes;

    const GOOD: &str = "dram<u32> output;
        void main(u32 n) { foreach (n) { u32 i => output[i] = i * i; }; }";

    #[test]
    fn stages_progress_and_memoize() {
        let mut s = Session::new(GOOD, PassOptions::default());
        assert_eq!(s.stage(), Stage::Start);
        s.parse().unwrap();
        assert_eq!(s.stage(), Stage::Parsed);
        s.lower_mir().unwrap();
        assert_eq!(s.stage(), Stage::Lowered);
        let before = s.mir_text().unwrap();
        assert!(before.contains("main"));
        s.run_passes().unwrap();
        assert_eq!(s.stage(), Stage::Optimized);
        assert!(revet_mir::print_module(s.mir().unwrap()).contains("main"));
        // Two dataflow materializations from one optimized module.
        let p1 = s.to_dataflow().unwrap();
        let p2 = s.to_dataflow().unwrap();
        assert_eq!(p1.context_count(), p2.context_count());
        assert!(s.diagnostics().is_empty());
    }

    #[test]
    fn parse_failure_sticks_and_reports_every_error() {
        let mut s = Session::new(
            "void main() {\n  u32 a = ;\n  u32 ok = 1;\n  ok = @ 3;\n}",
            PassOptions::default(),
        );
        let e = s.to_dataflow().unwrap_err();
        assert_eq!(e.diagnostics.len(), 2, "{e}");
        assert!(e.diagnostics.iter().all(|d| d.span.is_some()));
        assert_eq!(s.stage(), Stage::Failed);
        // Later stage calls return the same failure, not a panic.
        let e2 = s.lower_mir().unwrap_err();
        assert_eq!(e.diagnostics, e2.diagnostics);
        assert!(s.mir_text().is_none());
    }

    #[test]
    fn semantic_failure_is_coded_and_spanned() {
        let mut s = Session::new(
            "void main(u32 n) {\n  output[n] = 1;\n}",
            PassOptions::default(),
        );
        let e = s.run_passes().unwrap_err();
        assert_eq!(e.diagnostics.len(), 1);
        assert_eq!(e.diagnostics[0].code, codes::SEM_UNKNOWN_NAME);
        let lc = s
            .source_map()
            .line_col(e.diagnostics[0].span.expect("spanned").start);
        assert_eq!(lc.line, 2);
        // parse() still succeeded — the AST artifact survives the failure.
        assert!(s.ast().is_some());
    }

    /// Constant math the classical passes can chew on (2*3 folds, the
    /// operand constants then die). `opt_level` is pinned so the
    /// REVET_OPT_LEVEL environment override cannot change the pipeline
    /// under these assertions.
    const FOLDABLE: &str = "dram<u32> output;
        void main(u32 n) { u32 x = 2 * 3; output[n] = x + n; }";

    fn o2() -> PassOptions {
        PassOptions {
            opt_level: 2,
            ..PassOptions::default()
        }
    }

    #[test]
    fn pass_report_records_every_pipeline_pass() {
        let mut s = Session::new(FOLDABLE, o2());
        assert!(s.pass_report().is_none(), "no report before run_passes()");
        s.run_passes().unwrap();
        let report = s.pass_report().expect("report after run_passes()");
        let expected = crate::passes::build_pipeline(s.options(), s.thread_count())
            .names()
            .len();
        assert_eq!(report.passes.len(), expected);
        assert!(report.ops_before() > 0);
        assert!(
            report
                .passes
                .iter()
                .any(|p| p.name == "const_fold" && p.changed),
            "2*3 must fold"
        );
        assert!(
            report.ops_after() < report.ops_before(),
            "folding + DCE must shrink the module"
        );
        let text = report.summary();
        assert!(text.contains("lower_views"));
        assert!(text.contains("total"));
    }

    #[test]
    fn capture_mir_after_snapshots_named_pass() {
        let mut s = Session::new(FOLDABLE, o2()).capture_mir_after("lower_views");
        s.run_passes().unwrap();
        let snap = s.captured_mir().expect("snapshot for a pipeline pass");
        assert!(snap.contains("main"));
        // The snapshot shows the mid-pipeline state — before the classical
        // passes folded 2*3 — so it must differ from the final module.
        let final_text = revet_mir::print_module(s.mir().unwrap());
        assert_ne!(snap, final_text);

        let mut none = Session::new(FOLDABLE, o2()).capture_mir_after("no_such");
        none.run_passes().unwrap();
        assert!(none.captured_mir().is_none());
    }

    #[test]
    fn stage_timings_record_each_stage_once() {
        let mut s = Session::new(GOOD, PassOptions::default());
        assert!(s.stage_timings().is_empty());
        s.to_dataflow().unwrap();
        let names: Vec<&str> = s.stage_timings().iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            vec!["parse", "lower_mir", "run_passes", "to_dataflow"]
        );
        // Memoized stages add nothing; a re-materialization adds only the
        // dataflow stage.
        s.run_passes().unwrap();
        assert_eq!(s.stage_timings().len(), 4);
        s.to_dataflow().unwrap();
        let names: Vec<&str> = s.stage_timings().iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            vec![
                "parse",
                "lower_mir",
                "run_passes",
                "to_dataflow",
                "to_dataflow"
            ]
        );
        // Stage timings flow into the trace ring as compile_stage events.
        let obs = revet_obs::ObsSink::with_trace_capacity(64);
        s.emit_compile_trace(&obs);
        assert_eq!(obs.trace_events().len(), 5);
        assert!(obs.chrome_trace_json().contains("compile:run_passes"));
    }

    #[test]
    fn compile_source_is_a_session_shim() {
        let direct = crate::Compiler::new(PassOptions::default())
            .compile_source(GOOD)
            .unwrap();
        let via_session = Session::new(GOOD, PassOptions::default())
            .to_dataflow()
            .unwrap();
        assert_eq!(direct.context_count(), via_session.context_count());
        assert_eq!(direct.links.len(), via_session.links.len());
    }
}
