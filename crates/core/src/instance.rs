//! Compile-once / run-many instantiation.
//!
//! A [`CompiledProgram`] is expensive to produce (the whole pass pipeline)
//! but cheap to *instantiate*: all mutable run state — node behaviors,
//! channel queues, [`MemoryState`] — lives in the program's [`Graph`], and
//! [`Graph::fresh_instance`] deep-clones exactly that state while sharing
//! the immutable [`revet_machine::TopologyIndex`] behind an `Arc`. A
//! [`ProgramInstance`] is the resulting unit of batch work: it is `Send`,
//! owns everything it mutates, and collects results into its own private
//! sink buffer, so any number of instances of one compile can run
//! concurrently (see the `revet-runtime` crate's `BatchRunner`).

use crate::lower::CompiledProgram;
use crate::CoreError;
use revet_machine::nodes::SinkHandle;
use revet_machine::{ChanId, ExecPlan, ExecReport, Graph, MachineError, MemoryState, TTok};
use revet_sltf::Word;
use std::sync::Arc;

/// One independently runnable instantiation of a [`CompiledProgram`]:
/// private graph state (nodes, channels, memory) plus this instance's own
/// result sink. Obtained from [`CompiledProgram::instance`].
#[derive(Debug)]
pub struct ProgramInstance {
    /// The instance's private executable graph. DRAM inputs that differ
    /// per instance can be written into `graph.mem.dram` before running.
    pub graph: Graph,
    pub(crate) entry: ChanId,
    pub(crate) sink: SinkHandle,
    pub(crate) plan: Arc<ExecPlan>,
}

// The whole point of an instance is to migrate onto a worker thread; keep
// that guarantee from regressing silently.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<ProgramInstance>();
};

impl ProgramInstance {
    /// Runs this instance to quiescence with the given `main` arguments,
    /// through the compiled execution plan (shared, like the topology
    /// index, by all instances of one compile).
    ///
    /// # Errors
    ///
    /// Propagates machine protocol errors and deadlock diagnoses.
    pub fn run_untimed(
        &mut self,
        args: &[Word],
        max_rounds: u64,
    ) -> Result<ExecReport, MachineError> {
        self.run_untimed_obs(args, max_rounds, revet_obs::ObsSink::noop())
    }

    /// [`ProgramInstance::run_untimed`] with an observability sink (node
    /// labels are published to the sink so stall tables and traces can name
    /// nodes).
    ///
    /// # Errors
    ///
    /// Same as [`ProgramInstance::run_untimed`].
    pub fn run_untimed_obs(
        &mut self,
        args: &[Word],
        max_rounds: u64,
        obs: &revet_obs::ObsSink,
    ) -> Result<ExecReport, MachineError> {
        self.publish_labels(obs);
        crate::lower::inject_args(&mut self.graph, self.entry, args);
        let plan = Arc::clone(&self.plan);
        let report = self.graph.run_untimed_planned_obs(&plan, max_rounds, obs);
        if report.is_ok() && obs.is_enabled() {
            obs.counters.instances.inc();
        }
        report
    }

    /// Like [`ProgramInstance::run_untimed`] but on the interpreted
    /// event-driven executor — the functional reference the plan is
    /// differential-tested against.
    ///
    /// # Errors
    ///
    /// Propagates machine protocol errors and deadlock diagnoses.
    pub fn run_untimed_interpreted(
        &mut self,
        args: &[Word],
        max_rounds: u64,
    ) -> Result<ExecReport, MachineError> {
        self.run_untimed_interpreted_obs(args, max_rounds, revet_obs::ObsSink::noop())
    }

    /// [`ProgramInstance::run_untimed_interpreted`] with an observability
    /// sink.
    ///
    /// # Errors
    ///
    /// Same as [`ProgramInstance::run_untimed_interpreted`].
    pub fn run_untimed_interpreted_obs(
        &mut self,
        args: &[Word],
        max_rounds: u64,
        obs: &revet_obs::ObsSink,
    ) -> Result<ExecReport, MachineError> {
        self.publish_labels(obs);
        crate::lower::inject_args(&mut self.graph, self.entry, args);
        let report = self.graph.run_untimed_obs(max_rounds, obs);
        if report.is_ok() && obs.is_enabled() {
            obs.counters.instances.inc();
        }
        report
    }

    pub(crate) fn publish_labels(&self, obs: &revet_obs::ObsSink) {
        if obs.is_enabled() {
            obs.set_labels(self.graph.nodes().iter().map(|s| s.label.clone()).collect());
        }
    }

    /// Snapshot of the tokens this instance's sink collected (`main`'s
    /// final outputs, usually empty for DRAM-writing programs).
    pub fn sink_tokens(&self) -> Vec<TTok> {
        self.sink.tokens()
    }

    /// The instance's memory state (DRAM image, SRAM regions, allocators).
    pub fn memory(&self) -> &MemoryState {
        &self.graph.mem
    }

    /// Consumes the instance, yielding its final memory state without
    /// copying the DRAM image.
    pub fn into_memory(self) -> MemoryState {
        self.graph.mem
    }
}

impl CompiledProgram {
    /// Clones this compiled program into a fresh runnable
    /// [`ProgramInstance`]. The compiled graph — including any DRAM images
    /// already loaded into `self.graph.mem` — is deep-copied; the
    /// topology index is shared. The template program itself is left
    /// untouched, so one compile can be instantiated any number of times,
    /// concurrently and from a shared `&CompiledProgram`.
    pub fn instance(&self) -> ProgramInstance {
        let graph = self.graph.fresh_instance();
        let sink = graph
            .nodes()
            .iter()
            .find_map(|slot| slot.behavior.as_ref()?.sink_handle())
            .expect("compiled programs always end in main.sink");
        ProgramInstance {
            graph,
            entry: self.entry,
            sink,
            plan: Arc::clone(&self.plan),
        }
    }

    /// Runs `self.instance()` per argument set, sequentially — the
    /// single-threaded reference for batch execution (the `revet-runtime`
    /// crate parallelizes the same loop).
    ///
    /// # Errors
    ///
    /// Returns the first instance failure, attributed with its batch index.
    pub fn run_batch_sequential(
        &self,
        argsets: &[Vec<Word>],
        max_rounds: u64,
    ) -> Result<Vec<(ExecReport, MemoryState, Vec<TTok>)>, CoreError> {
        argsets
            .iter()
            .enumerate()
            .map(|(i, args)| {
                let mut inst = self.instance();
                let report = inst
                    .run_untimed(args, max_rounds)
                    .map_err(|e| CoreError::new(format!("batch instance #{i}: {e}")))?;
                let sink = inst.sink_tokens();
                Ok((report, inst.into_memory(), sink))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use crate::{Compiler, PassOptions};
    use revet_sltf::Word;

    const SQUARES: &str = r#"
        dram<u32> output;
        void main(u32 n) {
            foreach (n) { u32 i =>
                output[i] = i * i;
            };
        }
    "#;

    #[test]
    fn instances_run_independently_of_the_template() {
        let program = Compiler::new(PassOptions::default())
            .compile_source(SQUARES)
            .unwrap();
        let word_at =
            |dram: &[u8], i: usize| u32::from_le_bytes(dram[4 * i..4 * i + 4].try_into().unwrap());
        for n in [1u32, 3, 7] {
            let mut inst = program.instance();
            inst.run_untimed(&[Word(n)], 1_000_000).unwrap();
            for i in 0..n {
                assert_eq!(word_at(&inst.memory().dram, i as usize), i * i);
            }
        }
        // The template never ran: its DRAM is still all zeroes.
        assert!(program.graph.mem.dram.iter().all(|&b| b == 0));
    }

    #[test]
    fn sequential_batch_matches_individual_runs() {
        let program = Compiler::new(PassOptions::default())
            .compile_source(SQUARES)
            .unwrap();
        let argsets: Vec<Vec<Word>> = (1..=4).map(|n| vec![Word(n)]).collect();
        let batch = program.run_batch_sequential(&argsets, 1_000_000).unwrap();
        assert_eq!(batch.len(), 4);
        for (args, (report, mem, sink)) in argsets.iter().zip(&batch) {
            let mut inst = program.instance();
            let solo = inst.run_untimed(args, 1_000_000).unwrap();
            assert_eq!(&solo, report);
            assert_eq!(inst.sink_tokens(), *sink);
            assert_eq!(inst.memory(), mem);
        }
    }
}
