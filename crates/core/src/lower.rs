//! Structured-control-flow → streaming-dataflow lowering (§V-C) plus the
//! dataflow optimizations of §V-D (link analysis, context splitting,
//! sub-word packing, replicate distribution/merging, retiming accounting).
//!
//! Our MIR keeps control flow structured all the way down (the language has
//! no gotos), so the paper's annotated CFG is isomorphic to the region tree:
//! every region is a basic-block sequence, an `if` is a filter/forward-merge
//! pair, a `while` header is a forward-backward merge, `foreach` edges are
//! counter/reduce terminators. This module performs that conversion
//! directly, emitting the §III-B primitives of `revet-machine`:
//!
//! | MIR construct | primitives |
//! |---|---|
//! | straight-line ops | element-wise contexts (split: each memory op in its own context, ≤6 ALU ops per context) |
//! | `if` | filter (predicated outputs) → branch pipelines → forward merge |
//! | `while` | fb-merge header → cond filter → body → backedge; exit edge flattens |
//! | `foreach` | counter (+ broadcast of live-ins) → body → reduce → zip re-join |
//! | `fork` | fork node (live values duplicated per spawn) |
//! | `replicate` | distribution filter tree → `ways` copies → fwd-merge tree |
//!
//! Memory ordering needs no explicit void tokens here: split contexts form a
//! linear chain threaded by the live tuple, so same-thread memory operations
//! stay in program order structurally (SARA's CMMC tokens solve the same
//! problem for arbitrarily-placed contexts).

use crate::{CoreError, PassOptions};
use revet_machine::instr::{AluOp, EwInstr, Operand, Pred, Reg};
use revet_machine::nodes::{
    BroadcastNode, CounterNode, EwNode, FbMergeNode, FlattenNode, ForkNode, FwdMergeNode,
    OutputSpec, ReduceNode, SinkNode,
};
use revet_machine::{ChanId, Channel, ExecPlan, Graph, LinkClass, UnitClass};
use revet_mir::{DramLayout, Func, Module, Op, OpKind, Region, Ty, Value};
use revet_sltf::Word;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Table IV resource category of a context.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Category {
    /// Outer-level machinery (tile streams, top-level blocks).
    Outer,
    /// Inner-loop pipelines (inside loops / replicate bodies).
    Inner,
    /// Replicate distribution/merge infrastructure.
    Replicate,
    /// Buffering MUs for values stored around replicates (§V-B b).
    Buffer,
    /// Retiming buffers (work-distribution skid buffers).
    Retime,
    /// Deadlock-avoidance buffers on loop backedges.
    Deadlock,
}

/// Metadata for one streaming context (one physical unit after splitting).
#[derive(Clone, Debug)]
pub struct ContextInfo {
    /// Context id (== machine NodeId index).
    pub id: u32,
    /// Debug label.
    pub label: String,
    /// Primitive kind ("ew", "fb-merge", …).
    pub kind: &'static str,
    /// Which physical unit type it occupies.
    pub unit: UnitClass,
    /// Loop-nest depth at creation.
    pub depth: u32,
    /// Element-wise instruction count (pipeline stages used).
    pub instrs: usize,
    /// Register-file slots used.
    pub regs: usize,
    /// Table IV category.
    pub category: Category,
}

/// Metadata for one on-chip link.
#[derive(Clone, Debug)]
pub struct LinkInfo {
    /// Channel id.
    pub id: u32,
    /// Live values carried (physical link count of the edge).
    pub arity: usize,
    /// Vector or scalar resources.
    pub class: LinkClass,
    /// Loop-nest depth.
    pub depth: u32,
}

/// A compiled program: the executable graph plus resource metadata.
#[derive(Debug)]
pub struct CompiledProgram {
    /// The executable dataflow graph (memory instantiated).
    pub graph: Graph,
    /// Per-context resources.
    pub contexts: Vec<ContextInfo>,
    /// Per-link resources.
    pub links: Vec<LinkInfo>,
    /// The fully lowered MIR module.
    pub module: Module,
    /// Entry channel: push `Data([args…])` then `Ω1` and run.
    pub entry: ChanId,
    /// Final-output sink handle (main's return values, usually empty).
    pub sink: revet_machine::nodes::SinkHandle,
    /// Product of replicate ways (the "outer parallelism" knob).
    pub outer_parallelism: u32,
    /// The flattened execution plan: built once when the graph is
    /// finished, shared (like the topology index) by every
    /// [`crate::ProgramInstance`] of this compile.
    pub plan: Arc<ExecPlan>,
}

impl CompiledProgram {
    /// Runs the program to quiescence with the given `main` arguments,
    /// through the compiled execution plan (the fused fast path; falls
    /// back to boxed node stepping for non-lowered kinds). DRAM inputs
    /// should be written into `self.graph.mem.dram` first.
    ///
    /// # Errors
    ///
    /// Propagates machine protocol errors and deadlock diagnoses.
    pub fn run_untimed(
        &mut self,
        args: &[Word],
        max_rounds: u64,
    ) -> Result<revet_machine::ExecReport, revet_machine::MachineError> {
        self.inject_args(args);
        let plan = Arc::clone(&self.plan);
        self.graph.run_untimed_planned(&plan, max_rounds)
    }

    /// Like [`CompiledProgram::run_untimed`] but on the interpreted
    /// event-driven executor (boxed `dyn Node` stepping for every node) —
    /// the functional reference the plan is benchmarked and
    /// differential-tested against.
    ///
    /// # Errors
    ///
    /// Propagates machine protocol errors and deadlock diagnoses.
    pub fn run_untimed_interpreted(
        &mut self,
        args: &[Word],
        max_rounds: u64,
    ) -> Result<revet_machine::ExecReport, revet_machine::MachineError> {
        self.inject_args(args);
        self.graph.run_untimed(max_rounds)
    }

    /// Like [`CompiledProgram::run_untimed`] but using the retained
    /// dense-sweep reference executor — for scheduler-equivalence checks
    /// and the executor benchmark; prefer `run_untimed` everywhere else.
    ///
    /// # Errors
    ///
    /// Propagates machine protocol errors and deadlock diagnoses.
    pub fn run_untimed_dense(
        &mut self,
        args: &[Word],
        max_rounds: u64,
    ) -> Result<revet_machine::ExecReport, revet_machine::MachineError> {
        self.inject_args(args);
        self.graph.run_untimed_dense(max_rounds)
    }

    /// Injects the `main` argument thread: one data tuple closed by Ω1.
    fn inject_args(&mut self, args: &[Word]) {
        inject_args(&mut self.graph, self.entry, args);
    }

    /// The number of contexts (Table IV's unit counts derive from this).
    pub fn context_count(&self) -> usize {
        self.contexts.len()
    }

    /// Counts contexts of one unit class.
    pub fn units(&self, unit: UnitClass) -> usize {
        self.contexts.iter().filter(|c| c.unit == unit).count()
    }
}

/// Injects the `main` argument thread into a program graph's entry
/// channel: one data tuple closed by Ω1. The single definition of the
/// entry-token protocol, shared by [`CompiledProgram`]'s run methods and
/// by `ProgramInstance` (crate::instance).
pub(crate) fn inject_args(graph: &mut Graph, entry: ChanId, args: &[Word]) {
    let chan = graph.chan_mut(entry);
    chan.push(revet_sltf::Tok::Data(args.to_vec()));
    chan.push(revet_sltf::Tok::Barrier(revet_sltf::BarrierLevel::L1));
}

/// The current position in the pipeline being built.
#[derive(Clone, Debug)]
struct Cur {
    chan: ChanId,
    vars: Vec<Value>,
}

/// How a lowered region ended.
enum Term {
    Yield,
    Exit,
    Return,
    Condition(Value, Vec<Value>),
}

pub(crate) struct DfLower<'m> {
    module: &'m mut Module,
    func: Func,
    layout: DramLayout,
    opts: PassOptions,
    g: Graph,
    infos: Vec<ContextInfo>,
    links: Vec<LinkInfo>,
    consts: HashMap<Value, Word>,
    depth: u32,
    in_replicate: u32,
    outer_par: u32,
    label_n: u32,
    foreach_bypass: Option<ChanId>,
}

/// Lowers `main` of a fully-lowered (physical-ops-only) module to a placed,
/// executable dataflow graph.
///
/// # Errors
///
/// Returns [`CoreError`] for unsupported shapes (multi-value foreach
/// reductions, high-level ops that escaped earlier passes).
pub fn lower_to_dataflow(
    module: &mut Module,
    layout: &DramLayout,
    opts: &PassOptions,
    dram_bytes: usize,
) -> Result<CompiledProgram, CoreError> {
    let func = module
        .func("main")
        .ok_or_else(|| CoreError::new("module has no main"))?
        .clone();
    let mut consts = HashMap::new();
    func.walk(&mut |op| {
        if let OpKind::ConstI(v, ty) = &op.kind {
            let w = match ty {
                Ty::I8 => Word((*v as u8) as u32),
                Ty::I16 => Word((*v as u16) as u32),
                _ => Word(*v as u32),
            };
            if let Some(r) = op.results.first() {
                consts.insert(*r, w);
            }
        }
    });
    let lw = DfLower {
        module,
        func,
        layout: layout.clone(),
        opts: opts.clone(),
        g: Graph::new(),
        infos: Vec::new(),
        links: Vec::new(),
        consts,
        depth: 0,
        in_replicate: 0,
        outer_par: 1,
        label_n: 0,
        foreach_bypass: None,
    };
    lw.build(dram_bytes)
}

impl DfLower<'_> {
    fn label(&mut self, base: &str) -> String {
        self.label_n += 1;
        format!("{base}{}", self.label_n)
    }

    fn chan(&mut self, arity: usize, class: LinkClass) -> ChanId {
        let id = self.g.add_chan(Channel::new(arity).with_class(class));
        self.links.push(LinkInfo {
            id: id.0,
            arity,
            class,
            depth: self.depth,
        });
        id
    }

    fn chan_raw(&mut self, arity: usize, class: LinkClass) -> ChanId {
        let id = self.g.add_chan(
            Channel::new(arity)
                .with_class(class)
                .without_canonicalization(),
        );
        self.links.push(LinkInfo {
            id: id.0,
            arity,
            class,
            depth: self.depth,
        });
        id
    }

    fn category(&self) -> Category {
        if self.in_replicate > 0 || self.depth >= 2 {
            Category::Inner
        } else {
            Category::Outer
        }
    }

    fn note_node(
        &mut self,
        id: revet_machine::NodeId,
        label: &str,
        kind: &'static str,
        unit: UnitClass,
        instrs: usize,
        regs: usize,
        category: Category,
    ) {
        self.g.set_node_meta(id, self.infos.len() as u32, unit);
        self.infos.push(ContextInfo {
            id: id.0,
            label: label.to_string(),
            kind,
            unit,
            depth: self.depth,
            instrs,
            regs,
            category,
        });
    }

    fn build(mut self, dram_bytes: usize) -> Result<CompiledProgram, CoreError> {
        let params = self.func.params.clone();
        let entry = self.chan(params.len(), LinkClass::Scalar);
        let cur = Cur {
            chan: entry,
            vars: params,
        };
        let body = self.func.body.clone();
        let (cur, term) = self.lower_ops(&body.ops, cur, &[])?;
        if !matches!(term, Term::Return | Term::Exit) {
            return Err(CoreError::new("main must end in return"));
        }
        let (sink, handle) = SinkNode::new();
        let id = self
            .g
            .add_node("main.sink", Box::new(sink), vec![cur.chan], vec![]);
        self.g.set_node_meta(id, u32::MAX, UnitClass::Virtual);
        self.g.mem = self.module.build_memory(dram_bytes);
        // The wiring is complete: build the channel-endpoint index both
        // executors use for ready-set scheduling, and flatten the graph
        // into the execution plan every instance of this compile shares.
        self.g.finalize_topology();
        let plan = Arc::new(ExecPlan::build(&self.g));
        Ok(CompiledProgram {
            graph: self.g,
            contexts: self.infos,
            links: self.links,
            module: self.module.clone(),
            entry,
            sink: handle,
            outer_parallelism: self.outer_par,
            plan,
        })
    }

    // ---------------- liveness ----------------

    /// Free values used by an op (including nested regions, minus their
    /// locally defined values).
    fn op_free_uses(op: &Op, out: &mut HashSet<Value>) {
        fn region_free(r: &Region, out: &mut HashSet<Value>) {
            let mut defined: HashSet<Value> = r.args.iter().copied().collect();
            for op in &r.ops {
                for u in op.kind.operands() {
                    if !defined.contains(&u) {
                        out.insert(u);
                    }
                }
                for sub in op.kind.regions() {
                    let mut inner = HashSet::new();
                    region_free(sub, &mut inner);
                    for u in inner {
                        if !defined.contains(&u) {
                            out.insert(u);
                        }
                    }
                }
                for r in &op.results {
                    defined.insert(*r);
                }
            }
        }
        for u in op.kind.operands() {
            out.insert(u);
        }
        for sub in op.kind.regions() {
            region_free(sub, out);
        }
    }

    /// `live_after[i]` = values live after op `i`, given the region's
    /// live-out set.
    fn liveness(ops: &[Op], live_out: &[Value]) -> Vec<HashSet<Value>> {
        let mut live: HashSet<Value> = live_out.iter().copied().collect();
        let mut after = vec![HashSet::new(); ops.len()];
        for i in (0..ops.len()).rev() {
            after[i] = live.clone();
            for r in &ops[i].results {
                live.remove(r);
            }
            Self::op_free_uses(&ops[i], &mut live);
        }
        after
    }

    /// Sorted, deduplicated, const-free tuple layout for a live set.
    fn tupleize(&self, set: &HashSet<Value>) -> Vec<Value> {
        let mut v: Vec<Value> = set
            .iter()
            .copied()
            .filter(|x| !self.consts.contains_key(x))
            .collect();
        v.sort_unstable();
        v
    }

    // ---------------- element-wise block emission ----------------

    /// Compiles a run of simple ops into a chain of element-wise contexts.
    /// `out_tuple` is the exact positional output layout (may repeat values
    /// and include constants, which are materialized).
    fn emit_block(
        &mut self,
        ops: &[&Op],
        input: Cur,
        out_tuple: &[Value],
        base_label: &str,
    ) -> Result<Cur, CoreError> {
        if ops.is_empty() && input.vars == out_tuple {
            return Ok(input);
        }
        // Virtual register allocation: inputs first.
        let mut operand: HashMap<Value, Operand> = HashMap::new();
        for (v, w) in &self.consts {
            operand.insert(*v, Operand::Const(*w));
        }
        let mut next_reg: Reg = 0;
        for v in &input.vars {
            operand.insert(*v, Operand::Reg(next_reg));
            next_reg += 1;
        }
        let mut items: Vec<(EwInstr, bool, UnitClass)> = Vec::new(); // (instr, is_memory, class)
        for op in ops {
            self.gen_instrs(op, &mut operand, &mut next_reg, &mut items)?;
        }
        // Materialize constant outputs.
        let mut out_regs: Vec<Reg> = Vec::with_capacity(out_tuple.len());
        for v in out_tuple {
            match operand.get(v) {
                Some(Operand::Reg(r)) => out_regs.push(*r),
                Some(Operand::Const(w)) => {
                    let r = next_reg;
                    next_reg += 1;
                    items.push((
                        EwInstr::Mov {
                            src: Operand::Const(*w),
                            dst: r,
                        },
                        false,
                        UnitClass::Compute,
                    ));
                    out_regs.push(r);
                }
                None => {
                    return Err(CoreError::new(format!(
                        "output value %{} not defined in block",
                        v.0
                    )))
                }
            }
        }
        // Segment: every memory instruction gets its own context (§V-D b);
        // compute runs are capped at 6 pipeline stages.
        let mut segments: Vec<(Vec<usize>, UnitClass)> = Vec::new();
        let mut cur_seg: Vec<usize> = Vec::new();
        for (i, (_, is_mem, class)) in items.iter().enumerate() {
            if *is_mem {
                if !cur_seg.is_empty() {
                    segments.push((std::mem::take(&mut cur_seg), UnitClass::Compute));
                }
                segments.push((vec![i], *class));
            } else {
                if cur_seg.len() >= 6 {
                    segments.push((std::mem::take(&mut cur_seg), UnitClass::Compute));
                }
                cur_seg.push(i);
            }
        }
        if !cur_seg.is_empty() {
            segments.push((cur_seg, UnitClass::Compute));
        }
        if segments.is_empty() {
            // Pure reorder/subset of the tuple.
            segments.push((Vec::new(), UnitClass::Compute));
        }
        // For each segment: determine live-in regs (reads of this and later
        // segments ∪ out_regs at the end), remap, build node.
        let n_seg = segments.len();
        let mut reads_after: Vec<HashSet<Reg>> = vec![HashSet::new(); n_seg + 1];
        for r in &out_regs {
            reads_after[n_seg].insert(*r);
        }
        for s in (0..n_seg).rev() {
            let mut set = reads_after[s + 1].clone();
            for &i in segments[s].0.iter().rev() {
                if let Some(w) = instr_write(&items[i].0) {
                    set.remove(&w);
                }
                for r in instr_reads(&items[i].0) {
                    set.insert(r);
                }
            }
            reads_after[s] = set;
        }
        let mut cur_chan = input.chan;
        let mut cur_layout: Vec<Reg> = (0..input.vars.len() as Reg).collect();
        for (s, (idxs, class)) in segments.iter().enumerate() {
            // Input mapping: old reg -> new reg.
            let mut remap: HashMap<Reg, Reg> = HashMap::new();
            for (pos, old) in cur_layout.iter().enumerate() {
                remap.entry(*old).or_insert(pos as Reg);
            }
            let mut local_next = cur_layout.len() as Reg;
            let mut instrs: Vec<EwInstr> = Vec::new();
            for &i in idxs {
                let mut ins = items[i].0.clone();
                remap_instr(&mut ins, &mut remap, &mut local_next);
                instrs.push(ins);
            }
            // Output layout: regs needed after this segment.
            let needed: Vec<Reg> = {
                let mut v: Vec<Reg> = reads_after[s + 1]
                    .iter()
                    .copied()
                    .filter(|r| remap.contains_key(r))
                    .collect();
                v.sort_unstable();
                v
            };
            let is_last = s + 1 == n_seg;
            let (out_slots, new_layout): (Vec<Reg>, Vec<Reg>) = if is_last {
                (
                    out_regs.iter().map(|r| remap[r]).collect(),
                    out_regs.clone(),
                )
            } else {
                (needed.iter().map(|r| remap[r]).collect(), needed.clone())
            };
            let arity = out_slots.len();
            let next_chan = self.chan(arity, LinkClass::Vector);
            let node = EwNode::new(
                cur_layout.len() as u16,
                instrs.clone(),
                vec![OutputSpec::plain(out_slots)],
            );
            let regs = node.reg_count() as usize;
            let label = self.label(base_label);
            let id = self
                .g
                .add_node(&label, Box::new(node), vec![cur_chan], vec![next_chan]);
            let cat = match class {
                UnitClass::Memory | UnitClass::AddressGen => self.category(),
                _ => self.category(),
            };
            self.note_node(id, &label, "ew", *class, instrs.len(), regs, cat);
            cur_chan = next_chan;
            cur_layout = new_layout;
        }
        Ok(Cur {
            chan: cur_chan,
            vars: out_tuple.to_vec(),
        })
    }

    /// Generates element-wise instructions for one simple MIR op.
    #[allow(clippy::too_many_lines)]
    fn gen_instrs(
        &mut self,
        op: &Op,
        operand: &mut HashMap<Value, Operand>,
        next_reg: &mut Reg,
        items: &mut Vec<(EwInstr, bool, UnitClass)>,
    ) -> Result<(), CoreError> {
        let get = |v: &Value, operand: &HashMap<Value, Operand>| -> Result<Operand, CoreError> {
            operand
                .get(v)
                .copied()
                .ok_or_else(|| CoreError::new(format!("value %{} unavailable in block", v.0)))
        };
        let mut alloc =
            |operand: &mut HashMap<Value, Operand>, v: Option<&Value>, next_reg: &mut Reg| -> Reg {
                let r = *next_reg;
                *next_reg += 1;
                if let Some(v) = v {
                    operand.insert(*v, Operand::Reg(r));
                }
                r
            };
        self.gen_instrs_inner(op, operand, next_reg, items, &get, &mut alloc, None)
    }

    #[allow(clippy::too_many_arguments, clippy::too_many_lines)]
    fn gen_instrs_inner(
        &mut self,
        op: &Op,
        operand: &mut HashMap<Value, Operand>,
        next_reg: &mut Reg,
        items: &mut Vec<(EwInstr, bool, UnitClass)>,
        get: &dyn Fn(&Value, &HashMap<Value, Operand>) -> Result<Operand, CoreError>,
        alloc: &mut dyn FnMut(&mut HashMap<Value, Operand>, Option<&Value>, &mut Reg) -> Reg,
        pred: Option<Pred>,
    ) -> Result<(), CoreError> {
        match &op.kind {
            OpKind::ConstI(..) => {} // handled by the const map
            OpKind::Bin(aop, a, b) => {
                let a = get(a, operand)?;
                let b = get(b, operand)?;
                let dst = alloc(operand, op.results.first(), next_reg);
                items.push((
                    EwInstr::Alu {
                        op: *aop,
                        a,
                        b,
                        dst,
                    },
                    false,
                    UnitClass::Compute,
                ));
            }
            OpKind::Select(c, t, f) => {
                let c = get(c, operand)?;
                let t = get(t, operand)?;
                let f = get(f, operand)?;
                let dst = alloc(operand, op.results.first(), next_reg);
                items.push((EwInstr::Select { c, t, f, dst }, false, UnitClass::Compute));
            }
            OpKind::Cast { v, to, signed } => {
                let src = get(v, operand)?;
                let dst = alloc(operand, op.results.first(), next_reg);
                match (to, signed) {
                    (Ty::I8, false) => items.push((
                        EwInstr::Alu {
                            op: AluOp::And,
                            a: src,
                            b: Operand::Const(Word(0xFF)),
                            dst,
                        },
                        false,
                        UnitClass::Compute,
                    )),
                    (Ty::I16, false) => items.push((
                        EwInstr::Alu {
                            op: AluOp::And,
                            a: src,
                            b: Operand::Const(Word(0xFFFF)),
                            dst,
                        },
                        false,
                        UnitClass::Compute,
                    )),
                    (Ty::I8, true) | (Ty::I16, true) => {
                        let sh = if *to == Ty::I8 { 24 } else { 16 };
                        items.push((
                            EwInstr::Alu {
                                op: AluOp::Shl,
                                a: src,
                                b: Operand::Const(Word(sh)),
                                dst,
                            },
                            false,
                            UnitClass::Compute,
                        ));
                        items.push((
                            EwInstr::Alu {
                                op: AluOp::ShrS,
                                a: Operand::Reg(dst),
                                b: Operand::Const(Word(sh)),
                                dst,
                            },
                            false,
                            UnitClass::Compute,
                        ));
                    }
                    _ => items.push((EwInstr::Mov { src, dst }, false, UnitClass::Compute)),
                }
            }
            OpKind::SramRead { sram, addr } => {
                let addr = get(addr, operand)?;
                let dst = alloc(operand, op.results.first(), next_reg);
                items.push((
                    EwInstr::SramRead {
                        region: *sram,
                        addr,
                        dst,
                        pred,
                    },
                    true,
                    UnitClass::Memory,
                ));
            }
            OpKind::SramWrite { sram, addr, val } => {
                let addr = get(addr, operand)?;
                let val = get(val, operand)?;
                items.push((
                    EwInstr::SramWrite {
                        region: *sram,
                        addr,
                        val,
                        pred,
                    },
                    true,
                    UnitClass::Memory,
                ));
            }
            OpKind::SramDecFetch { sram, addr } => {
                let addr = get(addr, operand)?;
                let dst = alloc(operand, op.results.first(), next_reg);
                items.push((
                    EwInstr::SramDecFetch {
                        region: *sram,
                        addr,
                        dst,
                        pred,
                    },
                    true,
                    UnitClass::Memory,
                ));
            }
            OpKind::DramRead { dram, idx } => {
                let decl = &self.module.drams[dram.0 as usize];
                let eb = decl.elem_bytes;
                let base = self.layout.base[dram.0 as usize];
                let idx = get(idx, operand)?;
                let addr = *next_reg;
                *next_reg += 1;
                items.push((
                    EwInstr::Alu {
                        op: AluOp::Mul,
                        a: idx,
                        b: Operand::Const(Word(eb)),
                        dst: addr,
                    },
                    false,
                    UnitClass::Compute,
                ));
                items.push((
                    EwInstr::Alu {
                        op: AluOp::Add,
                        a: Operand::Reg(addr),
                        b: Operand::Const(Word(base)),
                        dst: addr,
                    },
                    false,
                    UnitClass::Compute,
                ));
                let dst = alloc(operand, op.results.first(), next_reg);
                match eb {
                    1 => items.push((
                        EwInstr::DramReadB {
                            addr: Operand::Reg(addr),
                            dst,
                            pred,
                        },
                        true,
                        UnitClass::AddressGen,
                    )),
                    2 => {
                        items.push((
                            EwInstr::DramReadW {
                                addr: Operand::Reg(addr),
                                dst,
                                pred,
                            },
                            true,
                            UnitClass::AddressGen,
                        ));
                        items.push((
                            EwInstr::Alu {
                                op: AluOp::And,
                                a: Operand::Reg(dst),
                                b: Operand::Const(Word(0xFFFF)),
                                dst,
                            },
                            false,
                            UnitClass::Compute,
                        ));
                    }
                    _ => items.push((
                        EwInstr::DramReadW {
                            addr: Operand::Reg(addr),
                            dst,
                            pred,
                        },
                        true,
                        UnitClass::AddressGen,
                    )),
                }
            }
            OpKind::DramWrite { dram, idx, val } => {
                let decl = &self.module.drams[dram.0 as usize];
                let eb = decl.elem_bytes;
                let base = self.layout.base[dram.0 as usize];
                let idx = get(idx, operand)?;
                let val = get(val, operand)?;
                let addr = *next_reg;
                *next_reg += 1;
                items.push((
                    EwInstr::Alu {
                        op: AluOp::Mul,
                        a: idx,
                        b: Operand::Const(Word(eb)),
                        dst: addr,
                    },
                    false,
                    UnitClass::Compute,
                ));
                items.push((
                    EwInstr::Alu {
                        op: AluOp::Add,
                        a: Operand::Reg(addr),
                        b: Operand::Const(Word(base)),
                        dst: addr,
                    },
                    false,
                    UnitClass::Compute,
                ));
                match eb {
                    1 => items.push((
                        EwInstr::DramWriteB {
                            addr: Operand::Reg(addr),
                            val,
                            pred,
                        },
                        true,
                        UnitClass::AddressGen,
                    )),
                    2 => {
                        let hi = *next_reg;
                        *next_reg += 1;
                        items.push((
                            EwInstr::DramWriteB {
                                addr: Operand::Reg(addr),
                                val,
                                pred,
                            },
                            true,
                            UnitClass::AddressGen,
                        ));
                        items.push((
                            EwInstr::Alu {
                                op: AluOp::ShrU,
                                a: val,
                                b: Operand::Const(Word(8)),
                                dst: hi,
                            },
                            false,
                            UnitClass::Compute,
                        ));
                        items.push((
                            EwInstr::Alu {
                                op: AluOp::Add,
                                a: Operand::Reg(addr),
                                b: Operand::Const(Word(1)),
                                dst: addr,
                            },
                            false,
                            UnitClass::Compute,
                        ));
                        items.push((
                            EwInstr::DramWriteB {
                                addr: Operand::Reg(addr),
                                val: Operand::Reg(hi),
                                pred,
                            },
                            true,
                            UnitClass::AddressGen,
                        ));
                    }
                    _ => items.push((
                        EwInstr::DramWriteW {
                            addr: Operand::Reg(addr),
                            val,
                            pred,
                        },
                        true,
                        UnitClass::AddressGen,
                    )),
                }
            }
            OpKind::AllocPop { alloc: a } => {
                let dst = alloc(operand, op.results.first(), next_reg);
                items.push((
                    EwInstr::AllocPop { alloc: *a, dst },
                    true,
                    UnitClass::Memory,
                ));
            }
            OpKind::AllocPush { alloc: a, ptr } => {
                let src = get(ptr, operand)?;
                items.push((
                    EwInstr::AllocPush {
                        alloc: *a,
                        src,
                        pred,
                    },
                    true,
                    UnitClass::Memory,
                ));
            }
            OpKind::Predicated {
                pred: p,
                expect,
                inner,
            } => {
                // Combine with any enclosing predicate via an AND.
                let pv = get(p, operand)?;
                let truth = *next_reg;
                *next_reg += 1;
                items.push((
                    EwInstr::Alu {
                        op: if *expect { AluOp::Ne } else { AluOp::Eq },
                        a: pv,
                        b: Operand::Const(Word(0)),
                        dst: truth,
                    },
                    false,
                    UnitClass::Compute,
                ));
                let combined = match pred {
                    Some(outer) => {
                        let c = *next_reg;
                        *next_reg += 1;
                        // outer.holds == (reg!=0)==expect; normalize first.
                        let norm = *next_reg;
                        *next_reg += 1;
                        items.push((
                            EwInstr::Alu {
                                op: if outer.expect { AluOp::Ne } else { AluOp::Eq },
                                a: Operand::Reg(outer.reg),
                                b: Operand::Const(Word(0)),
                                dst: norm,
                            },
                            false,
                            UnitClass::Compute,
                        ));
                        items.push((
                            EwInstr::Alu {
                                op: AluOp::And,
                                a: Operand::Reg(truth),
                                b: Operand::Reg(norm),
                                dst: c,
                            },
                            false,
                            UnitClass::Compute,
                        ));
                        Pred {
                            reg: c,
                            expect: true,
                        }
                    }
                    None => Pred {
                        reg: truth,
                        expect: true,
                    },
                };
                let inner_op = Op {
                    kind: (**inner).clone(),
                    results: op.results.clone(),
                };
                self.gen_instrs_inner(
                    &inner_op,
                    operand,
                    next_reg,
                    items,
                    get,
                    alloc,
                    Some(combined),
                )?;
            }
            other => {
                return Err(CoreError::new(format!(
                    "op not lowerable to element-wise form: {other:?}"
                )))
            }
        }
        Ok(())
    }

    // ---------------- region lowering ----------------

    /// True for ops compiled into element-wise blocks.
    fn is_simple(kind: &OpKind) -> bool {
        matches!(
            kind,
            OpKind::ConstI(..)
                | OpKind::Bin(..)
                | OpKind::Select(..)
                | OpKind::Cast { .. }
                | OpKind::SramRead { .. }
                | OpKind::SramWrite { .. }
                | OpKind::SramDecFetch { .. }
                | OpKind::DramRead { .. }
                | OpKind::DramWrite { .. }
                | OpKind::AllocPop { .. }
                | OpKind::AllocPush { .. }
                | OpKind::Predicated { .. }
        )
    }

    /// Lowers an op sequence. Returns the final cursor and terminator kind.
    /// After a `Yield`/`Condition` terminator, the cursor's tuple is the
    /// exact yielded/forwarded layout (plus any `extra` passthrough values
    /// appended by the caller's contract).
    #[allow(clippy::too_many_lines)]
    fn lower_ops(
        &mut self,
        ops: &[Op],
        mut cur: Cur,
        live_out: &[Value],
    ) -> Result<(Cur, Term), CoreError> {
        let live_after = Self::liveness(ops, live_out);
        let mut pending: Vec<&Op> = Vec::new();
        let mut i = 0;
        while i < ops.len() {
            let op = &ops[i];
            match &op.kind {
                k if Self::is_simple(k) => pending.push(op),
                OpKind::Yield(vs) => {
                    // Exact positional layout: [yields ++ passthrough]. No
                    // dedup — merges and backedges need fixed arity.
                    let mut tuple = vs.clone();
                    tuple.extend_from_slice(live_out);
                    let taken = std::mem::take(&mut pending);
                    cur = self.emit_block(&taken, cur, &tuple, "blk")?;
                    return Ok((cur, Term::Yield));
                }
                OpKind::Return(vs) => {
                    let taken = std::mem::take(&mut pending);
                    cur = self.emit_block(&taken, cur, &dedup(vs.clone()), "ret")?;
                    return Ok((cur, Term::Return));
                }
                OpKind::Exit => {
                    // Emit pending work (side effects), then drop all data.
                    let taken = std::mem::take(&mut pending);
                    cur = self.emit_block(&taken, cur, &[], "exit_fx")?;
                    return Ok((cur, Term::Exit));
                }
                OpKind::Condition { cond, fwd } => {
                    let mut tuple = vec![*cond];
                    tuple.extend(fwd.iter().copied());
                    tuple.extend_from_slice(live_out);
                    let taken = std::mem::take(&mut pending);
                    cur = self.emit_block(&taken, cur, &tuple, "cond")?;
                    return Ok((cur, Term::Condition(*cond, fwd.clone())));
                }
                OpKind::If { cond, then, else_ } => {
                    let after = self.tupleize(&live_after[i]);
                    cur = self.lower_if(op, *cond, then, else_, cur, &after, &mut pending)?;
                }
                OpKind::While {
                    inits,
                    before,
                    after,
                } => {
                    let live = self.tupleize(&live_after[i]);
                    cur = self.lower_while(op, inits, before, after, cur, &live, &mut pending)?;
                }
                OpKind::Foreach {
                    lo,
                    hi,
                    step,
                    body,
                    reduce,
                    ..
                } => {
                    let live = self.tupleize(&live_after[i]);
                    cur = self.lower_foreach(
                        op,
                        *lo,
                        *hi,
                        *step,
                        body,
                        reduce,
                        cur,
                        &live,
                        &mut pending,
                    )?;
                }
                OpKind::Fork { count, body } => {
                    let live = self.tupleize(&live_after[i]);
                    cur = self.lower_fork(op, *count, body, cur, &live, &mut pending)?;
                }
                OpKind::Replicate { ways, body } => {
                    let live = self.tupleize(&live_after[i]);
                    cur = self.lower_replicate(op, *ways, body, cur, &live, &mut pending)?;
                }
                other => {
                    return Err(CoreError::new(format!(
                        "unexpected op in dataflow lowering: {other:?} (missing pass?)"
                    )))
                }
            }
            i += 1;
        }
        let taken = std::mem::take(&mut pending);
        let out = dedup(live_out.to_vec());
        cur = self.emit_block(&taken, cur, &out, "tail")?;
        Ok((cur, Term::Yield))
    }

    /// Filter → two branch pipelines → forward merge.
    #[allow(clippy::too_many_arguments)]
    fn lower_if(
        &mut self,
        op: &Op,
        cond: Value,
        then: &Region,
        else_: &Region,
        cur: Cur,
        live_after: &[Value],
        pending: &mut Vec<&Op>,
    ) -> Result<Cur, CoreError> {
        // Passthrough: values needed after the if that are not its results.
        let passthrough: Vec<Value> = live_after
            .iter()
            .copied()
            .filter(|v| !op.results.contains(v))
            .collect();
        // Branch live-ins.
        let mut branch_in: HashSet<Value> = HashSet::new();
        Self::op_free_uses(op, &mut branch_in);
        let mut in_tuple = self.tupleize(&branch_in);
        for v in &passthrough {
            if !in_tuple.contains(v) {
                in_tuple.push(*v);
            }
        }
        if !in_tuple.contains(&cond) && !self.consts.contains_key(&cond) {
            in_tuple.push(cond);
        }
        let taken = std::mem::take(pending);
        let cur = self.emit_block(&taken, cur, &in_tuple, "if_in")?;
        // Filter node: predicated outputs on cond.
        let cpos = in_tuple.iter().position(|v| *v == cond);
        let (filter_instrs, cond_reg): (Vec<EwInstr>, Reg) = match cpos {
            Some(p) => (vec![], p as Reg),
            None => {
                // Constant condition: materialize.
                let w = self.consts[&cond];
                let r = in_tuple.len() as Reg;
                (
                    vec![EwInstr::Mov {
                        src: Operand::Const(w),
                        dst: r,
                    }],
                    r,
                )
            }
        };
        let slots: Vec<Reg> = (0..in_tuple.len() as Reg).collect();
        let then_chan = self.chan(in_tuple.len(), LinkClass::Vector);
        let else_chan = self.chan(in_tuple.len(), LinkClass::Scalar);
        let node = EwNode::new(
            in_tuple.len() as u16,
            filter_instrs,
            vec![
                OutputSpec::filtered(slots.clone(), cond_reg, true),
                OutputSpec::filtered(slots, cond_reg, false),
            ],
        );
        let regs = node.reg_count() as usize;
        let label = self.label("if.filter");
        let id = self.g.add_node(
            &label,
            Box::new(node),
            vec![cur.chan],
            vec![then_chan, else_chan],
        );
        self.note_node(
            id,
            &label,
            "filter",
            UnitClass::Compute,
            0,
            regs,
            self.category(),
        );
        // Branch tuples: results-positional + passthrough.
        let mut out_arity = op.results.len() + passthrough.len();
        let lower_branch =
            |lw: &mut Self, region: &Region, chan: ChanId| -> Result<Cur, CoreError> {
                let cur = Cur {
                    chan,
                    vars: in_tuple.clone(),
                };
                let (bcur, term) = lw.lower_ops(&region.ops, cur, &passthrough)?;
                match term {
                    Term::Yield => Ok(bcur),
                    Term::Exit => {
                        // Barrier-only output with the merge arity.
                        let arity = op.results.len() + passthrough.len();
                        let out = lw.chan(arity, LinkClass::Scalar);
                        let node = EwNode::new(
                            bcur.vars.len().max(1) as u16,
                            vec![],
                            vec![OutputSpec {
                                slots: vec![0; arity],
                                pred: Some((0, true)),
                                strip_barriers: false,
                            }],
                        );
                        // An arity-0 tuple has no reg 0; use a const-false pred
                        // via a Mov instr instead.
                        let node = if bcur.vars.is_empty() {
                            EwNode::new(
                                1,
                                vec![EwInstr::Mov {
                                    src: Operand::Const(Word(0)),
                                    dst: 0,
                                }],
                                vec![OutputSpec {
                                    slots: vec![0; arity],
                                    pred: Some((0, true)),
                                    strip_barriers: false,
                                }],
                            )
                        } else {
                            let _ = node;
                            EwNode::new(
                                bcur.vars.len() as u16,
                                vec![EwInstr::Mov {
                                    src: Operand::Const(Word(0)),
                                    dst: bcur.vars.len() as Reg,
                                }],
                                vec![OutputSpec {
                                    slots: vec![0; arity],
                                    pred: Some((bcur.vars.len() as Reg, true)),
                                    strip_barriers: false,
                                }],
                            )
                        };
                        let label = lw.label("exit.drop");
                        let id =
                            lw.g.add_node(&label, Box::new(node), vec![bcur.chan], vec![out]);
                        lw.note_node(
                            id,
                            &label,
                            "filter",
                            UnitClass::Compute,
                            1,
                            1,
                            lw.category(),
                        );
                        Ok(Cur {
                            chan: out,
                            vars: vec![],
                        })
                    }
                    _ => Err(CoreError::new("if branch must end in yield or exit")),
                }
            };
        let then_cur = lower_branch(self, then, then_chan)?;
        let else_cur = lower_branch(self, else_, else_chan)?;
        if !then_cur.vars.is_empty() {
            out_arity = then_cur.vars.len();
        } else if !else_cur.vars.is_empty() {
            out_arity = else_cur.vars.len();
        }
        let merged = self.chan(out_arity, LinkClass::Vector);
        let label = self.label("if.merge");
        let id = self.g.add_node(
            &label,
            Box::new(FwdMergeNode::new()),
            vec![then_cur.chan, else_cur.chan],
            vec![merged],
        );
        self.note_node(
            id,
            &label,
            "fwd-merge",
            UnitClass::Compute,
            0,
            0,
            self.category(),
        );
        let mut vars = op.results.clone();
        vars.extend(passthrough);
        Ok(Cur { chan: merged, vars })
    }

    /// fb-merge header → condition filter → body/backedge → flatten exit.
    #[allow(clippy::too_many_arguments)]
    fn lower_while(
        &mut self,
        op: &Op,
        inits: &[Value],
        before: &Region,
        after: &Region,
        cur: Cur,
        live_after: &[Value],
        pending: &mut Vec<&Op>,
    ) -> Result<Cur, CoreError> {
        let passthrough: Vec<Value> = live_after
            .iter()
            .copied()
            .filter(|v| !op.results.contains(v))
            .collect();
        // Loop-invariant captures must also ride the tuple (no cross-wave
        // broadcast inside a recirculating region).
        let mut free: HashSet<Value> = HashSet::new();
        Self::op_free_uses(op, &mut free);
        // An init value normally rides only the carried slot (renamed to the
        // region arg at the body head). But if a region also references the
        // value directly — e.g. through a pre-loop alias of a reassigned
        // variable — that reference means "the value from before the loop"
        // on every iteration, so it additionally needs an invariant slot.
        let mut invariant: Vec<Value> = self
            .tupleize(&free)
            .into_iter()
            .filter(|v| !inits.contains(v) || body_uses(before, *v) || body_uses(after, *v))
            .collect();
        invariant.retain(|v| !passthrough.contains(v));
        // Loop tuple: [carried (as before.args) ++ invariant ++ passthrough].
        let carried_args = before.args.clone();
        let mut fwd_tuple: Vec<Value> = inits.to_vec();
        fwd_tuple.extend(invariant.iter().copied());
        fwd_tuple.extend(passthrough.iter().copied());
        let taken = std::mem::take(pending);
        let cur = self.emit_block(&taken, cur, &fwd_tuple, "loop_in")?;
        let mut loop_tuple: Vec<Value> = carried_args.clone();
        loop_tuple.extend(invariant.iter().copied());
        loop_tuple.extend(passthrough.iter().copied());
        // Sub-word packing (§V-B d) applies to the recirculating tuple.
        let (phys_tuple, packing) = if self.opts.pack_subwords {
            self.pack_layout(&loop_tuple)
        } else {
            (loop_tuple.clone(), None)
        };
        let arity = phys_tuple.len();
        // Optional pack node on the forward edge.
        let fwd_cur = if let Some(pack) = &packing {
            self.emit_pack(cur, &fwd_tuple, pack, true)?
        } else {
            cur
        };
        let body_chan = self.chan(arity, LinkClass::Vector);
        let back_chan = self.chan_raw(arity, LinkClass::Vector);
        let label = self.label("while.head");
        let id = self.g.add_node(
            &label,
            Box::new(FbMergeNode::new()),
            vec![fwd_cur.chan, back_chan],
            vec![body_chan],
        );
        self.note_node(
            id,
            &label,
            "fb-merge",
            UnitClass::Compute,
            0,
            0,
            self.category(),
        );
        // One deadlock-avoidance buffer MU per recirculating region.
        self.add_buffer_mu(Category::Deadlock, "while.buf");
        self.depth += 1;
        // Unpack at the body head if packed.
        let head_cur = if let Some(pack) = &packing {
            self.emit_unpack(
                Cur {
                    chan: body_chan,
                    vars: phys_tuple.clone(),
                },
                &loop_tuple,
                pack,
            )?
        } else {
            Cur {
                chan: body_chan,
                vars: loop_tuple.clone(),
            }
        };
        // Lower `before` (condition) with everything else passing through.
        let mut before_extra: Vec<Value> = invariant.clone();
        before_extra.extend(passthrough.iter().copied());
        let (cond_cur, term) = self.lower_ops(&before.ops, head_cur, &before_extra)?;
        let Term::Condition(cond, fwd_vals) = term else {
            return Err(CoreError::new("while before-region must end in condition"));
        };
        // cond_cur tuple: [cond, fwd..., invariant..., passthrough...].
        let cpos = cond_cur
            .vars
            .iter()
            .position(|v| *v == cond)
            .ok_or_else(|| CoreError::new("condition value missing from tuple"))?;
        // Body-side tuple: after.args get fwd values; exit side gets fwd too.
        let body_in_tuple: Vec<Value> = {
            let mut t: Vec<Value> = fwd_vals.clone();
            t.extend(invariant.iter().copied());
            t.extend(passthrough.iter().copied());
            t
        };
        let slots: Vec<Reg> = body_in_tuple
            .iter()
            .map(|v| {
                cond_cur
                    .vars
                    .iter()
                    .position(|x| x == v)
                    .map(|p| p as Reg)
                    .ok_or_else(|| CoreError::new(format!("loop value %{} missing", v.0)))
            })
            .collect::<Result<_, _>>()?;
        let body_path = self.chan(body_in_tuple.len(), LinkClass::Vector);
        let exit_path = self.chan(body_in_tuple.len(), LinkClass::Scalar);
        let node = EwNode::new(
            cond_cur.vars.len() as u16,
            vec![],
            vec![
                OutputSpec::filtered(slots.clone(), cpos as Reg, true),
                OutputSpec::filtered(slots, cpos as Reg, false),
            ],
        );
        let regs = node.reg_count() as usize;
        let label = self.label("while.filter");
        let id = self.g.add_node(
            &label,
            Box::new(node),
            vec![cond_cur.chan],
            vec![body_path, exit_path],
        );
        self.note_node(
            id,
            &label,
            "filter",
            UnitClass::Compute,
            0,
            regs,
            self.category(),
        );
        // Body: after.args bound positionally to fwd values.
        let mut body_vars: Vec<Value> = after.args.clone();
        body_vars.extend(invariant.iter().copied());
        body_vars.extend(passthrough.iter().copied());
        // The body channel carries fwd-val layout; rebind names.
        let body_cur = Cur {
            chan: body_path,
            vars: body_vars.clone(),
        };
        let mut body_extra = invariant.clone();
        body_extra.extend(passthrough.iter().copied());
        let (body_out, bterm) = self.lower_ops(&after.ops, body_cur, &body_extra)?;
        // Backedge: yielded next-carried ++ invariant ++ passthrough (packed).
        match bterm {
            Term::Yield => {
                let back_cur = if let Some(pack) = &packing {
                    let logical = body_out.vars.clone();
                    self.emit_pack(body_out, &logical, pack, false)?
                } else {
                    body_out
                };
                // Wire to the backedge channel via an identity hop (the
                // channel already exists; reuse by adding a forwarding node).
                let label = self.label("while.back");
                let node = EwNode::passthrough(arity as u16);
                let id =
                    self.g
                        .add_node(&label, Box::new(node), vec![back_cur.chan], vec![back_chan]);
                self.note_node(
                    id,
                    &label,
                    "ew",
                    UnitClass::Compute,
                    0,
                    arity,
                    self.category(),
                );
            }
            Term::Exit => {
                // All threads exit: the backedge still needs barriers.
                let label = self.label("while.back.drop");
                let node = EwNode::new(
                    1,
                    vec![EwInstr::Mov {
                        src: Operand::Const(Word(0)),
                        dst: 0,
                    }],
                    vec![OutputSpec {
                        slots: vec![0; arity],
                        pred: Some((0, true)),
                        strip_barriers: false,
                    }],
                );
                let id =
                    self.g
                        .add_node(&label, Box::new(node), vec![body_out.chan], vec![back_chan]);
                self.note_node(
                    id,
                    &label,
                    "filter",
                    UnitClass::Compute,
                    1,
                    1,
                    self.category(),
                );
            }
            _ => return Err(CoreError::new("while body must end in yield or exit")),
        }
        self.depth -= 1;
        // Exit edge: strip one barrier level.
        let exit_tuple: Vec<Value> = {
            let mut t: Vec<Value> = op.results.to_vec();
            t.extend(passthrough.iter().copied());
            t
        };
        let stripped = self.chan(body_in_tuple.len(), LinkClass::Scalar);
        let label = self.label("while.exit");
        let id = self.g.add_node(
            &label,
            Box::new(FlattenNode::new()),
            vec![exit_path],
            vec![stripped],
        );
        self.note_node(
            id,
            &label,
            "flatten",
            UnitClass::Compute,
            0,
            0,
            self.category(),
        );
        // Reorder [fwd, invariant, passthrough] → [results, passthrough].
        let exit_in_vars: Vec<Value> = {
            // Rename fwd positions to result values.
            let mut t: Vec<Value> = op.results.to_vec();
            t.extend(invariant.iter().copied());
            t.extend(passthrough.iter().copied());
            t
        };
        let cur = Cur {
            chan: stripped,
            vars: exit_in_vars,
        };
        self.emit_block(&[], cur, &exit_tuple, "while_out")
    }

    /// Counter (+ broadcast) → body → reduce → zip rejoin.
    #[allow(clippy::too_many_arguments)]
    fn lower_foreach(
        &mut self,
        op: &Op,
        lo: Value,
        hi: Value,
        step: Value,
        body: &Region,
        reduce: &[AluOp],
        cur: Cur,
        live_after: &[Value],
        pending: &mut Vec<&Op>,
    ) -> Result<Cur, CoreError> {
        if reduce.len() > 1 {
            return Err(CoreError::new(
                "foreach with more than one reduction is not supported",
            ));
        }
        let passthrough: Vec<Value> = live_after
            .iter()
            .copied()
            .filter(|v| !op.results.contains(v))
            .collect();
        let index = body.args[0];
        let mut free: HashSet<Value> = HashSet::new();
        Self::op_free_uses(op, &mut free);
        free.remove(&index);
        let body_live_in: Vec<Value> = self
            .tupleize(&free)
            .into_iter()
            .filter(|v| ![lo, hi, step].contains(v) || body_uses(body, *v))
            .collect();
        // Parent tuple entering the counter: bounds + live-ins + passthrough.
        let mut in_tuple: Vec<Value> = Vec::new();
        for v in [lo, hi, step] {
            if !self.consts.contains_key(&v) && !in_tuple.contains(&v) {
                in_tuple.push(v);
            }
        }
        for v in body_live_in.iter().chain(passthrough.iter()) {
            if !in_tuple.contains(v) {
                in_tuple.push(*v);
            }
        }
        let taken = std::mem::take(pending);
        let cur = self.emit_block(&taken, cur, &in_tuple, "fe_in")?;
        let operand_of = |v: Value, tuple: &[Value], consts: &HashMap<Value, Word>| -> Operand {
            match consts.get(&v) {
                Some(w) => Operand::Const(*w),
                None => Operand::Reg(tuple.iter().position(|x| *x == v).expect("in tuple") as Reg),
            }
        };
        let min = operand_of(lo, &in_tuple, &self.consts);
        let max = operand_of(hi, &in_tuple, &self.consts);
        let stp = operand_of(step, &in_tuple, &self.consts);
        let child = self.chan(1, LinkClass::Vector);
        let parent = self.chan(in_tuple.len(), LinkClass::Vector);
        let label = self.label("foreach.counter");
        let id = self.g.add_node(
            &label,
            Box::new(CounterNode::new(min, max, stp)),
            vec![cur.chan],
            vec![child, parent],
        );
        self.note_node(
            id,
            &label,
            "counter",
            UnitClass::Compute,
            0,
            in_tuple.len(),
            self.category(),
        );
        self.depth += 1;
        // Broadcast live-ins onto children (scalar parent link), if any.
        let body_cur = if body_live_in.is_empty() {
            Cur {
                chan: child,
                vars: vec![index],
            }
        } else {
            // Split parent into a data-only broadcast feed and the bypass.
            let bcast_feed = self.chan(body_live_in.len(), LinkClass::Scalar);
            let bypass = self.chan(in_tuple.len(), LinkClass::Vector);
            let feed_slots: Vec<Reg> = body_live_in
                .iter()
                .map(|v| in_tuple.iter().position(|x| x == v).expect("live-in") as Reg)
                .collect();
            let all_slots: Vec<Reg> = (0..in_tuple.len() as Reg).collect();
            let node = EwNode::new(
                in_tuple.len() as u16,
                vec![],
                vec![
                    OutputSpec::stripped(feed_slots),
                    OutputSpec::plain(all_slots),
                ],
            );
            let label = self.label("foreach.split");
            let id = self.g.add_node(
                &label,
                Box::new(node),
                vec![parent],
                vec![bcast_feed, bypass],
            );
            self.note_node(
                id,
                &label,
                "ew",
                UnitClass::Compute,
                0,
                in_tuple.len(),
                self.category(),
            );
            let joined = self.chan(1 + body_live_in.len(), LinkClass::Vector);
            let label = self.label("foreach.bcast");
            let id = self.g.add_node(
                &label,
                Box::new(BroadcastNode::new(1)),
                vec![bcast_feed, child],
                vec![joined],
            );
            self.note_node(
                id,
                &label,
                "broadcast",
                UnitClass::Compute,
                0,
                0,
                self.category(),
            );
            let mut vars = vec![index];
            vars.extend(body_live_in.iter().copied());
            // Re-route the bypass as the new parent for the rejoin below.
            self.foreach_bypass = Some(bypass);
            Cur { chan: joined, vars }
        };
        let bypass_chan = self.foreach_bypass.take().unwrap_or(parent);
        let (body_out, bterm) = self.lower_ops(&body.ops, body_cur, &[])?;
        // Reduce the yields (void reduce when none) back to parent level.
        let reduced_arity = if reduce.is_empty() { 0 } else { 1 };
        let reduced = self.chan(reduced_arity, LinkClass::Vector);
        let node: Box<dyn revet_machine::Node> = match reduce.first() {
            Some(opk) => Box::new(ReduceNode::new(*opk, opk.reduction_identity())),
            None => Box::new(ReduceNode::void()),
        };
        match bterm {
            Term::Yield => {
                let label = self.label("foreach.reduce");
                let id = self
                    .g
                    .add_node(&label, node, vec![body_out.chan], vec![reduced]);
                self.note_node(
                    id,
                    &label,
                    "reduce",
                    UnitClass::Compute,
                    0,
                    1,
                    self.category(),
                );
            }
            Term::Exit => {
                // All iterations exit: reduce still sees barriers.
                let label = self.label("foreach.reduce");
                let id = self
                    .g
                    .add_node(&label, node, vec![body_out.chan], vec![reduced]);
                self.note_node(
                    id,
                    &label,
                    "reduce",
                    UnitClass::Compute,
                    0,
                    1,
                    self.category(),
                );
            }
            _ => return Err(CoreError::new("foreach body must end in yield or exit")),
        }
        self.depth -= 1;
        // Zip the reduced results with the parent bypass.
        let mut zip_vars: Vec<Value> = op.results.to_vec();
        zip_vars.extend(in_tuple.iter().copied());
        let zipped = self.chan(zip_vars.len(), LinkClass::Vector);
        let node = EwNode::passthrough(zip_vars.len() as u16);
        let label = self.label("foreach.join");
        let id = self.g.add_node(
            &label,
            Box::new(node),
            vec![reduced, bypass_chan],
            vec![zipped],
        );
        self.note_node(
            id,
            &label,
            "ew",
            UnitClass::Compute,
            0,
            zip_vars.len(),
            self.category(),
        );
        // Final tuple: results ++ passthrough.
        let mut out_tuple: Vec<Value> = op.results.to_vec();
        out_tuple.extend(passthrough.iter().copied());
        self.emit_block(
            &[],
            Cur {
                chan: zipped,
                vars: zip_vars,
            },
            &out_tuple,
            "fe_out",
        )
    }

    /// Fork: duplicate live values per spawn (no hierarchy).
    #[allow(clippy::too_many_arguments)]
    fn lower_fork(
        &mut self,
        op: &Op,
        count: Value,
        body: &Region,
        cur: Cur,
        live_after: &[Value],
        pending: &mut Vec<&Op>,
    ) -> Result<Cur, CoreError> {
        let passthrough: Vec<Value> = live_after
            .iter()
            .copied()
            .filter(|v| !op.results.contains(v))
            .collect();
        let index = body.args[0];
        let mut free: HashSet<Value> = HashSet::new();
        Self::op_free_uses(op, &mut free);
        free.remove(&index);
        let mut in_tuple: Vec<Value> = self.tupleize(&free);
        for v in &passthrough {
            if !in_tuple.contains(v) {
                in_tuple.push(*v);
            }
        }
        let taken = std::mem::take(pending);
        let cur = self.emit_block(&taken, cur, &in_tuple, "fork_in")?;
        let count_op = match self.consts.get(&count) {
            Some(w) => Operand::Const(*w),
            None => Operand::Reg(
                in_tuple
                    .iter()
                    .position(|v| *v == count)
                    .ok_or_else(|| CoreError::new("fork count missing from tuple"))?
                    as Reg,
            ),
        };
        let spawned = self.chan(in_tuple.len() + 1, LinkClass::Vector);
        let label = self.label("fork");
        let id = self.g.add_node(
            &label,
            Box::new(ForkNode::new(count_op)),
            vec![cur.chan],
            vec![spawned],
        );
        self.note_node(
            id,
            &label,
            "fork",
            UnitClass::Compute,
            0,
            in_tuple.len() + 1,
            self.category(),
        );
        let mut body_vars = in_tuple.clone();
        body_vars.push(index);
        let body_cur = Cur {
            chan: spawned,
            vars: body_vars,
        };
        let (out, term) = self.lower_ops(&body.ops, body_cur, &passthrough)?;
        match term {
            Term::Yield => {
                // out tuple = [yields ++ passthrough]; rename yields to the
                // fork results.
                let mut vars: Vec<Value> = op.results.to_vec();
                vars.extend(passthrough.iter().copied());
                Ok(Cur {
                    chan: out.chan,
                    vars,
                })
            }
            Term::Exit => Ok(Cur {
                chan: out.chan,
                vars: vec![],
            }),
            _ => Err(CoreError::new("fork body must end in yield or exit")),
        }
    }

    /// Replicate: key-based distribution filters, `ways` body copies, and a
    /// forward-merge tree (§V-C d), with allocator hoisting and value
    /// bufferization (§V-B b) when enabled.
    #[allow(clippy::too_many_arguments, clippy::too_many_lines)]
    fn lower_replicate(
        &mut self,
        op: &Op,
        ways: u32,
        body: &Region,
        cur: Cur,
        live_after: &[Value],
        pending: &mut Vec<&Op>,
    ) -> Result<Cur, CoreError> {
        self.outer_par = self.outer_par.saturating_mul(ways);
        let passthrough: Vec<Value> = live_after
            .iter()
            .copied()
            .filter(|v| !op.results.contains(v))
            .collect();
        let mut free: HashSet<Value> = HashSet::new();
        Self::op_free_uses(op, &mut free);
        let body_live_in = self.tupleize(&free);

        // Allocator hoisting (§V-B b): if the body's first allocation is a
        // top-level AllocPop, pop it *before* distribution and use the
        // pointer's low bits as the distribution key.
        let hoist = self.opts.hoist_allocators;
        let hoisted: Option<(usize, revet_machine::AllocId, Value)> = if hoist {
            body.ops.iter().enumerate().find_map(|(i, o)| {
                if let OpKind::AllocPop { alloc } = o.kind {
                    Some((i, alloc, o.results[0]))
                } else {
                    None
                }
            })
        } else {
            None
        };
        // Find the matching region-end push (moved after the merge so a
        // recycled pointer cannot race the buffered values, Fig. 10 b).
        let hoisted_push: Option<usize> = hoisted.as_ref().and_then(|(_, alloc, ptr)| {
            body.ops.iter().position(|o| {
                matches!(&o.kind, OpKind::AllocPush { alloc: a, ptr: p } if a == alloc && p == ptr)
            })
        });

        let mut in_tuple: Vec<Value> = body_live_in.clone();
        for v in passthrough.iter() {
            if !in_tuple.contains(v) {
                in_tuple.push(*v);
            }
        }
        let taken = std::mem::take(pending);
        let mut cur = self.emit_block(&taken, cur, &in_tuple, "rep_in")?;

        // Pop the hoisted pointer in a dedicated MU context feeding the
        // distribution network.
        if let Some((_, alloc, ptr)) = &hoisted {
            let mut out_tuple = in_tuple.clone();
            out_tuple.push(*ptr);
            let chan = self.chan(out_tuple.len(), LinkClass::Vector);
            let node = EwNode::new(
                in_tuple.len() as u16,
                vec![EwInstr::AllocPop {
                    alloc: *alloc,
                    dst: in_tuple.len() as Reg,
                }],
                vec![OutputSpec::plain(
                    (0..=in_tuple.len() as Reg).collect::<Vec<_>>(),
                )],
            );
            let label = self.label("rep.alloc");
            let id = self
                .g
                .add_node(&label, Box::new(node), vec![cur.chan], vec![chan]);
            self.note_node(
                id,
                &label,
                "ew",
                UnitClass::Memory,
                1,
                out_tuple.len(),
                Category::Replicate,
            );
            in_tuple = out_tuple.clone();
            cur = Cur {
                chan,
                vars: out_tuple,
            };
        }

        // Bufferization (§V-B b): values not used inside the body are parked
        // in an SRAM keyed by the hoisted pointer instead of riding through.
        let mut buffered: Vec<Value> = Vec::new();
        let mut buf_sram = None;
        if self.opts.bufferize_replicate {
            if let Some((_, _, ptr)) = &hoisted {
                buffered = passthrough
                    .iter()
                    .copied()
                    .filter(|v| !body_live_in.contains(v))
                    .collect();
                if !buffered.is_empty() {
                    let threads = self.opts.threads.unwrap_or(crate::passes::DEFAULT_THREADS);
                    let sram = self.module.add_sram(
                        format!("rep_buf{}", self.label_n),
                        buffered.len() as u32 * threads,
                    );
                    buf_sram = Some(sram);
                    // Store values before distribution.
                    let keep: Vec<Value> = in_tuple
                        .iter()
                        .copied()
                        .filter(|v| !buffered.contains(v))
                        .collect();
                    let mut instrs = Vec::new();
                    let ppos = in_tuple
                        .iter()
                        .position(|v| v == ptr)
                        .expect("ptr in tuple") as Reg;
                    let k = buffered.len() as u32;
                    let scratch = in_tuple.len() as Reg;
                    for (j, v) in buffered.iter().enumerate() {
                        let vpos = in_tuple
                            .iter()
                            .position(|x| x == v)
                            .expect("buffered value") as Reg;
                        instrs.push(EwInstr::Alu {
                            op: AluOp::Mul,
                            a: Operand::Reg(ppos),
                            b: Operand::Const(Word(k)),
                            dst: scratch,
                        });
                        instrs.push(EwInstr::Alu {
                            op: AluOp::Add,
                            a: Operand::Reg(scratch),
                            b: Operand::Const(Word(j as u32)),
                            dst: scratch,
                        });
                        instrs.push(EwInstr::SramWrite {
                            region: sram,
                            addr: Operand::Reg(scratch),
                            val: Operand::Reg(vpos),
                            pred: None,
                        });
                    }
                    let out_keep: Vec<Reg> = keep
                        .iter()
                        .map(|v| in_tuple.iter().position(|x| x == v).expect("kept") as Reg)
                        .collect();
                    let chan = self.chan(keep.len(), LinkClass::Vector);
                    let node = EwNode::new(
                        in_tuple.len() as u16 + 1,
                        instrs,
                        vec![OutputSpec::plain(out_keep)],
                    );
                    let label = self.label("rep.bufstore");
                    let n_instrs = 3 * buffered.len();
                    let id = self
                        .g
                        .add_node(&label, Box::new(node), vec![cur.chan], vec![chan]);
                    self.note_node(
                        id,
                        &label,
                        "ew",
                        UnitClass::Memory,
                        n_instrs,
                        keep.len() + 1,
                        Category::Buffer,
                    );
                    in_tuple = keep.clone();
                    cur = Cur { chan, vars: keep };
                }
            }
        }

        // Distribution key: hoisted pointer low bits, or the first live
        // value as a static hash (the fixed-allocation baseline of Fig. 14).
        let key_pos: Reg = match &hoisted {
            Some((_, _, ptr)) => in_tuple.iter().position(|v| v == ptr).expect("ptr") as Reg,
            None => 0,
        };
        // Build dist filters: key % ways == i for each region.
        let keyed = in_tuple.clone();
        let kreg = keyed.len() as Reg;
        let mut dist_instrs = vec![EwInstr::Alu {
            op: AluOp::RemU,
            a: Operand::Reg(key_pos),
            b: Operand::Const(Word(ways)),
            dst: kreg,
        }];
        let mut outs = Vec::new();
        let mut out_chans = Vec::new();
        for i in 0..ways {
            let eq = kreg + 1 + i as Reg;
            dist_instrs.push(EwInstr::Alu {
                op: AluOp::Eq,
                a: Operand::Reg(kreg),
                b: Operand::Const(Word(i)),
                dst: eq,
            });
            outs.push(OutputSpec::filtered(
                (0..keyed.len() as Reg).collect::<Vec<_>>(),
                eq,
                true,
            ));
            out_chans.push(self.chan(keyed.len(), LinkClass::Scalar));
        }
        let node = EwNode::new(keyed.len() as u16, dist_instrs, outs);
        let regs = node.reg_count() as usize;
        let label = self.label("rep.dist");
        let id = self.g.add_node(
            &label,
            Box::new(node),
            vec![cur.chan],
            vec![out_chans.clone()].concat(),
        );
        self.note_node(
            id,
            &label,
            "filter",
            UnitClass::Compute,
            1 + ways as usize,
            regs,
            Category::Replicate,
        );
        // One retiming buffer MU in the distribution network (§V-C d).
        self.add_buffer_mu(Category::Retime, "rep.retime");

        // Late unrolling: lower the body once per way.
        self.in_replicate += 1;
        let mut region_outs: Vec<Cur> = Vec::new();
        for (i, chan) in out_chans.iter().enumerate() {
            let mut body_vars = keyed.clone();
            let body_cur = Cur {
                chan: *chan,
                vars: std::mem::take(&mut body_vars),
            };
            // Strip the hoisted pop/push from the body copy.
            let body_ops: Vec<Op> = body
                .ops
                .iter()
                .enumerate()
                .filter(|(j, _)| {
                    Some(*j) != hoisted.as_ref().map(|(j, _, _)| *j) && Some(*j) != hoisted_push
                })
                .map(|(_, o)| o.clone())
                .collect();
            let mut extra: Vec<Value> = passthrough
                .iter()
                .copied()
                .filter(|v| !buffered.contains(v))
                .collect();
            if let Some((_, _, ptr)) = &hoisted {
                if !extra.contains(ptr) {
                    extra.push(*ptr);
                }
            }
            let (out, term) = self.lower_ops(&body_ops, body_cur, &extra)?;
            match term {
                Term::Yield => region_outs.push(out),
                Term::Exit => region_outs.push(out),
                _ => return Err(CoreError::new("replicate body must end in yield or exit")),
            }
            let _ = i;
        }
        self.in_replicate -= 1;
        // Merge tree.
        let out_arity = region_outs.iter().map(|c| c.vars.len()).max().unwrap_or(0);
        let mut frontier: Vec<ChanId> = region_outs.iter().map(|c| c.chan).collect();
        while frontier.len() > 1 {
            let mut next = Vec::new();
            for pair in frontier.chunks(2) {
                if pair.len() == 2 {
                    let merged = self.chan(out_arity, LinkClass::Scalar);
                    let label = self.label("rep.merge");
                    let id = self.g.add_node(
                        &label,
                        Box::new(FwdMergeNode::new()),
                        vec![pair[0], pair[1]],
                        vec![merged],
                    );
                    self.note_node(
                        id,
                        &label,
                        "fwd-merge",
                        UnitClass::Compute,
                        0,
                        0,
                        Category::Replicate,
                    );
                    next.push(merged);
                } else {
                    next.push(pair[0]);
                }
            }
            frontier = next;
        }
        let merged_chan = frontier[0];
        let mut merged_vars: Vec<Value> = op.results.to_vec();
        for v in region_outs
            .iter()
            .find(|c| !c.vars.is_empty())
            .map(|c| c.vars.clone())
            .unwrap_or_default()
            .iter()
            .skip(op.results.len())
        {
            merged_vars.push(*v);
        }
        let mut cur = Cur {
            chan: merged_chan,
            vars: merged_vars,
        };
        // Release the hoisted pointer after the merge even when nothing was
        // bufferized (the body's push was stripped; dropping it entirely
        // would drain the pool and deadlock the distribution network).
        if buf_sram.is_none() {
            if let Some((_, alloc, ptr)) = &hoisted {
                let ppos = cur
                    .vars
                    .iter()
                    .position(|v| v == ptr)
                    .ok_or_else(|| CoreError::new("hoisted pointer lost through replicate"))?
                    as Reg;
                let out_vars: Vec<Value> = cur.vars.iter().copied().filter(|v| v != ptr).collect();
                let slots: Vec<Reg> = cur
                    .vars
                    .iter()
                    .enumerate()
                    .filter(|(_, v)| *v != ptr)
                    .map(|(i, _)| i as Reg)
                    .collect();
                let chan = self.chan(out_vars.len(), LinkClass::Vector);
                let node = EwNode::new(
                    cur.vars.len() as u16,
                    vec![EwInstr::AllocPush {
                        alloc: *alloc,
                        src: Operand::Reg(ppos),
                        pred: None,
                    }],
                    vec![OutputSpec::plain(slots)],
                );
                let label = self.label("rep.free");
                let id = self
                    .g
                    .add_node(&label, Box::new(node), vec![cur.chan], vec![chan]);
                self.note_node(
                    id,
                    &label,
                    "ew",
                    UnitClass::Memory,
                    1,
                    cur.vars.len(),
                    Category::Replicate,
                );
                cur = Cur {
                    chan,
                    vars: out_vars,
                };
            }
        }
        // Reload buffered values and release the hoisted pointer.
        if let (Some(sram), Some((_, alloc, ptr))) = (buf_sram, &hoisted) {
            let ppos = cur
                .vars
                .iter()
                .position(|v| v == ptr)
                .ok_or_else(|| CoreError::new("hoisted pointer lost through replicate"))?
                as Reg;
            let mut instrs = Vec::new();
            let k = buffered.len() as u32;
            let base = cur.vars.len() as Reg;
            for (j, _) in buffered.iter().enumerate() {
                let addr = base + 2 * j as Reg;
                let dst = base + 2 * j as Reg + 1;
                instrs.push(EwInstr::Alu {
                    op: AluOp::Mul,
                    a: Operand::Reg(ppos),
                    b: Operand::Const(Word(k)),
                    dst: addr,
                });
                instrs.push(EwInstr::Alu {
                    op: AluOp::Add,
                    a: Operand::Reg(addr),
                    b: Operand::Const(Word(j as u32)),
                    dst: addr,
                });
                instrs.push(EwInstr::SramRead {
                    region: sram,
                    addr: Operand::Reg(addr),
                    dst,
                    pred: None,
                });
            }
            instrs.push(EwInstr::AllocPush {
                alloc: *alloc,
                src: Operand::Reg(ppos),
                pred: None,
            });
            let mut out_vars: Vec<Value> = cur.vars.iter().copied().filter(|v| v != ptr).collect();
            out_vars.extend(buffered.iter().copied());
            let mut slots: Vec<Reg> = cur
                .vars
                .iter()
                .enumerate()
                .filter(|(_, v)| *v != ptr)
                .map(|(i, _)| i as Reg)
                .collect();
            for (j, _) in buffered.iter().enumerate() {
                slots.push(base + 2 * j as Reg + 1);
            }
            let n_instrs = instrs.len();
            let chan = self.chan(out_vars.len(), LinkClass::Vector);
            let node = EwNode::new(
                (base + 2 * buffered.len() as Reg).max(1),
                instrs,
                vec![OutputSpec::plain(slots)],
            );
            let label = self.label("rep.bufload");
            let id = self
                .g
                .add_node(&label, Box::new(node), vec![cur.chan], vec![chan]);
            self.note_node(
                id,
                &label,
                "ew",
                UnitClass::Memory,
                n_instrs,
                out_vars.len() + 2,
                Category::Buffer,
            );
            cur = Cur {
                chan,
                vars: out_vars,
            };
        }
        // Final tuple: results ++ passthrough.
        let mut out_tuple: Vec<Value> = op.results.to_vec();
        out_tuple.extend(passthrough.iter().copied());
        self.emit_block(&[], cur, &out_tuple, "rep_out")
    }

    // ---------------- sub-word packing ----------------

    /// Computes a packed layout for a loop tuple: I8 values pack 4-per-word,
    /// I16 2-per-word; I32 values keep their own slots. Packing is
    /// *positional* so that the forward edge (inits), the loop args, and the
    /// backedge (yields) — which share a layout but not SSA values — can all
    /// use one description.
    fn pack_layout(&self, tuple: &[Value]) -> (Vec<Value>, Option<Packing>) {
        let mut full: Vec<usize> = Vec::new();
        let mut bytes: Vec<usize> = Vec::new();
        let mut halves: Vec<usize> = Vec::new();
        for (i, v) in tuple.iter().enumerate() {
            match self.func.ty(*v) {
                Ty::I8 => bytes.push(i),
                Ty::I16 => halves.push(i),
                _ => full.push(i),
            }
        }
        if bytes.len() + halves.len() < 2 {
            return (tuple.to_vec(), None);
        }
        let mut groups: Vec<PackGroup> = Vec::new();
        for chunk in bytes.chunks(4) {
            groups.push(PackGroup {
                positions: chunk.to_vec(),
                width: 8,
            });
        }
        for chunk in halves.chunks(2) {
            groups.push(PackGroup {
                positions: chunk.to_vec(),
                width: 16,
            });
        }
        let mut phys: Vec<Value> = full.iter().map(|&i| tuple[i]).collect();
        for g in &groups {
            phys.push(tuple[g.positions[0]]);
        }
        (phys, Some(Packing { full, groups }))
    }

    /// Emits a packing EW node: logical tuple → physical (packed) tuple.
    /// `logical` supplies the concrete values occupying the packed layout's
    /// positions on this edge.
    fn emit_pack(
        &mut self,
        cur: Cur,
        logical: &[Value],
        pack: &Packing,
        _forward_edge: bool,
    ) -> Result<Cur, CoreError> {
        let mut instrs = Vec::new();
        let mut out_slots: Vec<Reg> = pack.full.iter().map(|&i| i as Reg).collect();
        let mut scratch = logical.len() as Reg;
        for g in &pack.groups {
            let dst = scratch;
            scratch += 2;
            instrs.push(EwInstr::Mov {
                src: Operand::Reg(g.positions[0] as Reg),
                dst,
            });
            for (j, &m) in g.positions.iter().enumerate().skip(1) {
                let t = dst + 1;
                instrs.push(EwInstr::Alu {
                    op: AluOp::Shl,
                    a: Operand::Reg(m as Reg),
                    b: Operand::Const(Word((g.width * j) as u32)),
                    dst: t,
                });
                instrs.push(EwInstr::Alu {
                    op: AluOp::Or,
                    a: Operand::Reg(dst),
                    b: Operand::Reg(t),
                    dst,
                });
            }
            out_slots.push(dst);
        }
        let arity = out_slots.len();
        let chan = self.chan(arity, LinkClass::Vector);
        let n = instrs.len();
        let node = EwNode::new(scratch, instrs, vec![OutputSpec::plain(out_slots)]);
        let label = self.label("pack");
        let id = self
            .g
            .add_node(&label, Box::new(node), vec![cur.chan], vec![chan]);
        self.note_node(
            id,
            &label,
            "ew",
            UnitClass::Compute,
            n,
            scratch as usize,
            self.category(),
        );
        let mut phys_vars: Vec<Value> = pack.full.iter().map(|&i| logical[i]).collect();
        for g in &pack.groups {
            phys_vars.push(logical[g.positions[0]]);
        }
        Ok(Cur {
            chan,
            vars: phys_vars,
        })
    }

    /// Emits an unpacking EW node: physical tuple → logical tuple.
    fn emit_unpack(
        &mut self,
        cur: Cur,
        logical: &[Value],
        pack: &Packing,
    ) -> Result<Cur, CoreError> {
        let mut instrs = Vec::new();
        // Physical layout: full positions first, then one slot per group.
        let n_full = pack.full.len();
        let mut out_slots: Vec<Reg> = vec![0; logical.len()];
        let mut scratch = cur.vars.len() as Reg;
        for (pi, &lpos) in pack.full.iter().enumerate() {
            out_slots[lpos] = pi as Reg;
        }
        for (gi, g) in pack.groups.iter().enumerate() {
            let slot = (n_full + gi) as Reg;
            for (lane, &lpos) in g.positions.iter().enumerate() {
                let dst = scratch;
                scratch += 1;
                instrs.push(EwInstr::Alu {
                    op: AluOp::ShrU,
                    a: Operand::Reg(slot),
                    b: Operand::Const(Word((g.width * lane) as u32)),
                    dst,
                });
                instrs.push(EwInstr::Alu {
                    op: AluOp::And,
                    a: Operand::Reg(dst),
                    b: Operand::Const(Word(if g.width == 8 { 0xFF } else { 0xFFFF })),
                    dst,
                });
                out_slots[lpos] = dst;
            }
        }
        let chan = self.chan(logical.len(), LinkClass::Vector);
        let n = instrs.len();
        let node = EwNode::new(scratch, instrs, vec![OutputSpec::plain(out_slots)]);
        let label = self.label("unpack");
        let id = self
            .g
            .add_node(&label, Box::new(node), vec![cur.chan], vec![chan]);
        self.note_node(
            id,
            &label,
            "ew",
            UnitClass::Compute,
            n,
            scratch as usize,
            self.category(),
        );
        Ok(Cur {
            chan,
            vars: logical.to_vec(),
        })
    }

    /// Accounts one buffering MU (deadlock avoidance / retiming). These are
    /// storage-only contexts, so they appear in the reports but not in the
    /// executable graph.
    fn add_buffer_mu(&mut self, category: Category, label: &str) {
        let label = self.label(label);
        self.infos.push(ContextInfo {
            id: u32::MAX,
            label,
            kind: "buffer",
            unit: UnitClass::Memory,
            depth: self.depth,
            instrs: 0,
            regs: 0,
            category,
        });
    }
}

fn dedup(mut v: Vec<Value>) -> Vec<Value> {
    let mut seen = HashSet::new();
    v.retain(|x| seen.insert(*x));
    v
}

fn body_uses(body: &Region, v: Value) -> bool {
    let mut free = HashSet::new();
    for op in &body.ops {
        DfLower::op_free_uses(op, &mut free);
    }
    free.contains(&v)
}

/// Registers read by an instruction (predicates included).
fn instr_reads(i: &EwInstr) -> Vec<Reg> {
    let mut out = Vec::new();
    let mut op = |o: &Operand| {
        if let Operand::Reg(r) = o {
            out.push(*r);
        }
    };
    let pred = |p: &Option<Pred>, out: &mut Vec<Reg>| {
        if let Some(p) = p {
            out.push(p.reg);
        }
    };
    match i {
        EwInstr::Alu { a, b, .. } => {
            op(a);
            op(b);
        }
        EwInstr::Select { c, t, f, .. } => {
            op(c);
            op(t);
            op(f);
        }
        EwInstr::Mov { src, .. } => op(src),
        EwInstr::SramRead { addr, pred: p, .. } | EwInstr::SramDecFetch { addr, pred: p, .. } => {
            op(addr);
            pred(p, &mut out);
        }
        EwInstr::SramWrite {
            addr, val, pred: p, ..
        } => {
            op(addr);
            op(val);
            pred(p, &mut out);
        }
        EwInstr::DramReadW { addr, pred: p, .. } | EwInstr::DramReadB { addr, pred: p, .. } => {
            op(addr);
            pred(p, &mut out);
        }
        EwInstr::DramWriteW {
            addr, val, pred: p, ..
        }
        | EwInstr::DramWriteB {
            addr, val, pred: p, ..
        } => {
            op(addr);
            op(val);
            pred(p, &mut out);
        }
        EwInstr::AllocPop { .. } => {}
        EwInstr::AllocPush { src, pred: p, .. } => {
            op(src);
            pred(p, &mut out);
        }
    }
    out
}

/// The register an instruction writes, if any.
fn instr_write(i: &EwInstr) -> Option<Reg> {
    match i {
        EwInstr::Alu { dst, .. }
        | EwInstr::Select { dst, .. }
        | EwInstr::Mov { dst, .. }
        | EwInstr::SramRead { dst, .. }
        | EwInstr::SramDecFetch { dst, .. }
        | EwInstr::DramReadW { dst, .. }
        | EwInstr::DramReadB { dst, .. }
        | EwInstr::AllocPop { dst, .. } => Some(*dst),
        _ => None,
    }
}

/// Remaps an instruction's registers through `remap`, allocating new regs
/// for writes.
fn remap_instr(i: &mut EwInstr, remap: &mut HashMap<Reg, Reg>, next: &mut Reg) {
    let mo = |o: &mut Operand, remap: &mut HashMap<Reg, Reg>| {
        if let Operand::Reg(r) = o {
            *r = *remap
                .get(r)
                .unwrap_or_else(|| panic!("segment read of unmapped register r{r}"));
        }
    };
    let mw = |r: &mut Reg, remap: &mut HashMap<Reg, Reg>, next: &mut Reg| {
        let nr = *remap.entry(*r).or_insert_with(|| {
            let v = *next;
            *next += 1;
            v
        });
        *r = nr;
    };
    let mp = |p: &mut Option<Pred>, remap: &mut HashMap<Reg, Reg>| {
        if let Some(p) = p {
            p.reg = *remap
                .get(&p.reg)
                .unwrap_or_else(|| panic!("segment read of unmapped predicate r{}", p.reg));
        }
    };
    match i {
        EwInstr::Alu { a, b, dst, .. } => {
            mo(a, remap);
            mo(b, remap);
            mw(dst, remap, next);
        }
        EwInstr::Select { c, t, f, dst } => {
            mo(c, remap);
            mo(t, remap);
            mo(f, remap);
            mw(dst, remap, next);
        }
        EwInstr::Mov { src, dst } => {
            mo(src, remap);
            mw(dst, remap, next);
        }
        EwInstr::SramRead {
            addr, dst, pred, ..
        }
        | EwInstr::SramDecFetch {
            addr, dst, pred, ..
        } => {
            mo(addr, remap);
            mp(pred, remap);
            mw(dst, remap, next);
        }
        EwInstr::SramWrite {
            addr, val, pred, ..
        } => {
            mo(addr, remap);
            mo(val, remap);
            mp(pred, remap);
        }
        EwInstr::DramReadW { addr, dst, pred } | EwInstr::DramReadB { addr, dst, pred } => {
            mo(addr, remap);
            mp(pred, remap);
            mw(dst, remap, next);
        }
        EwInstr::DramWriteW { addr, val, pred } | EwInstr::DramWriteB { addr, val, pred } => {
            mo(addr, remap);
            mo(val, remap);
            mp(pred, remap);
        }
        EwInstr::AllocPop { dst, .. } => mw(dst, remap, next),
        EwInstr::AllocPush { src, pred, .. } => {
            mo(src, remap);
            mp(pred, remap);
        }
    }
}

/// Group of sub-word tuple positions sharing one 32-bit slot.
#[derive(Clone, Debug)]
struct PackGroup {
    positions: Vec<usize>,
    width: usize,
}

/// Positional description of a packed loop tuple.
#[derive(Clone, Debug)]
struct Packing {
    /// Positions keeping their own physical slot.
    full: Vec<usize>,
    /// Packed groups.
    groups: Vec<PackGroup>,
}
