//! If-to-select conversion (§V-B c).
//!
//! Naïve dataflow assigns a compute unit to each branch of an `if`; for
//! branches with no inner loops that just leaves empty lanes. This pass
//! inlines such `if`s: both branches execute unconditionally, memory
//! operations are *predicated* on the branch condition, and each result is a
//! conditional move. The paper notes this is "more powerful than MLIR's
//! default of only rewriting empty ifs". `if`s containing loops, parallel
//! regions, or `exit` keep their dataflow form (they need real filtering).

use revet_mir::{Func, Module, Op, OpKind, Region};

/// Converts every convertible `if`; returns the number converted.
pub fn if_to_select(module: &mut Module) -> usize {
    let mut count = 0;
    let mut funcs = std::mem::take(&mut module.funcs);
    for func in &mut funcs {
        let body = std::mem::take(&mut func.body);
        func.body = rewrite(func, body, &mut count);
    }
    module.funcs = funcs;
    count
}

/// True if the region can be flattened into predicated straight-line code.
fn convertible(r: &Region) -> bool {
    r.ops.iter().all(|op| match &op.kind {
        OpKind::If { then, else_, .. } => convertible(then) && convertible(else_),
        OpKind::While { .. }
        | OpKind::Foreach { .. }
        | OpKind::Replicate { .. }
        | OpKind::Fork { .. }
        | OpKind::Exit
        | OpKind::Return(_)
        | OpKind::Condition { .. } => false,
        // Blocking pops cannot be predicated (a suppressed pop would still
        // stall the stall-check conservatively); leave such ifs in dataflow
        // form.
        OpKind::AllocPop { .. } => false,
        _ => true,
    })
}

fn rewrite(func: &mut Func, region: Region, count: &mut usize) -> Region {
    let mut out = Vec::with_capacity(region.ops.len());
    for mut op in region.ops {
        for r in op.kind.regions_mut() {
            let taken = std::mem::take(r);
            *r = rewrite(func, taken, count);
        }
        match op.kind {
            OpKind::If { cond, then, else_ } if convertible(&then) && convertible(&else_) => {
                *count += 1;
                let then_yield = inline_branch(&mut out, then, cond, true);
                let else_yield = inline_branch(&mut out, else_, cond, false);
                // Results become selects between the two yields.
                for ((res, t), e) in op
                    .results
                    .iter()
                    .zip(then_yield.iter())
                    .zip(else_yield.iter())
                {
                    out.push(Op {
                        kind: OpKind::Select(cond, *t, *e),
                        results: vec![*res],
                    });
                }
                let _ = func;
            }
            kind => out.push(Op {
                kind,
                results: op.results,
            }),
        }
    }
    Region::new(region.args, out)
}

/// Hoists a branch's ops into the parent, predicating side effects. Returns
/// the branch's yielded values.
fn inline_branch(
    out: &mut Vec<Op>,
    branch: Region,
    cond: revet_mir::Value,
    expect: bool,
) -> Vec<revet_mir::Value> {
    let mut yielded = Vec::new();
    for op in branch.ops {
        match op.kind {
            OpKind::Yield(vs) => yielded = vs,
            kind if kind.is_memory() => {
                // Nested Predicated ops keep their own predicate; double
                // predication of the same memory op is rare enough that we
                // conservatively AND by nesting wrappers.
                out.push(Op {
                    kind: OpKind::Predicated {
                        pred: cond,
                        expect,
                        inner: Box::new(kind),
                    },
                    results: op.results,
                });
            }
            kind => out.push(Op {
                kind,
                results: op.results,
            }),
        }
    }
    yielded
}

#[cfg(test)]
mod tests {
    use super::*;
    use revet_lang::compile_to_mir;
    use revet_mir::{DramLayout, Interp};
    use revet_sltf::Word;

    fn run_main(module: &Module, args: &[Word], dram_bytes: usize) -> Vec<u8> {
        let layout = DramLayout {
            base: (0..module.drams.len() as u32).map(|i| i * 4096).collect(),
        };
        let mut mem = module.build_memory(dram_bytes);
        Interp::new(module, &layout, &mut mem)
            .run("main", args)
            .unwrap();
        mem.dram.clone()
    }

    #[test]
    fn converts_simple_if_with_memory() {
        let src = r#"
            dram<u32> output;
            void main(u32 n) {
                u32 x = 0;
                if (n > 5) {
                    x = 2 * n;
                    output[1] = 111;
                } else {
                    x = 3 * n;
                };
                output[0] = x;
            }
        "#;
        let lowered = compile_to_mir(src).unwrap();
        let mut module = lowered.module.clone();
        let converted = if_to_select(&mut module);
        assert_eq!(converted, 1);
        revet_mir::verify_module(&module).unwrap();
        assert_eq!(
            module.funcs[0].count_ops(|k| matches!(k, OpKind::If { .. })),
            0
        );
        // Semantics preserved on both sides of the condition.
        let d = run_main(&module, &[Word(7)], 4096);
        assert_eq!(u32::from_le_bytes(d[0..4].try_into().unwrap()), 14);
        assert_eq!(u32::from_le_bytes(d[4..8].try_into().unwrap()), 111);
        let d = run_main(&module, &[Word(3)], 4096);
        assert_eq!(u32::from_le_bytes(d[0..4].try_into().unwrap()), 9);
        assert_eq!(
            u32::from_le_bytes(d[4..8].try_into().unwrap()),
            0,
            "predicated store suppressed"
        );
    }

    #[test]
    fn keeps_ifs_with_loops_or_exit() {
        let src = r#"
            dram<u32> output;
            void main(u32 n) {
                if (n) {
                    u32 i = 0;
                    while (i < n) {
                        i = i + 1;
                    };
                    output[0] = i;
                };
                fork (n) { u32 k =>
                    if (k) {
                        exit;
                    };
                };
            }
        "#;
        let lowered = compile_to_mir(src).unwrap();
        let mut module = lowered.module.clone();
        let converted = if_to_select(&mut module);
        assert_eq!(converted, 0, "loop-bearing and exit ifs stay");
        assert_eq!(
            module.funcs[0].count_ops(|k| matches!(k, OpKind::If { .. })),
            2
        );
    }

    #[test]
    fn nested_convertible_ifs_flatten() {
        let src = r#"
            dram<u32> output;
            void main(u32 n) {
                u32 x = 0;
                if (n > 2) {
                    if (n > 4) {
                        x = 4;
                    } else {
                        x = 2;
                    };
                } else {
                    x = 1;
                };
                output[0] = x;
            }
        "#;
        let lowered = compile_to_mir(src).unwrap();
        let mut module = lowered.module.clone();
        let converted = if_to_select(&mut module);
        assert_eq!(converted, 2);
        for (arg, want) in [(5u32, 4u32), (3, 2), (1, 1)] {
            let d = run_main(&module, &[Word(arg)], 4096);
            assert_eq!(u32::from_le_bytes(d[0..4].try_into().unwrap()), want);
        }
    }
}
