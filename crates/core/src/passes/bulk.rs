//! Bulk-access lowering (§V-A: "Lower Bulk Accesses").
//!
//! `BulkLoad`/`BulkStore` become explicitly parallel `foreach` loops of
//! element transfers. On the machine these vectorize: the counter expands
//! the transfer into 16-lane child threads whose DRAM reads coalesce into
//! bursts at the AGs (the backend "bulk store can process 32 bits per
//! cycle" of §V-A a).

use revet_mir::{AluOp, ForeachFlags, Func, Module, Op, OpKind, Region, Ty};

/// Rewrites every bulk transfer into a `foreach` of element accesses.
pub fn lower_bulk(module: &mut Module) {
    let mut funcs = std::mem::take(&mut module.funcs);
    for func in &mut funcs {
        let body = std::mem::take(&mut func.body);
        func.body = rewrite(func, body);
    }
    module.funcs = funcs;
}

fn rewrite(func: &mut Func, region: Region) -> Region {
    let mut out = Vec::with_capacity(region.ops.len());
    for mut op in region.ops {
        for r in op.kind.regions_mut() {
            let taken = std::mem::take(r);
            *r = rewrite(func, taken);
        }
        match op.kind {
            OpKind::BulkLoad {
                dram,
                dram_base,
                sram,
                sram_base,
                len,
            } => {
                let zero = konst(func, &mut out, 0);
                let one = konst(func, &mut out, 1);
                let idx = func.new_value(Ty::I32);
                let mut body = Vec::new();
                let di = bin(func, &mut body, AluOp::Add, dram_base, idx);
                let v = func.new_value(Ty::I32);
                body.push(Op {
                    kind: OpKind::DramRead { dram, idx: di },
                    results: vec![v],
                });
                let si = bin(func, &mut body, AluOp::Add, sram_base, idx);
                body.push(Op {
                    kind: OpKind::SramWrite {
                        sram,
                        addr: si,
                        val: v,
                    },
                    results: vec![],
                });
                body.push(Op {
                    kind: OpKind::Yield(vec![]),
                    results: vec![],
                });
                out.push(Op {
                    kind: OpKind::Foreach {
                        lo: zero,
                        hi: len,
                        step: one,
                        body: Region::new(vec![idx], body),
                        reduce: vec![],
                        flags: ForeachFlags::default(),
                    },
                    results: vec![],
                });
            }
            OpKind::BulkStore {
                dram,
                dram_base,
                sram,
                sram_base,
                len,
            } => {
                let zero = konst(func, &mut out, 0);
                let one = konst(func, &mut out, 1);
                let idx = func.new_value(Ty::I32);
                let mut body = Vec::new();
                let si = bin(func, &mut body, AluOp::Add, sram_base, idx);
                let v = func.new_value(Ty::I32);
                body.push(Op {
                    kind: OpKind::SramRead { sram, addr: si },
                    results: vec![v],
                });
                let di = bin(func, &mut body, AluOp::Add, dram_base, idx);
                body.push(Op {
                    kind: OpKind::DramWrite {
                        dram,
                        idx: di,
                        val: v,
                    },
                    results: vec![],
                });
                body.push(Op {
                    kind: OpKind::Yield(vec![]),
                    results: vec![],
                });
                out.push(Op {
                    kind: OpKind::Foreach {
                        lo: zero,
                        hi: len,
                        step: one,
                        body: Region::new(vec![idx], body),
                        reduce: vec![],
                        flags: ForeachFlags::default(),
                    },
                    results: vec![],
                });
            }
            kind => out.push(Op {
                kind,
                results: op.results,
            }),
        }
    }
    Region::new(region.args, out)
}

fn konst(func: &mut Func, out: &mut Vec<Op>, v: i64) -> revet_mir::Value {
    let r = func.new_value(Ty::I32);
    out.push(Op {
        kind: OpKind::ConstI(v, Ty::I32),
        results: vec![r],
    });
    r
}

fn bin(
    func: &mut Func,
    out: &mut Vec<Op>,
    op: AluOp,
    a: revet_mir::Value,
    b: revet_mir::Value,
) -> revet_mir::Value {
    let r = func.new_value(Ty::I32);
    out.push(Op {
        kind: OpKind::Bin(op, a, b),
        results: vec![r],
    });
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::views::lower_views;
    use revet_lang::compile_to_mir;
    use revet_mir::{DramLayout, Interp};
    use revet_sltf::Word;

    #[test]
    fn bulk_becomes_foreach_and_preserves_semantics() {
        let src = r#"
            dram<u32> input;
            dram<u32> output;
            void main(u32 n) {
                foreach (n by 4) { u32 outer =>
                    readview<4> v(input, outer);
                    writeview<4> w(output, outer);
                    foreach (4) { u32 i =>
                        w[i] = v[i] * 3;
                    };
                };
            }
        "#;
        let lowered = compile_to_mir(src).unwrap();
        let mut module = lowered.module.clone();
        lower_views(&mut module, Some(8), true);
        lower_bulk(&mut module);
        revet_mir::verify_module(&module).unwrap();
        assert_eq!(
            module.funcs[0].count_ops(|k| k.is_high_level()),
            0,
            "fully lowered to physical ops"
        );
        let layout = DramLayout {
            base: vec![0, 4096],
        };
        let mut mem = module.build_memory(8192);
        for i in 0..8u32 {
            mem.dram[4 * i as usize..4 * i as usize + 4].copy_from_slice(&(i + 1).to_le_bytes());
        }
        Interp::new(&module, &layout, &mut mem)
            .run("main", &[Word(8)])
            .unwrap();
        for i in 0..8u32 {
            let got = u32::from_le_bytes(
                mem.dram[4096 + 4 * i as usize..4096 + 4 * i as usize + 4]
                    .try_into()
                    .unwrap(),
            );
            assert_eq!(got, (i + 1) * 3);
        }
    }
}
