//! Foreach hierarchy elimination (§V-A b, Fig. 9).
//!
//! Barriers force a total flush of a `while` body before the next parent's
//! threads may enter. For pragma-annotated `foreach` loops we instead:
//! initialize a per-parent shared counter with the trip count, `fork` the
//! iterations as hierarchy-less threads, and have each thread atomically
//! decrement the counter after the body — the thread that reaches zero is
//! the last one and *becomes* the parent's continuation; all others exit.
//! Stragglers of one parent can then interleave with the next parent's
//! threads (Fig. 13's scaling win).

use revet_mir::{AluOp, Func, Module, Op, OpKind, Region, Ty, Value};

/// Applies Fig. 9 to every `foreach` marked `eliminate_hierarchy`. Returns
/// the number of loops rewritten.
pub fn eliminate_hierarchy(module: &mut Module, threads: Option<u32>) -> usize {
    let threads = threads.unwrap_or(crate::passes::DEFAULT_THREADS);
    let mut count = 0;
    let mut funcs = std::mem::take(&mut module.funcs);
    for func in &mut funcs {
        let body = std::mem::take(&mut func.body);
        func.body = rewrite(module, func, body, threads, &mut count);
    }
    module.funcs = funcs;
    count
}

fn rewrite(
    module: &mut Module,
    func: &mut Func,
    region: Region,
    threads: u32,
    count: &mut usize,
) -> Region {
    let mut out = Vec::with_capacity(region.ops.len());
    for mut op in region.ops {
        for r in op.kind.regions_mut() {
            let taken = std::mem::take(r);
            *r = rewrite(module, func, taken, threads, count);
        }
        match op.kind {
            OpKind::Foreach {
                lo,
                hi,
                step,
                body,
                reduce,
                flags,
            } if flags.eliminate_hierarchy && reduce.is_empty() => {
                *count += 1;
                let sram = module.add_sram(format!("fe_count{count}"), threads);
                let alloc = module.add_alloc(format!("fe_alloc{count}"), threads);
                // n = (hi - lo + step - 1) / step  (trip count)
                let diff = bin(func, &mut out, AluOp::Sub, hi, lo);
                let sm1k = konst(func, &mut out, 1);
                let sm1 = bin(func, &mut out, AluOp::Sub, step, sm1k);
                let num = bin(func, &mut out, AluOp::Add, diff, sm1);
                let n = bin(func, &mut out, AluOp::DivS, num, step);
                // ptr = alloc.pop(); mem[ptr] = n
                let ptr = func.new_value(Ty::I32);
                out.push(Op {
                    kind: OpKind::AllocPop { alloc },
                    results: vec![ptr],
                });
                out.push(Op {
                    kind: OpKind::SramWrite {
                        sram,
                        addr: ptr,
                        val: n,
                    },
                    results: vec![],
                });
                // fork(n) { k => idx = lo + k*step; body; last-check }
                let k = func.new_value(Ty::I32);
                let mut fork_ops = Vec::new();
                let scaled = bin(func, &mut fork_ops, AluOp::Mul, k, step);
                let idx = bin(func, &mut fork_ops, AluOp::Add, lo, scaled);
                // Inline the body with its index arg bound to idx: body.args
                // = [i]; we re-use the arg value by assigning it via a Mov.
                let body_arg = body.args[0];
                let zero = zero_of(func, &mut fork_ops);
                fork_ops.push(Op {
                    kind: OpKind::Bin(AluOp::Add, idx, zero),
                    results: vec![body_arg],
                });
                let body_ends_exit = matches!(body.ops.last().map(|o| &o.kind), Some(OpKind::Exit));
                for bop in body.ops {
                    // The body's trailing yield is dropped; the fork decides
                    // continuation via the shared counter below.
                    if matches!(bop.kind, OpKind::Yield(_)) {
                        continue;
                    }
                    fork_ops.push(bop);
                }
                if !body_ends_exit {
                    // remaining = --mem[ptr]; if remaining != 0 exit.
                    let rem = func.new_value(Ty::I32);
                    fork_ops.push(Op {
                        kind: OpKind::SramDecFetch { sram, addr: ptr },
                        results: vec![rem],
                    });
                    let mut then_ops = Vec::new();
                    then_ops.push(Op {
                        kind: OpKind::Exit,
                        results: vec![],
                    });
                    let mut else_ops = Vec::new();
                    else_ops.push(Op {
                        kind: OpKind::Yield(vec![]),
                        results: vec![],
                    });
                    fork_ops.push(Op {
                        kind: OpKind::If {
                            cond: rem,
                            then: Region::new(vec![], then_ops),
                            else_: Region::new(vec![], else_ops),
                        },
                        results: vec![],
                    });
                    fork_ops.push(Op {
                        kind: OpKind::Yield(vec![]),
                        results: vec![],
                    });
                }
                out.push(Op {
                    kind: OpKind::Fork {
                        count: n,
                        body: Region::new(vec![k], fork_ops),
                    },
                    results: vec![],
                });
                out.push(Op {
                    kind: OpKind::AllocPush { alloc, ptr },
                    results: vec![],
                });
            }
            kind => out.push(Op {
                kind,
                results: op.results,
            }),
        }
    }
    Region::new(region.args, out)
}

fn zero_of(func: &mut Func, out: &mut Vec<Op>) -> Value {
    konst(func, out, 0)
}

fn konst(func: &mut Func, out: &mut Vec<Op>, v: i64) -> Value {
    let r = func.new_value(Ty::I32);
    out.push(Op {
        kind: OpKind::ConstI(v, Ty::I32),
        results: vec![r],
    });
    r
}

fn bin(func: &mut Func, out: &mut Vec<Op>, op: AluOp, a: Value, b: Value) -> Value {
    let r = func.new_value(Ty::I32);
    out.push(Op {
        kind: OpKind::Bin(op, a, b),
        results: vec![r],
    });
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use revet_lang::compile_to_mir;
    use revet_mir::{DramLayout, Interp};
    use revet_sltf::Word;

    #[test]
    fn rewrites_annotated_foreach_and_preserves_semantics() {
        let src = r#"
            dram<u32> output;
            void main(u32 n) {
                foreach (n) { u32 i =>
                    pragma(eliminate_hierarchy);
                    output[i] = i * 7;
                };
                output[63] = 99;
            }
        "#;
        let lowered = compile_to_mir(src).unwrap();
        let mut module = lowered.module.clone();
        let rewritten = eliminate_hierarchy(&mut module, Some(16));
        assert_eq!(rewritten, 1);
        revet_mir::verify_module(&module).unwrap();
        assert_eq!(
            module.funcs[0].count_ops(|k| matches!(k, OpKind::Fork { .. })),
            1,
            "foreach became fork"
        );
        let layout = DramLayout { base: vec![0] };
        let mut mem = module.build_memory(4096);
        Interp::new(&module, &layout, &mut mem)
            .run("main", &[Word(10)])
            .unwrap();
        for i in 0..10usize {
            let got = u32::from_le_bytes(mem.dram[4 * i..4 * i + 4].try_into().unwrap());
            assert_eq!(got, (i as u32) * 7);
        }
        let cont = u32::from_le_bytes(mem.dram[252..256].try_into().unwrap());
        assert_eq!(cont, 99, "continuation after fork ran exactly once");
    }

    #[test]
    fn unannotated_foreach_untouched() {
        let src = r#"
            dram<u32> output;
            void main(u32 n) {
                foreach (n) { u32 i =>
                    output[i] = i;
                };
            }
        "#;
        let lowered = compile_to_mir(src).unwrap();
        let mut module = lowered.module.clone();
        assert_eq!(eliminate_hierarchy(&mut module, None), 0);
    }
}
