//! MIR→MIR compiler passes (the middle of Fig. 8).

mod bulk;
mod hierarchy;
mod select;
mod views;

pub use bulk::lower_bulk;
pub use hierarchy::eliminate_hierarchy;
pub use select::if_to_select;
pub use views::{lower_views, DEFAULT_THREADS};
