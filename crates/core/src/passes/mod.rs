//! MIR→MIR compiler passes (the middle of Fig. 8), packaged for the
//! generic pass framework in `revet-mir`.
//!
//! Two layers live here:
//!
//! - **Lowering passes** (paper-specific, §V-A/B): hierarchy elimination
//!   ([`EliminateHierarchy`], Fig. 9), view & iterator lowering with
//!   allocation fusion ([`LowerViews`]), bulk-access expansion
//!   ([`LowerBulk`]), and if-to-select conversion ([`IfToSelect`]). These
//!   are [`ModulePass`]es — they add module-level SRAM/allocator
//!   declarations as they rewrite.
//! - **Classical optimizations** (re-exported from `revet-mir`):
//!   [`ConstFold`], [`Simplify`], [`Cse`], and [`Dce`] function passes.
//!
//! [`build_pipeline`] assembles the standard pipeline from a
//! [`PassOptions`]: lowering passes first (gated by their individual
//! toggles, in Fig. 8 order), then the classical optimizations gated by
//! `opt_level` (level ≥ 1 adds fold/simplify/DCE; level ≥ 2 adds CSE and a
//! second clean-up round). Run it with [`PassManager::run`] (or
//! `run_observed` to snapshot the IR after a named pass) to get a
//! [`revet_mir::PassReport`] of per-pass timing and op-count deltas.
//!
//! The free functions ([`if_to_select`], [`eliminate_hierarchy`],
//! [`lower_views`], [`lower_bulk`]) are the pre-framework entry points,
//! kept as deprecated thin wrappers for one release.

pub(crate) mod bulk;
pub(crate) mod hierarchy;
pub(crate) mod select;
pub(crate) mod views;

pub use revet_mir::{ConstFold, Cse, Dce, Simplify, SinkConsts};
pub use views::DEFAULT_THREADS;

use crate::PassOptions;
use revet_mir::{Module, ModuleAnalysisManager, ModulePass, OpKind, PassManager, PassResult};

/// Foreach hierarchy elimination (§V-A b, Fig. 9): rewrites every
/// pragma-annotated `foreach` into a fork + shared-counter continuation.
pub struct EliminateHierarchy {
    /// Thread-local buffer count hint for the counter SRAM sizing.
    pub threads: Option<u32>,
}

impl ModulePass for EliminateHierarchy {
    fn name(&self) -> &str {
        "eliminate_hierarchy"
    }

    fn run_module(&self, m: &mut Module, _am: &mut ModuleAnalysisManager) -> PassResult {
        let n = hierarchy::eliminate_hierarchy(m, self.threads);
        prune_spans(m);
        PassResult::of(n > 0)
    }
}

/// View & iterator lowering plus allocation fusion (§V-A a, §V-B a):
/// rewrites the high-level memory dialect into SRAM regions, allocator
/// queues, and bulk transfers.
pub struct LowerViews {
    /// Thread-local buffer count (`pragma(threads, N)` resolved upstream).
    pub threads: Option<u32>,
    /// §V-B a: share one allocator pop per region (allocation fusion).
    pub fuse: bool,
}

impl ModulePass for LowerViews {
    fn name(&self) -> &str {
        "lower_views"
    }

    fn run_module(&self, m: &mut Module, _am: &mut ModuleAnalysisManager) -> PassResult {
        let views_before = count(m, |k| {
            k.is_high_level() && !matches!(k, OpKind::BulkLoad { .. } | OpKind::BulkStore { .. })
        });
        views::lower_views(m, self.threads, self.fuse);
        prune_spans(m);
        PassResult::of(views_before > 0)
    }
}

/// Bulk-access lowering (§V-A): `BulkLoad`/`BulkStore` become explicitly
/// parallel `foreach` loops of element transfers.
pub struct LowerBulk;

impl ModulePass for LowerBulk {
    fn name(&self) -> &str {
        "lower_bulk"
    }

    fn run_module(&self, m: &mut Module, _am: &mut ModuleAnalysisManager) -> PassResult {
        let bulk_before = count(m, |k| {
            matches!(k, OpKind::BulkLoad { .. } | OpKind::BulkStore { .. })
        });
        bulk::lower_bulk(m);
        prune_spans(m);
        PassResult::of(bulk_before > 0)
    }
}

/// If-to-select conversion (§V-B c): inlines loop-free `if`s as selects
/// with predicated memory ops.
pub struct IfToSelect;

impl ModulePass for IfToSelect {
    fn name(&self) -> &str {
        "if_to_select"
    }

    fn run_module(&self, m: &mut Module, _am: &mut ModuleAnalysisManager) -> PassResult {
        let n = select::if_to_select(m);
        prune_spans(m);
        PassResult::of(n > 0)
    }
}

/// Assembles the standard pipeline for `opts`: lowering passes in Fig. 8
/// order (each gated by its toggle), then the classical optimizations
/// gated by `opts.opt_level`.
///
/// `threads` is the resolved thread-count hint (a `pragma(threads, N)` in
/// the source wins over `opts.threads`; pass `opts.threads` when no
/// front-end hint exists).
pub fn build_pipeline(opts: &PassOptions, threads: Option<u32>) -> PassManager {
    let mut pm = PassManager::new();
    if opts.eliminate_hierarchy {
        pm.add_module(EliminateHierarchy { threads });
    }
    pm.add_module(LowerViews {
        threads,
        fuse: opts.fuse_allocators,
    });
    pm.add_module(LowerBulk);
    if opts.if_to_select {
        pm.add_module(IfToSelect);
    }
    if opts.opt_level >= 1 {
        pm.add(ConstFold).add(Simplify).add(Dce);
    }
    if opts.opt_level >= 2 {
        // CSE opens new fold/identity opportunities; run a second clean-up
        // round behind it. CSE also hoists region-local constants into
        // enclosing regions, which the dataflow lowering would pay for as
        // recirculated loop state — SinkConsts rematerializes them back
        // into the regions that use them before the final DCE sweep.
        pm.add(Cse)
            .add(ConstFold)
            .add(Simplify)
            .add(SinkConsts)
            .add(Dce);
    }
    pm
}

/// The lowering passes predate the span-integrity contract and may orphan
/// entries for values they delete wholesale (e.g. view handles); prune
/// after each so the pass manager's debug check holds pipeline-wide.
fn prune_spans(m: &mut Module) {
    for f in &mut m.funcs {
        f.prune_spans();
    }
}

fn count(m: &Module, pred: impl Fn(&OpKind) -> bool + Copy) -> usize {
    m.funcs.iter().map(|f| f.count_ops(pred)).sum()
}

// ---- deprecated pre-framework entry points ----

/// Converts every convertible `if`; returns the number converted.
#[deprecated(note = "use `passes::IfToSelect` on a `PassManager` (or `build_pipeline`)")]
pub fn if_to_select(module: &mut Module) -> usize {
    select::if_to_select(module)
}

/// Applies Fig. 9 to every `foreach` marked `eliminate_hierarchy`; returns
/// the number of loops rewritten.
#[deprecated(note = "use `passes::EliminateHierarchy` on a `PassManager` (or `build_pipeline`)")]
pub fn eliminate_hierarchy(module: &mut Module, threads: Option<u32>) -> usize {
    hierarchy::eliminate_hierarchy(module, threads)
}

/// Lowers views & iterators to physical memory ops.
#[deprecated(note = "use `passes::LowerViews` on a `PassManager` (or `build_pipeline`)")]
pub fn lower_views(module: &mut Module, threads: Option<u32>, fuse: bool) {
    views::lower_views(module, threads, fuse);
}

/// Rewrites every bulk transfer into a `foreach` of element accesses.
#[deprecated(note = "use `passes::LowerBulk` on a `PassManager` (or `build_pipeline`)")]
pub fn lower_bulk(module: &mut Module) {
    bulk::lower_bulk(module);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_shape_follows_options() {
        let opts = PassOptions {
            opt_level: 2,
            ..PassOptions::default()
        };
        let names = build_pipeline(&opts, None)
            .names()
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>();
        assert_eq!(
            names,
            vec![
                "eliminate_hierarchy",
                "lower_views",
                "lower_bulk",
                "if_to_select",
                "const_fold",
                "simplify",
                "dce",
                "cse",
                "const_fold",
                "simplify",
                "sink_consts",
                "dce",
            ]
        );

        let o0 = PassOptions::none();
        assert_eq!(o0.opt_level, 0);
        let names = build_pipeline(&o0, None).names().len();
        assert_eq!(names, 2, "only the unconditional lowering passes remain");

        let o1 = PassOptions {
            opt_level: 1,
            ..PassOptions::none()
        };
        assert_eq!(build_pipeline(&o1, None).names().len(), 5);
    }
}
