//! View & iterator lowering (§V-A a) plus allocation fusion (§V-B a).
//!
//! Rewrites the high-level Revet memory dialect into physical SRAM regions,
//! allocator queues, and bulk transfers:
//!
//! - Every view/iterator instance gets an SRAM region holding `max_threads`
//!   fixed-size thread-local buffers, addressed as `ptr*size + off` — the
//!   fragmentation-free scheme of §V-B a.
//! - All allocations at the top level of one region share a single fused
//!   allocator pop (allocation fusion); deallocation pushes the pointer back
//!   just before the region's terminator.
//! - `ReadIt` fills its tile *at dereference* (the data-dependent miss path
//!   of Fig. 5/6: an `if` containing a bulk load, later a nested `foreach`).
//! - `PeekReadIt` keeps a double-width window so `peek(a)`, `a ≤ tile`,
//!   never faults (filled eagerly at creation — a documented deviation).
//! - `WriteIt` flushes full tiles at increment and the partial tile at
//!   deallocation; `ManualWriteIt` flushes on the caller's `last` hint and
//!   skips the deallocation flush (§V-A a).

use revet_mir::{AluOp, Func, ItKind, Module, Op, OpKind, Region, Ty, Value, ViewKind};
use std::collections::HashMap;

/// Default thread-local buffer count when no `pragma(threads, N)` is given:
/// one MU's worth of small buffers.
pub const DEFAULT_THREADS: u32 = 64;

/// One lowered memory object.
#[derive(Clone, Debug)]
enum Obj {
    View {
        kind: ViewKind,
        dram: Option<revet_mir::DramRef>,
        base: Option<Value>,
        size: u32,
        sram: revet_machine::SramId,
        ptr: Value,
    },
    It {
        kind: ItKind,
        dram: revet_mir::DramRef,
        tile: u32,
        buf: revet_machine::SramId,
        state: revet_machine::SramId,
        ptr: Value,
    },
}

/// Pass state.
struct ViewsPass<'m> {
    module: &'m mut Module,
    threads: u32,
    fuse: bool,
    /// Objects by handle value (visible to nested regions).
    objs: HashMap<Value, Obj>,
    counter: u32,
}

/// Runs the pass over every function.
pub fn lower_views(module: &mut Module, threads: Option<u32>, fuse: bool) {
    let mut funcs = std::mem::take(&mut module.funcs);
    for func in &mut funcs {
        let mut pass = ViewsPass {
            module,
            threads: threads.unwrap_or(DEFAULT_THREADS),
            fuse,
            objs: HashMap::new(),
            counter: 0,
        };
        let body = std::mem::take(&mut func.body);
        func.body = pass.rewrite_region(func, body);
    }
    module.funcs = funcs;
}

impl ViewsPass<'_> {
    fn fresh(&mut self, func: &mut Func, ty: Ty) -> Value {
        func.new_value(ty)
    }

    fn konst(&mut self, func: &mut Func, out: &mut Vec<Op>, v: i64) -> Value {
        let r = self.fresh(func, Ty::I32);
        out.push(Op {
            kind: OpKind::ConstI(v, Ty::I32),
            results: vec![r],
        });
        r
    }

    fn bin(&mut self, func: &mut Func, out: &mut Vec<Op>, op: AluOp, a: Value, b: Value) -> Value {
        let r = self.fresh(func, Ty::I32);
        out.push(Op {
            kind: OpKind::Bin(op, a, b),
            results: vec![r],
        });
        r
    }

    /// `ptr * scale + off`
    fn buf_addr(
        &mut self,
        func: &mut Func,
        out: &mut Vec<Op>,
        ptr: Value,
        scale: u32,
        off: Value,
    ) -> Value {
        let s = self.konst(func, out, scale as i64);
        let mul = self.bin(func, out, AluOp::Mul, ptr, s);
        self.bin(func, out, AluOp::Add, mul, off)
    }

    #[allow(clippy::too_many_lines)]
    fn rewrite_region(&mut self, func: &mut Func, region: Region) -> Region {
        let mut out: Vec<Op> = Vec::with_capacity(region.ops.len());
        // Fused allocator for this region: created lazily at the first
        // allocation site.
        let mut region_ptrs: Vec<(Value, revet_machine::AllocId)> = Vec::new();
        let mut region_objs: Vec<Value> = Vec::new();

        // First pass over ops, rewriting.
        let n_ops = region.ops.len();
        for (op_idx, op) in region.ops.into_iter().enumerate() {
            let is_terminator = op_idx + 1 == n_ops && op.kind.is_terminator();
            if is_terminator {
                // Flush/deallocate region-local objects before terminating.
                self.emit_region_teardown(func, &mut out, &region_objs, &region_ptrs);
            }
            match op.kind {
                OpKind::ViewNew {
                    kind,
                    dram,
                    base,
                    size,
                } => {
                    let ptr = self.get_ptr(func, &mut out, &mut region_ptrs);
                    self.counter += 1;
                    let sram = self
                        .module
                        .add_sram(format!("view{}", self.counter), size * self.threads);
                    let handle = op.results[0];
                    if matches!(kind, ViewKind::Read | ViewKind::Modify) {
                        let dram = dram.expect("read view needs a dram symbol");
                        let base_v = base.expect("read view needs a base");
                        let zero = self.konst(func, &mut out, 0);
                        let sbase = self.buf_addr(func, &mut out, ptr, size, zero);
                        let len = self.konst(func, &mut out, size as i64);
                        out.push(Op {
                            kind: OpKind::BulkLoad {
                                dram,
                                dram_base: base_v,
                                sram,
                                sram_base: sbase,
                                len,
                            },
                            results: vec![],
                        });
                    }
                    self.objs.insert(
                        handle,
                        Obj::View {
                            kind,
                            dram,
                            base,
                            size,
                            sram,
                            ptr,
                        },
                    );
                    region_objs.push(handle);
                }
                OpKind::ItNew {
                    kind,
                    dram,
                    seek,
                    tile,
                } => {
                    let ptr = self.get_ptr(func, &mut out, &mut region_ptrs);
                    self.counter += 1;
                    let win = if kind == ItKind::PeekRead {
                        2 * tile
                    } else {
                        tile
                    };
                    let buf = self
                        .module
                        .add_sram(format!("itbuf{}", self.counter), win * self.threads);
                    let state = self
                        .module
                        .add_sram(format!("itstate{}", self.counter), 2 * self.threads);
                    let handle = op.results[0];
                    // State layout: [g, l] at ptr*2.
                    let two = self.konst(func, &mut out, 2);
                    let saddr = self.bin(func, &mut out, AluOp::Mul, ptr, two);
                    let one = self.konst(func, &mut out, 1);
                    let laddr = self.bin(func, &mut out, AluOp::Add, saddr, one);
                    match kind {
                        ItKind::Read => {
                            // g = seek - tile; l = tile ⇒ first deref fills.
                            let t = self.konst(func, &mut out, tile as i64);
                            let g0 = self.bin(func, &mut out, AluOp::Sub, seek, t);
                            out.push(Op {
                                kind: OpKind::SramWrite {
                                    sram: state,
                                    addr: saddr,
                                    val: g0,
                                },
                                results: vec![],
                            });
                            out.push(Op {
                                kind: OpKind::SramWrite {
                                    sram: state,
                                    addr: laddr,
                                    val: t,
                                },
                                results: vec![],
                            });
                        }
                        ItKind::PeekRead => {
                            // Eager fill of the 2×tile window at creation.
                            out.push(Op {
                                kind: OpKind::SramWrite {
                                    sram: state,
                                    addr: saddr,
                                    val: seek,
                                },
                                results: vec![],
                            });
                            let zero = self.konst(func, &mut out, 0);
                            out.push(Op {
                                kind: OpKind::SramWrite {
                                    sram: state,
                                    addr: laddr,
                                    val: zero,
                                },
                                results: vec![],
                            });
                            let sbase = self.buf_addr(func, &mut out, ptr, win, zero);
                            let len = self.konst(func, &mut out, win as i64);
                            out.push(Op {
                                kind: OpKind::BulkLoad {
                                    dram,
                                    dram_base: seek,
                                    sram: buf,
                                    sram_base: sbase,
                                    len,
                                },
                                results: vec![],
                            });
                        }
                        ItKind::Write | ItKind::ManualWrite => {
                            out.push(Op {
                                kind: OpKind::SramWrite {
                                    sram: state,
                                    addr: saddr,
                                    val: seek,
                                },
                                results: vec![],
                            });
                            let zero = self.konst(func, &mut out, 0);
                            out.push(Op {
                                kind: OpKind::SramWrite {
                                    sram: state,
                                    addr: laddr,
                                    val: zero,
                                },
                                results: vec![],
                            });
                        }
                    }
                    self.objs.insert(
                        handle,
                        Obj::It {
                            kind,
                            dram,
                            tile,
                            buf,
                            state,
                            ptr,
                        },
                    );
                    region_objs.push(handle);
                }
                OpKind::ViewRead { view, idx } => {
                    let Obj::View {
                        size, sram, ptr, ..
                    } = self.objs[&view].clone()
                    else {
                        unreachable!("view read on iterator");
                    };
                    let addr = self.buf_addr(func, &mut out, ptr, size, idx);
                    out.push(Op {
                        kind: OpKind::SramRead { sram, addr },
                        results: op.results,
                    });
                }
                OpKind::ViewWrite { view, idx, val } => {
                    let Obj::View {
                        size, sram, ptr, ..
                    } = self.objs[&view].clone()
                    else {
                        unreachable!("view write on iterator");
                    };
                    let addr = self.buf_addr(func, &mut out, ptr, size, idx);
                    out.push(Op {
                        kind: OpKind::SramWrite { sram, addr, val },
                        results: vec![],
                    });
                }
                OpKind::ItDeref { it } => {
                    let obj = self.objs[&it].clone();
                    let Obj::It {
                        kind,
                        dram,
                        tile,
                        buf,
                        state,
                        ptr,
                    } = obj
                    else {
                        unreachable!("deref on view");
                    };
                    let win = if kind == ItKind::PeekRead {
                        2 * tile
                    } else {
                        tile
                    };
                    let two = self.konst(func, &mut out, 2);
                    let saddr = self.bin(func, &mut out, AluOp::Mul, ptr, two);
                    let one = self.konst(func, &mut out, 1);
                    let laddr = self.bin(func, &mut out, AluOp::Add, saddr, one);
                    let l = self.fresh(func, Ty::I32);
                    out.push(Op {
                        kind: OpKind::SramRead {
                            sram: state,
                            addr: laddr,
                        },
                        results: vec![l],
                    });
                    let t = self.konst(func, &mut out, tile as i64);
                    let need = self.bin(func, &mut out, AluOp::GeU, l, t);
                    // Miss path: advance window and refill (an `if`
                    // containing a bulk load — the Fig. 6 structure).
                    let mut then_ops: Vec<Op> = Vec::new();
                    let g = self.fresh(func, Ty::I32);
                    then_ops.push(Op {
                        kind: OpKind::SramRead {
                            sram: state,
                            addr: saddr,
                        },
                        results: vec![g],
                    });
                    let t2 = self.konst(func, &mut then_ops, tile as i64);
                    let g2 = self.bin(func, &mut then_ops, AluOp::Add, g, t2);
                    then_ops.push(Op {
                        kind: OpKind::SramWrite {
                            sram: state,
                            addr: saddr,
                            val: g2,
                        },
                        results: vec![],
                    });
                    let lnew = self.bin(func, &mut then_ops, AluOp::Sub, l, t2);
                    then_ops.push(Op {
                        kind: OpKind::SramWrite {
                            sram: state,
                            addr: laddr,
                            val: lnew,
                        },
                        results: vec![],
                    });
                    let zero = self.konst(func, &mut then_ops, 0);
                    let sbase = self.buf_addr(func, &mut then_ops, ptr, win, zero);
                    let wlen = self.konst(func, &mut then_ops, win as i64);
                    then_ops.push(Op {
                        kind: OpKind::BulkLoad {
                            dram,
                            dram_base: g2,
                            sram: buf,
                            sram_base: sbase,
                            len: wlen,
                        },
                        results: vec![],
                    });
                    then_ops.push(Op {
                        kind: OpKind::Yield(vec![lnew]),
                        results: vec![],
                    });
                    let mut else_ops: Vec<Op> = Vec::new();
                    else_ops.push(Op {
                        kind: OpKind::Yield(vec![l]),
                        results: vec![],
                    });
                    let lcur = self.fresh(func, Ty::I32);
                    out.push(Op {
                        kind: OpKind::If {
                            cond: need,
                            then: Region::new(vec![], then_ops),
                            else_: Region::new(vec![], else_ops),
                        },
                        results: vec![lcur],
                    });
                    let addr = self.buf_addr(func, &mut out, ptr, win, lcur);
                    out.push(Op {
                        kind: OpKind::SramRead { sram: buf, addr },
                        results: op.results,
                    });
                }
                OpKind::ItPeek { it, ahead } => {
                    let Obj::It {
                        tile,
                        buf,
                        state,
                        ptr,
                        ..
                    } = self.objs[&it].clone()
                    else {
                        unreachable!("peek on view");
                    };
                    // peek(a) reads buf[l + a]; the 2×tile window guarantees
                    // validity for a ≤ tile (no fill here; deref faults).
                    let two = self.konst(func, &mut out, 2);
                    let saddr = self.bin(func, &mut out, AluOp::Mul, ptr, two);
                    let one = self.konst(func, &mut out, 1);
                    let laddr = self.bin(func, &mut out, AluOp::Add, saddr, one);
                    let l = self.fresh(func, Ty::I32);
                    out.push(Op {
                        kind: OpKind::SramRead {
                            sram: state,
                            addr: laddr,
                        },
                        results: vec![l],
                    });
                    let la = self.bin(func, &mut out, AluOp::Add, l, ahead);
                    let addr = self.buf_addr(func, &mut out, ptr, 2 * tile, la);
                    out.push(Op {
                        kind: OpKind::SramRead { sram: buf, addr },
                        results: op.results,
                    });
                }
                OpKind::ItWrite { it, val } => {
                    let Obj::It {
                        tile,
                        buf,
                        state,
                        ptr,
                        ..
                    } = self.objs[&it].clone()
                    else {
                        unreachable!("write on view");
                    };
                    let two = self.konst(func, &mut out, 2);
                    let saddr = self.bin(func, &mut out, AluOp::Mul, ptr, two);
                    let one = self.konst(func, &mut out, 1);
                    let laddr = self.bin(func, &mut out, AluOp::Add, saddr, one);
                    let l = self.fresh(func, Ty::I32);
                    out.push(Op {
                        kind: OpKind::SramRead {
                            sram: state,
                            addr: laddr,
                        },
                        results: vec![l],
                    });
                    let addr = self.buf_addr(func, &mut out, ptr, tile, l);
                    out.push(Op {
                        kind: OpKind::SramWrite {
                            sram: buf,
                            addr,
                            val,
                        },
                        results: vec![],
                    });
                }
                OpKind::ItInc { it, last } => {
                    let obj = self.objs[&it].clone();
                    let Obj::It {
                        kind,
                        dram,
                        tile,
                        buf,
                        state,
                        ptr,
                    } = obj
                    else {
                        unreachable!("inc on view");
                    };
                    let two = self.konst(func, &mut out, 2);
                    let saddr = self.bin(func, &mut out, AluOp::Mul, ptr, two);
                    let one = self.konst(func, &mut out, 1);
                    let laddr = self.bin(func, &mut out, AluOp::Add, saddr, one);
                    let l = self.fresh(func, Ty::I32);
                    out.push(Op {
                        kind: OpKind::SramRead {
                            sram: state,
                            addr: laddr,
                        },
                        results: vec![l],
                    });
                    let linc = self.bin(func, &mut out, AluOp::Add, l, one);
                    match kind {
                        ItKind::Read | ItKind::PeekRead => {
                            // Just advance; deref handles refills.
                            out.push(Op {
                                kind: OpKind::SramWrite {
                                    sram: state,
                                    addr: laddr,
                                    val: linc,
                                },
                                results: vec![],
                            });
                        }
                        ItKind::Write | ItKind::ManualWrite => {
                            let t = self.konst(func, &mut out, tile as i64);
                            let full = self.bin(func, &mut out, AluOp::GeU, linc, t);
                            let flush = if kind == ItKind::ManualWrite {
                                match last {
                                    Some(lv) => {
                                        let zero = self.konst(func, &mut out, 0);
                                        let lastb = self.bin(func, &mut out, AluOp::Ne, lv, zero);
                                        self.bin(func, &mut out, AluOp::Or, full, lastb)
                                    }
                                    None => full,
                                }
                            } else {
                                full
                            };
                            // if (flush) { store l+1 words; g += l+1; l = 0 }
                            // else { l = l+1 }
                            let mut then_ops: Vec<Op> = Vec::new();
                            let g = self.fresh(func, Ty::I32);
                            then_ops.push(Op {
                                kind: OpKind::SramRead {
                                    sram: state,
                                    addr: saddr,
                                },
                                results: vec![g],
                            });
                            let zero = self.konst(func, &mut then_ops, 0);
                            let sbase = self.buf_addr(func, &mut then_ops, ptr, tile, zero);
                            then_ops.push(Op {
                                kind: OpKind::BulkStore {
                                    dram,
                                    dram_base: g,
                                    sram: buf,
                                    sram_base: sbase,
                                    len: linc,
                                },
                                results: vec![],
                            });
                            let g2 = self.bin(func, &mut then_ops, AluOp::Add, g, linc);
                            then_ops.push(Op {
                                kind: OpKind::SramWrite {
                                    sram: state,
                                    addr: saddr,
                                    val: g2,
                                },
                                results: vec![],
                            });
                            then_ops.push(Op {
                                kind: OpKind::Yield(vec![zero]),
                                results: vec![],
                            });
                            let mut else_ops: Vec<Op> = Vec::new();
                            else_ops.push(Op {
                                kind: OpKind::Yield(vec![linc]),
                                results: vec![],
                            });
                            let lnext = self.fresh(func, Ty::I32);
                            out.push(Op {
                                kind: OpKind::If {
                                    cond: flush,
                                    then: Region::new(vec![], then_ops),
                                    else_: Region::new(vec![], else_ops),
                                },
                                results: vec![lnext],
                            });
                            out.push(Op {
                                kind: OpKind::SramWrite {
                                    sram: state,
                                    addr: laddr,
                                    val: lnext,
                                },
                                results: vec![],
                            });
                        }
                    }
                }
                // Recurse into regions of structured ops.
                mut kind => {
                    for r in kind.regions_mut() {
                        let taken = std::mem::take(r);
                        *r = self.rewrite_region(func, taken);
                    }
                    out.push(Op {
                        kind,
                        results: op.results,
                    });
                }
            }
        }
        // Regions without a terminator as last op (shouldn't happen for
        // well-formed IR, but foreach bodies end in Yield which is handled
        // above). If no terminator at all, still tear down.
        if !out.last().is_some_and(|o| o.kind.is_terminator()) {
            self.emit_region_teardown(func, &mut out, &region_objs, &region_ptrs);
        }
        Region::new(region.args, out)
    }

    /// Returns the region's fused pointer, popping it on first use. With
    /// fusion disabled each allocation site gets its own pop (ablation).
    fn get_ptr(
        &mut self,
        func: &mut Func,
        out: &mut Vec<Op>,
        region_ptrs: &mut Vec<(Value, revet_machine::AllocId)>,
    ) -> Value {
        if self.fuse {
            if let Some((p, _)) = region_ptrs.first() {
                return *p;
            }
        }
        self.counter += 1;
        let alloc = self
            .module
            .add_alloc(format!("alloc{}", self.counter), self.threads);
        let p = self.fresh(func, Ty::I32);
        out.push(Op {
            kind: OpKind::AllocPop { alloc },
            results: vec![p],
        });
        region_ptrs.push((p, alloc));
        p
    }

    /// Emits write-view/write-iterator flushes and the allocator push.
    fn emit_region_teardown(
        &mut self,
        func: &mut Func,
        out: &mut Vec<Op>,
        region_objs: &[Value],
        region_ptrs: &[(Value, revet_machine::AllocId)],
    ) {
        for handle in region_objs {
            match self.objs[handle].clone() {
                Obj::View {
                    kind: ViewKind::Write | ViewKind::Modify,
                    dram: Some(dram),
                    base: Some(base),
                    size,
                    sram,
                    ptr,
                    ..
                } => {
                    let zero = self.konst(func, out, 0);
                    let sbase = self.buf_addr(func, out, ptr, size, zero);
                    let len = self.konst(func, out, size as i64);
                    out.push(Op {
                        kind: OpKind::BulkStore {
                            dram,
                            dram_base: base,
                            sram,
                            sram_base: sbase,
                            len,
                        },
                        results: vec![],
                    });
                }
                Obj::It {
                    kind: ItKind::Write,
                    dram,
                    tile,
                    buf,
                    state,
                    ptr,
                } => {
                    // Flush the partial tile (l words from buf).
                    let two = self.konst(func, out, 2);
                    let saddr = self.bin(func, out, AluOp::Mul, ptr, two);
                    let one = self.konst(func, out, 1);
                    let laddr = self.bin(func, out, AluOp::Add, saddr, one);
                    let l = self.fresh(func, Ty::I32);
                    out.push(Op {
                        kind: OpKind::SramRead {
                            sram: state,
                            addr: laddr,
                        },
                        results: vec![l],
                    });
                    let g = self.fresh(func, Ty::I32);
                    out.push(Op {
                        kind: OpKind::SramRead {
                            sram: state,
                            addr: saddr,
                        },
                        results: vec![g],
                    });
                    let zero = self.konst(func, out, 0);
                    let sbase = self.buf_addr(func, out, ptr, tile, zero);
                    out.push(Op {
                        kind: OpKind::BulkStore {
                            dram,
                            dram_base: g,
                            sram: buf,
                            sram_base: sbase,
                            len: l,
                        },
                        results: vec![],
                    });
                }
                _ => {}
            }
        }
        for (p, alloc) in region_ptrs {
            out.push(Op {
                kind: OpKind::AllocPush {
                    alloc: *alloc,
                    ptr: *p,
                },
                results: vec![],
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use revet_lang::compile_to_mir;
    use revet_mir::{DramLayout, Interp};
    use revet_sltf::Word;

    /// Differential test: the strlen case study must compute identical DRAM
    /// contents before and after view/iterator lowering.
    #[test]
    fn strlen_lowering_preserves_semantics() {
        let src = r#"
            dram<u8> input;
            dram<u32> offsets;
            dram<u32> lengths;
            void main(u32 count) {
                foreach (count by 4) { u32 outer =>
                    readview<4> in_view(offsets, outer);
                    writeview<4> out_view(lengths, outer);
                    foreach (4) { u32 idx =>
                        u32 len = 0;
                        u32 off = in_view[idx];
                        readit<8> it(input, off);
                        while (*it) {
                            len = len + 1;
                            it++;
                        };
                        out_view[idx] = len;
                    };
                };
            }
        "#;
        let strings: &[&str] = &["hello", "", "dataflow-threads", "ab", "x", "yz", "", "末"];
        let mut input = Vec::new();
        let mut offsets = Vec::new();
        for s in strings {
            offsets.extend((input.len() as u32).to_le_bytes());
            input.extend(s.as_bytes());
            input.push(0);
        }

        let run = |module: &Module| -> Vec<u8> {
            let layout = DramLayout {
                base: vec![0, 4096, 8192],
            };
            let mut mem = module.build_memory(16 * 1024);
            mem.dram[..input.len()].copy_from_slice(&input);
            mem.dram[4096..4096 + offsets.len()].copy_from_slice(&offsets);
            Interp::new(module, &layout, &mut mem)
                .run("main", &[Word(strings.len() as u32)])
                .unwrap();
            mem.dram.clone()
        };

        let lowered = compile_to_mir(src).unwrap();
        let before = run(&lowered.module);

        let mut module = lowered.module.clone();
        lower_views(&mut module, Some(16), true);
        revet_mir::verify_module(&module).unwrap();
        assert_eq!(
            module.funcs[0].count_ops(|k| k.is_high_level()
                && !matches!(k, OpKind::BulkLoad { .. } | OpKind::BulkStore { .. })),
            0,
            "no view/iterator ops remain"
        );
        let after = run(&module);
        assert_eq!(before, after, "lowering changed observable DRAM state");
    }

    /// Write iterators flush full tiles at increment and the partial tile at
    /// deallocation.
    #[test]
    fn write_iterator_flush_paths() {
        let src = r#"
            dram<u8> out;
            void main(u32 n) {
                writeit<4> w(out, 0);
                u32 i = 0;
                while (i < n) {
                    *w = 65 + i;
                    w++;
                    i = i + 1;
                };
            }
        "#;
        let lowered = compile_to_mir(src).unwrap();
        let mut module = lowered.module.clone();
        lower_views(&mut module, Some(4), true);
        revet_mir::verify_module(&module).unwrap();
        let layout = DramLayout { base: vec![0] };
        let mut mem = module.build_memory(4096);
        Interp::new(&module, &layout, &mut mem)
            .run("main", &[Word(6)])
            .unwrap();
        assert_eq!(&mem.dram[0..6], b"ABCDEF", "6 = one full tile + partial");
    }

    /// Fusion means one allocator per region; without fusion each object
    /// gets its own.
    #[test]
    fn allocation_fusion_counts() {
        let src = r#"
            dram<u32> a;
            dram<u32> b;
            void main(u32 n) {
                foreach (n) { u32 i =>
                    readview<4> va(a, i);
                    readview<4> vb(b, i);
                    u32 x = va[0] + vb[1];
                };
            }
        "#;
        let lowered = compile_to_mir(src).unwrap();
        let mut fused = lowered.module.clone();
        lower_views(&mut fused, Some(8), true);
        let mut unfused = lowered.module.clone();
        lower_views(&mut unfused, Some(8), false);
        assert_eq!(fused.allocs.len(), 1, "one fused allocator");
        assert_eq!(unfused.allocs.len(), 2, "one allocator per object");
        let pops_fused = fused.funcs[0].count_ops(|k| matches!(k, OpKind::AllocPop { .. }));
        let pops_unfused = unfused.funcs[0].count_ops(|k| matches!(k, OpKind::AllocPop { .. }));
        assert_eq!(pops_fused, 1);
        assert_eq!(pops_unfused, 2);
    }

    /// Peek iterators keep a double window so peeks never fault.
    #[test]
    fn peek_iterator_window() {
        let src = r#"
            dram<u8> text;
            dram<u32> output;
            void main(u32 n) {
                peekreadit<4> it(text, 0);
                u32 hits = 0;
                u32 i = 0;
                while (i < n) {
                    if ((*it == 'a') && (it.peek(1) == 'b')) {
                        hits = hits + 1;
                    };
                    it++;
                    i = i + 1;
                };
                output[0] = hits;
            }
        "#;
        let lowered = compile_to_mir(src).unwrap();
        let mut module = lowered.module.clone();
        lower_views(&mut module, Some(4), true);
        let layout = DramLayout {
            base: vec![0, 4096],
        };
        let mut mem = module.build_memory(8192);
        let text = b"ababxxab";
        mem.dram[..text.len()].copy_from_slice(text);
        Interp::new(&module, &layout, &mut mem)
            .run("main", &[Word(text.len() as u32 - 1)])
            .unwrap();
        let hits = u32::from_le_bytes(mem.dram[4096..4100].try_into().unwrap());
        assert_eq!(hits, 3);
    }
}
