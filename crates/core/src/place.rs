//! Placement onto the vRDA unit grid (§V-D b, using the priorities of the
//! paper's placer: deeply nested nodes first).
//!
//! The Table II machine is a 20×20 checkerboard of CUs and MUs with 80 AGs
//! on the periphery. We place contexts greedily in decreasing nesting depth,
//! walking outward from the grid center, and report per-link Manhattan
//! distances — the retiming-relevant metric — plus a fits/doesn't-fit
//! verdict against the machine budget.

use crate::lower::{CompiledProgram, ContextInfo};
use revet_machine::UnitClass;
use std::collections::HashMap;

/// A grid coordinate.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Coord {
    /// Column.
    pub x: i32,
    /// Row.
    pub y: i32,
}

/// A completed placement.
#[derive(Clone, Debug)]
pub struct Placement {
    /// Context id → coordinate.
    pub at: HashMap<u32, Coord>,
    /// Sum of Manhattan link distances.
    pub total_wirelength: u64,
    /// Mean hops per link.
    pub mean_hops: f64,
    /// Whether the program fits the machine (CU/MU/AG budgets).
    pub fits: bool,
    /// CUs used / available.
    pub cu: (usize, usize),
    /// MUs used / available.
    pub mu: (usize, usize),
    /// AGs used / available.
    pub ag: (usize, usize),
}

/// Machine budget (Table II).
const CU_BUDGET: usize = 200;
const MU_BUDGET: usize = 200;
const AG_BUDGET: usize = 80;
const GRID: i32 = 20;

/// Places a compiled program's contexts onto the grid.
pub fn place(program: &CompiledProgram) -> Placement {
    // Sort contexts by descending depth (deeply nested first, per §V-D b).
    let mut order: Vec<&ContextInfo> = program.contexts.iter().collect();
    order.sort_by(|a, b| b.depth.cmp(&a.depth).then(a.id.cmp(&b.id)));

    // Spiral out from the center, assigning CU/MU cells per checkerboard
    // parity; AGs take border cells.
    let mut cu_cells = Vec::new();
    let mut mu_cells = Vec::new();
    let mut ag_cells = Vec::new();
    let c = GRID / 2;
    let mut cells: Vec<Coord> = (0..GRID)
        .flat_map(|y| (0..GRID).map(move |x| Coord { x, y }))
        .collect();
    cells.sort_by_key(|p| (p.x - c).abs() + (p.y - c).abs());
    for p in cells {
        if p.x == 0 || p.y == 0 || p.x == GRID - 1 || p.y == GRID - 1 {
            ag_cells.push(p);
        } else if (p.x + p.y) % 2 == 0 {
            cu_cells.push(p);
        } else {
            mu_cells.push(p);
        }
    }
    let (mut ci, mut mi, mut ai) = (0usize, 0usize, 0usize);
    let mut at = HashMap::new();
    let mut used = (0usize, 0usize, 0usize);
    for ctx in &order {
        let coord = match ctx.unit {
            UnitClass::Compute => {
                used.0 += 1;
                let p = cu_cells[ci % cu_cells.len()];
                ci += 1;
                p
            }
            UnitClass::Memory => {
                used.1 += 1;
                let p = mu_cells[mi % mu_cells.len()];
                mi += 1;
                p
            }
            UnitClass::AddressGen => {
                used.2 += 1;
                let p = ag_cells[ai % ag_cells.len()];
                ai += 1;
                p
            }
            UnitClass::Virtual => continue,
        };
        at.insert(ctx.id, coord);
    }
    // Wirelength: node graph edges between placed contexts.
    let mut total = 0u64;
    let mut links = 0u64;
    let chan_producer: HashMap<u32, u32> = program
        .graph
        .nodes()
        .iter()
        .enumerate()
        .flat_map(|(ni, n)| n.outs.iter().map(move |c| (c.0, ni as u32)))
        .collect();
    for (ni, node) in program.graph.nodes().iter().enumerate() {
        let _ = ni;
        for cin in &node.ins {
            if let Some(&producer) = chan_producer.get(&cin.0) {
                if let (Some(a), Some(b)) = (
                    at.get(&producer),
                    program
                        .graph
                        .nodes()
                        .iter()
                        .position(|n2| std::ptr::eq(n2, node))
                        .and_then(|i| at.get(&(i as u32))),
                ) {
                    total += ((a.x - b.x).abs() + (a.y - b.y).abs()) as u64;
                    links += 1;
                }
            }
        }
    }
    let fits = used.0 <= CU_BUDGET && used.1 <= MU_BUDGET && used.2 <= AG_BUDGET;
    Placement {
        at,
        total_wirelength: total,
        mean_hops: if links > 0 {
            total as f64 / links as f64
        } else {
            0.0
        },
        fits,
        cu: (used.0, CU_BUDGET),
        mu: (used.1, MU_BUDGET),
        ag: (used.2, AG_BUDGET),
    }
}
