//! Differential fuzzing: seeded random Revet programs executed both by the
//! MIR reference interpreter and by the compiled dataflow machine must
//! produce identical DRAM images — for every pass configuration.

use revet_core::{Compiler, PassOptions};
use revet_mir::{DramLayout, Interp};
use revet_sltf::Word;

const DRAM: usize = 1 << 16;

/// A tiny seeded PRNG (no external dependency needed here).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Generates a random program over `input`/`output` symbols: a parallel
/// foreach whose body mixes arithmetic, data-dependent ifs, and a bounded
/// data-dependent while.
fn random_program(seed: u64) -> String {
    let mut r = Rng(seed | 1);
    let mut body_expr = String::from("x");
    for _ in 0..r.below(4) {
        let op = ["+", "*", "^", "|"][r.below(4) as usize];
        let k = r.below(17) + 1;
        body_expr = format!("({body_expr} {op} {k})");
    }
    let if_stmt = match r.below(3) {
        0 => format!(
            "if (x & {}) {{ acc = acc + {}; }} else {{ acc = acc ^ x; }};",
            1 + r.below(7),
            r.below(100)
        ),
        1 => format!("if (x > {}) {{ acc = acc * 3; }};", r.below(50)),
        _ => String::new(),
    };
    let trip = 1 + r.below(6);
    format!(
        r#"
        dram<u32> input;
        dram<u32> output;
        void main(u32 n) {{
            foreach (n) {{ u32 i =>
                u32 x = input[i];
                u32 acc = {};
                {if_stmt}
                u32 t = x % {trip};
                while (t != 0) {{
                    acc = acc + {body_expr};
                    t = t - 1;
                }};
                output[i] = acc;
            }};
        }}
    "#,
        r.below(1000)
    )
}

fn run_interp(src: &str, inputs: &[u32]) -> Vec<u8> {
    let lowered = revet_lang::compile_to_mir(src).unwrap();
    let module = lowered.module;
    let layout = DramLayout {
        base: vec![0, (DRAM / 2) as u32],
    };
    let mut mem = module.build_memory(DRAM);
    for (i, v) in inputs.iter().enumerate() {
        mem.dram[4 * i..4 * i + 4].copy_from_slice(&v.to_le_bytes());
    }
    Interp::new(&module, &layout, &mut mem)
        .run("main", &[Word(inputs.len() as u32)])
        .unwrap();
    mem.dram[DRAM / 2..DRAM / 2 + 4 * inputs.len()].to_vec()
}

fn run_dataflow(src: &str, inputs: &[u32], opts: PassOptions) -> Vec<u8> {
    let mut opts = opts;
    opts.dram_bytes = DRAM;
    let mut program = Compiler::new(opts).compile_source(src).unwrap();
    for (i, v) in inputs.iter().enumerate() {
        program.graph.mem.dram[4 * i..4 * i + 4].copy_from_slice(&v.to_le_bytes());
    }
    program
        .run_untimed(&[Word(inputs.len() as u32)], 50_000_000)
        .unwrap();
    program.graph.mem.dram[DRAM / 2..DRAM / 2 + 4 * inputs.len()].to_vec()
}

#[test]
fn random_programs_agree_across_backends() {
    for seed in 0..24u64 {
        let src = random_program(seed);
        let mut r = Rng(seed.wrapping_mul(77) | 3);
        let inputs: Vec<u32> = (0..8).map(|_| r.below(1 << 16) as u32).collect();
        let want = run_interp(&src, &inputs);
        for opts in [PassOptions::default(), PassOptions::none()] {
            let got = run_dataflow(&src, &inputs, opts.clone());
            assert_eq!(
                got, want,
                "seed {seed} diverged (opts default={})\n{src}",
                opts.if_to_select
            );
        }
    }
}
