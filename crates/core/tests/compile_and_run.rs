//! Full-pipeline integration tests: Revet source → compiler → dataflow
//! graph → untimed machine execution, differentially checked against the
//! MIR reference interpreter and hand-computed oracles.

use revet_core::{Compiler, PassOptions};
use revet_sltf::Word;

const DRAM_BYTES: usize = 1 << 20;

/// Compiles and runs; returns final DRAM. Inits are (symbol_index, bytes).
fn run_with(
    opts: PassOptions,
    src: &str,
    args: &[u32],
    inits: &[(usize, &[u8])],
    n_drams: usize,
) -> Vec<u8> {
    let mut opts = opts;
    opts.dram_bytes = DRAM_BYTES;
    let mut program = Compiler::new(opts)
        .compile_source(src)
        .unwrap_or_else(|e| panic!("{e}"));
    let slice = DRAM_BYTES / n_drams;
    for (sym, bytes) in inits {
        let base = sym * slice;
        program.graph.mem.dram[base..base + bytes.len()].copy_from_slice(bytes);
    }
    let words: Vec<Word> = args.iter().map(|&a| Word(a)).collect();
    program
        .run_untimed(&words, 10_000_000)
        .unwrap_or_else(|e| panic!("{e}"));
    program.graph.mem.dram
}

fn run(src: &str, args: &[u32], inits: &[(usize, &[u8])], n_drams: usize) -> Vec<u8> {
    run_with(PassOptions::default(), src, args, inits, n_drams)
}

fn read_u32(d: &[u8], addr: usize) -> u32 {
    u32::from_le_bytes(d[addr..addr + 4].try_into().unwrap())
}

#[test]
fn foreach_squares() {
    let src = r#"
        dram<u32> output;
        void main(u32 n) {
            foreach (n) { u32 i =>
                output[i] = i * i;
            };
        }
    "#;
    let d = run(src, &[8], &[], 1);
    for i in 0..8usize {
        assert_eq!(read_u32(&d, 4 * i), (i * i) as u32);
    }
}

#[test]
fn data_dependent_while() {
    // Collatz steps per element — data-dependent loop trip counts across
    // parallel threads, the core dataflow-threads capability.
    let src = r#"
        dram<u32> input;
        dram<u32> output;
        void main(u32 n) {
            foreach (n) { u32 i =>
                u32 x = input[i];
                u32 steps = 0;
                while (x != 1) {
                    if (x & 1) {
                        x = 3 * x + 1;
                    } else {
                        x = x / 2;
                    };
                    steps = steps + 1;
                };
                output[i] = steps;
            };
        }
    "#;
    let vals: Vec<u32> = vec![6, 1, 27, 2, 7, 97, 5, 3];
    let mut input = Vec::new();
    for v in &vals {
        input.extend(v.to_le_bytes());
    }
    let d = run(src, &[vals.len() as u32], &[(0, &input)], 2);
    let collatz = |mut x: u32| {
        let mut s = 0;
        while x != 1 {
            x = if x % 2 == 1 { 3 * x + 1 } else { x / 2 };
            s += 1;
        }
        s
    };
    let slice = DRAM_BYTES / 2;
    for (i, v) in vals.iter().enumerate() {
        assert_eq!(read_u32(&d, slice + 4 * i), collatz(*v), "collatz({v})");
    }
}

#[test]
fn strlen_full_pipeline() {
    // The paper's Fig. 7 case study, end to end through the dataflow
    // machine: views, hierarchy-eliminated inner foreach, replicate with
    // hoisted allocation, iterators with demand fills, nested while.
    let src = r#"
        dram<u8> input;
        dram<u32> offsets;
        dram<u32> lengths;
        void main(u32 count) {
            foreach (count by 4) { u32 outer =>
                readview<4> in_view(offsets, outer);
                writeview<4> out_view(lengths, outer);
                foreach (4) { u32 idx =>
                    u32 len = 0;
                    u32 off = in_view[idx];
                    replicate (2) {
                        readit<8> it(input, off);
                        while (*it) {
                            len = len + 1;
                            it++;
                        };
                    };
                    out_view[idx] = len;
                };
            };
        }
    "#;
    let strings: &[&str] = &[
        "hello",
        "",
        "dataflow",
        "ab",
        "xyz",
        "q",
        "",
        "threads!",
        "a-much-longer-string-spanning-tiles",
        "7",
        "zz",
        "end",
    ];
    let mut input = Vec::new();
    let mut offsets = Vec::new();
    for s in strings {
        offsets.extend((input.len() as u32).to_le_bytes());
        input.extend(s.as_bytes());
        input.push(0);
    }
    let slice = DRAM_BYTES / 3;
    let d = run(
        src,
        &[strings.len() as u32],
        &[(0, &input), (1, &offsets)],
        3,
    );
    for (i, s) in strings.iter().enumerate() {
        assert_eq!(
            read_u32(&d, 2 * slice + 4 * i),
            s.len() as u32,
            "strlen({s:?})"
        );
    }
}

#[test]
fn strlen_with_all_optimizations_off() {
    // The naïve lowering must be semantically identical (Fig. 12 compares
    // resources, not results).
    let src = r#"
        dram<u8> input;
        dram<u32> offsets;
        dram<u32> lengths;
        void main(u32 count) {
            foreach (count) { u32 idx =>
                u32 len = 0;
                u32 off = offsets[idx];
                readit<8> it(input, off);
                while (*it) {
                    len = len + 1;
                    it++;
                };
                lengths[idx] = len;
            };
        }
    "#;
    let strings: &[&str] = &["opt", "", "off", "still-works"];
    let mut input = Vec::new();
    let mut offsets = Vec::new();
    for s in strings {
        offsets.extend((input.len() as u32).to_le_bytes());
        input.extend(s.as_bytes());
        input.push(0);
    }
    let slice = DRAM_BYTES / 3;
    for opts in [PassOptions::default(), PassOptions::none()] {
        let d = run_with(
            opts,
            src,
            &[strings.len() as u32],
            &[(0, &input), (1, &offsets)],
            3,
        );
        for (i, s) in strings.iter().enumerate() {
            assert_eq!(read_u32(&d, 2 * slice + 4 * i), s.len() as u32);
        }
    }
}

#[test]
fn foreach_reduction_through_machine() {
    let src = r#"
        dram<u32> vals;
        dram<u32> output;
        void main(u32 n) {
            foreach (n) { u32 i =>
                u32 m = foreach (4) reduce(+) { u32 lane =>
                    yield vals[i * 4 + lane];
                };
                output[i] = m;
            };
        }
    "#;
    let mut vals = Vec::new();
    for v in 0..16u32 {
        vals.extend((v * 10).to_le_bytes());
    }
    let d = run(src, &[4], &[(0, &vals)], 2);
    let slice = DRAM_BYTES / 2;
    for i in 0..4usize {
        let want: u32 = (0..4).map(|l| ((i * 4 + l) as u32) * 10).sum();
        assert_eq!(read_u32(&d, slice + 4 * i), want);
    }
}

#[test]
fn fork_with_shared_counter() {
    // Note: a *non-atomic* shared read-modify-write counter here would be a
    // data race on the dataflow machine (threads run concurrently across
    // contexts) — the Fig. 9 pattern uses the atomic decrement-and-fetch,
    // which the hierarchy-elimination pass emits. Here the survivor is
    // chosen by index instead.
    let src = r#"
        dram<u32> output;
        void main(u32 n) {
            fork (n) { u32 i =>
                output[i] = i + 100;
                if (i != n - 1) {
                    exit;
                };
            };
            output[63] = 1234;
        }
    "#;
    let d = run(src, &[5], &[], 1);
    for i in 0..5usize {
        assert_eq!(read_u32(&d, 4 * i), (i as u32) + 100);
    }
    assert_eq!(read_u32(&d, 252), 1234, "continuation ran once");
}

#[test]
fn replicate_load_distribution() {
    // Threads spread across replicated regions and all results come back.
    let src = r#"
        dram<u32> input;
        dram<u32> output;
        void main(u32 n) {
            foreach (n) { u32 i =>
                u32 acc = 0;
                u32 x = input[i];
                replicate (4) {
                    sram<u32, 4> scratch;
                    scratch[0] = x;
                    u32 j = 0;
                    while (j < x) {
                        acc = acc + scratch[0];
                        j = j + 1;
                    };
                };
                output[i] = acc;
            };
        }
    "#;
    let vals: Vec<u32> = vec![3, 0, 5, 1, 2, 7, 4, 6];
    let mut input = Vec::new();
    for v in &vals {
        input.extend(v.to_le_bytes());
    }
    let d = run(src, &[vals.len() as u32], &[(0, &input)], 2);
    let slice = DRAM_BYTES / 2;
    for (i, v) in vals.iter().enumerate() {
        assert_eq!(read_u32(&d, slice + 4 * i), v * v, "acc = x*x for x={v}");
    }
}

#[test]
fn hierarchy_elimination_preserves_results() {
    let src = r#"
        dram<u32> output;
        void main(u32 n) {
            foreach (n) { u32 outer =>
                foreach (4) { u32 idx =>
                    pragma(eliminate_hierarchy);
                    output[outer * 4 + idx] = outer * 1000 + idx;
                };
            };
        }
    "#;
    for opts in [
        PassOptions::default(),
        PassOptions {
            eliminate_hierarchy: false,
            ..PassOptions::default()
        },
    ] {
        let d = run_with(opts, src, &[3], &[], 1);
        for outer in 0..3u32 {
            for idx in 0..4u32 {
                assert_eq!(
                    read_u32(&d, (outer * 4 + idx) as usize * 4),
                    outer * 1000 + idx
                );
            }
        }
    }
}

#[test]
fn resource_report_sanity() {
    let src = r#"
        dram<u8> input;
        dram<u32> offsets;
        dram<u32> lengths;
        void main(u32 count) {
            foreach (count) { u32 idx =>
                u32 len = 0;
                u32 off = offsets[idx];
                replicate (2) {
                    readit<8> it(input, off);
                    while (*it) {
                        len = len + 1;
                        it++;
                    };
                };
                lengths[idx] = len;
            };
        }
    "#;
    let program = Compiler::new(PassOptions::default())
        .compile_source(src)
        .unwrap();
    let report = revet_core::report::ResourceReport::for_program("strlen", &program);
    assert!(report.total.0 > 0, "uses CUs");
    assert!(report.total.1 > 0, "uses MUs");
    assert!(report.total.2 > 0, "uses AGs");
    assert!(report.replicate.0 > 0, "replicate dist/merge CUs counted");
    assert!(report.deadlock_mu > 0, "while-loop deadlock buffer counted");
    assert_eq!(report.outer, 2, "outer parallelism = replicate ways");
    assert!(report.fits, "small program fits the Table II machine");
    let place = revet_core::place(&program);
    assert!(place.fits);
    assert!(place.mean_hops > 0.0);
}

#[test]
fn subword_packing_reduces_link_width() {
    // Loop-carried u8/u16 variables pack into shared 32-bit slots: the
    // recirculating tuple gets narrower (Fig. 12 "No Pack" ablation).
    let src = r#"
        dram<u8> input;
        dram<u32> output;
        void main(u32 n) {
            foreach (n) { u32 i =>
                u8 a = input[i];
                u8 b = 0;
                u8 c = 1;
                u16 d = 2;
                u32 steps = 0;
                while (a != 0) {
                    a = a - 1;
                    b = b + 1;
                    c = c + 2;
                    d = d + 3;
                    steps = steps + 1;
                };
                output[i] = b + c + d + steps;
            };
        }
    "#;
    let input: Vec<u8> = vec![3, 0, 7, 1];
    let packed = Compiler::new(PassOptions::default())
        .compile_source(src)
        .unwrap();
    let unpacked = Compiler::new(PassOptions {
        pack_subwords: false,
        ..PassOptions::default()
    })
    .compile_source(src)
    .unwrap();
    // §V-B d: "Every variable that is live into a merge operation consumes
    // a significant number of network resources and input buffers" — so the
    // relevant metric is the physical width of merge inputs.
    let merge_input_width = |p: &revet_core::CompiledProgram| -> usize {
        p.graph
            .nodes()
            .iter()
            .filter(|n| {
                n.behavior
                    .as_ref()
                    .is_some_and(|b| b.kind().contains("merge"))
            })
            .flat_map(|n| n.ins.iter())
            .map(|c| p.graph.chans()[c.0 as usize].arity)
            .sum()
    };
    let w_packed = merge_input_width(&packed);
    let w_unpacked = merge_input_width(&unpacked);
    assert!(
        w_packed < w_unpacked,
        "packing narrows merge inputs: {w_packed} vs {w_unpacked}"
    );
    // And results match.
    let d1 = run_with(PassOptions::default(), src, &[4], &[(0, &input)], 2);
    let d2 = run_with(
        PassOptions {
            pack_subwords: false,
            ..PassOptions::default()
        },
        src,
        &[4],
        &[(0, &input)],
        2,
    );
    let slice = DRAM_BYTES / 2;
    for i in 0..4usize {
        assert_eq!(read_u32(&d1, slice + 4 * i), read_u32(&d2, slice + 4 * i));
    }
}
