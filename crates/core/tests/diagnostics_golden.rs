//! Golden tests for rendered diagnostics: the exact rustc-style output of
//! eight malformed programs, pinned byte-for-byte. These are the
//! contract the `revetc` CLI, the serve `CompileFailed` frame, and the
//! README examples all rely on — renderer changes must be deliberate.

use revet_core::{Compiler, PassOptions, Session, Stage};
use revet_diag::codes;
use revet_mir::{DramLayout, Func, Module, OpKind, RegionBuilder, Value};

/// Runs the full staged pipeline on `src`, expecting failure, and returns
/// the session for artifact/diagnostic inspection.
fn fail(src: &str) -> Session {
    let mut s = Session::new(src, PassOptions::default());
    s.to_dataflow().expect_err("source must not compile");
    assert_eq!(s.stage(), Stage::Failed);
    s
}

fn render(src: &str) -> String {
    fail(src).render_diagnostics(false)
}

#[test]
fn golden_lex_unexpected_char() {
    // The lexer recovers past '$', so the parser also reports the token
    // stream's resulting shape error — two diagnostics, one run.
    assert_eq!(
        render("void main() {\n  u32 x = 3 $ 4;\n}"),
        "error[E0001]: unexpected character '$'\n \
         --> <input>:2:13\n  \
         |\n\
         2 |   u32 x = 3 $ 4;\n  \
         |             ^\n\
         \n\
         error[E0101]: expected ';', found '4'\n \
         --> <input>:2:15\n  \
         |\n\
         2 |   u32 x = 3 $ 4;\n  \
         |               ^\n"
    );
}

#[test]
fn golden_lex_unterminated_char_literal() {
    assert_eq!(
        render("void main() {\n  u32 c = 'a;\n}"),
        "error[E0002]: unterminated char literal\n \
         --> <input>:2:11\n  \
         |\n\
         2 |   u32 c = 'a;\n  \
         |           ^^\n\
         \n\
         error[E0103]: expected expression, found ';'\n \
         --> <input>:2:13\n  \
         |\n\
         2 |   u32 c = 'a;\n  \
         |             ^\n"
    );
}

#[test]
fn golden_parse_missing_expression() {
    assert_eq!(
        render("void main() {\n  u32 x = ;\n}"),
        "error[E0103]: expected expression, found ';'\n \
         --> <input>:2:11\n  \
         |\n\
         2 |   u32 x = ;\n  \
         |           ^\n"
    );
}

#[test]
fn golden_parse_unknown_type() {
    assert_eq!(
        render("dram<float> x;\nvoid main() { return; }"),
        "error[E0102]: unknown type 'float'\n \
         --> <input>:1:6\n  \
         |\n\
         1 | dram<float> x;\n  \
         |      ^^^^^\n"
    );
}

/// The acceptance-criterion case: two *independent* syntax errors in one
/// source produce two spanned diagnostics in one `Session` run, each with
/// a caret snippet, and the statement between them parses fine.
#[test]
fn golden_parse_multi_error_recovery() {
    let src = "void main() {\n  u32 a = ;\n  u32 ok = 1;\n  u32 b = 1 +;\n}";
    let s = fail(src);
    assert_eq!(
        s.render_diagnostics(false),
        "error[E0103]: expected expression, found ';'\n \
         --> <input>:2:11\n  \
         |\n\
         2 |   u32 a = ;\n  \
         |           ^\n\
         \n\
         error[E0103]: expected expression, found ';'\n \
         --> <input>:4:14\n  \
         |\n\
         4 |   u32 b = 1 +;\n  \
         |              ^\n"
    );
    // Machine-readable side of the same pair: codes + line/col.
    let positions: Vec<(&str, u32, u32)> = s
        .diagnostics()
        .iter()
        .map(|d| {
            let lc = s.source_map().line_col(d.span.expect("spanned").start);
            (d.code, lc.line, lc.col)
        })
        .collect();
    assert_eq!(
        positions,
        vec![
            (codes::PARSE_EXPECTED_EXPR, 2, 11),
            (codes::PARSE_EXPECTED_EXPR, 4, 14)
        ]
    );
}

#[test]
fn golden_semantic_unknown_variable() {
    assert_eq!(
        render("void main(u32 n) {\n  u32 x = n + missing;\n}"),
        "error[E0201]: unknown variable 'missing'\n \
         --> <input>:2:3\n  \
         |\n\
         2 |   u32 x = n + missing;\n  \
         |   ^^^^^^^^^^^^^^^^^^^^\n"
    );
}

#[test]
fn golden_semantic_readonly_foreach_assignment() {
    assert_eq!(
        render(
            "void main(u32 n) {\n  u32 acc = 0;\n  foreach (n) { u32 i =>\n    acc = acc + i;\n  };\n}"
        ),
        "error[E0203]: cannot assign 'acc': foreach threads have a read-only view of parent \
         variables (allocate memory to communicate)\n \
         --> <input>:4:5\n  \
         |\n\
         4 |     acc = acc + i;\n  \
         |     ^^^^^^^^^^^^^^\n"
    );
}

#[test]
fn golden_semantic_missing_return() {
    assert_eq!(
        render("u32 main(u32 n) {\n  u32 x = n * 2;\n}"),
        "error[E0204]: function 'main' must end with return of a value\n \
         --> <input>:1:1\n  \
         |\n\
         1 | u32 main(u32 n) {\n  \
         | ^^^^^^^^^^^^^^^\n"
    );
}

/// Post-pass verification failures (compiler bugs) surface as `E0301`
/// diagnostics too — span-less for a hand-built module, but still
/// structured and coded rather than a bare string.
#[test]
fn golden_post_pass_verify_failure() {
    let mut m = Module::default();
    let mut f = Func::new("main", &[], vec![]);
    let ghost = Value(99);
    let mut b = RegionBuilder::new();
    b.push(OpKind::Return(vec![ghost]), vec![]);
    f.body = b.build();
    m.funcs.push(f);

    let err = Compiler::new(PassOptions::default())
        .compile_module(&mut m, &DramLayout::default(), None)
        .expect_err("bad module must not verify");
    assert_eq!(err.diagnostics.len(), 1);
    let d = &err.diagnostics[0];
    assert_eq!(d.code, codes::MIR_VERIFY);
    assert_eq!(d.span, None);
    assert_eq!(
        err.render("", false),
        "error[E0301]: post-pass verification failed: verify error in @main: \
         use of undefined value %99\n"
    );

    // A front-end-built module, by contrast, retains spans end-to-end: a
    // value table entry created from source is attributed by the span
    // side-table even after passes rewrite regions.
    let mut s = Session::new(
        "dram<u32> output;\nvoid main(u32 n) {\n  output[n] = n * 2;\n}",
        PassOptions::default(),
    );
    let module = s.run_passes().expect("compiles");
    let func = module.func("main").expect("main");
    assert!(
        !func.spans.is_empty(),
        "front-end lowering must populate the span side-table"
    );
}

/// The `-O0` path reports through the same machinery.
#[test]
fn unoptimized_options_share_the_diagnostic_path() {
    let mut s = Session::new("void main() { u32 x = ; }", PassOptions::none());
    let e = s.parse().expect_err("parse must fail");
    assert_eq!(e.diagnostics[0].code, codes::PARSE_EXPECTED_EXPR);
}
