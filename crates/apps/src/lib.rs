//! # revet-apps — the eight evaluation applications (Table III)
//!
//! Each application provides: parameterized Revet source (the replicate
//! width is the paper's "outer parallelism" knob), a seeded workload
//! generator matching the Table III data distributions, and an oracle Rust
//! implementation used to validate both the MIR interpreter and dataflow
//! execution — and reused as the instruction-cost kernel for the CPU/GPU
//! baseline models.
//!
//! | app | description | key features |
//! |-----|-------------|--------------|
//! | isipv4 | DFA regex over address records | replicate, predicated selects |
//! | ip2int | IPv4 parsing | replicate, data-dependent while |
//! | murmur3 | hashing 64 B blobs | ReadIt |
//! | hash-table | open-addressing lookup | random DRAM probes, while |
//! | search | exact-match search (Horspool skips) | nested while (×2) |
//! | huff-dec | canonical Huffman decode | ReadIt + WriteIt, nested while |
//! | huff-enc | canonical Huffman encode | ManualWriteIt |
//! | kD-tree | count points in rectangle | foreach-reduce inside while |

#![warn(missing_docs)]

pub mod gen;
mod hash;
mod huffman;
mod kdtree;
mod text;

pub use hash::{hash_table_app, murmur3_app};
pub use huffman::{huff_dec_app, huff_enc_app};
pub use kdtree::kdtree_app;
pub use text::{ip2int_app, isipv4_app, search_app};

use revet_core::{CompiledProgram, Compiler, PassOptions};
use revet_sltf::Word;

/// Per-run workload: arguments, DRAM images, and validation data.
#[derive(Clone, Debug)]
pub struct Workload {
    /// `main` arguments.
    pub args: Vec<u32>,
    /// DRAM initialization: (symbol index, bytes).
    pub inits: Vec<(usize, Vec<u8>)>,
    /// Expected bytes at the output symbol after the run.
    pub expected: Vec<u8>,
    /// Output symbol index.
    pub out_sym: usize,
    /// Input+output bytes for throughput normalization (§VI-A b).
    pub app_bytes: u64,
    /// Per-thread bytes touched (Table III "Per-Thread" flavor; drives the
    /// GPU coalescing model).
    pub bytes_per_thread: u64,
    /// Number of parallel threads in the workload.
    pub threads: u64,
}

/// One evaluation application.
#[derive(Clone)]
pub struct App {
    /// Table III name.
    pub name: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// Key features (Table III column).
    pub key_features: &'static str,
    /// Revet source for a given replicate width.
    pub source: fn(outer: u32) -> String,
    /// Seeded workload generator at a given scale (record count).
    pub workload: fn(scale: usize, seed: u64) -> Workload,
    /// Relative CPU cost per byte (calibrates the baseline models; derived
    /// from the oracle's per-byte instruction counts).
    pub cpu_ops_per_byte: f64,
    /// Whether GPU threads of this app can coalesce their loads (§VI-B b:
    /// short per-thread records coalesce; long/random accesses do not).
    pub gpu_coalesces: bool,
}

impl std::fmt::Debug for App {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("App").field("name", &self.name).finish()
    }
}

impl App {
    /// Number of DRAM symbols the source declares.
    pub fn dram_symbols(&self) -> usize {
        let src = (self.source)(1);
        src.matches("dram<").count()
    }

    /// Source lines (Table III "Lines").
    pub fn lines(&self) -> usize {
        (self.source)(1).trim().lines().count()
    }

    /// Compiles the app at the given replicate width.
    ///
    /// # Errors
    ///
    /// Propagates compiler errors.
    pub fn compile(
        &self,
        outer: u32,
        opts: &PassOptions,
    ) -> Result<CompiledProgram, revet_core::CoreError> {
        let mut opts = opts.clone();
        opts.dram_bytes = DRAM_BYTES;
        Compiler::new(opts).compile_source(&(self.source)(outer))
    }

    /// Loads a workload into a compiled program's DRAM.
    pub fn load(&self, program: &mut CompiledProgram, w: &Workload) {
        let slice = DRAM_BYTES / self.dram_symbols();
        for (sym, bytes) in &w.inits {
            let base = sym * slice;
            program.graph.mem.dram[base..base + bytes.len()].copy_from_slice(bytes);
        }
    }

    /// Compile + workload + load, in one call — the app-construction
    /// boilerplate every harness needs before it can run anything.
    /// Returns the loaded program, the `main` arguments, and the workload
    /// (oracle bytes, byte counts).
    ///
    /// # Panics
    ///
    /// Panics on compile failure (harnesses treat that as a test failure).
    pub fn prepare(
        &self,
        outer: u32,
        scale: usize,
        seed: u64,
        opts: &PassOptions,
    ) -> (CompiledProgram, Vec<Word>, Workload) {
        let w = (self.workload)(scale, seed);
        let mut program = self
            .compile(outer, opts)
            .unwrap_or_else(|e| panic!("{}: {e}", self.name));
        self.load(&mut program, &w);
        let args = w.args.iter().map(|&a| Word(a)).collect();
        (program, args, w)
    }

    /// Checks the output symbol against the oracle bytes.
    ///
    /// # Panics
    ///
    /// Panics with a diff message on mismatch.
    pub fn check(&self, program: &CompiledProgram, w: &Workload) {
        self.check_dram(&program.graph.mem.dram, w);
    }

    /// Like [`App::check`], but against a raw DRAM image — batch harnesses
    /// validate each instance's private memory this way.
    ///
    /// # Panics
    ///
    /// Panics with a diff message on mismatch.
    pub fn check_dram(&self, dram: &[u8], w: &Workload) {
        let slice = DRAM_BYTES / self.dram_symbols();
        let base = w.out_sym * slice;
        let got = &dram[base..base + w.expected.len()];
        assert_eq!(
            got,
            &w.expected[..],
            "{}: dataflow output differs from oracle",
            self.name
        );
    }

    /// Compile + load + run untimed + check (the correctness path).
    ///
    /// # Panics
    ///
    /// Panics on compile, execution, or validation failure.
    pub fn validate_untimed(&self, outer: u32, scale: usize, seed: u64) {
        let (mut program, args, w) = self.prepare(outer, scale, seed, &PassOptions::default());
        program
            .run_untimed(&args, 200_000_000)
            .unwrap_or_else(|e| panic!("{}: {e}", self.name));
        self.check(&program, &w);
    }
}

/// DRAM image size shared by all app runs.
pub const DRAM_BYTES: usize = 1 << 22;

/// The Table III application registry.
pub fn all_apps() -> Vec<App> {
    vec![
        isipv4_app(),
        ip2int_app(),
        murmur3_app(),
        hash_table_app(),
        search_app(),
        huff_dec_app(),
        huff_enc_app(),
        kdtree_app(),
    ]
}

/// Looks up one app by name.
pub fn app(name: &str) -> Option<App> {
    all_apps().into_iter().find(|a| a.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete() {
        let apps = all_apps();
        assert_eq!(apps.len(), 8);
        let names: Vec<&str> = apps.iter().map(|a| a.name).collect();
        for want in [
            "isipv4",
            "ip2int",
            "murmur3",
            "hash-table",
            "search",
            "huff-dec",
            "huff-enc",
            "kD-tree",
        ] {
            assert!(names.contains(&want), "missing {want}");
        }
        assert!(app("murmur3").is_some());
        assert!(app("nope").is_none());
    }

    #[test]
    fn sources_have_plausible_line_counts() {
        // Table III reports 34–74 lines per app; ours should be in the same
        // ballpark.
        for a in all_apps() {
            let lines = a.lines();
            assert!(
                (15..160).contains(&lines),
                "{}: {} lines looks wrong",
                a.name,
                lines
            );
        }
    }
}
