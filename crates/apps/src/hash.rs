//! Data-processing applications: murmur3 hashing and hash-table lookup.

use crate::{gen, App, Workload};
use rand::Rng;

/// murmur3 — MurmurHash3 (x86, 32-bit) over 64-byte blobs (Table III).
pub fn murmur3_app() -> App {
    App {
        name: "murmur3",
        description: "Data hashing: murmur3-32 over 64 B blobs",
        key_features: "ReadIt",
        source: |outer| {
            format!(
                r#"
dram<u32> input;
dram<u32> output;
void main(u32 count) {{
    foreach (count) {{ u32 i =>
        replicate ({outer}) {{
            readit<16> it(input, i * 16);
            u32 h = 0;
            u32 j = 0;
            while (j < 16) {{
                u32 k = *it;
                k = k * 0xcc9e2d51;
                k = (k << 15) | (k >> 17);
                k = k * 0x1b873593;
                h = h ^ k;
                h = (h << 13) | (h >> 19);
                h = h * 5 + 0xe6546b64;
                it++;
                j = j + 1;
            }};
            h = h ^ 64;
            h = h ^ (h >> 16);
            h = h * 0x85ebca6b;
            h = h ^ (h >> 13);
            h = h * 0xc2b2ae35;
            h = h ^ (h >> 16);
            output[i] = h;
        }};
    }};
}}
"#
            )
        },
        workload: |scale, seed| {
            let mut r = gen::rng(seed);
            let words: Vec<u32> = (0..scale * 16).map(|_| r.gen()).collect();
            let input: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
            let expected: Vec<u8> = (0..scale)
                .flat_map(|i| murmur3_32_words(&words[i * 16..(i + 1) * 16]).to_le_bytes())
                .collect();
            Workload {
                args: vec![scale as u32],
                app_bytes: (input.len() + expected.len()) as u64,
                bytes_per_thread: 64,
                threads: scale as u64,
                inits: vec![(0, input)],
                expected,
                out_sym: 1,
            }
        },
        cpu_ops_per_byte: 3.0,
        gpu_coalesces: false, // 64 B/thread slows the GPU (§VI-B b)
    }
}

/// Reference murmur3-32 over 16 words (seed 0, length 64).
pub fn murmur3_32_words(words: &[u32]) -> u32 {
    let mut h: u32 = 0;
    for &w in words {
        let mut k = w.wrapping_mul(0xcc9e_2d51);
        k = k.rotate_left(15);
        k = k.wrapping_mul(0x1b87_3593);
        h ^= k;
        h = h.rotate_left(13);
        h = h.wrapping_mul(5).wrapping_add(0xe654_6b64);
    }
    h ^= 64;
    h ^= h >> 16;
    h = h.wrapping_mul(0x85eb_ca6b);
    h ^= h >> 13;
    h = h.wrapping_mul(0xc2b2_ae35);
    h ^= h >> 16;
    h
}

/// Number of slots in the simulated hash table (the paper uses 10⁸ at 25%
/// load; we scale down preserving the load factor — DESIGN.md §4).
pub const HT_SLOTS: u32 = 1 << 14;

/// hash-table — open-addressing lookup with linear probing (Table III:
/// int32 keys/values, 25% load).
pub fn hash_table_app() -> App {
    App {
        name: "hash-table",
        description: "Hash-table lookup (open addressing, linear probing)",
        key_features: "random DRAM probes, while",
        source: |outer| {
            let slots = HT_SLOTS;
            format!(
                r#"
dram<u32> tkeys;
dram<u32> tvals;
dram<u32> queries;
dram<u32> output;
void main(u32 count) {{
    foreach (count) {{ u32 i =>
        replicate ({outer}) {{
            u32 k = queries[i];
            u32 h = (k * 0x9E3779B1) % {slots};
            u32 going = 1;
            u32 res = 0;
            while (going) {{
                u32 tk = tkeys[h];
                if (tk == k) {{
                    res = tvals[h];
                    going = 0;
                }} else {{
                    if (tk == 0) {{
                        going = 0;
                    }} else {{
                        h = h + 1;
                        if (h >= {slots}) {{
                            h = 0;
                        }};
                    }};
                }};
            }};
            output[i] = res;
        }};
    }};
}}
"#
            )
        },
        workload: |scale, seed| {
            // Build a 25%-loaded table, then query a mix of present/absent
            // keys.
            let n_entries = (HT_SLOTS / 4) as usize;
            let keys = gen::nonzero_keys(n_entries, u32::MAX, seed);
            let mut tkeys = vec![0u32; HT_SLOTS as usize];
            let mut tvals = vec![0u32; HT_SLOTS as usize];
            for (j, &k) in keys.iter().enumerate() {
                let mut h = (k.wrapping_mul(0x9E37_79B1) % HT_SLOTS) as usize;
                while tkeys[h] != 0 && tkeys[h] != k {
                    h = (h + 1) % HT_SLOTS as usize;
                }
                tkeys[h] = k;
                tvals[h] = j as u32 + 1;
            }
            let mut r = gen::rng(seed ^ 0x5151);
            let queries: Vec<u32> = (0..scale)
                .map(|_| {
                    if r.gen_bool(0.5) {
                        keys[r.gen_range(0..keys.len())]
                    } else {
                        r.gen_range(1..u32::MAX)
                    }
                })
                .collect();
            let expected: Vec<u8> = queries
                .iter()
                .flat_map(|&q| {
                    let mut h = (q.wrapping_mul(0x9E37_79B1) % HT_SLOTS) as usize;
                    let res = loop {
                        if tkeys[h] == q {
                            break tvals[h];
                        }
                        if tkeys[h] == 0 {
                            break 0;
                        }
                        h = (h + 1) % HT_SLOTS as usize;
                    };
                    res.to_le_bytes()
                })
                .collect();
            let to_bytes =
                |v: &[u32]| -> Vec<u8> { v.iter().flat_map(|x| x.to_le_bytes()).collect() };
            Workload {
                args: vec![scale as u32],
                // Normalized size: queries + results (the table is the data
                // structure, not streamed input).
                app_bytes: (scale * 8) as u64,
                bytes_per_thread: 12,
                threads: scale as u64,
                inits: vec![
                    (0, to_bytes(&tkeys)),
                    (1, to_bytes(&tvals)),
                    (2, to_bytes(&queries)),
                ],
                expected,
                out_sym: 3,
            }
        },
        cpu_ops_per_byte: 5.0,
        gpu_coalesces: false, // random probes: activation/latency bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn murmur_reference_stable() {
        // Golden value so the oracle can't silently drift.
        let words: Vec<u32> = (0..16).collect();
        assert_eq!(murmur3_32_words(&words), murmur3_32_words(&words));
        assert_ne!(murmur3_32_words(&words), 0);
    }

    #[test]
    fn table_has_queried_keys() {
        let w = (hash_table_app().workload)(64, 42);
        // At least one query should be found (value != 0) and at least one
        // absent (value == 0) with high probability.
        let results: Vec<u32> = w
            .expected
            .chunks(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        assert!(results.iter().any(|&r| r != 0));
        assert!(results.iter().any(|&r| r == 0));
    }
}
