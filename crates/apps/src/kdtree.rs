//! kD-tree range counting (Table III: count points in a rectangle).
//!
//! Points live in a binary kD-tree (alternating split dimension) stored in
//! DRAM; each query thread traverses with an explicit SRAM stack and counts
//! leaf points inside its rectangle with a vectorized `foreach` reduction —
//! the Fig. 11 pattern of folding many comparisons into lanes. (The paper's
//! fork-per-child expansion is replaced by the stack; the fork construct is
//! exercised by the hierarchy-elimination path instead — see DESIGN.md.)

use crate::{gen, App, Workload};
use rand::Rng;

/// Tree node records: `[flag, a, b, c]` — internal: flag∈{0,1} is the split
/// dimension, `a`=split value, `b`/`c`=child indices; leaf: flag=2,
/// `a`=point start, `b`=point count.
#[derive(Clone, Debug, Default)]
pub struct KdTree {
    /// Flattened node records.
    pub nodes: Vec<u32>,
    /// Point xs (reordered).
    pub xs: Vec<u32>,
    /// Point ys (reordered).
    pub ys: Vec<u32>,
}

const LEAF_SIZE: usize = 16;

/// Builds a kD-tree over the given points.
pub fn build(points: &mut Vec<(u32, u32)>) -> KdTree {
    let mut t = KdTree::default();
    let n = points.len();
    build_rec(points, 0, n, 0, &mut t);
    t
}

fn build_rec(pts: &mut Vec<(u32, u32)>, lo: usize, hi: usize, depth: usize, t: &mut KdTree) -> u32 {
    let id = (t.nodes.len() / 4) as u32;
    t.nodes.extend([0, 0, 0, 0]);
    if hi - lo <= LEAF_SIZE {
        let start = t.xs.len() as u32;
        for &(x, y) in &pts[lo..hi] {
            t.xs.push(x);
            t.ys.push(y);
        }
        let base = (id * 4) as usize;
        t.nodes[base] = 2;
        t.nodes[base + 1] = start;
        t.nodes[base + 2] = (hi - lo) as u32;
        return id;
    }
    let dim = depth % 2;
    pts[lo..hi].sort_by_key(|&(x, y)| if dim == 0 { x } else { y });
    let mid = (lo + hi) / 2;
    let split = if dim == 0 { pts[mid].0 } else { pts[mid].1 };
    let left = build_rec(pts, lo, mid, depth + 1, t);
    let right = build_rec(pts, mid, hi, depth + 1, t);
    let base = (id * 4) as usize;
    t.nodes[base] = dim as u32;
    t.nodes[base + 1] = split;
    t.nodes[base + 2] = left;
    t.nodes[base + 3] = right;
    id
}

/// Counts points of `t` inside `[xmin,xmax]×[ymin,ymax]` (oracle).
pub fn count_in_rect(t: &KdTree, rect: (u32, u32, u32, u32)) -> u32 {
    let (xmin, xmax, ymin, ymax) = rect;
    let mut stack = vec![0u32];
    let mut found = 0;
    while let Some(n) = stack.pop() {
        let b = (n * 4) as usize;
        let flag = t.nodes[b];
        if flag == 2 {
            let (start, count) = (t.nodes[b + 1] as usize, t.nodes[b + 2] as usize);
            for i in start..start + count {
                if t.xs[i] >= xmin && t.xs[i] <= xmax && t.ys[i] >= ymin && t.ys[i] <= ymax {
                    found += 1;
                }
            }
        } else {
            let split = t.nodes[b + 1];
            let (lo, hi) = if flag == 0 {
                (xmin, xmax)
            } else {
                (ymin, ymax)
            };
            if lo < split {
                stack.push(t.nodes[b + 2]);
            }
            if hi >= split {
                stack.push(t.nodes[b + 3]);
            }
        }
    }
    found
}

/// kD-tree — range counting with data-dependent traversal.
pub fn kdtree_app() -> App {
    App {
        name: "kD-tree",
        description: "Count points in rectangle via kD-tree traversal",
        key_features: "foreach-reduce inside while, SRAM stack",
        source: |outer| {
            format!(
                r#"
dram<u32> nodes;
dram<u32> px;
dram<u32> py;
dram<u32> queries;
dram<u32> output;
void main(u32 count) {{
    foreach (count) {{ u32 q =>
        replicate ({outer}) {{
            u32 xmin = queries[q * 4];
            u32 xmax = queries[q * 4 + 1];
            u32 ymin = queries[q * 4 + 2];
            u32 ymax = queries[q * 4 + 3];
            sram<u32, 48> stack;
            u32 sp = 1;
            stack[0] = 0;
            u32 found = 0;
            while (sp) {{
                sp = sp - 1;
                u32 n = stack[sp];
                u32 flag = nodes[n * 4];
                u32 a = nodes[n * 4 + 1];
                u32 b = nodes[n * 4 + 2];
                u32 c = nodes[n * 4 + 3];
                if (flag == 2) {{
                    u32 m = foreach (b) reduce(+) {{ u32 t =>
                        u32 xi = px[a + t];
                        u32 yi = py[a + t];
                        u32 inx = (xi >= xmin) & (xi <= xmax);
                        u32 iny = (yi >= ymin) & (yi <= ymax);
                        yield inx & iny;
                    }};
                    found = found + m;
                }} else {{
                    u32 lo = xmin;
                    u32 hi = xmax;
                    if (flag) {{
                        lo = ymin;
                        hi = ymax;
                    }};
                    if (lo < a) {{
                        stack[sp] = b;
                        sp = sp + 1;
                    }};
                    if (hi >= a) {{
                        stack[sp] = c;
                        sp = sp + 1;
                    }};
                }};
            }};
            output[q] = found;
        }};
    }};
}}
"#
            )
        },
        workload: |scale, seed| {
            let mut r = gen::rng(seed);
            // Point grid sized so queries return ~16 points (Table III).
            let n_points = 4096usize;
            let side = 1u32 << 12;
            let mut points: Vec<(u32, u32)> = (0..n_points)
                .map(|_| (r.gen_range(0..side), r.gen_range(0..side)))
                .collect();
            let tree = build(&mut points);
            // Query rects sized for ~16 expected points: area fraction
            // 16/n_points of the grid.
            let frac = (16.0f64 / n_points as f64).sqrt();
            let w = ((side as f64) * frac) as u32;
            let mut queries = Vec::new();
            let mut expected = Vec::new();
            let mut fetched_points = 0u64;
            for _ in 0..scale {
                let x0 = r.gen_range(0..side - w);
                let y0 = r.gen_range(0..side - w);
                let rect = (x0, x0 + w, y0, y0 + w);
                queries.extend([rect.0, rect.1, rect.2, rect.3]);
                let c = count_in_rect(&tree, rect);
                fetched_points += c as u64;
                expected.extend(c.to_le_bytes());
            }
            let to_bytes =
                |v: &[u32]| -> Vec<u8> { v.iter().flat_map(|x| x.to_le_bytes()).collect() };
            Workload {
                args: vec![scale as u32],
                // Paper: size = fetched points that are counted.
                app_bytes: (fetched_points * 8).max(1),
                bytes_per_thread: 64,
                threads: scale as u64,
                inits: vec![
                    (0, to_bytes(&tree.nodes)),
                    (1, to_bytes(&tree.xs)),
                    (2, to_bytes(&tree.ys)),
                    (3, to_bytes(&queries)),
                ],
                expected,
                out_sym: 4,
            }
        },
        cpu_ops_per_byte: 12.0,
        gpu_coalesces: false, // multi-kernel frontier expansion on GPUs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_counts_match_brute_force() {
        let mut r = gen::rng(9);
        let mut points: Vec<(u32, u32)> = (0..500)
            .map(|_| (r.gen_range(0..1000), r.gen_range(0..1000)))
            .collect();
        let brute = points.clone();
        let tree = build(&mut points);
        for _ in 0..20 {
            let x0 = r.gen_range(0..900);
            let y0 = r.gen_range(0..900);
            let rect = (x0, x0 + 100, y0, y0 + 100);
            let want = brute
                .iter()
                .filter(|&&(x, y)| x >= rect.0 && x <= rect.1 && y >= rect.2 && y <= rect.3)
                .count() as u32;
            assert_eq!(count_in_rect(&tree, rect), want);
        }
    }

    #[test]
    fn tree_shape() {
        let mut pts: Vec<(u32, u32)> = (0..100).map(|i| (i, 100 - i)).collect();
        let t = build(&mut pts);
        assert_eq!(t.xs.len(), 100);
        assert!(t.nodes.len() >= 4);
    }
}
