//! String-analytics applications: isipv4, ip2int, search.

use crate::{gen, App, Workload};

/// isipv4 — DFA-style validation of 16-byte address records (Table III:
/// 90% valid addresses, 10% 'INVALID').
pub fn isipv4_app() -> App {
    App {
        name: "isipv4",
        description: "DFA regex: validate IPv4 address records",
        key_features: "replicate (x2)",
        source: |outer| {
            format!(
                r#"
dram<u8> input;
dram<u32> output;
void main(u32 count) {{
    foreach (count) {{ u32 i =>
        replicate ({outer}) {{
            readit<16> it(input, i * 16);
            u8 ok = 1;
            u8 dots = 0;
            u8 digs = 0;
            u16 val = 0;
            u8 c = 1;
            while (c) {{
                c = *it;
                if (c) {{
                    if (c == '.') {{
                        if (digs == 0) {{ ok = 0; }};
                        if (val > 255) {{ ok = 0; }};
                        dots = dots + 1;
                        digs = 0;
                        val = 0;
                    }} else {{
                        if ((c < '0') || (c > '9')) {{
                            ok = 0;
                        }} else {{
                            val = val * 10 + (c - '0');
                            digs = digs + 1;
                        }};
                    }};
                }};
                it++;
            }};
            if (digs == 0) {{ ok = 0; }};
            if (val > 255) {{ ok = 0; }};
            if (dots != 3) {{ ok = 0; }};
            output[i] = ok;
        }};
    }};
}}
"#
            )
        },
        workload: |scale, seed| {
            let input = gen::ipv4_records(scale, 90, seed);
            let expected: Vec<u8> = (0..scale)
                .flat_map(|i| {
                    let rec = &input[i * 16..(i + 1) * 16];
                    let s = rec.split(|&b| b == 0).next().unwrap_or(&[]);
                    let ok = oracle_is_ipv4(s) as u32;
                    ok.to_le_bytes()
                })
                .collect();
            Workload {
                args: vec![scale as u32],
                app_bytes: (input.len() + expected.len()) as u64,
                bytes_per_thread: 16,
                threads: scale as u64,
                inits: vec![(0, input)],
                expected,
                out_sym: 1,
            }
        },
        cpu_ops_per_byte: 8.0,
        gpu_coalesces: true,
    }
}

fn oracle_is_ipv4(s: &[u8]) -> bool {
    let text = match std::str::from_utf8(s) {
        Ok(t) => t,
        Err(_) => return false,
    };
    let parts: Vec<&str> = text.split('.').collect();
    parts.len() == 4
        && parts.iter().all(|p| {
            !p.is_empty() && p.bytes().all(|b| b.is_ascii_digit()) && {
                // Match the kernel: accumulate with wrapping and range-check.
                let mut v: u32 = 0;
                let mut over = false;
                for b in p.bytes() {
                    v = v.wrapping_mul(10).wrapping_add((b - b'0') as u32);
                    if v > 255 {
                        over = true;
                    }
                }
                !over
            }
        })
}

/// ip2int — parse IPv4 records into `u32` (Table III: random addresses).
pub fn ip2int_app() -> App {
    App {
        name: "ip2int",
        description: "Parsing: IPv4 address records to u32",
        key_features: "replicate (x2)",
        source: |outer| {
            format!(
                r#"
dram<u8> input;
dram<u32> output;
void main(u32 count) {{
    foreach (count) {{ u32 i =>
        replicate ({outer}) {{
            readit<16> it(input, i * 16);
            u32 acc = 0;
            u16 cur = 0;
            u8 c = 1;
            while (c) {{
                c = *it;
                if (c == '.') {{
                    acc = (acc << 8) | cur;
                    cur = 0;
                }} else {{
                    if (c) {{
                        cur = cur * 10 + (c - '0');
                    }};
                }};
                it++;
            }};
            acc = (acc << 8) | cur;
            output[i] = acc;
        }};
    }};
}}
"#
            )
        },
        workload: |scale, seed| {
            let input = gen::ipv4_records(scale, 100, seed);
            let expected: Vec<u8> = (0..scale)
                .flat_map(|i| {
                    let rec = &input[i * 16..(i + 1) * 16];
                    let s = rec.split(|&b| b == 0).next().unwrap_or(&[]);
                    oracle_ip2int(s).to_le_bytes()
                })
                .collect();
            Workload {
                args: vec![scale as u32],
                app_bytes: (input.len() + expected.len()) as u64,
                bytes_per_thread: 16,
                threads: scale as u64,
                inits: vec![(0, input)],
                expected,
                out_sym: 1,
            }
        },
        cpu_ops_per_byte: 6.0,
        gpu_coalesces: true,
    }
}

fn oracle_ip2int(s: &[u8]) -> u32 {
    let mut acc: u32 = 0;
    let mut cur: u32 = 0;
    for &b in s {
        if b == b'.' {
            acc = (acc << 8) | cur;
            cur = 0;
        } else {
            cur = cur.wrapping_mul(10).wrapping_add((b - b'0') as u32);
        }
    }
    (acc << 8) | cur
}

/// search — exact-match search with Horspool bad-character skips over
/// 256-byte chunks of synthetic English-like text (Table III: find
/// 'Moby Dick' in chunks of *Moby Dick*; see DESIGN.md §4 for the text
/// substitution). The doubly nested data-dependent `while` is the §VI-B b
/// headline.
pub fn search_app() -> App {
    App {
        name: "search",
        description: "Exact-match search (Horspool) over text chunks",
        key_features: "nested while (x2)",
        source: |outer| {
            format!(
                r#"
dram<u8> text;
dram<u8> pat;
dram<u32> skip;
dram<u32> output;
void main(u32 chunks) {{
    foreach (chunks) {{ u32 ci =>
        replicate ({outer}) {{
            u32 base = ci * 256;
            u32 pos = 0;
            u32 hits = 0;
            while (pos <= 248) {{
                u32 j = 7;
                u32 ok = 1;
                u32 going = 1;
                while (going) {{
                    if (text[base + pos + j] != pat[j]) {{
                        ok = 0;
                        going = 0;
                    }} else {{
                        if (j == 0) {{
                            going = 0;
                        }} else {{
                            j = j - 1;
                        }};
                    }};
                }};
                if (ok) {{
                    hits = hits + 1;
                    pos = pos + 1;
                }} else {{
                    u32 last = text[base + pos + 7];
                    pos = pos + skip[last];
                }};
            }};
            output[ci] = hits;
        }};
    }};
}}
"#
            )
        },
        workload: |scale, seed| {
            let pattern = b"mobydick";
            let text = gen::english_text(scale * 256, pattern, 512, seed);
            let mut skip = vec![8u32; 256];
            for (j, &b) in pattern.iter().take(7).enumerate() {
                skip[b as usize] = (7 - j) as u32;
            }
            let skip_bytes: Vec<u8> = skip.iter().flat_map(|v| v.to_le_bytes()).collect();
            let mut pat = pattern.to_vec();
            pat.push(0);
            let expected: Vec<u8> = (0..scale)
                .flat_map(|c| {
                    let chunk = &text[c * 256..(c + 1) * 256];
                    oracle_search(chunk, pattern, &skip).to_le_bytes()
                })
                .collect();
            Workload {
                args: vec![scale as u32],
                app_bytes: (text.len() + expected.len()) as u64,
                bytes_per_thread: 256,
                threads: scale as u64,
                inits: vec![(0, text), (1, pat), (2, skip_bytes)],
                expected,
                out_sym: 3,
            }
        },
        cpu_ops_per_byte: 4.0,
        gpu_coalesces: false, // 256 B/thread: uncoalesced L1 pressure (§VI-B b)
    }
}

fn oracle_search(chunk: &[u8], pattern: &[u8], skip: &[u32]) -> u32 {
    let mut pos = 0usize;
    let mut hits = 0u32;
    while pos + 8 <= chunk.len() {
        if &chunk[pos..pos + 8] == pattern {
            hits += 1;
            pos += 1;
        } else {
            pos += skip[chunk[pos + 7] as usize] as usize;
        }
    }
    hits
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_ipv4() {
        assert!(oracle_is_ipv4(b"1.2.3.4"));
        assert!(oracle_is_ipv4(b"255.255.255.255"));
        assert!(!oracle_is_ipv4(b"INVALID"));
        assert!(!oracle_is_ipv4(b"1.2.3"));
        assert!(!oracle_is_ipv4(b"1.2.3.258"));
        assert!(!oracle_is_ipv4(b"1..3.4"));
    }

    #[test]
    fn oracle_parse() {
        assert_eq!(oracle_ip2int(b"1.2.3.4"), 0x01020304);
        assert_eq!(oracle_ip2int(b"255.0.0.1"), 0xFF000001);
    }

    #[test]
    fn oracle_search_counts() {
        let mut skip = vec![8u32; 256];
        for (j, &b) in b"mobydic".iter().enumerate() {
            skip[b as usize] = (7 - j) as u32;
        }
        let text = b"xxmobydickxxmobydickxxxxxxxxxxxxx";
        assert_eq!(oracle_search(text, b"mobydick", &skip), 2);
    }
}
