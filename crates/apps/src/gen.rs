//! Deterministic synthetic workload generators.
//!
//! The paper's `search` benchmark scans *Moby Dick*; we substitute a seeded
//! Markov-style English-like text generator (DESIGN.md §4) — Horspool skip
//! behaviour depends only on alphabet statistics and match density, which
//! the generator controls.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded RNG for workloads.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// English-like letter distribution (rough frequencies).
const LETTERS: &[u8] = b"etaoinshrdlcumwfgypbvk";

/// Generates `len` bytes of English-like text with spaces, planting
/// `pattern` roughly every `plant_every` bytes.
pub fn english_text(len: usize, pattern: &[u8], plant_every: usize, seed: u64) -> Vec<u8> {
    let mut r = rng(seed);
    let mut out = Vec::with_capacity(len);
    while out.len() < len {
        if plant_every > 0 && !pattern.is_empty() && out.len() % plant_every == plant_every - 1 {
            out.extend_from_slice(pattern);
            continue;
        }
        let roll: f64 = r.gen();
        if roll < 0.17 {
            out.push(b' ');
        } else {
            let idx = (r.gen::<f64>() * r.gen::<f64>() * LETTERS.len() as f64) as usize;
            out.push(LETTERS[idx.min(LETTERS.len() - 1)]);
        }
    }
    out.truncate(len);
    out
}

/// A random IPv4 address string ("x.x.x.x").
pub fn ipv4_string(r: &mut StdRng) -> String {
    format!(
        "{}.{}.{}.{}",
        r.gen_range(0..=255u32),
        r.gen_range(0..=255u32),
        r.gen_range(0..=255u32),
        r.gen_range(0..=255u32)
    )
}

/// Fixed-width (16-byte, NUL-padded) address records: `valid_pct`% random
/// IPv4 addresses, the rest the literal `INVALID` (Table III: 90% valid).
pub fn ipv4_records(count: usize, valid_pct: u32, seed: u64) -> Vec<u8> {
    let mut r = rng(seed);
    let mut out = Vec::with_capacity(count * 16);
    for _ in 0..count {
        let s = if r.gen_range(0..100u32) < valid_pct {
            ipv4_string(&mut r)
        } else {
            "INVALID".to_string()
        };
        let mut rec = s.into_bytes();
        rec.resize(16, 0);
        out.extend_from_slice(&rec);
    }
    out
}

/// Random `u32`s in `1..max` (0 is reserved as the empty-slot marker).
pub fn nonzero_keys(count: usize, max: u32, seed: u64) -> Vec<u32> {
    let mut r = rng(seed);
    (0..count).map(|_| r.gen_range(1..max)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_is_deterministic_and_planted() {
        let a = english_text(4096, b"moby", 256, 7);
        let b = english_text(4096, b"moby", 256, 7);
        assert_eq!(a, b);
        let hits = a.windows(4).filter(|w| w == b"moby").count();
        assert!(hits >= 10, "plants present: {hits}");
    }

    #[test]
    fn records_are_fixed_width() {
        let recs = ipv4_records(10, 90, 1);
        assert_eq!(recs.len(), 160);
        // Every record NUL-terminated within 16 bytes.
        for i in 0..10 {
            assert!(recs[i * 16..(i + 1) * 16].contains(&0));
        }
    }

    #[test]
    fn keys_nonzero() {
        for k in nonzero_keys(100, 1000, 3) {
            assert!(k >= 1 && k < 1000);
        }
    }
}
