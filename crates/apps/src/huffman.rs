//! Huffman compression/decompression (Table III: 64 codes, 16-bit max
//! length) over fixed-symbol-count blocks.

use crate::{gen, App, Workload};
use rand::Rng;

/// Symbols per block.
pub const SYMS: u32 = 64;
/// Output bytes reserved per encoded block (worst case 64 × 2 B + pad).
pub const OUTB: u32 = 160;
/// Input bytes reserved per encoded block for the decoder.
pub const INB: u32 = OUTB;

/// A canonical Huffman code over 64 symbols with lengths ≤ 16.
#[derive(Clone, Debug)]
pub struct Codebook {
    /// Code length per symbol (0..64).
    pub lens: Vec<u32>,
    /// Code value per symbol.
    pub codes: Vec<u32>,
    /// First code value per length (canonical decode).
    pub first: Vec<u32>,
    /// Symbol count per length.
    pub counts: Vec<u32>,
    /// Start index into the symbol table per length.
    pub index: Vec<u32>,
    /// Symbols sorted by (length, symbol).
    pub symtab: Vec<u8>,
}

/// Builds a skewed canonical codebook: a few short codes, a tail of long
/// ones (lengths 2..=9; max length well under the 16-bit Table III cap).
pub fn codebook() -> Codebook {
    // Kraft-valid skew: 2x3 + 6x5 + 8x6 + 16x7 + 32x8 bits
    // (2/8 + 6/32 + 8/64 + 16/128 + 32/256 = 0.8125 <= 1).
    let mut lens = vec![0u32; 64];
    for (s, len) in lens.iter_mut().enumerate() {
        *len = match s {
            0..=1 => 3,
            2..=7 => 5,
            8..=15 => 6,
            16..=31 => 7,
            _ => 8,
        };
    }
    // Canonical assignment.
    let maxlen = 16usize;
    let mut counts = vec![0u32; maxlen + 1];
    for &l in &lens {
        counts[l as usize] += 1;
    }
    let mut first = vec![0u32; maxlen + 1];
    let mut code = 0u32;
    for l in 1..=maxlen {
        code = (code + counts[l - 1]) << 1;
        first[l] = code;
    }
    let mut next = first.clone();
    let mut codes = vec![0u32; 64];
    let mut by_len: Vec<(u32, u8)> = Vec::new();
    for (s, &l) in lens.iter().enumerate() {
        codes[s] = next[l as usize];
        next[l as usize] += 1;
        by_len.push((l, s as u8));
    }
    by_len.sort();
    let symtab: Vec<u8> = by_len.iter().map(|&(_, s)| s).collect();
    let mut index = vec![0u32; maxlen + 1];
    let mut acc = 0u32;
    for l in 1..=maxlen {
        index[l] = acc;
        acc += counts[l];
    }
    Codebook {
        lens,
        codes,
        first,
        counts,
        index,
        symtab,
    }
}

/// Encodes one block of symbols; mirrors the kernel exactly (bit-packed
/// big-endian within bytes, zero-padded final byte, one trailing pad byte).
pub fn encode_block(cb: &Codebook, syms: &[u8]) -> (Vec<u8>, u32) {
    let mut out = Vec::new();
    let mut acc: u32 = 0;
    let mut nb: u32 = 0;
    let mut total = 0u32;
    for &s in syms {
        let c = cb.codes[s as usize];
        let l = cb.lens[s as usize];
        acc = (acc << l) | c;
        nb += l;
        total += l;
        while nb >= 8 {
            nb -= 8;
            out.push((acc >> nb) as u8);
        }
    }
    if nb > 0 {
        out.push(((acc << (8 - nb)) & 0xFF) as u8);
    } else {
        out.push(0);
    }
    (out, total)
}

/// huff-enc — canonical Huffman encoding with a manual-flush write iterator
/// (§V-A a).
pub fn huff_enc_app() -> App {
    App {
        name: "huff-enc",
        description: "Compression: canonical Huffman encode (64 codes)",
        key_features: "ManualWriteIt",
        source: |outer| {
            format!(
                r#"
dram<u8> symbols;
dram<u32> codes;
dram<u32> lens;
dram<u8> outbits;
dram<u32> output;
void main(u32 blocks) {{
    foreach (blocks) {{ u32 i =>
        replicate ({outer}) {{
            readit<16> it(symbols, i * {SYMS});
            manualwriteit<16> w(outbits, i * {OUTB});
            u32 acc = 0;
            u32 nb = 0;
            u32 j = 0;
            u32 total = 0;
            while (j < {SYMS}) {{
                u32 s = *it;
                it++;
                u32 c = codes[s];
                u32 l = lens[s];
                acc = (acc << l) | c;
                nb = nb + l;
                total = total + l;
                while (nb >= 8) {{
                    nb = nb - 8;
                    *w = acc >> nb;
                    w.inc(0);
                }};
                j = j + 1;
            }};
            if (nb) {{
                *w = acc << (8 - nb);
            }} else {{
                *w = 0;
            }};
            w.inc(1);
            output[i] = total;
        }};
    }};
}}
"#
            )
        },
        workload: |scale, seed| {
            let cb = codebook();
            let mut r = gen::rng(seed);
            let symbols: Vec<u8> = (0..scale * SYMS as usize)
                .map(|_| (r.gen::<f64>() * r.gen::<f64>() * 64.0) as u8)
                .collect();
            let mut outbits = vec![0u8; scale * OUTB as usize];
            let mut totals = Vec::new();
            for b in 0..scale {
                let (bytes, total) =
                    encode_block(&cb, &symbols[b * SYMS as usize..(b + 1) * SYMS as usize]);
                outbits[b * OUTB as usize..b * OUTB as usize + bytes.len()].copy_from_slice(&bytes);
                totals.extend(total.to_le_bytes());
            }
            let to_bytes =
                |v: &[u32]| -> Vec<u8> { v.iter().flat_map(|x| x.to_le_bytes()).collect() };
            Workload {
                args: vec![scale as u32],
                app_bytes: (symbols.len() + outbits.iter().filter(|&&b| b != 0).count()) as u64,
                bytes_per_thread: SYMS as u64 + 20,
                threads: scale as u64,
                inits: vec![
                    (0, symbols),
                    (1, to_bytes(&cb.codes)),
                    (2, to_bytes(&cb.lens)),
                ],
                // Validate the bit totals (symbol 4); the bitstream itself is
                // checked by the decoder round-trip test.
                expected: totals,
                out_sym: 4,
            }
        },
        cpu_ops_per_byte: 7.0,
        gpu_coalesces: true,
    }
}

/// huff-dec — canonical Huffman decode with bit-serial code assembly.
pub fn huff_dec_app() -> App {
    App {
        name: "huff-dec",
        description: "Decompression: canonical Huffman decode (64 codes)",
        key_features: "ReadIt, nested while",
        source: |outer| {
            format!(
                r#"
dram<u8> bits;
dram<u32> first;
dram<u32> counts;
dram<u32> index;
dram<u8> symtab;
dram<u8> outsyms;
void main(u32 blocks) {{
    foreach (blocks) {{ u32 i =>
        replicate ({outer}) {{
            readit<16> it(bits, i * {INB});
            writeit<16> w(outsyms, i * {SYMS});
            u32 cur = 0;
            u32 nb = 0;
            u32 j = 0;
            u32 code = 0;
            u32 len = 0;
            while (j < {SYMS}) {{
                if (nb == 0) {{
                    cur = *it;
                    it++;
                    nb = 8;
                }};
                u32 bit = (cur >> (nb - 1)) & 1;
                nb = nb - 1;
                code = (code << 1) | bit;
                len = len + 1;
                u32 off = code - first[len];
                if (off < counts[len]) {{
                    *w = symtab[index[len] + off];
                    w++;
                    j = j + 1;
                    code = 0;
                    len = 0;
                }};
            }};
        }};
    }};
}}
"#
            )
        },
        workload: |scale, seed| {
            let cb = codebook();
            let mut r = gen::rng(seed);
            let symbols: Vec<u8> = (0..scale * SYMS as usize)
                .map(|_| (r.gen::<f64>() * r.gen::<f64>() * 64.0) as u8)
                .collect();
            let mut bits = vec![0u8; scale * INB as usize];
            for b in 0..scale {
                let (bytes, _) =
                    encode_block(&cb, &symbols[b * SYMS as usize..(b + 1) * SYMS as usize]);
                bits[b * INB as usize..b * INB as usize + bytes.len()].copy_from_slice(&bytes);
            }
            let to_bytes =
                |v: &[u32]| -> Vec<u8> { v.iter().flat_map(|x| x.to_le_bytes()).collect() };
            Workload {
                args: vec![scale as u32],
                app_bytes: (bits.iter().filter(|&&b| b != 0).count() + symbols.len()) as u64,
                bytes_per_thread: INB as u64,
                threads: scale as u64,
                inits: vec![
                    (0, bits),
                    (1, to_bytes(&cb.first)),
                    (2, to_bytes(&cb.counts)),
                    (3, to_bytes(&cb.index)),
                    (4, cb.symtab.clone()),
                ],
                expected: symbols,
                out_sym: 5,
            }
        },
        cpu_ops_per_byte: 10.0,
        gpu_coalesces: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codebook_is_prefix_free_canonical() {
        let cb = codebook();
        // Kraft sum exactly 1 would be a complete code; ≤ 1 required.
        let kraft: f64 = cb.lens.iter().map(|&l| 2f64.powi(-(l as i32))).sum();
        assert!(kraft <= 1.0 + 1e-9, "Kraft {kraft}");
        // Decode every symbol's own code back.
        for s in 0..64u32 {
            let l = cb.lens[s as usize];
            let c = cb.codes[s as usize];
            let off = c - cb.first[l as usize];
            assert!(off < cb.counts[l as usize]);
            assert_eq!(cb.symtab[(cb.index[l as usize] + off) as usize], s as u8);
        }
    }

    #[test]
    fn encode_decode_roundtrip_reference() {
        let cb = codebook();
        let syms: Vec<u8> = (0..SYMS as u8).collect();
        let (bytes, total) = encode_block(&cb, &syms);
        assert!(total > 0);
        // Bit-serial decode mirroring the kernel.
        let mut out = Vec::new();
        let mut code = 0u32;
        let mut len = 0usize;
        'outer: for &byte in &bytes {
            for b in (0..8).rev() {
                code = (code << 1) | ((byte >> b) & 1) as u32;
                len += 1;
                let off = code.wrapping_sub(cb.first[len]);
                if off < cb.counts[len] {
                    out.push(cb.symtab[(cb.index[len] + off) as usize]);
                    code = 0;
                    len = 0;
                    if out.len() == syms.len() {
                        break 'outer;
                    }
                }
            }
        }
        assert_eq!(out, syms);
    }
}
