//! Every Table III application, compiled by the full pipeline and executed
//! on the dataflow machine, validated against its oracle.

use revet_apps::all_apps;

macro_rules! validate {
    ($fn_name:ident, $app:literal, $outer:expr, $scale:expr) => {
        #[test]
        fn $fn_name() {
            let app = revet_apps::app($app).expect("app registered");
            app.validate_untimed($outer, $scale, 0xD0E5);
        }
    };
}

validate!(isipv4_dataflow, "isipv4", 2, 24);
validate!(ip2int_dataflow, "ip2int", 2, 24);
validate!(murmur3_dataflow, "murmur3", 2, 16);
validate!(hash_table_dataflow, "hash-table", 2, 32);
validate!(search_dataflow, "search", 2, 8);
validate!(huff_dec_dataflow, "huff-dec", 2, 6);
validate!(huff_enc_dataflow, "huff-enc", 2, 6);
validate!(kdtree_dataflow, "kD-tree", 2, 8);

/// All apps also validate at replicate width 1 (no distribution network).
#[test]
fn all_apps_at_width_one() {
    for app in all_apps() {
        app.validate_untimed(1, 4, 7);
    }
}

/// Apps validate against the MIR reference interpreter too (pre-dataflow),
/// pinning down which layer a regression lives in.
#[test]
fn all_apps_through_mir_interp() {
    use revet_mir::{DramLayout, Interp};
    use revet_sltf::Word;
    for app in all_apps() {
        let w = (app.workload)(4, 13);
        let lowered = revet_lang::compile_to_mir(&(app.source)(2)).unwrap();
        let module = lowered.module;
        let n = module.drams.len();
        let slice = (revet_apps::DRAM_BYTES / n) as u32;
        let layout = DramLayout {
            base: (0..n as u32).map(|i| i * slice).collect(),
        };
        let mut mem = module.build_memory(revet_apps::DRAM_BYTES);
        for (sym, bytes) in &w.inits {
            let base = sym * slice as usize;
            mem.dram[base..base + bytes.len()].copy_from_slice(bytes);
        }
        let args: Vec<Word> = w.args.iter().map(|&a| Word(a)).collect();
        Interp::new(&module, &layout, &mut mem)
            .with_fuel(1_000_000_000)
            .run("main", &args)
            .unwrap_or_else(|e| panic!("{}: {e}", app.name));
        let base = w.out_sym * slice as usize;
        assert_eq!(
            &mem.dram[base..base + w.expected.len()],
            &w.expected[..],
            "{}: MIR interp output differs from oracle",
            app.name
        );
    }
}

/// Regression: workloads larger than the allocator pool must recycle
/// pointers through the replicate distribution network (a leaked hoisted
/// pointer deadlocks the pool).
#[test]
fn pointer_pool_recycles_beyond_capacity() {
    let app = revet_apps::app("murmur3").unwrap();
    app.validate_untimed(4, 200, 3);
}
