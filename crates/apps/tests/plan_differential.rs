//! Differential correctness for the compiled execution plan: on every
//! Table III app, the [`ExecPlan`] fast path must be observationally
//! identical to the interpreted ready-set executor — the full final DRAM
//! image and the `main` sink's token stream, bit-for-bit. The graphs are
//! Kahn process networks, so any divergence there is an executor bug,
//! never legal schedule nondeterminism. (Allocator free-list order and
//! allocator-indexed SRAM scratch *are* schedule-dependent — the alloc
//! pool is shared state outside the KPN model — so full `MemoryState`
//! equality is deliberately not asserted here; the random-DAG property
//! suite in `revet-machine` covers it for alloc-free graphs.)

use revet_apps::{all_apps, App};
use revet_core::PassOptions;

const SEED: u64 = 0xD1FF;
const MAX_ROUNDS: u64 = 200_000_000;

fn check_app_at(app: &App, level: u8) {
    let opts = PassOptions {
        opt_level: level,
        ..PassOptions::default()
    };
    let (program, args, w) = app.prepare(2, 12, SEED, &opts);

    let mut planned = program.instance();
    let p_report = planned
        .run_untimed(&args, MAX_ROUNDS)
        .unwrap_or_else(|e| panic!("{} (O{level}, planned): {e}", app.name));

    let mut interp = program.instance();
    let i_report = interp
        .run_untimed_interpreted(&args, MAX_ROUNDS)
        .unwrap_or_else(|e| panic!("{} (O{level}, interpreted): {e}", app.name));

    assert_eq!(
        planned.sink_tokens(),
        interp.sink_tokens(),
        "{} (O{level}): sink stream must match the interpreted executor",
        app.name
    );
    assert_eq!(
        planned.memory().dram,
        interp.memory().dram,
        "{} (O{level}): full DRAM image must match the interpreted executor",
        app.name
    );
    // Both outputs must also be *correct*, not merely identical: replay
    // the planned run on the template program and run the app's oracle.
    let mut p2 = program;
    p2.run_untimed(&args, MAX_ROUNDS).unwrap();
    app.check(&p2, &w);
    assert!(
        p_report.steps <= i_report.steps,
        "{} (O{level}): fused segments should never dispatch more often \
         than per-node interpretation ({} > {})",
        app.name,
        p_report.steps,
        i_report.steps
    );
}

#[test]
fn planned_matches_interpreted_on_all_apps() {
    for app in all_apps() {
        for level in [0, 2] {
            check_app_at(&app, level);
        }
    }
}
