//! Differential correctness for the classical optimizer: every Table III
//! app must produce byte-identical results compiled with the optimizer
//! off (`opt_level` 0) and fully on (`opt_level` 2) — on the dataflow
//! machine *and* under the MIR reference interpreter.

use revet_apps::{all_apps, App, DRAM_BYTES};
use revet_core::PassOptions;
use revet_sltf::Word;

const SEED: u64 = 0xD1FF;

fn opts_at(level: u8) -> PassOptions {
    PassOptions {
        opt_level: level,
        ..PassOptions::default()
    }
}

/// Runs `app` on the dataflow machine at `level`; returns the final DRAM.
fn dataflow_dram(app: &App, level: u8) -> Vec<u8> {
    let (mut program, args, w) = app.prepare(2, 12, SEED, &opts_at(level));
    program
        .run_untimed(&args, 200_000_000)
        .unwrap_or_else(|e| panic!("{} (O{level}): {e}", app.name));
    app.check(&program, &w);
    program.graph.mem.dram.clone()
}

#[test]
fn dataflow_output_is_opt_level_invariant() {
    for app in all_apps() {
        let unopt = dataflow_dram(&app, 0);
        let opt = dataflow_dram(&app, 2);
        assert_eq!(
            unopt, opt,
            "{}: optimized dataflow run must leave bit-identical DRAM",
            app.name
        );
    }
}

/// Runs `app`'s MIR through the classical passes (no lowering — the
/// interpreter executes the high-level dialect directly) and interprets
/// both the original and the optimized module; returns both DRAM images.
fn interp_drams(app: &App) -> (Vec<u8>, Vec<u8>) {
    use revet_mir::{ConstFold, Cse, Dce, DramLayout, Interp, PassManager, Simplify, SinkConsts};

    let w = (app.workload)(4, SEED);
    let lowered = revet_lang::compile_to_mir(&(app.source)(2)).unwrap();
    let mut module = lowered.module;
    let n = module.drams.len();
    let slice = (DRAM_BYTES / n) as u32;
    let layout = DramLayout {
        base: (0..n as u32).map(|i| i * slice).collect(),
    };
    let args: Vec<Word> = w.args.iter().map(|&a| Word(a)).collect();

    let run = |module: &revet_mir::Module| {
        let mut mem = module.build_memory(DRAM_BYTES);
        for (sym, bytes) in &w.inits {
            let base = sym * slice as usize;
            mem.dram[base..base + bytes.len()].copy_from_slice(bytes);
        }
        Interp::new(module, &layout, &mut mem)
            .with_fuel(1_000_000_000)
            .run("main", &args)
            .unwrap_or_else(|e| panic!("{}: {e}", app.name));
        let base = w.out_sym * slice as usize;
        assert_eq!(
            &mem.dram[base..base + w.expected.len()],
            &w.expected[..],
            "{}: interpreter output differs from oracle",
            app.name
        );
        mem.dram
    };

    let before = run(&module);

    // Mirrors the -O2 group of `build_pipeline` (core/src/passes).
    let mut pm = PassManager::new();
    pm.add(ConstFold)
        .add(Simplify)
        .add(Dce)
        .add(Cse)
        .add(ConstFold)
        .add(Simplify)
        .add(SinkConsts)
        .add(Dce);
    let report = pm.run(&mut module);
    assert!(report.ops_after() <= report.ops_before());

    let after = run(&module);
    (before, after)
}

/// Pins the optimizer-vs-executor cost interaction found on the
/// while-heavy parsing apps (`isipv4`, `ip2int`).
///
/// CSE used to treat enclosing-region expressions as available inside
/// `while` sub-regions; reusing one there turns a region-local pure
/// recompute into a *free use*, which `lower_while` must thread through
/// the recirculating loop tuple on every iteration — wider pack/unpack
/// nodes, an extra `while_out` reorder stage, and a double-digit step
/// regression on the ready-set executor. The fix (`while` sub-regions
/// inherit no availability, plus the `sink_consts` pass) is pinned here
/// from three angles:
///
/// 1. the dense executor's *productive* steps — real work, independent
///    of scheduling — must not increase at -O2;
/// 2. the planned executor's dispatch count must be identical at -O0
///    and -O2 (fused segments absorb dispatch granularity entirely);
/// 3. the ready-set (interpreted) executor must not regress at -O2.
///
/// Any residual ready-set delta between apps is dispatch-granularity
/// noise, not real work — (1) and (2) are the load-bearing assertions.
#[test]
fn while_heavy_apps_do_not_regress_under_opt() {
    for app in all_apps() {
        if app.name != "isipv4" && app.name != "ip2int" {
            continue;
        }
        let metrics = |level: u8| {
            let opts = opts_at(level);
            let (mut p, args, _w) = app.prepare(2, 12, SEED, &opts);
            let planned = p.run_untimed(&args, 200_000_000).unwrap();
            let (mut p, args, _w) = app.prepare(2, 12, SEED, &opts);
            let ready = p.run_untimed_interpreted(&args, 200_000_000).unwrap();
            let (mut p, args, _w) = app.prepare(2, 12, SEED, &opts);
            let dense = p.run_untimed_dense(&args, 200_000_000).unwrap();
            (planned.steps, ready.steps, dense.productive_steps)
        };
        let (planned0, ready0, work0) = metrics(0);
        let (planned2, ready2, work2) = metrics(2);
        assert!(
            work2 <= work0,
            "{}: -O2 must not increase dense productive steps ({work2} > {work0})",
            app.name
        );
        assert_eq!(
            planned2, planned0,
            "{}: planned dispatch count must be opt-level-invariant",
            app.name
        );
        assert!(
            ready2 <= ready0,
            "{}: -O2 must not regress ready-set steps ({ready2} > {ready0})",
            app.name
        );
    }
}

#[test]
fn interp_output_is_opt_invariant() {
    for app in all_apps() {
        let (before, after) = interp_drams(&app);
        assert_eq!(
            before, after,
            "{}: classical passes changed interpreter-observable behavior",
            app.name
        );
    }
}
