//! Streaming-session differential: on every Table III app, feeding K
//! argument sets one at a time through a [`StreamInstance`] — polling the
//! resumable executor to quiescence between chunks — must be bit-identical
//! (sink token stream and full DRAM image) to a one-shot session given all
//! K argsets up front, at O0 and O2 and on both executors. The DRAM image
//! must also pass the app's own oracle: repeated argsets re-run `main`
//! with the same inputs, and every app's writes are idempotent, so the
//! workload's expected image stays valid however many times it is fed.

use revet_apps::all_apps;
use revet_core::{PassOptions, StreamExecutor};

const SEED: u64 = 0x57AE;
const MAX_ROUNDS: u64 = 200_000_000;
const CHUNKS: usize = 3;

#[test]
fn chunked_feed_matches_one_shot_on_all_apps() {
    for app in all_apps() {
        for level in [0u8, 2] {
            let opts = PassOptions {
                opt_level: level,
                ..PassOptions::default()
            };
            let (program, args, w) = app.prepare(2, 8, SEED, &opts);
            let argsets: Vec<_> = (0..CHUNKS).map(|_| args.clone()).collect();

            // One-shot reference: one session, all argsets up front.
            let mut oneshot = program.stream(StreamExecutor::Planned);
            assert_eq!(oneshot.feed(&argsets).unwrap(), CHUNKS);
            let reference = oneshot
                .finish(MAX_ROUNDS)
                .unwrap_or_else(|e| panic!("{} (O{level}, one-shot): {e}", app.name));
            app.check_dram(&reference.memory.dram, &w);

            for executor in [StreamExecutor::Planned, StreamExecutor::Interpreted] {
                let mut stream = program.stream(executor);
                let mut deltas = Vec::new();
                for args in &argsets {
                    assert_eq!(stream.feed(std::slice::from_ref(args)).unwrap(), 1);
                    let (delta, _) = stream
                        .poll(MAX_ROUNDS)
                        .unwrap_or_else(|e| panic!("{} (O{level}, {executor:?}): {e}", app.name));
                    deltas.extend(delta);
                }
                let out = stream.finish(MAX_ROUNDS).unwrap_or_else(|e| {
                    panic!("{} (O{level}, {executor:?} finish): {e}", app.name)
                });
                assert_eq!(
                    out.sink, reference.sink,
                    "{} (O{level}, {executor:?}): sink stream must match one-shot",
                    app.name
                );
                assert_eq!(
                    deltas, reference.sink,
                    "{} (O{level}, {executor:?}): poll deltas must concatenate to the one-shot stream",
                    app.name
                );
                assert_eq!(
                    out.memory.dram, reference.memory.dram,
                    "{} (O{level}, {executor:?}): full DRAM image must match one-shot",
                    app.name
                );
                app.check_dram(&out.memory.dram, &w);
            }
        }
    }
}
