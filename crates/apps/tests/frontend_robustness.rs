//! Front-end robustness: random truncations of the eight known-good
//! application sources must never panic the lexer/parser/lowerer, and
//! every failure must be a *spanned* structured diagnostic whose span
//! stays inside the (truncated) source. This is the fuzz-shaped guarantee
//! behind serving untrusted sources through `revet-serve`.

use proptest::prelude::*;
use revet_apps::all_apps;

/// Compiles a truncated source and checks the diagnostic contract.
fn check_truncation(full: &str, cut: usize) {
    let mut cut = cut.min(full.len());
    while !full.is_char_boundary(cut) {
        cut -= 1;
    }
    let src = &full[..cut];
    match revet_lang::compile_to_mir(src) {
        // Truncating at a whole-item boundary can still be a valid
        // (possibly empty) program — that is fine.
        Ok(_) => {}
        Err(diags) => {
            assert!(
                diags.error_count() >= 1,
                "failed compile must carry ≥1 error"
            );
            assert!(
                diags.iter().any(|d| d.span.is_some()),
                "≥1 diagnostic must be spanned: {diags}"
            );
            for d in diags.iter() {
                if let Some(s) = d.span {
                    assert!(
                        s.start <= s.end && s.end as usize <= src.len(),
                        "span {s} escapes the {}-byte source ({})",
                        src.len(),
                        d
                    );
                }
                assert!(d.code.starts_with('E'), "code {:?} not E-prefixed", d.code);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random cut points across every app's source.
    #[test]
    fn truncated_app_sources_never_panic(app_idx in 0usize..8, frac in 0u32..=1000) {
        let apps = all_apps();
        let app = &apps[app_idx % apps.len()];
        let full = (app.source)(2);
        let cut = (full.len() as u64 * frac as u64 / 1000) as usize;
        check_truncation(&full, cut);
    }
}

/// Exhaustive sweep on the smallest app source: every byte position.
#[test]
fn exhaustive_truncation_of_one_app() {
    let apps = all_apps();
    let app = apps
        .iter()
        .min_by_key(|a| (a.source)(1).len())
        .expect("eight apps");
    let full = (app.source)(1);
    for cut in 0..=full.len() {
        check_truncation(&full, cut);
    }
}
