//! # revet-runtime — parallel batch execution of compiled programs
//!
//! The compiler produces one [`CompiledProgram`] per source; real
//! deployments run that program (or a mix of programs) over **many**
//! independent inputs. This crate is the intermediate runtime layer that
//! maps a batch of program instances onto a pool of OS threads:
//!
//! ```text
//!                jobs (program ref + args)
//!                  │
//!                  ▼
//!        ┌──────────────────────┐       shared, immutable
//!        │  BatchRunner::run    │  ┌───────────────────────────┐
//!        │  (atomic work queue) │  │ &CompiledProgram (Sync)   │
//!        └──────┬───────┬───────┘  │  graph template + Arc'd   │
//!               │       │          │  TopologyIndex            │
//!          ┌────┘       └────┐     └────────────▲──────────────┘
//!          ▼                 ▼                  │ instance()
//!     worker 0  …        worker T-1            per job
//!     ┌──────────┐       ┌──────────┐
//!     │ instance │       │ instance │   each: private Graph,
//!     │ run sink │       │ run sink │   MemoryState, sink buffer
//!     └────┬─────┘       └────┬─────┘
//!          └────────┬─────────┘
//!                   ▼
//!            BatchReport (per-instance results, merged ExecReport,
//!                         instances/sec)
//! ```
//!
//! Workers pull job indices from one shared [`AtomicUsize`] cursor —
//! there is no static sharding, so a worker that lands long-running
//! instances simply claims fewer of them. Instantiation
//! ([`CompiledProgram::instance`]) happens **on the worker**, so the
//! per-instance DRAM copy scales with the pool instead of serializing on
//! the caller.
//!
//! By default every instance executes through the compiled
//! [`revet_machine::ExecPlan`] its program carries (fused segments, arena
//! state — see the machine crate); [`BatchRunner::with_mode`] selects the
//! boxed-node interpreter instead ([`ExecMode::Interpreted`]) for
//! debugging or baseline benchmarking. Results are bit-identical either
//! way.
//!
//! Execution is deterministic per instance: a
//! [`revet_core::ProgramInstance`] owns all of its mutable state, so
//! parallel batch results are bit-identical to a
//! sequential loop over the same jobs (`tests/batch_equiv.rs` pins this,
//! reusing the scheduler-equivalence discipline: identical sink streams
//! and identical [`MemoryState`]).
//!
//! ## Example
//!
//! ```
//! use revet_core::{Compiler, PassOptions};
//! use revet_runtime::{BatchJob, BatchRunner};
//! use revet_sltf::Word;
//!
//! let program = Compiler::new(PassOptions::default())
//!     .compile_source(
//!         "dram<u32> output;
//!          void main(u32 n) {
//!              foreach (n) { u32 i => output[i] = i + 1; };
//!          }",
//!     )
//!     .unwrap();
//! let jobs: Vec<BatchJob> = (1..=8).map(|n| BatchJob::new(&program, vec![Word(n)])).collect();
//! let report = BatchRunner::new(4).run(&jobs);
//! assert_eq!(report.ok_count(), 8);
//! let first = report.results[0].as_ref().unwrap();
//! assert_eq!(&first.mem.dram[..4], &1u32.to_le_bytes());
//! ```

#![warn(missing_docs)]

use revet_core::CompiledProgram;
use revet_machine::{ExecReport, MachineError, MemoryState, TTok};
use revet_obs::ObsSink;
use revet_sltf::Word;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

// A compiled program is shared by reference across the worker pool; this
// only holds because every part of it is immutable-while-shared (`Sync`).
const _: fn() = || {
    fn assert_sync<T: Sync>() {}
    assert_sync::<CompiledProgram>();
};

/// Default per-instance round cap (matches the evaluation harnesses).
pub const DEFAULT_MAX_ROUNDS: u64 = 200_000_000;

/// Which executor the pool drives each instance through. Both produce
/// bit-identical results (sink streams and [`MemoryState`]); they differ
/// only in dispatch cost.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ExecMode {
    /// The compiled execution plan ([`revet_machine::ExecPlan`]): fused
    /// segments, arena state, bitmap wake set. The default — this is the
    /// fast path every instance of a compile shares.
    #[default]
    Planned,
    /// The event-driven boxed-node interpreter — the functional reference
    /// the plan is differential-tested against, kept selectable for
    /// debugging and benchmarking.
    Interpreted,
}

/// One unit of batch work: which compiled program to instantiate and the
/// `main` arguments to run the instance with. Jobs in one batch may
/// reference different programs (a mixed-tenant batch).
#[derive(Clone, Debug)]
pub struct BatchJob<'p> {
    /// The shared compiled program this job instantiates.
    pub program: &'p CompiledProgram,
    /// `main` arguments for this instance.
    pub args: Vec<Word>,
    /// Per-instance DRAM overlays: `(byte offset, bytes)` written into
    /// the fresh instance's DRAM image before it runs. This is how one
    /// shared compile serves instances with *different inputs* — the
    /// template's image stays untouched. Behind an `Arc` so a batch of
    /// jobs sharing one overlay set shares the bytes instead of cloning
    /// them per job. Out-of-range overlays fail that job (not the batch)
    /// with a [`MachineError`].
    pub dram_inits: Arc<[(usize, Vec<u8>)]>,
}

impl<'p> BatchJob<'p> {
    /// Creates a job running `program` with `args` (no DRAM overlays).
    pub fn new(program: &'p CompiledProgram, args: Vec<Word>) -> Self {
        BatchJob {
            program,
            args,
            dram_inits: Vec::new().into(),
        }
    }

    /// Adds per-instance DRAM overlays (see [`BatchJob::dram_inits`]).
    /// Accepts a `Vec` or an already-shared `Arc` slice.
    #[must_use]
    pub fn with_dram_inits(mut self, dram_inits: impl Into<Arc<[(usize, Vec<u8>)]>>) -> Self {
        self.dram_inits = dram_inits.into();
        self
    }
}

/// Everything one finished instance leaves behind.
#[derive(Clone, Debug, PartialEq)]
pub struct InstanceResult {
    /// Scheduler counters from the instance's untimed run.
    pub report: ExecReport,
    /// Tokens the instance's private sink collected (`main`'s outputs).
    pub sink: Vec<TTok>,
    /// The instance's final memory state (DRAM outputs live here).
    pub mem: MemoryState,
    /// Wall-clock time for this instance alone (instantiate + run +
    /// harvest, measured on the worker that ran it). Feeds the batch
    /// latency percentiles a serving layer reports.
    pub wall: Duration,
}

/// Batch latency distribution over *successful* instances, nearest-rank
/// percentiles of per-instance wall-clock ([`InstanceResult::wall`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LatencyPercentiles {
    /// Median instance latency.
    pub p50: Duration,
    /// 95th-percentile instance latency.
    pub p95: Duration,
    /// 99th-percentile instance latency.
    pub p99: Duration,
}

impl LatencyPercentiles {
    /// Nearest-rank p50/p95/p99 over `samples`, which are sorted in
    /// place; `None` for an empty sample. Shared by
    /// [`BatchReport::latency_percentiles`] and the serving-layer load
    /// generator (client-side request latencies).
    pub fn from_samples(samples: &mut [Duration]) -> Option<LatencyPercentiles> {
        if samples.is_empty() {
            return None;
        }
        samples.sort_unstable();
        // Nearest-rank: the smallest sample ≥ p percent of the
        // distribution (p100 would be the max).
        let n = samples.len();
        let rank = |p: f64| samples[((p / 100.0 * n as f64).ceil() as usize).clamp(1, n) - 1];
        Some(LatencyPercentiles {
            p50: rank(50.0),
            p95: rank(95.0),
            p99: rank(99.0),
        })
    }
}

/// Aggregated outcome of one [`BatchRunner::run`] call.
#[derive(Debug)]
pub struct BatchReport {
    /// Per-job outcomes, in job order (independent of which worker ran
    /// what, or in what order).
    pub results: Vec<Result<InstanceResult, MachineError>>,
    /// Wall-clock time for the whole batch.
    pub elapsed: Duration,
    /// Worker threads actually used (capped at the job count).
    pub threads: usize,
}

impl BatchReport {
    /// Number of instances that completed successfully.
    pub fn ok_count(&self) -> usize {
        self.results.iter().filter(|r| r.is_ok()).count()
    }

    /// The first failure, if any instance failed.
    pub fn first_error(&self) -> Option<&MachineError> {
        self.results.iter().find_map(|r| r.as_ref().err())
    }

    /// Scheduler counters merged over all successful instances.
    pub fn total(&self) -> ExecReport {
        let mut total = ExecReport::default();
        for r in self.results.iter().flatten() {
            total.merge(&r.report);
        }
        total
    }

    /// Completed instances per wall-clock second — the batch throughput
    /// metric reported by the `throughput_bench` binary. `0.0` for a
    /// batch with no successful instances (including the empty batch).
    pub fn instances_per_sec(&self) -> f64 {
        let ok = self.ok_count();
        let secs = self.elapsed.as_secs_f64();
        if ok == 0 {
            0.0
        } else if secs == 0.0 {
            f64::INFINITY
        } else {
            ok as f64 / secs
        }
    }

    /// p50/p95/p99 of per-instance wall-clock over successful instances,
    /// or `None` when no instance succeeded. Complements
    /// [`BatchReport::instances_per_sec`]: throughput says how fast the
    /// batch drained, percentiles say what any one instance paid.
    pub fn latency_percentiles(&self) -> Option<LatencyPercentiles> {
        let mut walls: Vec<Duration> = self.results.iter().flatten().map(|r| r.wall).collect();
        LatencyPercentiles::from_samples(&mut walls)
    }
}

/// A fixed-width thread pool driving a batch of program instances through
/// the untimed executor. Stateless between calls: construction is cheap
/// and the pool exists only for the duration of one [`BatchRunner::run`].
#[derive(Clone, Copy, Debug)]
pub struct BatchRunner {
    threads: usize,
    max_rounds: u64,
    mode: ExecMode,
}

impl BatchRunner {
    /// Creates a runner with `threads` workers and the default round cap.
    ///
    /// `new(0)` clamps to one worker: a runner that can make no progress
    /// is never what a caller wants, and admission layers that compute a
    /// pool size (`cores - reserved`, say) should degrade to sequential
    /// execution rather than panic or hang.
    pub fn new(threads: usize) -> Self {
        BatchRunner {
            threads: threads.max(1),
            max_rounds: DEFAULT_MAX_ROUNDS,
            mode: ExecMode::default(),
        }
    }

    /// Overrides the per-instance round cap (livelock guard).
    #[must_use]
    pub fn with_max_rounds(mut self, max_rounds: u64) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Selects which executor instances run on (default:
    /// [`ExecMode::Planned`]).
    #[must_use]
    pub fn with_mode(mut self, mode: ExecMode) -> Self {
        self.mode = mode;
        self
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs every job to quiescence, sharding instances across the worker
    /// pool, and aggregates the outcomes in job order.
    ///
    /// `run(&[])` is well-defined: it spawns nothing and returns an empty
    /// report — no results, `threads == 0`, `ok_count() == 0`,
    /// `instances_per_sec() == 0.0`, `latency_percentiles() == None`.
    /// Admission queues may hand a drained runner an empty batch; that
    /// must be a no-op, not an edge case.
    pub fn run(&self, jobs: &[BatchJob<'_>]) -> BatchReport {
        self.run_obs(jobs, ObsSink::noop())
    }

    /// [`BatchRunner::run`] with an observability sink. With one worker,
    /// instances record straight into `obs`; with several, each worker
    /// records into a private [`ObsSink::fork`] (no cross-thread contention
    /// on the trace ring) and the forks are merged into `obs` after the
    /// pool joins, so counters and stall tables aggregate exactly as a
    /// single-threaded run over the same jobs would.
    pub fn run_obs(&self, jobs: &[BatchJob<'_>], obs: &ObsSink) -> BatchReport {
        let start = Instant::now();
        if jobs.is_empty() {
            return BatchReport {
                results: Vec::new(),
                elapsed: start.elapsed(),
                threads: 0,
            };
        }
        let workers = self.threads.min(jobs.len()).max(1);
        let mut slots: Vec<Option<Result<InstanceResult, MachineError>>> =
            (0..jobs.len()).map(|_| None).collect();
        if workers == 1 {
            for (slot, job) in slots.iter_mut().zip(jobs) {
                *slot = Some(run_one(job, self.max_rounds, self.mode, obs));
            }
        } else {
            let cursor = AtomicUsize::new(0);
            let max_rounds = self.max_rounds;
            let mode = self.mode;
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        let cursor = &cursor;
                        let obs = &*obs;
                        scope.spawn(move || {
                            let local = obs.fork();
                            let mut done = Vec::new();
                            loop {
                                let i = cursor.fetch_add(1, Ordering::Relaxed);
                                let Some(job) = jobs.get(i) else { break };
                                done.push((i, run_one(job, max_rounds, mode, &local)));
                            }
                            (done, local)
                        })
                    })
                    .collect();
                for handle in handles {
                    let (done, local) = handle.join().expect("batch worker panicked");
                    obs.merge(&local);
                    for (i, result) in done {
                        slots[i] = Some(result);
                    }
                }
            });
        }
        BatchReport {
            results: slots
                .into_iter()
                .map(|s| s.expect("every job index was claimed exactly once"))
                .collect(),
            elapsed: start.elapsed(),
            threads: workers,
        }
    }

    /// Convenience wrapper for the common homogeneous case: one program,
    /// one instance per argument set.
    pub fn run_same(&self, program: &CompiledProgram, argsets: &[Vec<Word>]) -> BatchReport {
        self.run_same_obs(program, argsets, ObsSink::noop())
    }

    /// [`BatchRunner::run_same`] with an observability sink (see
    /// [`BatchRunner::run_obs`]).
    pub fn run_same_obs(
        &self,
        program: &CompiledProgram,
        argsets: &[Vec<Word>],
        obs: &ObsSink,
    ) -> BatchReport {
        let jobs: Vec<BatchJob<'_>> = argsets
            .iter()
            .map(|args| BatchJob::new(program, args.clone()))
            .collect();
        self.run_obs(&jobs, obs)
    }
}

/// Instantiate → overlay DRAM → run → harvest, entirely on the calling
/// worker thread, timing the whole instance lifetime.
fn run_one(
    job: &BatchJob<'_>,
    max_rounds: u64,
    mode: ExecMode,
    obs: &ObsSink,
) -> Result<InstanceResult, MachineError> {
    let start = Instant::now();
    let mut inst = job.program.instance();
    for (base, bytes) in job.dram_inits.iter() {
        let end = base
            .checked_add(bytes.len())
            .filter(|&e| e <= inst.graph.mem.dram.len());
        let Some(end) = end else {
            return Err(MachineError::new(format!(
                "dram init [{base}, {base}+{}) exceeds the {}-byte DRAM image",
                bytes.len(),
                inst.graph.mem.dram.len()
            )));
        };
        inst.graph.mem.dram[*base..end].copy_from_slice(bytes);
    }
    let report = match mode {
        ExecMode::Planned => inst.run_untimed_obs(&job.args, max_rounds, obs)?,
        ExecMode::Interpreted => inst.run_untimed_interpreted_obs(&job.args, max_rounds, obs)?,
    };
    let sink = inst.sink_tokens();
    let wall = start.elapsed();
    if obs.is_enabled() {
        obs.registry
            .histogram("runtime.instance_wall_us")
            .record(wall.as_micros() as u64);
    }
    Ok(InstanceResult {
        report,
        sink,
        mem: inst.into_memory(),
        wall,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use revet_core::{Compiler, PassOptions};

    fn squares_program() -> CompiledProgram {
        Compiler::new(PassOptions {
            dram_bytes: 1 << 12,
            ..PassOptions::default()
        })
        .compile_source(
            "dram<u32> output;
             void main(u32 n) {
                 foreach (n) { u32 i => output[i] = i * i; };
             }",
        )
        .unwrap()
    }

    #[test]
    fn parallel_batch_covers_every_job_in_order() {
        let program = squares_program();
        let argsets: Vec<Vec<Word>> = (1..=13).map(|n| vec![Word(n)]).collect();
        let report = BatchRunner::new(4).run_same(&program, &argsets);
        assert_eq!(report.threads, 4);
        assert_eq!(report.ok_count(), 13);
        assert!(report.first_error().is_none());
        for (n, result) in (1u32..=13).zip(&report.results) {
            let mem = &result.as_ref().unwrap().mem;
            let last = (n - 1) as usize;
            let got = u32::from_le_bytes(mem.dram[4 * last..4 * last + 4].try_into().unwrap());
            assert_eq!(got, (n - 1) * (n - 1), "job n={n} out of order or wrong");
        }
        let total = report.total();
        assert!(total.productive_steps > 0);
        assert!(report.instances_per_sec() > 0.0);
    }

    #[test]
    fn worker_count_caps_at_job_count() {
        let program = squares_program();
        let report = BatchRunner::new(64).run_same(&program, &[vec![Word(2)]]);
        assert_eq!(report.threads, 1);
        assert_eq!(report.ok_count(), 1);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let runner = BatchRunner::new(0);
        assert_eq!(runner.threads(), 1);
        let program = squares_program();
        let report = runner.run_same(&program, &[vec![Word(3)]]);
        assert_eq!(report.ok_count(), 1);
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let report = BatchRunner::new(4).run(&[]);
        assert!(report.results.is_empty());
        assert_eq!(report.threads, 0);
        assert_eq!(report.ok_count(), 0);
        assert!(report.first_error().is_none());
        assert_eq!(report.instances_per_sec(), 0.0);
        assert_eq!(report.latency_percentiles(), None);
        assert_eq!(report.total(), ExecReport::default());
    }

    #[test]
    fn latency_percentiles_cover_successes() {
        let program = squares_program();
        let argsets: Vec<Vec<Word>> = (1..=9).map(|n| vec![Word(n)]).collect();
        let report = BatchRunner::new(2).run_same(&program, &argsets);
        assert_eq!(report.ok_count(), 9);
        let lat = report.latency_percentiles().expect("9 successes");
        assert!(lat.p50 <= lat.p95 && lat.p95 <= lat.p99);
        let max_wall = report
            .results
            .iter()
            .flatten()
            .map(|r| r.wall)
            .max()
            .unwrap();
        assert_eq!(lat.p99, max_wall, "p99 of 9 samples is the max");
        // A failed batch has no distribution to report.
        let failed = BatchRunner::new(1)
            .with_max_rounds(0)
            .run_same(&program, &argsets[..2]);
        assert_eq!(failed.ok_count(), 0);
        assert_eq!(failed.latency_percentiles(), None);
    }

    #[test]
    fn dram_inits_overlay_each_instance_privately() {
        let program = Compiler::new(PassOptions {
            dram_bytes: 1 << 12,
            ..PassOptions::default()
        })
        .compile_source(
            "dram<u32> input;
             dram<u32> output;
             void main(u32 n) {
                 foreach (n) { u32 i => output[i] = input[i] + 1; };
             }",
        )
        .unwrap();
        let half = (1 << 12) / 2;
        let mk = |vals: &[u32]| -> Vec<(usize, Vec<u8>)> {
            let bytes: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
            vec![(0, bytes)]
        };
        let jobs = vec![
            BatchJob::new(&program, vec![Word(2)]).with_dram_inits(mk(&[10, 20])),
            BatchJob::new(&program, vec![Word(2)]).with_dram_inits(mk(&[7, 9])),
        ];
        let report = BatchRunner::new(2).run(&jobs);
        assert_eq!(report.ok_count(), 2);
        let out = |r: &InstanceResult, i: usize| {
            u32::from_le_bytes(
                r.mem.dram[half + 4 * i..half + 4 * i + 4]
                    .try_into()
                    .unwrap(),
            )
        };
        let a = report.results[0].as_ref().unwrap();
        let b = report.results[1].as_ref().unwrap();
        assert_eq!((out(a, 0), out(a, 1)), (11, 21));
        assert_eq!((out(b, 0), out(b, 1)), (8, 10));
        // The template image was never written.
        assert!(program.graph.mem.dram.iter().all(|&x| x == 0));
    }

    #[test]
    fn out_of_range_dram_init_fails_that_job_only() {
        let program = squares_program();
        let jobs = vec![
            BatchJob::new(&program, vec![Word(1)]).with_dram_inits(vec![(usize::MAX, vec![0u8])]),
            BatchJob::new(&program, vec![Word(1)]),
        ];
        let report = BatchRunner::new(1).run(&jobs);
        assert_eq!(report.ok_count(), 1);
        let err = report.results[0].as_ref().unwrap_err();
        assert!(err.message.contains("dram init"), "got: {err}");
        assert!(report.results[1].is_ok());
    }

    #[test]
    fn planned_and_interpreted_modes_agree_bit_for_bit() {
        let program = squares_program();
        let argsets: Vec<Vec<Word>> = (1..=6).map(|n| vec![Word(n)]).collect();
        let planned = BatchRunner::new(2)
            .with_mode(ExecMode::Planned)
            .run_same(&program, &argsets);
        let interp = BatchRunner::new(2)
            .with_mode(ExecMode::Interpreted)
            .run_same(&program, &argsets);
        assert_eq!(planned.ok_count(), 6);
        assert_eq!(interp.ok_count(), 6);
        for (p, i) in planned.results.iter().zip(&interp.results) {
            let (p, i) = (p.as_ref().unwrap(), i.as_ref().unwrap());
            assert_eq!(p.mem, i.mem, "DRAM/SRAM must be bit-identical");
            assert_eq!(p.sink, i.sink);
            // The plan collapses fused-segment dispatch into single
            // firings, so it never attempts more steps than the
            // interpreter.
            assert!(p.report.steps <= i.report.steps);
        }
    }

    #[test]
    fn merged_worker_sinks_match_a_single_threaded_run() {
        let program = squares_program();
        let argsets: Vec<Vec<Word>> = (1..=12).map(|n| vec![Word(n)]).collect();
        let solo_obs = ObsSink::counters_only();
        let solo = BatchRunner::new(1).run_same_obs(&program, &argsets, &solo_obs);
        let pooled_obs = ObsSink::counters_only();
        let pooled = BatchRunner::new(4).run_same_obs(&program, &argsets, &pooled_obs);
        assert_eq!(solo.ok_count(), 12);
        assert_eq!(pooled.ok_count(), 12);
        // Per-worker forks merged after the join must aggregate exactly as
        // the sequential loop over the same jobs. Wall-clock percentiles are
        // real time and may differ under pool contention, so drop them.
        let deterministic = |obs: &ObsSink| -> Vec<(String, u64)> {
            obs.snapshot_counters()
                .into_iter()
                .filter(|(name, _)| {
                    !name.ends_with(".p50") && !name.ends_with(".p95") && !name.ends_with(".p99")
                })
                .collect()
        };
        let a = deterministic(&solo_obs);
        let b = deterministic(&pooled_obs);
        assert_eq!(a, b, "forked+merged counters diverged from sequential");
        assert_eq!(solo_obs.counters.instances.get(), 12);
        assert_eq!(
            solo_obs.counters.dispatches.get(),
            solo.total().steps,
            "obs dispatch count must mirror the merged ExecReport"
        );
        // The wall-clock histogram saw one sample per instance on both
        // paths.
        for sink in [&solo_obs, &pooled_obs] {
            assert_eq!(
                sink.registry.histogram("runtime.instance_wall_us").count(),
                12
            );
        }
        // A noop sink records nothing (the default `run` path).
        let quiet = ObsSink::noop();
        BatchRunner::new(4).run_same(&program, &argsets);
        assert_eq!(quiet.counters.dispatches.get(), 0);
    }

    #[test]
    fn instance_failures_are_attributed_not_fatal() {
        let program = squares_program();
        // Round cap of 0 forces an immediate livelock diagnosis per
        // instance; the batch still completes and reports every failure.
        let report = BatchRunner::new(2)
            .with_max_rounds(0)
            .run_same(&program, &[vec![Word(1)], vec![Word(2)]]);
        assert_eq!(report.ok_count(), 0);
        let err = report.first_error().expect("both instances failed");
        assert!(err.message.contains("no quiescence"), "got: {err}");
    }
}
