//! Batch-equivalence tests: running N program instances on a 4-thread
//! pool must yield sink streams and [`MemoryState`]s **bit-identical** to N
//! sequential single-threaded runs.
//!
//! This extends the PR 2 scheduler-equivalence discipline
//! (`crates/machine/tests/scheduler_equiv.rs`) one layer up: there, the
//! ready-set executor was pinned to the dense-sweep reference on one
//! graph; here, the parallel batch runtime is pinned to the sequential
//! instance loop on whole compiled programs. Both rest on the same Kahn
//! argument — every instance owns all of its mutable state, so thread
//! scheduling can change only *when* work happens, never *what* it
//! computes.

use revet_apps::app;
use revet_core::{CompiledProgram, Compiler, PassOptions};
use revet_machine::{MemoryState, TTok};
use revet_runtime::{BatchJob, BatchRunner, InstanceResult};
use revet_sltf::Word;

const MAX_ROUNDS: u64 = 200_000_000;

/// Sequential reference: one instance per job, run in a plain loop on the
/// calling thread.
fn run_sequential(jobs: &[BatchJob<'_>]) -> Vec<(Vec<TTok>, MemoryState)> {
    jobs.iter()
        .map(|job| {
            let mut inst = job.program.instance();
            inst.run_untimed(&job.args, MAX_ROUNDS)
                .expect("reference run");
            let sink = inst.sink_tokens();
            (sink, inst.into_memory())
        })
        .collect()
}

fn assert_batch_matches_sequential(jobs: &[BatchJob<'_>], threads: usize) {
    let reference = run_sequential(jobs);
    let report = BatchRunner::new(threads).run(jobs);
    assert_eq!(report.results.len(), jobs.len());
    for (i, (result, (ref_sink, ref_mem))) in report.results.iter().zip(&reference).enumerate() {
        let InstanceResult {
            sink, mem, report, ..
        } = result
            .as_ref()
            .unwrap_or_else(|e| panic!("instance #{i}: {e}"));
        assert_eq!(sink, ref_sink, "instance #{i}: sink streams diverged");
        assert_eq!(mem, ref_mem, "instance #{i}: memory state diverged");
        assert!(report.productive_steps > 0, "instance #{i}: did nothing");
    }
}

/// A tiny arithmetic program whose output depends on `n`, so every job in
/// the batch computes something different.
fn triangular_program() -> CompiledProgram {
    Compiler::new(PassOptions {
        dram_bytes: 1 << 12,
        ..PassOptions::default()
    })
    .compile_source(
        "dram<u32> output;
         void main(u32 n) {
             foreach (n) { u32 i =>
                 u32 acc = 0;
                 u32 j = 0;
                 while (j <= i) {
                     acc = acc + j;
                     j = j + 1;
                 };
                 output[i] = acc;
             };
         }",
    )
    .expect("compiles")
}

#[test]
fn batch_on_four_threads_is_bit_identical_to_sequential_runs() {
    let program = triangular_program();
    let jobs: Vec<BatchJob> = (1..=16u32)
        .map(|n| BatchJob::new(&program, vec![Word(n)]))
        .collect();
    assert_batch_matches_sequential(&jobs, 4);
}

#[test]
fn mixed_app_batch_is_bit_identical_to_sequential_runs() {
    // Two real evaluation apps at two workload seeds each: four distinct
    // compiled programs, four instances of each → a 16-job mixed batch.
    let mut programs = Vec::new();
    for name in ["murmur3", "ip2int"] {
        let a = app(name).expect("registered");
        for seed in [7u64, 1234] {
            let (program, args, _w) = a.prepare(2, 8, seed, &PassOptions::default());
            programs.push((program, args));
        }
    }
    let jobs: Vec<BatchJob> = (0..16)
        .map(|i| {
            let (program, args) = &programs[i % programs.len()];
            BatchJob::new(program, args.clone())
        })
        .collect();
    assert_batch_matches_sequential(&jobs, 4);
}

#[test]
fn oversubscribed_pool_still_matches_sequential() {
    // More workers than jobs than cores: the cursor hand-off must not
    // skip, duplicate, or reorder job slots.
    let program = triangular_program();
    let jobs: Vec<BatchJob> = (1..=5u32)
        .map(|n| BatchJob::new(&program, vec![Word(n)]))
        .collect();
    assert_batch_matches_sequential(&jobs, 16);
}
