//! # revet-serve — a compile-and-execute service over compiled dataflow
//! programs
//!
//! The paper's execution model — one compiled dataflow program, many
//! concurrent thread instances (§V) — maps directly onto a long-lived
//! service: compile once, cache by content, execute many. This crate is
//! that serving layer, std-only, over `std::net::TcpListener`:
//!
//! - [`protocol`] — a versioned, length-prefixed binary wire protocol
//!   (`Compile` / `Execute` / `Status` / `Metrics` / `Shutdown`, plus the
//!   streaming `OpenStream` / `Feed` / `Poll` / `CloseStream` session
//!   frames), every failure a typed error frame;
//! - [`ProgramCache`] — content-addressed by
//!   [`revet_core::ProgramId`] (hash of source + pass options), with
//!   single-flight compilation dedup, LRU eviction, and hit/miss/eviction
//!   counters;
//! - [`Server`] — an admission queue with backpressure sharding accepted
//!   execute jobs across a `revet-runtime` batch pool, a bounded session
//!   table keeping streaming instances resident between feeds (with an
//!   idle sweeper evicting stale ones), plus graceful shutdown that
//!   drains in-flight work and resident sessions;
//! - [`ServeClient`] — a blocking client (used by the `load_gen`
//!   harness in `revet-bench` and by the integration tests).
//!
//! ## Example: boot, compile, execute, drain
//!
//! ```
//! use revet_core::PassOptions;
//! use revet_serve::protocol::{ExecuteRequest, InstanceOutcome};
//! use revet_serve::{ServeClient, ServeConfig, Server};
//!
//! let server = Server::spawn(ServeConfig::default()).unwrap();
//! let mut client = ServeClient::connect(server.local_addr()).unwrap();
//!
//! let opts = PassOptions { dram_bytes: 1 << 12, ..PassOptions::default() };
//! let compiled = client
//!     .compile(
//!         "dram<u32> output;
//!          void main(u32 n) {
//!              foreach (n) { u32 i => output[i] = i * i; };
//!          }",
//!         &opts,
//!     )
//!     .unwrap();
//! assert!(!compiled.cached);
//!
//! // Two instances (n=2, n=3); read back the first 16 output bytes.
//! let reply = client
//!     .execute(ExecuteRequest {
//!         program_id: compiled.program_id,
//!         argsets: vec![vec![2], vec![3]],
//!         dram_inits: vec![],
//!         window: (0, 16),
//!     })
//!     .unwrap();
//! let InstanceOutcome::Ok { dram, .. } = &reply.instances[1] else { panic!() };
//! assert_eq!(&dram[4..8], &1u32.to_le_bytes());
//! assert_eq!(&dram[8..12], &4u32.to_le_bytes());
//!
//! let stats = server.shutdown();
//! assert_eq!(stats.executed_instances, 2);
//! ```

#![warn(missing_docs)]

mod cache;
mod client;
pub mod protocol;
mod server;
mod session;

pub use cache::{CacheStats, ProgramCache};
pub use client::{ClientError, CompileOutcome, ServeClient};
pub use server::{ServeConfig, Server, ServerStats};
