//! The `revet-serve` wire protocol: length-prefixed, versioned binary
//! frames over a byte stream (TCP in practice).
//!
//! ## Framing
//!
//! ```text
//! ┌────────────┬─────────────────────────────────────────────┐
//! │ u32 LE len │ body: [u8 version][u8 kind][payload…]       │
//! └────────────┴─────────────────────────────────────────────┘
//! ```
//!
//! `len` counts the body bytes and must be in `2..=MAX_FRAME_BYTES`; a
//! longer declaration is rejected *before* any allocation. The version
//! byte is checked on decode so old clients get a typed
//! [`ErrorCode::UnsupportedVersion`] error back instead of garbled
//! payload parses. All integers are little-endian; strings and byte blobs
//! are `u32`-length-prefixed.
//!
//! Every decode failure is a [`WireError`] naming what was wrong —
//! servers turn these into [`ErrorFrame`]s rather than dropping the
//! connection, so a buggy client sees *why* its frame was rejected.

use revet_core::{PassOptions, ProgramId};
use std::fmt;
use std::io::{self, Read, Write};

/// Current protocol version, first byte of every frame body.
///
/// v2: error frames carry a structured [`WireDiagnostic`] list after the
/// message (the `CompileFailed` payload). v3: [`PassOptions`] gained
/// `opt_level`, encoded as one byte after the toggle flags. v4: the
/// [`Request::Metrics`] / [`Response::Metrics`] observability frames, and
/// [`WireReport`] gained `peak_ready`. v5: the streaming-session frames
/// (`OpenStream` / `Feed` / `Poll` / `CloseStream` and their replies),
/// the [`ErrorCode::UnknownSession`] / [`ErrorCode::SessionExpired`]
/// codes, and the session counters appended to [`StatusInfo`]. Older
/// peers get a clean [`ErrorCode::UnsupportedVersion`] instead of a
/// garbled decode.
pub const WIRE_VERSION: u8 = 5;

/// Upper bound on a frame body. Large enough for a full 4 MiB DRAM
/// window per instance on a modest batch; small enough that a corrupt
/// length prefix cannot make the peer allocate gigabytes.
pub const MAX_FRAME_BYTES: u32 = 32 << 20;

// Frame kind bytes. Requests are < 0x80, responses ≥ 0x80.
const KIND_COMPILE: u8 = 0x01;
const KIND_EXECUTE: u8 = 0x02;
const KIND_STATUS: u8 = 0x03;
const KIND_SHUTDOWN: u8 = 0x04;
const KIND_METRICS: u8 = 0x05;
const KIND_OPEN_STREAM: u8 = 0x06;
const KIND_FEED: u8 = 0x07;
const KIND_POLL: u8 = 0x08;
const KIND_CLOSE_STREAM: u8 = 0x09;
const KIND_COMPILED: u8 = 0x81;
const KIND_EXECUTED: u8 = 0x82;
const KIND_STATUS_INFO: u8 = 0x83;
const KIND_SHUTDOWN_ACK: u8 = 0x84;
const KIND_METRICS_INFO: u8 = 0x85;
const KIND_STREAM_OPENED: u8 = 0x86;
const KIND_FED: u8 = 0x87;
const KIND_POLLED: u8 = 0x88;
const KIND_STREAM_CLOSED: u8 = 0x89;
const KIND_ERROR: u8 = 0xFF;

/// What went wrong while decoding a frame body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The payload ended before the field being read.
    Truncated,
    /// The frame's version byte is not [`WIRE_VERSION`].
    UnsupportedVersion(u8),
    /// The kind byte names no known request/response.
    UnknownKind(u8),
    /// Bytes remained after the payload was fully decoded.
    TrailingBytes(usize),
    /// A field held an impossible value (named).
    BadField(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "payload truncated"),
            WireError::UnsupportedVersion(v) => {
                write!(f, "unsupported wire version {v} (expected {WIRE_VERSION})")
            }
            WireError::UnknownKind(k) => write!(f, "unknown frame kind {k:#04x}"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after payload"),
            WireError::BadField(name) => write!(f, "bad field: {name}"),
        }
    }
}

impl std::error::Error for WireError {}

/// What went wrong while reading a frame off the stream.
#[derive(Debug)]
pub enum FrameError {
    /// Transport failure (includes clean EOF between frames).
    Io(io::Error),
    /// The length prefix exceeded [`MAX_FRAME_BYTES`].
    TooLarge(u32),
    /// The length prefix was below the 2-byte (version + kind) minimum.
    TooShort(u32),
}

impl FrameError {
    /// True when the peer closed the stream cleanly *between* frames.
    pub fn is_clean_eof(&self) -> bool {
        matches!(self, FrameError::Io(e) if e.kind() == io::ErrorKind::UnexpectedEof)
    }
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame i/o: {e}"),
            FrameError::TooLarge(n) => {
                write!(f, "declared frame length {n} exceeds cap {MAX_FRAME_BYTES}")
            }
            FrameError::TooShort(n) => write!(f, "declared frame length {n} below 2-byte minimum"),
        }
    }
}

/// A request frame, client → server.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Compile `source` under `options`; the reply names the cached
    /// program by its content-addressed [`ProgramId`].
    Compile {
        /// Revet source text.
        source: String,
        /// Pass options (part of the program's identity).
        options: PassOptions,
    },
    /// Run a batch of instances of an already-compiled program.
    Execute(ExecuteRequest),
    /// Snapshot the server's cache/queue counters.
    Status,
    /// Dump the server's observability counters (every execution counter
    /// plus the cache/queue status) — the monitoring scrape endpoint.
    Metrics,
    /// Begin graceful shutdown: drain in-flight work, then stop.
    Shutdown,
    /// Open a streaming session: a resident instance of a cached program
    /// that [`Request::Feed`] appends input to incrementally.
    OpenStream(OpenStreamRequest),
    /// Append argument sets to an open streaming session.
    Feed {
        /// The session id [`Response::StreamOpened`] returned.
        session: u64,
        /// Whole `main` argument sets to append.
        argsets: Vec<Vec<u32>>,
    },
    /// Run an open session to quiescence and collect new sink output.
    Poll {
        /// The session id [`Response::StreamOpened`] returned.
        session: u64,
    },
    /// Close a streaming session, returning its final DRAM window and the
    /// execution report merged across every poll.
    CloseStream {
        /// The session id [`Response::StreamOpened`] returned.
        session: u64,
    },
}

/// Payload of [`Request::Execute`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExecuteRequest {
    /// Which cached program to instantiate.
    pub program_id: ProgramId,
    /// One instance per argument set.
    pub argsets: Vec<Vec<u32>>,
    /// DRAM overlays `(byte offset, bytes)` applied to every instance
    /// before it runs (per-request inputs for a shared compile).
    pub dram_inits: Vec<(u64, Vec<u8>)>,
    /// `(offset, len)` of the DRAM window to return per instance — the
    /// program's output region. Zero-length returns no bytes.
    pub window: (u64, u64),
}

/// Payload of [`Request::OpenStream`]: like an [`ExecuteRequest`] but
/// with no up-front argument sets — input arrives later via
/// [`Request::Feed`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OpenStreamRequest {
    /// Which cached program to keep resident.
    pub program_id: ProgramId,
    /// DRAM overlays `(byte offset, bytes)` applied once, at open.
    pub dram_inits: Vec<(u64, Vec<u8>)>,
    /// `(offset, len)` of the DRAM window [`Response::StreamClosed`]
    /// returns. Zero-length returns no bytes.
    pub window: (u64, u64),
}

/// One sink token on the wire: the session's incremental output stream
/// ([`Response::Polled`] / [`Response::StreamClosed`] carry these).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireTok {
    /// A data tuple of 32-bit words.
    Data(Vec<u32>),
    /// A barrier token Ωn (level in `1..=15`).
    Barrier(u8),
}

impl WireTok {
    /// Flattens a machine token for the wire.
    pub fn from_ttok(t: &revet_machine::TTok) -> WireTok {
        match t {
            revet_sltf::Tok::Data(tuple) => WireTok::Data(tuple.iter().map(|w| w.0).collect()),
            revet_sltf::Tok::Barrier(l) => WireTok::Barrier(l.get()),
        }
    }

    /// Rebuilds the machine token. `None` when the barrier level is out
    /// of the SLTF `1..=15` range (decode already rejects such frames).
    pub fn to_ttok(&self) -> Option<revet_machine::TTok> {
        Some(match self {
            WireTok::Data(words) => {
                revet_sltf::Tok::Data(words.iter().map(|&w| revet_sltf::Word(w)).collect())
            }
            WireTok::Barrier(l) => revet_sltf::Tok::Barrier(revet_sltf::BarrierLevel::new(*l)?),
        })
    }
}

/// A response frame, server → client.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// Reply to [`Request::Compile`].
    Compiled {
        /// Content-addressed id of the (now cached) program.
        program_id: ProgramId,
        /// True when the cache already held this program.
        cached: bool,
        /// Wall-clock of the compile itself (0 on a cache hit).
        compile_micros: u64,
    },
    /// Reply to [`Request::Execute`].
    Executed(ExecuteReply),
    /// Reply to [`Request::Status`].
    Status(StatusInfo),
    /// Reply to [`Request::Metrics`].
    Metrics(MetricsInfo),
    /// Reply to [`Request::Shutdown`]: the drain has begun.
    ShutdownAck,
    /// Reply to [`Request::OpenStream`].
    StreamOpened {
        /// Server-assigned session id for subsequent `Feed`/`Poll`/
        /// `CloseStream` frames.
        session: u64,
    },
    /// Reply to [`Request::Feed`].
    Fed {
        /// How many argument sets the session accepted (a bounded entry
        /// channel may accept fewer than sent — poll, then resend the
        /// remainder).
        accepted: u64,
    },
    /// Reply to [`Request::Poll`].
    Polled(PollReply),
    /// Reply to [`Request::CloseStream`].
    StreamClosed(CloseReply),
    /// Typed failure (any request may produce one).
    Error(ErrorFrame),
}

/// Payload of [`Response::Polled`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PollReply {
    /// Sink tokens produced since the previous poll.
    pub tokens: Vec<WireTok>,
    /// True when the graph drained cleanly (nothing in flight); false
    /// when tokens are parked awaiting further input.
    pub finished: bool,
    /// The session's resident footprint after the poll, bytes.
    pub resident_bytes: u64,
}

/// Payload of [`Response::StreamClosed`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CloseReply {
    /// Execution counters merged across every poll of the session.
    pub merged: WireReport,
    /// Sink tokens produced by the final drain (after the last poll).
    pub tokens: Vec<WireTok>,
    /// The DRAM window requested at open, from the final memory image.
    pub dram: Vec<u8>,
}

/// Scheduler counters mirrored over the wire (a flattened
/// `revet_machine::ExecReport`, merged over the batch's successes).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WireReport {
    /// Scheduler generations executed.
    pub rounds: u64,
    /// Node steps that moved at least one token.
    pub productive_steps: u64,
    /// Node steps attempted.
    pub steps: u64,
    /// High watermark of ready nodes in any one scheduler round across
    /// the batch (max-merged, not summed).
    pub peak_ready: u64,
}

/// Payload of [`Response::Executed`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExecuteReply {
    /// Counters merged over the batch's successful instances.
    pub merged: WireReport,
    /// Per-instance outcomes, in argset order.
    pub instances: Vec<InstanceOutcome>,
}

/// One instance's outcome inside an [`ExecuteReply`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InstanceOutcome {
    /// The instance ran to quiescence.
    Ok {
        /// Per-instance wall-clock, microseconds.
        wall_micros: u64,
        /// The requested DRAM window of this instance's final memory.
        dram: Vec<u8>,
    },
    /// The instance failed (others in the batch may have succeeded).
    Err {
        /// The machine error, rendered.
        message: String,
    },
}

/// Payload of [`Response::Status`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatusInfo {
    /// Programs currently resident in the cache.
    pub programs_cached: u64,
    /// Cache capacity (LRU evicts beyond this).
    pub cache_capacity: u64,
    /// Lookups served from the cache.
    pub cache_hits: u64,
    /// Lookups that had to compile.
    pub cache_misses: u64,
    /// Programs evicted by the LRU policy.
    pub cache_evictions: u64,
    /// Execute jobs waiting in the admission queue.
    pub queued_jobs: u64,
    /// Execute jobs currently running on the batch pool.
    pub inflight_jobs: u64,
    /// Instances completed successfully since boot.
    pub executed_instances: u64,
    /// Instances that failed since boot.
    pub failed_instances: u64,
    /// Streaming sessions currently resident.
    pub open_sessions: u64,
    /// Streaming sessions evicted by the idle sweeper since boot.
    pub evicted_sessions: u64,
    /// Total resident footprint of open streaming sessions, bytes.
    pub session_resident_bytes: u64,
    /// True once graceful shutdown has begun.
    pub draining: bool,
}

/// Payload of [`Response::Metrics`]: the server's aggregated
/// observability counters (execution counters, cache counters, registry
/// instruments — whatever the server's `ObsSink` accumulated since boot)
/// plus the same queue/cache snapshot [`Request::Status`] returns, taken
/// at the same instant so the two views are consistent.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsInfo {
    /// Sorted `(name, value)` pairs, e.g. `("exec.dispatches", 12345)`.
    pub counters: Vec<(String, u64)>,
    /// Cache/queue snapshot taken alongside the counters.
    pub status: StatusInfo,
}

impl MetricsInfo {
    /// The value of the counter called `name`, if present.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }
}

/// Machine-readable failure category carried by an [`ErrorFrame`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u16)]
pub enum ErrorCode {
    /// The frame body failed to decode.
    Malformed = 1,
    /// The frame's version byte is unknown to this server.
    UnsupportedVersion = 2,
    /// The declared frame length exceeded [`MAX_FRAME_BYTES`].
    FrameTooLarge = 3,
    /// The compiler rejected the source.
    CompileFailed = 4,
    /// Execute named a [`ProgramId`] the cache does not hold.
    UnknownProgram = 5,
    /// The admission queue is full — back off and retry.
    Busy = 6,
    /// The request was well-formed but impossible (bad window, …).
    BadRequest = 7,
    /// The server is draining and accepts no new work.
    ShuttingDown = 8,
    /// The frame named a session id this server has never issued, or one
    /// the client already closed.
    UnknownSession = 9,
    /// The session existed but the idle sweeper evicted it — reopen and
    /// refeed.
    SessionExpired = 10,
}

impl ErrorCode {
    fn from_u16(v: u16) -> Option<ErrorCode> {
        Some(match v {
            1 => ErrorCode::Malformed,
            2 => ErrorCode::UnsupportedVersion,
            3 => ErrorCode::FrameTooLarge,
            4 => ErrorCode::CompileFailed,
            5 => ErrorCode::UnknownProgram,
            6 => ErrorCode::Busy,
            7 => ErrorCode::BadRequest,
            8 => ErrorCode::ShuttingDown,
            9 => ErrorCode::UnknownSession,
            10 => ErrorCode::SessionExpired,
            _ => return None,
        })
    }
}

/// One machine-readable compiler diagnostic inside an [`ErrorFrame`] —
/// the structured payload of a `CompileFailed` reply. Line/column are
/// 1-based and pre-resolved server-side (clients don't need the source's
/// line table); `0` means "no source location".
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireDiagnostic {
    /// Stable `E`-prefixed code (`revet_diag::codes`).
    pub code: String,
    /// 0 = error, 1 = warning, 2 = note.
    pub severity: u8,
    /// 1-based line of the primary span's start (0 = unknown).
    pub line: u32,
    /// 1-based column of the primary span's start (0 = unknown).
    pub col: u32,
    /// Human-readable one-liner.
    pub message: String,
}

impl WireDiagnostic {
    /// Severity tag for errors.
    pub const SEVERITY_ERROR: u8 = 0;
    /// Severity tag for warnings.
    pub const SEVERITY_WARNING: u8 = 1;
    /// Severity tag for notes.
    pub const SEVERITY_NOTE: u8 = 2;
}

impl fmt::Display for WireDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sev = match self.severity {
            WireDiagnostic::SEVERITY_WARNING => "warning",
            WireDiagnostic::SEVERITY_NOTE => "note",
            _ => "error",
        };
        if self.line != 0 {
            write!(
                f,
                "{sev}[{}] at {}:{}: {}",
                self.code, self.line, self.col, self.message
            )
        } else {
            write!(f, "{sev}[{}]: {}", self.code, self.message)
        }
    }
}

/// A typed failure reply.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ErrorFrame {
    /// Failure category.
    pub code: ErrorCode,
    /// Human-readable detail. For `CompileFailed` this is the full
    /// rendered diagnostic report (caret snippets included).
    pub message: String,
    /// Structured per-diagnostic payload (`CompileFailed` fills this; the
    /// transport-level errors leave it empty).
    pub details: Vec<WireDiagnostic>,
}

impl ErrorFrame {
    /// Creates an error frame with no structured details.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        ErrorFrame {
            code,
            message: message.into(),
            details: Vec::new(),
        }
    }

    /// Attaches structured diagnostics.
    pub fn with_details(mut self, details: Vec<WireDiagnostic>) -> Self {
        self.details = details;
        self
    }
}

impl fmt::Display for ErrorFrame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}: {}", self.code, self.message)?;
        if !self.details.is_empty() {
            write!(f, " ({} diagnostic(s))", self.details.len())?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Frame I/O

/// Writes one frame (length prefix + body) and flushes.
///
/// # Errors
///
/// Propagates transport errors; refuses bodies over [`MAX_FRAME_BYTES`].
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> io::Result<()> {
    if body.len() > MAX_FRAME_BYTES as usize {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame body {} exceeds cap {MAX_FRAME_BYTES}", body.len()),
        ));
    }
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(body)?;
    w.flush()
}

/// Reads one frame body off the stream, enforcing the length bounds
/// *before* allocating.
///
/// # Errors
///
/// [`FrameError::Io`] on transport failure (clean EOF between frames
/// reports as `UnexpectedEof`), [`FrameError::TooLarge`] /
/// [`FrameError::TooShort`] on out-of-bounds length prefixes.
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, FrameError> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len).map_err(FrameError::Io)?;
    let len = u32::from_le_bytes(len);
    if len > MAX_FRAME_BYTES {
        return Err(FrameError::TooLarge(len));
    }
    if len < 2 {
        return Err(FrameError::TooShort(len));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body).map_err(FrameError::Io)?;
    Ok(body)
}

// ---------------------------------------------------------------------------
// Body encode/decode

/// Encodes a request into a frame body (version + kind + payload).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut w = W::new();
    match req {
        Request::Compile { source, options } => {
            w.kind(KIND_COMPILE);
            w.str(source);
            w.options(options);
        }
        Request::Execute(e) => {
            w.kind(KIND_EXECUTE);
            w.bytes16(&e.program_id.0);
            w.u32(e.argsets.len() as u32);
            for args in &e.argsets {
                w.u32(args.len() as u32);
                for &a in args {
                    w.u32(a);
                }
            }
            w.u32(e.dram_inits.len() as u32);
            for (off, bytes) in &e.dram_inits {
                w.u64(*off);
                w.blob(bytes);
            }
            w.u64(e.window.0);
            w.u64(e.window.1);
        }
        Request::Status => w.kind(KIND_STATUS),
        Request::Metrics => w.kind(KIND_METRICS),
        Request::Shutdown => w.kind(KIND_SHUTDOWN),
        Request::OpenStream(o) => {
            w.kind(KIND_OPEN_STREAM);
            w.bytes16(&o.program_id.0);
            w.u32(o.dram_inits.len() as u32);
            for (off, bytes) in &o.dram_inits {
                w.u64(*off);
                w.blob(bytes);
            }
            w.u64(o.window.0);
            w.u64(o.window.1);
        }
        Request::Feed { session, argsets } => {
            w.kind(KIND_FEED);
            w.u64(*session);
            w.u32(argsets.len() as u32);
            for args in argsets {
                w.u32(args.len() as u32);
                for &a in args {
                    w.u32(a);
                }
            }
        }
        Request::Poll { session } => {
            w.kind(KIND_POLL);
            w.u64(*session);
        }
        Request::CloseStream { session } => {
            w.kind(KIND_CLOSE_STREAM);
            w.u64(*session);
        }
    }
    w.buf
}

/// Decodes a request frame body.
///
/// # Errors
///
/// Any [`WireError`]; the body is rejected, never partially applied.
pub fn decode_request(body: &[u8]) -> Result<Request, WireError> {
    let mut r = R::new(body)?;
    let req = match r.kind {
        KIND_COMPILE => Request::Compile {
            source: r.str()?,
            options: r.options()?,
        },
        KIND_EXECUTE => {
            let program_id = ProgramId(r.bytes16()?);
            // Minimum wire footprints: an argset is at least its u32
            // length, an arg is a u32, a dram init is a u64 offset plus a
            // u32 blob length.
            let n = r.count(4)?;
            let mut argsets = Vec::with_capacity(n);
            for _ in 0..n {
                let k = r.count(4)?;
                let mut args = Vec::with_capacity(k);
                for _ in 0..k {
                    args.push(r.u32()?);
                }
                argsets.push(args);
            }
            let n = r.count(12)?;
            let mut dram_inits = Vec::with_capacity(n);
            for _ in 0..n {
                let off = r.u64()?;
                dram_inits.push((off, r.blob()?));
            }
            let window = (r.u64()?, r.u64()?);
            Request::Execute(ExecuteRequest {
                program_id,
                argsets,
                dram_inits,
                window,
            })
        }
        KIND_STATUS => Request::Status,
        KIND_METRICS => Request::Metrics,
        KIND_SHUTDOWN => Request::Shutdown,
        KIND_OPEN_STREAM => {
            let program_id = ProgramId(r.bytes16()?);
            let n = r.count(12)?;
            let mut dram_inits = Vec::with_capacity(n);
            for _ in 0..n {
                let off = r.u64()?;
                dram_inits.push((off, r.blob()?));
            }
            let window = (r.u64()?, r.u64()?);
            Request::OpenStream(OpenStreamRequest {
                program_id,
                dram_inits,
                window,
            })
        }
        KIND_FEED => {
            let session = r.u64()?;
            let n = r.count(4)?;
            let mut argsets = Vec::with_capacity(n);
            for _ in 0..n {
                let k = r.count(4)?;
                let mut args = Vec::with_capacity(k);
                for _ in 0..k {
                    args.push(r.u32()?);
                }
                argsets.push(args);
            }
            Request::Feed { session, argsets }
        }
        KIND_POLL => Request::Poll { session: r.u64()? },
        KIND_CLOSE_STREAM => Request::CloseStream { session: r.u64()? },
        k => return Err(WireError::UnknownKind(k)),
    };
    r.finish()?;
    Ok(req)
}

/// Encodes a response into a frame body (version + kind + payload).
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut w = W::new();
    match resp {
        Response::Compiled {
            program_id,
            cached,
            compile_micros,
        } => {
            w.kind(KIND_COMPILED);
            w.bytes16(&program_id.0);
            w.u8(*cached as u8);
            w.u64(*compile_micros);
        }
        Response::Executed(e) => {
            w.kind(KIND_EXECUTED);
            w.u64(e.merged.rounds);
            w.u64(e.merged.productive_steps);
            w.u64(e.merged.steps);
            w.u64(e.merged.peak_ready);
            w.u32(e.instances.len() as u32);
            for inst in &e.instances {
                match inst {
                    InstanceOutcome::Ok { wall_micros, dram } => {
                        w.u8(0);
                        w.u64(*wall_micros);
                        w.blob(dram);
                    }
                    InstanceOutcome::Err { message } => {
                        w.u8(1);
                        w.str(message);
                    }
                }
            }
        }
        Response::Status(s) => {
            w.kind(KIND_STATUS_INFO);
            w.status(s);
        }
        Response::Metrics(m) => {
            w.kind(KIND_METRICS_INFO);
            w.u32(m.counters.len() as u32);
            for (name, value) in &m.counters {
                w.str(name);
                w.u64(*value);
            }
            w.status(&m.status);
        }
        Response::ShutdownAck => w.kind(KIND_SHUTDOWN_ACK),
        Response::StreamOpened { session } => {
            w.kind(KIND_STREAM_OPENED);
            w.u64(*session);
        }
        Response::Fed { accepted } => {
            w.kind(KIND_FED);
            w.u64(*accepted);
        }
        Response::Polled(p) => {
            w.kind(KIND_POLLED);
            w.toks(&p.tokens);
            w.u8(p.finished as u8);
            w.u64(p.resident_bytes);
        }
        Response::StreamClosed(c) => {
            w.kind(KIND_STREAM_CLOSED);
            w.u64(c.merged.rounds);
            w.u64(c.merged.productive_steps);
            w.u64(c.merged.steps);
            w.u64(c.merged.peak_ready);
            w.toks(&c.tokens);
            w.blob(&c.dram);
        }
        Response::Error(e) => {
            w.kind(KIND_ERROR);
            w.u16(e.code as u16);
            w.str(&e.message);
            w.u32(e.details.len() as u32);
            for d in &e.details {
                w.str(&d.code);
                w.u8(d.severity);
                w.u32(d.line);
                w.u32(d.col);
                w.str(&d.message);
            }
        }
    }
    w.buf
}

/// Decodes a response frame body.
///
/// # Errors
///
/// Any [`WireError`]; the body is rejected, never partially applied.
pub fn decode_response(body: &[u8]) -> Result<Response, WireError> {
    let mut r = R::new(body)?;
    let resp = match r.kind {
        KIND_COMPILED => {
            let program_id = ProgramId(r.bytes16()?);
            let cached = r.bool()?;
            let compile_micros = r.u64()?;
            Response::Compiled {
                program_id,
                cached,
                compile_micros,
            }
        }
        KIND_EXECUTED => {
            let merged = WireReport {
                rounds: r.u64()?,
                productive_steps: r.u64()?,
                steps: r.u64()?,
                peak_ready: r.u64()?,
            };
            // An instance outcome is at least a tag byte plus a u32
            // length (the error-message arm).
            let n = r.count(5)?;
            let mut instances = Vec::with_capacity(n);
            for _ in 0..n {
                instances.push(match r.u8()? {
                    0 => InstanceOutcome::Ok {
                        wall_micros: r.u64()?,
                        dram: r.blob()?,
                    },
                    1 => InstanceOutcome::Err { message: r.str()? },
                    _ => return Err(WireError::BadField("instance outcome tag")),
                });
            }
            Response::Executed(ExecuteReply { merged, instances })
        }
        KIND_STATUS_INFO => Response::Status(r.status()?),
        KIND_METRICS_INFO => {
            // A counter entry is at least a u32 name length plus a u64.
            let n = r.count(12)?;
            let mut counters = Vec::with_capacity(n);
            for _ in 0..n {
                let name = r.str()?;
                counters.push((name, r.u64()?));
            }
            Response::Metrics(MetricsInfo {
                counters,
                status: r.status()?,
            })
        }
        KIND_SHUTDOWN_ACK => Response::ShutdownAck,
        KIND_STREAM_OPENED => Response::StreamOpened { session: r.u64()? },
        KIND_FED => Response::Fed { accepted: r.u64()? },
        KIND_POLLED => {
            let tokens = r.toks()?;
            Response::Polled(PollReply {
                tokens,
                finished: r.bool()?,
                resident_bytes: r.u64()?,
            })
        }
        KIND_STREAM_CLOSED => {
            let merged = WireReport {
                rounds: r.u64()?,
                productive_steps: r.u64()?,
                steps: r.u64()?,
                peak_ready: r.u64()?,
            };
            let tokens = r.toks()?;
            Response::StreamClosed(CloseReply {
                merged,
                tokens,
                dram: r.blob()?,
            })
        }
        KIND_ERROR => {
            let code = r.u16()?;
            let code = ErrorCode::from_u16(code).ok_or(WireError::BadField("error code"))?;
            let message = r.str()?;
            // A wire diagnostic is at least: code len (4) + severity (1) +
            // line (4) + col (4) + message len (4).
            let n = r.count(17)?;
            let mut details = Vec::with_capacity(n);
            for _ in 0..n {
                let code = r.str()?;
                let severity = r.u8()?;
                if severity > WireDiagnostic::SEVERITY_NOTE {
                    return Err(WireError::BadField("diagnostic severity"));
                }
                details.push(WireDiagnostic {
                    code,
                    severity,
                    line: r.u32()?,
                    col: r.u32()?,
                    message: r.str()?,
                });
            }
            Response::Error(ErrorFrame {
                code,
                message,
                details,
            })
        }
        k => return Err(WireError::UnknownKind(k)),
    };
    r.finish()?;
    Ok(resp)
}

// ---------------------------------------------------------------------------
// Little-endian body writer/reader

struct W {
    buf: Vec<u8>,
}

impl W {
    fn new() -> Self {
        W {
            buf: vec![WIRE_VERSION],
        }
    }
    fn kind(&mut self, k: u8) {
        self.buf.push(k);
    }
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn bytes16(&mut self, v: &[u8; 16]) {
        self.buf.extend_from_slice(v);
    }
    fn blob(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }
    fn str(&mut self, v: &str) {
        self.blob(v.as_bytes());
    }
    fn status(&mut self, s: &StatusInfo) {
        for v in [
            s.programs_cached,
            s.cache_capacity,
            s.cache_hits,
            s.cache_misses,
            s.cache_evictions,
            s.queued_jobs,
            s.inflight_jobs,
            s.executed_instances,
            s.failed_instances,
            s.open_sessions,
            s.evicted_sessions,
            s.session_resident_bytes,
        ] {
            self.u64(v);
        }
        self.u8(s.draining as u8);
    }
    fn toks(&mut self, toks: &[WireTok]) {
        self.u32(toks.len() as u32);
        for t in toks {
            match t {
                WireTok::Data(words) => {
                    self.u8(0);
                    self.u32(words.len() as u32);
                    for &w in words {
                        self.u32(w);
                    }
                }
                WireTok::Barrier(l) => {
                    self.u8(1);
                    self.u8(*l);
                }
            }
        }
    }
    fn options(&mut self, o: &PassOptions) {
        let flags = (o.if_to_select as u8)
            | (o.fuse_allocators as u8) << 1
            | (o.hoist_allocators as u8) << 2
            | (o.bufferize_replicate as u8) << 3
            | (o.pack_subwords as u8) << 4
            | (o.eliminate_hierarchy as u8) << 5;
        self.u8(flags);
        self.u8(o.opt_level);
        self.u8(o.threads.is_some() as u8);
        self.u32(o.threads.unwrap_or(0));
        self.u64(o.dram_bytes as u64);
    }
}

struct R<'a> {
    buf: &'a [u8],
    pos: usize,
    kind: u8,
}

impl<'a> R<'a> {
    /// Validates version and splits off the kind byte.
    fn new(body: &'a [u8]) -> Result<Self, WireError> {
        if body.len() < 2 {
            return Err(WireError::Truncated);
        }
        if body[0] != WIRE_VERSION {
            return Err(WireError::UnsupportedVersion(body[0]));
        }
        Ok(R {
            buf: body,
            pos: 2,
            kind: body[1],
        })
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        if end > self.buf.len() {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }
    fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::BadField("bool")),
        }
    }
    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn bytes16(&mut self) -> Result<[u8; 16], WireError> {
        Ok(self.take(16)?.try_into().unwrap())
    }

    /// A collection count whose elements each occupy at least
    /// `min_elem_bytes` on the wire, sanity-bounded by the bytes that
    /// remain. The bound caps `Vec::with_capacity` pre-allocation at the
    /// frame size — a corrupt count cannot amplify a small frame into a
    /// huge allocation.
    fn count(&mut self, min_elem_bytes: usize) -> Result<usize, WireError> {
        let n = self.u32()? as usize;
        let remaining = self.buf.len() - self.pos;
        if n.checked_mul(min_elem_bytes.max(1))
            .is_none_or(|bytes| bytes > remaining)
        {
            return Err(WireError::Truncated);
        }
        Ok(n)
    }

    fn blob(&mut self) -> Result<Vec<u8>, WireError> {
        let n = self.count(1)?;
        Ok(self.take(n)?.to_vec())
    }

    fn str(&mut self) -> Result<String, WireError> {
        let bytes = self.blob()?;
        String::from_utf8(bytes).map_err(|_| WireError::BadField("utf-8 string"))
    }

    fn status(&mut self) -> Result<StatusInfo, WireError> {
        Ok(StatusInfo {
            programs_cached: self.u64()?,
            cache_capacity: self.u64()?,
            cache_hits: self.u64()?,
            cache_misses: self.u64()?,
            cache_evictions: self.u64()?,
            queued_jobs: self.u64()?,
            inflight_jobs: self.u64()?,
            executed_instances: self.u64()?,
            failed_instances: self.u64()?,
            open_sessions: self.u64()?,
            evicted_sessions: self.u64()?,
            session_resident_bytes: self.u64()?,
            draining: self.bool()?,
        })
    }

    /// A token list: each element is a tag byte plus, for data, a u32
    /// word count (so an element occupies ≥ 2 wire bytes).
    fn toks(&mut self) -> Result<Vec<WireTok>, WireError> {
        let n = self.count(2)?;
        let mut toks = Vec::with_capacity(n);
        for _ in 0..n {
            toks.push(match self.u8()? {
                0 => {
                    let k = self.count(4)?;
                    let mut words = Vec::with_capacity(k);
                    for _ in 0..k {
                        words.push(self.u32()?);
                    }
                    WireTok::Data(words)
                }
                1 => {
                    let l = self.u8()?;
                    if l == 0 || l > 15 {
                        return Err(WireError::BadField("barrier level"));
                    }
                    WireTok::Barrier(l)
                }
                _ => return Err(WireError::BadField("token tag")),
            });
        }
        Ok(toks)
    }

    fn options(&mut self) -> Result<PassOptions, WireError> {
        let flags = self.u8()?;
        if flags & !0x3F != 0 {
            return Err(WireError::BadField("pass option flags"));
        }
        let opt_level = self.u8()?;
        if opt_level > 2 {
            return Err(WireError::BadField("opt level"));
        }
        let has_threads = self.bool()?;
        let threads = self.u32()?;
        let dram_bytes = self.u64()?;
        Ok(PassOptions {
            if_to_select: flags & 1 != 0,
            fuse_allocators: flags & 2 != 0,
            hoist_allocators: flags & 4 != 0,
            bufferize_replicate: flags & 8 != 0,
            pack_subwords: flags & 16 != 0,
            eliminate_hierarchy: flags & 32 != 0,
            opt_level,
            threads: has_threads.then_some(threads),
            dram_bytes: dram_bytes as usize,
        })
    }

    fn finish(self) -> Result<(), WireError> {
        let rest = self.buf.len() - self.pos;
        if rest != 0 {
            return Err(WireError::TrailingBytes(rest));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_requests_round_trip() {
        for req in [
            Request::Status,
            Request::Metrics,
            Request::Shutdown,
            Request::Compile {
                source: "void main() {}".into(),
                options: PassOptions::none(),
            },
            Request::Execute(ExecuteRequest {
                program_id: ProgramId([7; 16]),
                argsets: vec![vec![1, 2], vec![], vec![3]],
                dram_inits: vec![(0, vec![1, 2, 3]), (64, vec![])],
                window: (128, 16),
            }),
            Request::OpenStream(OpenStreamRequest {
                program_id: ProgramId([9; 16]),
                dram_inits: vec![(8, vec![0xAB])],
                window: (0, 64),
            }),
            Request::Feed {
                session: 3,
                argsets: vec![vec![4, 5], vec![6]],
            },
            Request::Poll { session: 3 },
            Request::CloseStream { session: u64::MAX },
        ] {
            let body = encode_request(&req);
            assert_eq!(decode_request(&body).unwrap(), req, "{req:?}");
        }
    }

    #[test]
    fn fixed_responses_round_trip() {
        for resp in [
            Response::ShutdownAck,
            Response::Compiled {
                program_id: ProgramId([3; 16]),
                cached: true,
                compile_micros: 1234,
            },
            Response::Executed(ExecuteReply {
                merged: WireReport {
                    rounds: 1,
                    productive_steps: 2,
                    steps: 3,
                    peak_ready: 4,
                },
                instances: vec![
                    InstanceOutcome::Ok {
                        wall_micros: 55,
                        dram: vec![9, 8, 7],
                    },
                    InstanceOutcome::Err {
                        message: "deadlock".into(),
                    },
                ],
            }),
            Response::Status(StatusInfo {
                programs_cached: 4,
                cache_capacity: 32,
                cache_hits: 10,
                cache_misses: 5,
                cache_evictions: 1,
                queued_jobs: 0,
                inflight_jobs: 2,
                executed_instances: 99,
                failed_instances: 1,
                open_sessions: 3,
                evicted_sessions: 2,
                session_resident_bytes: 8192,
                draining: false,
            }),
            Response::Metrics(MetricsInfo {
                counters: vec![
                    ("exec.dispatches".into(), 12345),
                    ("exec.instances".into(), 17),
                    ("serve.cache.hits".into(), 9),
                ],
                status: StatusInfo {
                    programs_cached: 2,
                    cache_hits: 9,
                    ..StatusInfo::default()
                },
            }),
            Response::Metrics(MetricsInfo::default()),
            Response::StreamOpened { session: 17 },
            Response::Fed { accepted: 2 },
            Response::Polled(PollReply {
                tokens: vec![
                    WireTok::Data(vec![1, 2, 3]),
                    WireTok::Barrier(1),
                    WireTok::Data(vec![]),
                    WireTok::Barrier(15),
                ],
                finished: false,
                resident_bytes: 4096,
            }),
            Response::Polled(PollReply::default()),
            Response::StreamClosed(CloseReply {
                merged: WireReport {
                    rounds: 9,
                    productive_steps: 8,
                    steps: 10,
                    peak_ready: 3,
                },
                tokens: vec![WireTok::Barrier(2)],
                dram: vec![0, 1, 2, 3],
            }),
            Response::Error(ErrorFrame::new(ErrorCode::Busy, "queue full")),
            Response::Error(ErrorFrame::new(ErrorCode::UnknownSession, "no session 9")),
            Response::Error(ErrorFrame::new(ErrorCode::SessionExpired, "idle too long")),
            Response::Error(
                ErrorFrame::new(ErrorCode::CompileFailed, "error[E0103]: …rendered…").with_details(
                    vec![
                        WireDiagnostic {
                            code: "E0103".into(),
                            severity: WireDiagnostic::SEVERITY_ERROR,
                            line: 2,
                            col: 11,
                            message: "expected expression, found ';'".into(),
                        },
                        WireDiagnostic {
                            code: "E0301".into(),
                            severity: WireDiagnostic::SEVERITY_WARNING,
                            line: 0,
                            col: 0,
                            message: "no source location".into(),
                        },
                    ],
                ),
            ),
        ] {
            let body = encode_response(&resp);
            assert_eq!(decode_response(&body).unwrap(), resp, "{resp:?}");
        }
    }

    #[test]
    fn frame_io_round_trips_over_a_buffer() {
        let body = encode_request(&Request::Status);
        let mut wire = Vec::new();
        write_frame(&mut wire, &body).unwrap();
        let mut cursor = io::Cursor::new(wire);
        assert_eq!(read_frame(&mut cursor).unwrap(), body);
        // The stream is exactly drained: the next read is a clean EOF.
        assert!(read_frame(&mut cursor).unwrap_err().is_clean_eof());
    }

    #[test]
    fn corrupt_collection_count_is_rejected_without_allocation() {
        let mut body = encode_request(&Request::Execute(ExecuteRequest {
            program_id: ProgramId([0; 16]),
            argsets: vec![],
            dram_inits: vec![],
            window: (0, 0),
        }));
        // Stamp an absurd argset count into the fixed-offset count field
        // (version + kind + 16-byte id = offset 18).
        body[18..22].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode_request(&body), Err(WireError::Truncated));
    }

    #[test]
    fn corrupt_stream_tokens_are_rejected() {
        let polled = |tokens| {
            Response::Polled(PollReply {
                tokens,
                finished: true,
                resident_bytes: 0,
            })
        };
        // Token list layout after version + kind: u32 count, then tagged
        // elements. Tag byte of the first element sits at offset 6.
        let mut body = encode_response(&polled(vec![WireTok::Barrier(1)]));
        body[6] = 2;
        assert_eq!(
            decode_response(&body),
            Err(WireError::BadField("token tag"))
        );
        // An out-of-range barrier level (0 and >15 are both invalid SLTF).
        for bad in [0u8, 16] {
            let mut body = encode_response(&polled(vec![WireTok::Barrier(1)]));
            body[7] = bad;
            assert_eq!(
                decode_response(&body),
                Err(WireError::BadField("barrier level"))
            );
        }
        // A corrupt token count cannot force a huge allocation.
        let mut body = encode_response(&polled(vec![]));
        body[2..6].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode_response(&body), Err(WireError::Truncated));
    }

    #[test]
    fn wire_tok_round_trips_through_machine_tokens() {
        use revet_machine::{tbar, tdata};
        for tok in [tdata([1u32, 2, 3]), tbar(1), tbar(15)] {
            let wire = WireTok::from_ttok(&tok);
            assert_eq!(wire.to_ttok().unwrap(), tok);
        }
        assert_eq!(WireTok::Barrier(0).to_ttok(), None);
        assert_eq!(WireTok::Barrier(16).to_ttok(), None);
    }
}
