//! The streaming-session table: bounded residency for long-lived
//! [`StreamInstance`]s fed incrementally over the wire.
//!
//! Each `OpenStream` request parks a resident instance here under a
//! server-assigned id; `Feed`/`Poll`/`CloseStream` look it up. Three
//! properties the protocol depends on live in this module:
//!
//! - **Bounded residency.** The table holds at most `capacity` sessions;
//!   an open beyond that answers [`SessionError::Busy`] immediately
//!   (backpressure, like the admission queue) instead of accepting
//!   unbounded resident state.
//! - **Idle eviction.** A sweeper calls [`SessionTable::sweep`]
//!   periodically; sessions untouched for longer than `idle_timeout` are
//!   dropped, and later touches of their ids answer the *typed*
//!   [`SessionError::Expired`] — distinguishable from an id the server
//!   never issued ([`SessionError::Unknown`]).
//! - **Per-session locking.** The table mutex guards only the id map;
//!   each session has its own mutex, so a long poll of one session never
//!   blocks feeds into another.

use revet_core::StreamInstance;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Evicted ids remembered for `Expired` (vs `Unknown`) answers.
const TOMBSTONE_CAP: usize = 1024;

/// One resident streaming session.
pub(crate) struct SessionSlot {
    /// The resident incrementally-fed instance.
    pub stream: StreamInstance,
    /// `(offset, len)` of the DRAM window the close reply returns.
    pub window: (u64, u64),
    /// Last `open`/`with`/`close` touch — the idle sweeper's clock.
    last_touch: Instant,
}

/// Why a session operation was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum SessionError {
    /// The table is at capacity — close or wait, then retry the open.
    Busy,
    /// The id was never issued, or the client already closed it.
    Unknown,
    /// The idle sweeper evicted the session.
    Expired,
}

/// A session's shared cell: `None` once closed or evicted. The
/// indirection lets `with` run the session's work outside the table
/// lock.
type Slot = Arc<Mutex<Option<SessionSlot>>>;

struct TableInner {
    next_id: u64,
    sessions: HashMap<u64, Slot>,
    /// Recently evicted ids, oldest first (bounded by [`TOMBSTONE_CAP`]).
    expired: VecDeque<u64>,
}

/// The bounded, idle-swept map from session id to resident instance.
pub(crate) struct SessionTable {
    capacity: usize,
    idle_timeout: Duration,
    inner: Mutex<TableInner>,
    evicted: AtomicU64,
}

impl SessionTable {
    pub(crate) fn new(capacity: usize, idle_timeout: Duration) -> Self {
        SessionTable {
            capacity: capacity.max(1),
            idle_timeout,
            inner: Mutex::new(TableInner {
                next_id: 1,
                sessions: HashMap::new(),
                expired: VecDeque::new(),
            }),
            evicted: AtomicU64::new(0),
        }
    }

    /// Admits a new session, or refuses with `Busy` at capacity.
    pub(crate) fn open(
        &self,
        stream: StreamInstance,
        window: (u64, u64),
    ) -> Result<u64, SessionError> {
        let mut inner = self.inner.lock().unwrap();
        if inner.sessions.len() >= self.capacity {
            return Err(SessionError::Busy);
        }
        let id = inner.next_id;
        inner.next_id += 1;
        inner.sessions.insert(
            id,
            Arc::new(Mutex::new(Some(SessionSlot {
                stream,
                window,
                last_touch: Instant::now(),
            }))),
        );
        Ok(id)
    }

    /// Looks up `id` and distinguishes evicted from never-issued.
    fn checkout(&self, id: u64) -> Result<Slot, SessionError> {
        let inner = self.inner.lock().unwrap();
        match inner.sessions.get(&id) {
            Some(slot) => Ok(Arc::clone(slot)),
            None if inner.expired.contains(&id) => Err(SessionError::Expired),
            None => Err(SessionError::Unknown),
        }
    }

    /// Runs `f` on the session, holding only that session's lock (a slow
    /// poll of one session never blocks the others). Touching refreshes
    /// the idle deadline.
    pub(crate) fn with<T>(
        &self,
        id: u64,
        f: impl FnOnce(&mut SessionSlot) -> T,
    ) -> Result<T, SessionError> {
        let slot = self.checkout(id)?;
        let mut guard = slot.lock().unwrap();
        match guard.as_mut() {
            Some(session) => {
                session.last_touch = Instant::now();
                Ok(f(session))
            }
            // Closed or evicted between checkout and lock.
            None => match self.checkout(id) {
                Err(e) => Err(e),
                Ok(_) => Err(SessionError::Unknown),
            },
        }
    }

    /// Removes the session and hands it to the caller (the close path
    /// needs ownership — [`StreamInstance::finish`] consumes).
    pub(crate) fn close(&self, id: u64) -> Result<SessionSlot, SessionError> {
        let slot = {
            let mut inner = self.inner.lock().unwrap();
            match inner.sessions.remove(&id) {
                Some(slot) => slot,
                None if inner.expired.contains(&id) => return Err(SessionError::Expired),
                None => return Err(SessionError::Unknown),
            }
        };
        let taken = slot.lock().unwrap().take();
        taken.ok_or(SessionError::Unknown)
    }

    /// Evicts sessions idle past the deadline as of `now`; returns how
    /// many. Sessions whose lock is held (mid-poll) are by definition not
    /// idle and are skipped.
    pub(crate) fn sweep(&self, now: Instant) -> usize {
        let mut inner = self.inner.lock().unwrap();
        let mut stale = Vec::new();
        for (&id, slot) in &inner.sessions {
            if let Ok(guard) = slot.try_lock() {
                if let Some(session) = guard.as_ref() {
                    if now.duration_since(session.last_touch) > self.idle_timeout {
                        stale.push(id);
                    }
                }
            }
        }
        for &id in &stale {
            if let Some(slot) = inner.sessions.remove(&id) {
                slot.lock().unwrap().take();
            }
            inner.expired.push_back(id);
            while inner.expired.len() > TOMBSTONE_CAP {
                inner.expired.pop_front();
            }
        }
        self.evicted
            .fetch_add(stale.len() as u64, Ordering::Relaxed);
        stale.len()
    }

    /// Drops every resident session (graceful drain).
    pub(crate) fn drain(&self) {
        let mut inner = self.inner.lock().unwrap();
        for (_, slot) in inner.sessions.drain() {
            slot.lock().unwrap().take();
        }
    }

    /// Sessions currently resident.
    pub(crate) fn open_count(&self) -> u64 {
        self.inner.lock().unwrap().sessions.len() as u64
    }

    /// Sessions the idle sweeper has evicted since boot.
    pub(crate) fn evicted_total(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    /// Total resident footprint of open sessions, bytes. Sessions whose
    /// lock is held are skipped — this is a monitoring gauge, not an
    /// accounting invariant.
    pub(crate) fn resident_bytes(&self) -> u64 {
        let inner = self.inner.lock().unwrap();
        inner
            .sessions
            .values()
            .filter_map(|slot| {
                let guard = slot.try_lock().ok()?;
                Some(guard.as_ref()?.stream.resident_bytes())
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use revet_core::{Compiler, PassOptions, StreamExecutor};
    use revet_sltf::Word;

    fn stream() -> StreamInstance {
        let opts = PassOptions {
            dram_bytes: 1 << 12,
            ..PassOptions::default()
        };
        Compiler::new(opts)
            .compile_source(
                "dram<u32> output;
                 void main(u32 n) {
                     foreach (n) { u32 i => output[i] = i * i; };
                 }",
            )
            .unwrap()
            .stream(StreamExecutor::Planned)
    }

    #[test]
    fn capacity_overflow_answers_busy() {
        let table = SessionTable::new(2, Duration::from_secs(60));
        let a = table.open(stream(), (0, 0)).unwrap();
        let _b = table.open(stream(), (0, 0)).unwrap();
        assert_eq!(table.open(stream(), (0, 0)), Err(SessionError::Busy));
        // Closing frees a slot.
        table.close(a).unwrap();
        assert!(table.open(stream(), (0, 0)).is_ok());
        assert_eq!(table.open_count(), 2);
    }

    #[test]
    fn idle_sessions_are_evicted_and_answer_expired() {
        let table = SessionTable::new(4, Duration::from_millis(10));
        let id = table.open(stream(), (0, 0)).unwrap();
        // Not yet stale.
        assert_eq!(table.sweep(Instant::now()), 0);
        // Well past the deadline (a faked future clock, no sleeping).
        let future = Instant::now() + Duration::from_secs(1);
        assert_eq!(table.sweep(future), 1);
        assert_eq!(table.evicted_total(), 1);
        assert_eq!(table.open_count(), 0);
        assert_eq!(table.with(id, |_| ()), Err(SessionError::Expired));
        assert_eq!(table.close(id).err(), Some(SessionError::Expired));
    }

    #[test]
    fn touching_a_session_resets_its_idle_deadline() {
        let table = SessionTable::new(4, Duration::from_millis(50));
        let id = table.open(stream(), (0, 0)).unwrap();
        std::thread::sleep(Duration::from_millis(30));
        table.with(id, |_| ()).unwrap(); // refresh
        std::thread::sleep(Duration::from_millis(30));
        // 60ms since open, but only 30ms since the touch.
        assert_eq!(table.sweep(Instant::now()), 0);
        assert_eq!(table.open_count(), 1);
    }

    #[test]
    fn double_close_and_feed_after_close_answer_unknown() {
        let table = SessionTable::new(4, Duration::from_secs(60));
        let id = table.open(stream(), (0, 0)).unwrap();
        assert!(table.close(id).is_ok());
        assert_eq!(table.close(id).err(), Some(SessionError::Unknown));
        assert_eq!(table.with(id, |_| ()), Err(SessionError::Unknown));
        // An id never issued is Unknown too.
        assert_eq!(table.with(999, |_| ()), Err(SessionError::Unknown));
    }

    #[test]
    fn resident_bytes_sums_open_sessions() {
        let table = SessionTable::new(4, Duration::from_secs(60));
        let id = table.open(stream(), (0, 0)).unwrap();
        assert_eq!(table.resident_bytes(), 0, "nothing fed yet");
        table
            .with(id, |s| s.stream.feed(&[vec![Word(5)]]).unwrap())
            .unwrap();
        assert!(table.resident_bytes() > 0, "fed argset is resident");
        table.drain();
        assert_eq!(table.open_count(), 0);
        assert_eq!(table.resident_bytes(), 0);
    }
}
