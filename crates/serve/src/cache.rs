//! Content-addressed program cache: compile once, execute many.
//!
//! Keys are [`ProgramId`]s — the stable fingerprint of (source,
//! [`PassOptions`]) — so byte-identical compile requests from any number
//! of clients resolve to one shared [`CompiledProgram`]:
//!
//! - **Single-flight**: concurrent requests for the same id wait on the
//!   one in-progress compile instead of compiling redundantly; a failed
//!   compile releases the slot (errors are *not* cached — the next
//!   request retries), so a bad request can never poison the cache.
//! - **LRU eviction**: a bounded number of programs stay resident;
//!   touching (hit or execute lookup) refreshes recency. Evicted programs
//!   that are still executing stay alive through their `Arc` until the
//!   batch drains.
//! - **Counters**: hits, misses, and evictions are exposed for the
//!   `Status` wire request and the load generator's report.

use revet_core::{CompiledProgram, CoreError, ProgramId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Cache observability counters (monotonic since construction).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups satisfied by a resident program.
    pub hits: u64,
    /// Lookups that had to compile (including failed compiles).
    pub misses: u64,
    /// Programs evicted by the LRU policy.
    pub evictions: u64,
    /// Programs currently resident.
    pub resident: u64,
}

enum Slot {
    /// Compile in progress on some thread; waiters block on the condvar.
    Building,
    /// Resident program plus its LRU recency stamp.
    Ready(Arc<CompiledProgram>, u64),
}

struct Inner {
    slots: HashMap<ProgramId, Slot>,
    /// Monotonic recency clock; bumped on every touch.
    tick: u64,
}

/// A bounded, thread-safe, content-addressed store of compiled programs.
pub struct ProgramCache {
    inner: Mutex<Inner>,
    resolved: Condvar,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl std::fmt::Debug for ProgramCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProgramCache")
            .field("capacity", &self.capacity)
            .field("stats", &self.stats())
            .finish()
    }
}

impl ProgramCache {
    /// Creates a cache holding at most `capacity` programs (min 1).
    pub fn new(capacity: usize) -> Self {
        ProgramCache {
            inner: Mutex::new(Inner {
                slots: HashMap::new(),
                tick: 0,
            }),
            resolved: Condvar::new(),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        let resident = {
            let inner = self.inner.lock().unwrap();
            inner
                .slots
                .values()
                .filter(|s| matches!(s, Slot::Ready(..)))
                .count() as u64
        };
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            resident,
        }
    }

    /// Looks up `id`, waiting out any in-progress compile for it. `None`
    /// when the cache holds nothing under that id (never compiles).
    pub fn get(&self, id: ProgramId) -> Option<Arc<CompiledProgram>> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            match inner.slots.get(&id) {
                None => {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    return None;
                }
                Some(Slot::Building) => {
                    inner = self.resolved.wait(inner).unwrap();
                }
                Some(Slot::Ready(program, _)) => {
                    let program = Arc::clone(program);
                    let tick = inner.tick + 1;
                    inner.tick = tick;
                    if let Some(Slot::Ready(_, stamp)) = inner.slots.get_mut(&id) {
                        *stamp = tick;
                    }
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Some(program);
                }
            }
        }
    }

    /// Returns the program under `id`, compiling it with `compile` on a
    /// miss. Exactly one caller runs `compile` per miss; concurrent
    /// callers for the same id block until it resolves. The boolean is
    /// true on a cache hit (including waiting out someone else's
    /// successful compile).
    ///
    /// # Errors
    ///
    /// The compile error, delivered to the caller that compiled. Waiters
    /// observe the released slot and retry the compile themselves (the
    /// error itself is never cached).
    pub fn get_or_compile(
        &self,
        id: ProgramId,
        compile: impl FnOnce() -> Result<CompiledProgram, CoreError>,
    ) -> Result<(Arc<CompiledProgram>, bool), CoreError> {
        {
            let mut inner = self.inner.lock().unwrap();
            loop {
                match inner.slots.get(&id) {
                    None => {
                        // Claim the build: later requests for this id wait.
                        inner.slots.insert(id, Slot::Building);
                        self.misses.fetch_add(1, Ordering::Relaxed);
                        break;
                    }
                    Some(Slot::Building) => {
                        inner = self.resolved.wait(inner).unwrap();
                    }
                    Some(Slot::Ready(program, _)) => {
                        let program = Arc::clone(program);
                        let tick = inner.tick + 1;
                        inner.tick = tick;
                        if let Some(Slot::Ready(_, stamp)) = inner.slots.get_mut(&id) {
                            *stamp = tick;
                        }
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        return Ok((program, true));
                    }
                }
            }
        }
        // Compile outside the lock — this is the expensive part and the
        // whole reason for single-flight.
        let outcome = compile();
        let mut inner = self.inner.lock().unwrap();
        match outcome {
            Ok(program) => {
                let program = Arc::new(program);
                let tick = inner.tick + 1;
                inner.tick = tick;
                inner
                    .slots
                    .insert(id, Slot::Ready(Arc::clone(&program), tick));
                self.evict_over_capacity(&mut inner);
                self.resolved.notify_all();
                Ok((program, false))
            }
            Err(e) => {
                // Release the claim so the next request can retry; never
                // leave a permanently-Building tombstone.
                inner.slots.remove(&id);
                self.resolved.notify_all();
                Err(e)
            }
        }
    }

    /// Evicts least-recently-used Ready programs down to capacity.
    /// Building slots are never evicted (someone is waiting on them).
    fn evict_over_capacity(&self, inner: &mut Inner) {
        loop {
            let ready = inner
                .slots
                .values()
                .filter(|s| matches!(s, Slot::Ready(..)))
                .count();
            if ready <= self.capacity {
                return;
            }
            let victim = inner
                .slots
                .iter()
                .filter_map(|(id, s)| match s {
                    Slot::Ready(_, stamp) => Some((*stamp, *id)),
                    Slot::Building => None,
                })
                .min()
                .map(|(_, id)| id);
            let Some(victim) = victim else { return };
            inner.slots.remove(&victim);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use revet_core::{Compiler, PassOptions};
    use std::sync::atomic::AtomicUsize;

    const SRC_A: &str = "dram<u32> o; void main(u32 n) { foreach (n) { u32 i => o[i] = i; }; }";
    const SRC_B: &str = "dram<u32> o; void main(u32 n) { foreach (n) { u32 i => o[i] = i + 1; }; }";
    const SRC_C: &str = "dram<u32> o; void main(u32 n) { foreach (n) { u32 i => o[i] = i + 2; }; }";

    fn compile(src: &str) -> Result<CompiledProgram, CoreError> {
        Compiler::new(PassOptions {
            dram_bytes: 1 << 12,
            ..PassOptions::default()
        })
        .compile_source(src)
    }

    fn opts() -> PassOptions {
        PassOptions {
            dram_bytes: 1 << 12,
            ..PassOptions::default()
        }
    }

    #[test]
    fn hit_and_miss_counters_track_lookups() {
        let cache = ProgramCache::new(4);
        let id = ProgramId::of(SRC_A, &opts());
        assert!(cache.get(id).is_none());
        let (_, hit) = cache.get_or_compile(id, || compile(SRC_A)).unwrap();
        assert!(!hit);
        let (_, hit) = cache
            .get_or_compile(id, || panic!("must not recompile"))
            .unwrap();
        assert!(hit);
        assert!(cache.get(id).is_some());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.resident), (2, 2, 1));
    }

    #[test]
    fn lru_evicts_the_coldest_program() {
        let cache = ProgramCache::new(2);
        let ids: Vec<ProgramId> = [SRC_A, SRC_B]
            .iter()
            .map(|src| {
                let id = ProgramId::of(src, &opts());
                cache.get_or_compile(id, || compile(src)).unwrap();
                id
            })
            .collect();
        // Touch A so B is the LRU victim when C arrives.
        assert!(cache.get(ids[0]).is_some());
        let id_c = ProgramId::of(SRC_C, &opts());
        cache.get_or_compile(id_c, || compile(SRC_C)).unwrap();
        assert!(cache.get(ids[0]).is_some(), "A was touched, must survive");
        assert!(
            cache.get(ids[1]).is_none(),
            "B was coldest, must be evicted"
        );
        assert!(cache.get(id_c).is_some());
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.resident, 2);
    }

    #[test]
    fn single_flight_compiles_once_across_threads() {
        let cache = ProgramCache::new(4);
        let compiles = AtomicUsize::new(0);
        let id = ProgramId::of(SRC_A, &opts());
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    let (program, _) = cache
                        .get_or_compile(id, || {
                            compiles.fetch_add(1, Ordering::SeqCst);
                            // Widen the race window so waiters really pile up.
                            std::thread::sleep(std::time::Duration::from_millis(20));
                            compile(SRC_A)
                        })
                        .unwrap();
                    assert!(!program.graph.mem.dram.is_empty());
                });
            }
        });
        assert_eq!(compiles.load(Ordering::SeqCst), 1, "exactly one compile");
    }

    #[test]
    fn failed_compile_releases_the_slot_instead_of_poisoning() {
        let cache = ProgramCache::new(4);
        let id = ProgramId::of("void main( {", &opts());
        let err = cache
            .get_or_compile(id, || compile("void main( {"))
            .unwrap_err();
        assert!(!err.diagnostics.is_empty());
        assert!(cache.get(id).is_none(), "failure must not be cached");
        // The same id can be retried — and a good compile now lands.
        let (_, hit) = cache.get_or_compile(id, || compile(SRC_A)).unwrap();
        assert!(!hit);
        assert!(cache.get(id).is_some());
    }
}
