//! The service: a TCP listener, a connection thread per client, a
//! bounded admission queue, and a pool of executor threads driving
//! batches through `revet-runtime`.
//!
//! ```text
//!        clients (length-prefixed frames, protocol.rs)
//!           │ Compile / Execute / Status / Shutdown
//!           ▼
//!   accept loop ──► connection threads (decode, validate, reply)
//!                     │ Compile → ProgramCache (single-flight, LRU)
//!                     │ Execute → AdmissionQueue::try_submit
//!                     │            │  Full → Busy error (backpressure)
//!                     ▼            ▼
//!                  typed error  executor threads × E
//!                  frames         └─ BatchRunner::run over the job's
//!                                    argsets (worker pool × B)
//! ```
//!
//! **Backpressure** is explicit: the admission queue is bounded, and a
//! full queue answers `Busy` immediately instead of accepting unbounded
//! work. **Graceful shutdown** flips one flag: the acceptor stops, new
//! submissions are refused with `ShuttingDown`, queued and running jobs
//! drain to completion, and every connection finishes writing its
//! in-flight replies before closing.

use crate::cache::ProgramCache;
use crate::protocol::{
    decode_request, encode_response, read_frame, write_frame, CloseReply, ErrorCode, ErrorFrame,
    ExecuteReply, ExecuteRequest, FrameError, InstanceOutcome, MetricsInfo, OpenStreamRequest,
    PollReply, Request, Response, StatusInfo, WireDiagnostic, WireError, WireReport, WireTok,
    MAX_FRAME_BYTES,
};
use crate::session::{SessionError, SessionTable};
use revet_core::{
    CompiledProgram, Compiler, CoreError, PassOptions, ProgramId, StreamExecutor, StreamInstance,
};
use revet_diag::{Severity, SourceMap};
use revet_obs::ObsSink;
use revet_runtime::{BatchJob, BatchRunner};
use revet_sltf::Word;
use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often blocked accept/read loops re-check the draining flag.
const IDLE_POLL: Duration = Duration::from_millis(50);
/// Patience for the *rest* of a frame once its first byte has arrived.
const FRAME_TIMEOUT: Duration = Duration::from_secs(10);

/// Server tuning knobs.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port (see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Programs the content-addressed cache keeps resident.
    pub cache_capacity: usize,
    /// Execute jobs the admission queue holds before answering `Busy`.
    pub queue_capacity: usize,
    /// Executor threads pulling jobs off the admission queue.
    pub executor_threads: usize,
    /// Worker threads each executor's [`BatchRunner`] uses per job.
    pub batch_threads: usize,
    /// Per-instance round cap (livelock guard).
    pub max_rounds: u64,
    /// Streaming sessions resident at once before `OpenStream` answers
    /// `Busy`.
    pub session_capacity: usize,
    /// Idle deadline after which the sweeper evicts a streaming session
    /// (later touches answer `SessionExpired`).
    pub session_idle_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            cache_capacity: 32,
            queue_capacity: 64,
            executor_threads: 2.min(hw),
            batch_threads: hw,
            max_rounds: revet_runtime::DEFAULT_MAX_ROUNDS,
            session_capacity: 32,
            session_idle_timeout: Duration::from_secs(30),
        }
    }
}

/// Final counters returned by [`Server::shutdown`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ServerStats {
    /// Instances completed successfully over the server's lifetime.
    pub executed_instances: u64,
    /// Instances that failed.
    pub failed_instances: u64,
    /// Cache hits over the lifetime.
    pub cache_hits: u64,
    /// Cache misses over the lifetime.
    pub cache_misses: u64,
    /// Cache evictions over the lifetime.
    pub cache_evictions: u64,
}

/// One accepted execute job: the resolved program, the request, and the
/// channel its connection thread is blocked on.
struct ExecJob {
    program: Arc<CompiledProgram>,
    req: ExecuteRequest,
    reply: mpsc::Sender<ExecuteReply>,
}

/// Refusals from [`AdmissionQueue::try_submit`].
enum SubmitError {
    /// Queue at capacity — the caller should answer `Busy`.
    Full,
    /// Drain has begun — the caller should answer `ShuttingDown`.
    Closed,
}

/// Bounded MPMC job queue with an explicit closed state.
struct AdmissionQueue {
    capacity: usize,
    inner: Mutex<QueueInner>,
    available: Condvar,
}

struct QueueInner {
    jobs: VecDeque<ExecJob>,
    closed: bool,
}

impl AdmissionQueue {
    fn new(capacity: usize) -> Self {
        AdmissionQueue {
            capacity: capacity.max(1),
            inner: Mutex::new(QueueInner {
                jobs: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
        }
    }

    /// Admission control: accepts the job or refuses *now* — it never
    /// blocks the connection thread behind other clients' work.
    fn try_submit(&self, job: ExecJob) -> Result<(), SubmitError> {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed {
            return Err(SubmitError::Closed);
        }
        if inner.jobs.len() >= self.capacity {
            return Err(SubmitError::Full);
        }
        inner.jobs.push_back(job);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks for the next job; `None` once closed *and* drained — the
    /// executor's signal to exit. Jobs queued before the close are still
    /// handed out (drain, don't drop).
    fn pop(&self) -> Option<ExecJob> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(job) = inner.jobs.pop_front() {
                return Some(job);
            }
            if inner.closed {
                return None;
            }
            inner = self.available.wait(inner).unwrap();
        }
    }

    fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.available.notify_all();
    }

    fn len(&self) -> usize {
        self.inner.lock().unwrap().jobs.len()
    }
}

/// State shared by the acceptor, connection threads, and executors.
struct Shared {
    cfg: ServeConfig,
    cache: ProgramCache,
    queue: AdmissionQueue,
    sessions: SessionTable,
    draining: AtomicBool,
    inflight_jobs: AtomicU64,
    executed_instances: AtomicU64,
    failed_instances: AtomicU64,
    connections: Mutex<Vec<JoinHandle<()>>>,
    /// Lifetime execution counters (no trace ring — counters are cheap
    /// and lock-free, a ring shared by every batch would not be). Every
    /// executor's `BatchRunner` records into this sink; the `Metrics`
    /// request dumps it.
    obs: ObsSink,
}

impl Shared {
    fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Idempotent: flips the drain flag, closes the queue, and drops
    /// every resident streaming session. Everything else (acceptor exit,
    /// executor exit, connection exit) follows from those.
    fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
        self.queue.close();
        self.sessions.drain();
    }

    fn status(&self) -> StatusInfo {
        let cache = self.cache.stats();
        StatusInfo {
            programs_cached: cache.resident,
            cache_capacity: self.cache.capacity() as u64,
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_evictions: cache.evictions,
            queued_jobs: self.queue.len() as u64,
            inflight_jobs: self.inflight_jobs.load(Ordering::SeqCst),
            executed_instances: self.executed_instances.load(Ordering::SeqCst),
            failed_instances: self.failed_instances.load(Ordering::SeqCst),
            open_sessions: self.sessions.open_count(),
            evicted_sessions: self.sessions.evicted_total(),
            session_resident_bytes: self.sessions.resident_bytes(),
            draining: self.draining(),
        }
    }

    /// The `Metrics` payload: execution counters from the shared obs sink
    /// plus serve-level counters (cache, instance totals), with a status
    /// snapshot taken at the same instant.
    fn metrics(&self) -> MetricsInfo {
        let status = self.status();
        let mut counters = self.obs.snapshot_counters();
        counters.extend([
            ("serve.cache.hits".to_string(), status.cache_hits),
            ("serve.cache.misses".to_string(), status.cache_misses),
            ("serve.cache.evictions".to_string(), status.cache_evictions),
            ("serve.cache.resident".to_string(), status.programs_cached),
            (
                "serve.executed_instances".to_string(),
                status.executed_instances,
            ),
            (
                "serve.failed_instances".to_string(),
                status.failed_instances,
            ),
            ("serve.sessions.open".to_string(), status.open_sessions),
            (
                "serve.sessions.evicted".to_string(),
                status.evicted_sessions,
            ),
            (
                "serve.sessions.resident_bytes".to_string(),
                status.session_resident_bytes,
            ),
        ]);
        counters.sort();
        MetricsInfo { counters, status }
    }
}

/// A running compile-and-execute service. Dropping the handle does *not*
/// stop the server; call [`Server::shutdown`] for a graceful drain.
#[derive(Debug)]
pub struct Server {
    shared: Arc<SharedOpaque>,
    local_addr: SocketAddr,
    acceptor: JoinHandle<()>,
    executors: Vec<JoinHandle<()>>,
    sweeper: JoinHandle<()>,
}

/// Newtype so `Server`'s Debug doesn't try to render the whole state.
struct SharedOpaque(Shared);

impl std::fmt::Debug for SharedOpaque {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared").finish_non_exhaustive()
    }
}

impl Server {
    /// Binds `cfg.addr`, spawns the acceptor and executor pool, and
    /// returns a handle. The server is accepting requests on return.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn spawn(cfg: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let executor_threads = cfg.executor_threads.max(1);
        let shared = Arc::new(SharedOpaque(Shared {
            cache: ProgramCache::new(cfg.cache_capacity),
            queue: AdmissionQueue::new(cfg.queue_capacity),
            sessions: SessionTable::new(cfg.session_capacity, cfg.session_idle_timeout),
            draining: AtomicBool::new(false),
            inflight_jobs: AtomicU64::new(0),
            executed_instances: AtomicU64::new(0),
            failed_instances: AtomicU64::new(0),
            connections: Mutex::new(Vec::new()),
            obs: ObsSink::counters_only(),
            cfg,
        }));
        let executors = (0..executor_threads)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || executor_loop(&shared.0))
            })
            .collect();
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(listener, &shared))
        };
        // The idle sweeper: evicts streaming sessions past their idle
        // deadline until drain begins.
        let sweeper = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                while !shared.0.draining() {
                    std::thread::sleep(IDLE_POLL);
                    shared.0.sessions.sweep(Instant::now());
                }
            })
        };
        Ok(Server {
            shared,
            local_addr,
            acceptor,
            executors,
            sweeper,
        })
    }

    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Snapshot of the live counters (same data as the `Status` request).
    pub fn status(&self) -> StatusInfo {
        self.shared.0.status()
    }

    /// Graceful shutdown: stop accepting, refuse new work, drain queued
    /// and in-flight jobs, deliver every outstanding reply, then join all
    /// threads. Idempotent with a wire-level `Shutdown` request — either
    /// side may initiate; this call always completes the join.
    pub fn shutdown(self) -> ServerStats {
        let shared = &self.shared.0;
        shared.begin_drain();
        // Acceptor first (no new connections), then executors (drain the
        // queue, delivering replies connection threads are blocked on),
        // then the connections themselves.
        let _ = self.acceptor.join();
        let _ = self.sweeper.join();
        for h in self.executors {
            let _ = h.join();
        }
        let handles = std::mem::take(&mut *shared.connections.lock().unwrap());
        for h in handles {
            let _ = h.join();
        }
        let cache = shared.cache.stats();
        ServerStats {
            executed_instances: shared.executed_instances.load(Ordering::SeqCst),
            failed_instances: shared.failed_instances.load(Ordering::SeqCst),
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_evictions: cache.evictions,
        }
    }
}

/// Accepts until drain; one thread per connection.
fn accept_loop(listener: TcpListener, shared: &Arc<SharedOpaque>) {
    while !shared.0.draining() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let per_conn = Arc::clone(shared);
                let handle = std::thread::spawn(move || {
                    // Connection failures affect that client only.
                    let _ = handle_connection(stream, &per_conn.0);
                });
                let mut connections = shared.0.connections.lock().unwrap();
                // Reap finished connections so a long-lived server doesn't
                // accumulate one JoinHandle per connection ever served
                // (joining a finished thread does not block).
                for done in connections.extract_if(.., |h| h.is_finished()) {
                    let _ = done.join();
                }
                connections.push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(IDLE_POLL);
            }
            Err(_) => std::thread::sleep(IDLE_POLL),
        }
    }
}

/// Waits for a frame, polling the drain flag while idle. `None` means
/// "close this connection" (peer EOF, or drain while idle).
fn next_frame(stream: &mut TcpStream, shared: &Shared) -> Option<Result<Vec<u8>, FrameError>> {
    loop {
        let mut probe = [0u8; 1];
        match stream.peek(&mut probe) {
            Ok(0) => return None,
            Ok(_) => {
                // First byte is here; allow the peer FRAME_TIMEOUT to
                // deliver the rest so a short idle-poll window can't
                // split a frame mid-read (which would desync framing).
                let _ = stream.set_read_timeout(Some(FRAME_TIMEOUT));
                let frame = read_frame(stream);
                let _ = stream.set_read_timeout(Some(IDLE_POLL));
                return Some(frame);
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if shared.draining() {
                    return None;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Some(Err(FrameError::Io(e))),
        }
    }
}

fn send(stream: &mut TcpStream, resp: &Response) -> io::Result<()> {
    write_frame(stream, &encode_response(resp))
}

fn send_error(
    stream: &mut TcpStream,
    code: ErrorCode,
    message: impl Into<String>,
) -> io::Result<()> {
    send(stream, &Response::Error(ErrorFrame::new(code, message)))
}

/// Serves one client until EOF, fatal transport error, or idle drain.
fn handle_connection(mut stream: TcpStream, shared: &Shared) -> io::Result<()> {
    // On some platforms (Windows) accepted sockets inherit the listener's
    // nonblocking mode; this loop is written against blocking reads with
    // timeouts, so force that explicitly.
    stream.set_nonblocking(false)?;
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(IDLE_POLL))?;
    while let Some(frame) = next_frame(&mut stream, shared) {
        let body = match frame {
            Ok(body) => body,
            Err(FrameError::Io(e)) if e.kind() == io::ErrorKind::UnexpectedEof => break,
            Err(e @ FrameError::TooLarge(_)) | Err(e @ FrameError::TooShort(_)) => {
                // The typed reply still goes out, but the stream position
                // is no longer frame-aligned, so this connection is done.
                let code = match e {
                    FrameError::TooLarge(_) => ErrorCode::FrameTooLarge,
                    _ => ErrorCode::Malformed,
                };
                send_error(&mut stream, code, e.to_string())?;
                break;
            }
            Err(FrameError::Io(e)) => return Err(e),
        };
        // Body-level failures are recoverable: framing is intact, so
        // reply with a typed error and keep serving this client.
        let request = match decode_request(&body) {
            Ok(request) => request,
            Err(e @ WireError::UnsupportedVersion(_)) => {
                send_error(&mut stream, ErrorCode::UnsupportedVersion, e.to_string())?;
                continue;
            }
            Err(e) => {
                send_error(&mut stream, ErrorCode::Malformed, e.to_string())?;
                continue;
            }
        };
        match request {
            Request::Status => send(&mut stream, &Response::Status(shared.status()))?,
            Request::Metrics => send(&mut stream, &Response::Metrics(shared.metrics()))?,
            Request::Shutdown => {
                send(&mut stream, &Response::ShutdownAck)?;
                shared.begin_drain();
            }
            Request::Compile { source, options } => {
                handle_compile(&mut stream, shared, &source, options)?
            }
            Request::Execute(req) => handle_execute(&mut stream, shared, req)?,
            Request::OpenStream(req) => handle_open_stream(&mut stream, shared, req)?,
            Request::Feed { session, argsets } => {
                handle_feed(&mut stream, shared, session, &argsets)?
            }
            Request::Poll { session } => handle_poll(&mut stream, shared, session)?,
            Request::CloseStream { session } => handle_close_stream(&mut stream, shared, session)?,
        }
    }
    Ok(())
}

fn handle_compile(
    stream: &mut TcpStream,
    shared: &Shared,
    source: &str,
    options: PassOptions,
) -> io::Result<()> {
    if shared.draining() {
        return send_error(stream, ErrorCode::ShuttingDown, "server is draining");
    }
    let id = ProgramId::of(source, &options);
    let start = Instant::now();
    let compiler = Compiler::new(options);
    match shared
        .cache
        .get_or_compile(id, || compiler.compile_source(source))
    {
        Ok((_, cached)) => send(
            stream,
            &Response::Compiled {
                program_id: id,
                cached,
                compile_micros: if cached {
                    0
                } else {
                    start.elapsed().as_micros() as u64
                },
            },
        ),
        Err(e) => send(stream, &Response::Error(compile_failed_frame(source, &e))),
    }
}

/// Builds the structured `CompileFailed` reply: the full rendered report
/// as the message, plus one [`WireDiagnostic`] per compiler diagnostic
/// with line/col pre-resolved against the submitted source.
fn compile_failed_frame(source: &str, e: &CoreError) -> ErrorFrame {
    let map = SourceMap::new(source);
    let details = e
        .diagnostics
        .iter()
        .map(|d| {
            let (line, col) = d.span.map_or((0, 0), |s| {
                let lc = map.line_col(s.start);
                (lc.line, lc.col)
            });
            WireDiagnostic {
                code: d.code.to_string(),
                severity: match d.severity {
                    Severity::Error => WireDiagnostic::SEVERITY_ERROR,
                    Severity::Warning => WireDiagnostic::SEVERITY_WARNING,
                    Severity::Note => WireDiagnostic::SEVERITY_NOTE,
                },
                line,
                col,
                message: d.message.clone(),
            }
        })
        .collect();
    ErrorFrame::new(ErrorCode::CompileFailed, e.render(source, false)).with_details(details)
}

/// Validates a window + DRAM overlays against a program's actual memory
/// shape, so execution paths only ever see runnable inputs. Returns the
/// `BadRequest` message on refusal.
fn check_memory_args(
    program: &CompiledProgram,
    window: (u64, u64),
    dram_inits: &[(u64, Vec<u8>)],
) -> Result<(), String> {
    let dram_len = program.graph.mem.dram.len() as u64;
    let (w_off, w_len) = window;
    if w_off.checked_add(w_len).is_none_or(|end| end > dram_len) {
        return Err(format!(
            "window [{w_off}, {w_off}+{w_len}) exceeds the {dram_len}-byte DRAM image"
        ));
    }
    for (off, bytes) in dram_inits {
        if off
            .checked_add(bytes.len() as u64)
            .is_none_or(|end| end > dram_len)
        {
            return Err(format!(
                "dram init [{off}, {off}+{}) exceeds the {dram_len}-byte DRAM image",
                bytes.len()
            ));
        }
    }
    Ok(())
}

fn handle_execute(stream: &mut TcpStream, shared: &Shared, req: ExecuteRequest) -> io::Result<()> {
    if shared.draining() {
        return send_error(stream, ErrorCode::ShuttingDown, "server is draining");
    }
    let Some(program) = shared.cache.get(req.program_id) else {
        return send_error(
            stream,
            ErrorCode::UnknownProgram,
            format!("no cached program {} — compile it first", req.program_id),
        );
    };
    if let Err(msg) = check_memory_args(&program, req.window, &req.dram_inits) {
        return send_error(stream, ErrorCode::BadRequest, msg);
    }
    let w_len = req.window.1;
    // The reply must fit one frame; refuse rather than fail mid-write.
    let reply_bound = 64 + req.argsets.len() as u64 * (32 + w_len);
    if reply_bound > MAX_FRAME_BYTES as u64 {
        return send_error(
            stream,
            ErrorCode::BadRequest,
            format!(
                "reply would be ~{reply_bound} bytes ({} instances × {w_len}-byte window), \
                 over the {MAX_FRAME_BYTES}-byte frame cap",
                req.argsets.len()
            ),
        );
    }
    let (tx, rx) = mpsc::channel();
    match shared.queue.try_submit(ExecJob {
        program,
        req,
        reply: tx,
    }) {
        Ok(()) => {}
        Err(SubmitError::Full) => {
            return send_error(
                stream,
                ErrorCode::Busy,
                format!("admission queue full ({} jobs)", shared.cfg.queue_capacity),
            )
        }
        Err(SubmitError::Closed) => {
            return send_error(stream, ErrorCode::ShuttingDown, "server is draining")
        }
    }
    match rx.recv() {
        Ok(reply) => send(stream, &Response::Executed(reply)),
        // Executor dropped the sender without replying — only possible if
        // an executor thread died; surface it instead of hanging.
        Err(_) => send_error(stream, ErrorCode::ShuttingDown, "executor unavailable"),
    }
}

/// Maps a session-table refusal onto its wire error code.
fn session_error(e: SessionError) -> (ErrorCode, &'static str) {
    match e {
        SessionError::Busy => (
            ErrorCode::Busy,
            "session table full — close a session and retry",
        ),
        SessionError::Unknown => (
            ErrorCode::UnknownSession,
            "unknown session id (never issued, or already closed)",
        ),
        SessionError::Expired => (
            ErrorCode::SessionExpired,
            "session evicted by the idle sweeper — reopen and refeed",
        ),
    }
}

fn handle_open_stream(
    stream: &mut TcpStream,
    shared: &Shared,
    req: OpenStreamRequest,
) -> io::Result<()> {
    if shared.draining() {
        return send_error(stream, ErrorCode::ShuttingDown, "server is draining");
    }
    let Some(program) = shared.cache.get(req.program_id) else {
        return send_error(
            stream,
            ErrorCode::UnknownProgram,
            format!("no cached program {} — compile it first", req.program_id),
        );
    };
    if let Err(msg) = check_memory_args(&program, req.window, &req.dram_inits) {
        return send_error(stream, ErrorCode::BadRequest, msg);
    }
    let mut instance = program.instance();
    for (off, bytes) in &req.dram_inits {
        let off = *off as usize;
        instance.graph.mem.dram[off..off + bytes.len()].copy_from_slice(bytes);
    }
    match shared.sessions.open(
        StreamInstance::new(instance, StreamExecutor::Planned),
        req.window,
    ) {
        Ok(session) => send(stream, &Response::StreamOpened { session }),
        Err(e) => {
            let (code, msg) = session_error(e);
            send_error(stream, code, msg)
        }
    }
}

fn handle_feed(
    stream: &mut TcpStream,
    shared: &Shared,
    session: u64,
    argsets: &[Vec<u32>],
) -> io::Result<()> {
    if shared.draining() {
        return send_error(stream, ErrorCode::ShuttingDown, "server is draining");
    }
    let sets: Vec<Vec<Word>> = argsets
        .iter()
        .map(|args| args.iter().map(|&a| Word(a)).collect())
        .collect();
    match shared.sessions.with(session, |s| s.stream.feed(&sets)) {
        Ok(Ok(accepted)) => send(
            stream,
            &Response::Fed {
                accepted: accepted as u64,
            },
        ),
        Ok(Err(e)) => send_error(stream, ErrorCode::BadRequest, e.to_string()),
        Err(e) => {
            let (code, msg) = session_error(e);
            send_error(stream, code, msg)
        }
    }
}

fn handle_poll(stream: &mut TcpStream, shared: &Shared, session: u64) -> io::Result<()> {
    if shared.draining() {
        return send_error(stream, ErrorCode::ShuttingDown, "server is draining");
    }
    let max_rounds = shared.cfg.max_rounds;
    let polled = shared.sessions.with(session, |s| {
        let run = s.stream.poll_obs(max_rounds, &shared.obs);
        (run, s.stream.resident_bytes())
    });
    match polled {
        Ok((Ok((tokens, status)), resident_bytes)) => send(
            stream,
            &Response::Polled(PollReply {
                tokens: tokens.iter().map(WireTok::from_ttok).collect(),
                finished: status == revet_machine::RunStatus::Finished,
                resident_bytes,
            }),
        ),
        Ok((Err(e), _)) => {
            // A machine error poisons the session; release its residency.
            let _ = shared.sessions.close(session);
            send_error(stream, ErrorCode::BadRequest, e.to_string())
        }
        Err(e) => {
            let (code, msg) = session_error(e);
            send_error(stream, code, msg)
        }
    }
}

fn handle_close_stream(stream: &mut TcpStream, shared: &Shared, session: u64) -> io::Result<()> {
    // Unlike the other streaming verbs, close works during a drain: it
    // only *releases* residency (the table may already have dropped the
    // session, in which case the client gets UnknownSession).
    let slot = match shared.sessions.close(session) {
        Ok(slot) => slot,
        Err(e) => {
            let (code, msg) = session_error(e);
            return send_error(stream, code, msg);
        }
    };
    let max_rounds = shared.cfg.max_rounds;
    let mut stream_inst = slot.stream;
    // Final poll first, so the close reply carries the tail of the sink
    // stream the client hasn't seen; finish() then just verifies a clean
    // drain and hands over the memory image.
    let tail = match stream_inst.poll_obs(max_rounds, &shared.obs) {
        Ok((tokens, _)) => tokens,
        Err(e) => return send_error(stream, ErrorCode::BadRequest, e.to_string()),
    };
    match stream_inst.finish(max_rounds) {
        Ok(outcome) => {
            let (w_off, w_len) = (slot.window.0 as usize, slot.window.1 as usize);
            shared.executed_instances.fetch_add(1, Ordering::SeqCst);
            send(
                stream,
                &Response::StreamClosed(CloseReply {
                    merged: WireReport {
                        rounds: outcome.report.rounds,
                        productive_steps: outcome.report.productive_steps,
                        steps: outcome.report.steps,
                        peak_ready: outcome.report.peak_ready,
                    },
                    tokens: tail.iter().map(WireTok::from_ttok).collect(),
                    dram: outcome.memory.dram[w_off..w_off + w_len].to_vec(),
                }),
            )
        }
        Err(e) => {
            shared.failed_instances.fetch_add(1, Ordering::SeqCst);
            send_error(stream, ErrorCode::BadRequest, e.to_string())
        }
    }
}

/// One executor: pull a job, run its batch, deliver the reply. Exits when
/// the queue is closed and drained.
fn executor_loop(shared: &Shared) {
    while let Some(job) = shared.queue.pop() {
        shared.inflight_jobs.fetch_add(1, Ordering::SeqCst);
        let reply = run_job(shared, &job);
        shared.inflight_jobs.fetch_sub(1, Ordering::SeqCst);
        // A vanished client is not an executor error.
        let _ = job.reply.send(reply);
    }
}

fn run_job(shared: &Shared, job: &ExecJob) -> ExecuteReply {
    let program: &CompiledProgram = &job.program;
    // One shared overlay set for the whole batch: every instance applies
    // the same request inputs, so the bytes are materialized exactly once.
    let dram_inits: Arc<[(usize, Vec<u8>)]> = job
        .req
        .dram_inits
        .iter()
        .map(|(off, bytes)| (*off as usize, bytes.clone()))
        .collect::<Vec<_>>()
        .into();
    let jobs: Vec<BatchJob<'_>> = job
        .req
        .argsets
        .iter()
        .map(|args| {
            BatchJob::new(program, args.iter().map(|&a| Word(a)).collect())
                .with_dram_inits(Arc::clone(&dram_inits))
        })
        .collect();
    let report = BatchRunner::new(shared.cfg.batch_threads)
        .with_max_rounds(shared.cfg.max_rounds)
        .run_obs(&jobs, &shared.obs);
    let (w_off, w_len) = (job.req.window.0 as usize, job.req.window.1 as usize);
    let merged = report.total();
    let instances: Vec<InstanceOutcome> = report
        .results
        .iter()
        .map(|r| match r {
            Ok(inst) => InstanceOutcome::Ok {
                wall_micros: inst.wall.as_micros() as u64,
                dram: inst.mem.dram[w_off..w_off + w_len].to_vec(),
            },
            Err(e) => InstanceOutcome::Err {
                message: e.to_string(),
            },
        })
        .collect();
    let ok = report.ok_count() as u64;
    shared.executed_instances.fetch_add(ok, Ordering::SeqCst);
    shared
        .failed_instances
        .fetch_add(instances.len() as u64 - ok, Ordering::SeqCst);
    ExecuteReply {
        merged: WireReport {
            rounds: merged.rounds,
            productive_steps: merged.productive_steps,
            steps: merged.steps,
            peak_ready: merged.peak_ready,
        },
        instances,
    }
}
