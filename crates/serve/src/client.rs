//! A minimal blocking client for the `revet-serve` wire protocol.
//!
//! One request in flight per connection (the protocol is strictly
//! request/reply per client); open more connections for concurrency —
//! that is exactly what the `load_gen` harness does.

use crate::protocol::{
    decode_response, encode_request, read_frame, write_frame, CloseReply, ErrorCode, ErrorFrame,
    ExecuteReply, ExecuteRequest, FrameError, MetricsInfo, OpenStreamRequest, PollReply, Request,
    Response, StatusInfo, WireDiagnostic, WireError,
};
use revet_core::{PassOptions, ProgramId};
use std::fmt;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The server's frame failed to parse/frame.
    Wire(String),
    /// The server answered with a typed error frame.
    Server(ErrorFrame),
    /// The server answered with the wrong response kind.
    Unexpected(&'static str),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport: {e}"),
            ClientError::Wire(e) => write!(f, "wire: {e}"),
            ClientError::Server(e) => write!(f, "server: {e}"),
            ClientError::Unexpected(what) => write!(f, "unexpected response kind: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl ClientError {
    /// The structured, line/col-carrying diagnostics of a server-side
    /// compile failure — `Some` exactly when the server answered
    /// `CompileFailed`. The rendered caret-snippet report is in the
    /// frame's `message`.
    pub fn compile_diagnostics(&self) -> Option<&[WireDiagnostic]> {
        match self {
            ClientError::Server(f) if f.code == ErrorCode::CompileFailed => Some(&f.details),
            _ => None,
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(e) => ClientError::Io(e),
            other => ClientError::Wire(other.to_string()),
        }
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e.to_string())
    }
}

/// Outcome of [`ServeClient::compile`].
#[derive(Clone, Copy, Debug)]
pub struct CompileOutcome {
    /// Content-addressed id to pass to [`ServeClient::execute`].
    pub program_id: ProgramId,
    /// True when the server already held this program.
    pub cached: bool,
    /// Server-side compile wall-clock (0 on a hit).
    pub compile_micros: u64,
}

/// A blocking connection to a `revet-serve` server.
#[derive(Debug)]
pub struct ServeClient {
    stream: TcpStream,
}

impl ServeClient {
    /// Connects to a running server.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<ServeClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(ServeClient { stream })
    }

    fn round_trip(&mut self, req: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, &encode_request(req))?;
        let body = read_frame(&mut self.stream)?;
        let resp = decode_response(&body)?;
        if let Response::Error(e) = resp {
            return Err(ClientError::Server(e));
        }
        Ok(resp)
    }

    /// Compiles (or resolves from cache) `source` under `options`.
    ///
    /// # Errors
    ///
    /// Typed server errors (e.g. `CompileFailed`), transport, or wire
    /// failures.
    pub fn compile(
        &mut self,
        source: &str,
        options: &PassOptions,
    ) -> Result<CompileOutcome, ClientError> {
        match self.round_trip(&Request::Compile {
            source: source.into(),
            options: options.clone(),
        })? {
            Response::Compiled {
                program_id,
                cached,
                compile_micros,
            } => Ok(CompileOutcome {
                program_id,
                cached,
                compile_micros,
            }),
            _ => Err(ClientError::Unexpected("wanted Compiled")),
        }
    }

    /// Runs a batch of instances of a cached program.
    ///
    /// # Errors
    ///
    /// Typed server errors (`UnknownProgram`, `Busy`, `BadRequest`, …),
    /// transport, or wire failures.
    pub fn execute(&mut self, req: ExecuteRequest) -> Result<ExecuteReply, ClientError> {
        match self.round_trip(&Request::Execute(req))? {
            Response::Executed(reply) => Ok(reply),
            _ => Err(ClientError::Unexpected("wanted Executed")),
        }
    }

    /// Fetches the server's cache/queue counters.
    ///
    /// # Errors
    ///
    /// Transport or wire failures.
    pub fn status(&mut self) -> Result<StatusInfo, ClientError> {
        match self.round_trip(&Request::Status)? {
            Response::Status(info) => Ok(info),
            _ => Err(ClientError::Unexpected("wanted Status")),
        }
    }

    /// Dumps the server's observability counters (execution counters plus
    /// cache/queue stats) — the monitoring scrape call.
    ///
    /// # Errors
    ///
    /// Transport or wire failures.
    pub fn metrics(&mut self) -> Result<MetricsInfo, ClientError> {
        match self.round_trip(&Request::Metrics)? {
            Response::Metrics(info) => Ok(info),
            _ => Err(ClientError::Unexpected("wanted Metrics")),
        }
    }

    /// Asks the server to begin a graceful drain.
    ///
    /// # Errors
    ///
    /// Transport or wire failures.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.round_trip(&Request::Shutdown)? {
            Response::ShutdownAck => Ok(()),
            _ => Err(ClientError::Unexpected("wanted ShutdownAck")),
        }
    }

    /// Opens a streaming session of a cached program: a resident instance
    /// the server keeps between [`ServeClient::feed`] calls. Returns the
    /// session id for subsequent streaming calls.
    ///
    /// # Errors
    ///
    /// Typed server errors (`UnknownProgram`, `Busy`, `BadRequest`, …),
    /// transport, or wire failures.
    pub fn open_stream(&mut self, req: OpenStreamRequest) -> Result<u64, ClientError> {
        match self.round_trip(&Request::OpenStream(req))? {
            Response::StreamOpened { session } => Ok(session),
            _ => Err(ClientError::Unexpected("wanted StreamOpened")),
        }
    }

    /// Appends `main` argument sets to an open session; returns how many
    /// the session accepted (poll and resend the rest if fewer).
    ///
    /// # Errors
    ///
    /// Typed server errors (`UnknownSession`, `SessionExpired`, …),
    /// transport, or wire failures.
    pub fn feed(&mut self, session: u64, argsets: Vec<Vec<u32>>) -> Result<u64, ClientError> {
        match self.round_trip(&Request::Feed { session, argsets })? {
            Response::Fed { accepted } => Ok(accepted),
            _ => Err(ClientError::Unexpected("wanted Fed")),
        }
    }

    /// Runs an open session to quiescence; the reply carries the sink
    /// tokens produced since the previous poll.
    ///
    /// # Errors
    ///
    /// Typed server errors (`UnknownSession`, `SessionExpired`, …),
    /// transport, or wire failures.
    pub fn poll(&mut self, session: u64) -> Result<PollReply, ClientError> {
        match self.round_trip(&Request::Poll { session })? {
            Response::Polled(reply) => Ok(reply),
            _ => Err(ClientError::Unexpected("wanted Polled")),
        }
    }

    /// Closes a session: final drain, merged execution report, and the
    /// DRAM window requested at open.
    ///
    /// # Errors
    ///
    /// Typed server errors (`UnknownSession`, `SessionExpired`, and
    /// `BadRequest` carrying the deadlock diagnosis when the session
    /// holds unconsumed input), transport, or wire failures.
    pub fn close_stream(&mut self, session: u64) -> Result<CloseReply, ClientError> {
        match self.round_trip(&Request::CloseStream { session })? {
            Response::StreamClosed(reply) => Ok(reply),
            _ => Err(ClientError::Unexpected("wanted StreamClosed")),
        }
    }

    /// Sends a raw pre-encoded frame body and returns the raw reply body
    /// — the hook protocol tests use to probe malformed input.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn raw_round_trip(&mut self, body: &[u8]) -> Result<Vec<u8>, ClientError> {
        write_frame(&mut self.stream, body)?;
        Ok(read_frame(&mut self.stream)?)
    }
}
