//! End-to-end service tests: one server process, concurrent clients,
//! mixed compile+execute over real evaluation apps, results pinned
//! bit-identical to the direct `run_batch_sequential` oracle, and a
//! graceful shutdown that drains in-flight work.

use revet_apps::{app, App, DRAM_BYTES};
use revet_core::{PassOptions, ProgramId};
use revet_serve::protocol::{ErrorCode, ExecuteRequest, InstanceOutcome, WireDiagnostic};
use revet_serve::{ClientError, ServeClient, ServeConfig, Server};
use revet_sltf::Word;
use std::time::{Duration, Instant};

const OUTER: u32 = 2;
const SCALE: usize = 8;
const SEED: u64 = 0xE2E;

/// The apps the mixed workload covers (≥ 3 of the eight).
const APP_NAMES: [&str; 3] = ["murmur3", "ip2int", "isipv4"];

/// Everything a client needs to compile+execute one app remotely, plus
/// the local oracle for bit-identity checking.
struct RemoteApp {
    source: String,
    options: PassOptions,
    argsets: Vec<Vec<u32>>,
    dram_inits: Vec<(u64, Vec<u8>)>,
    window: (u64, u64),
    /// Per-instance oracle: the window bytes a sequential local run of
    /// the same compile produces.
    oracle_window: Vec<u8>,
}

fn remote_app(name: &str, instances: usize) -> RemoteApp {
    let a: App = app(name).expect("registered app");
    let options = PassOptions {
        dram_bytes: DRAM_BYTES,
        ..PassOptions::default()
    };
    let source = (a.source)(OUTER);
    let w = (a.workload)(SCALE, SEED);
    let slice = DRAM_BYTES / a.dram_symbols();
    let dram_inits: Vec<(u64, Vec<u8>)> = w
        .inits
        .iter()
        .map(|(sym, bytes)| ((sym * slice) as u64, bytes.clone()))
        .collect();
    let window = ((w.out_sym * slice) as u64, w.expected.len() as u64);
    let argsets: Vec<Vec<u32>> = (0..instances).map(|_| w.args.clone()).collect();

    // Oracle: the same compile driven directly through the library's
    // sequential batch path, with the workload loaded the classic way.
    let mut program = a.compile(OUTER, &options).expect("oracle compile");
    a.load(&mut program, &w);
    let args: Vec<Word> = w.args.iter().map(|&x| Word(x)).collect();
    let batch = program
        .run_batch_sequential(&[args], 200_000_000)
        .expect("oracle run");
    let (w_off, w_len) = (window.0 as usize, window.1 as usize);
    let oracle_window = batch[0].1.dram[w_off..w_off + w_len].to_vec();
    // The oracle must itself be right before we pin the server to it.
    assert_eq!(oracle_window, w.expected, "{name}: oracle diverges");

    RemoteApp {
        source,
        options,
        argsets,
        dram_inits,
        window,
        oracle_window,
    }
}

/// One client's session: compile all apps, execute each, validate every
/// instance bit-identical to the oracle. Returns how many compiles were
/// served from cache.
fn client_session(addr: std::net::SocketAddr, apps: &[RemoteApp]) -> u64 {
    let mut client = ServeClient::connect(addr).expect("connect");
    let mut cache_hits = 0;
    for ra in apps {
        let compiled = client.compile(&ra.source, &ra.options).expect("compile");
        assert_eq!(
            compiled.program_id,
            ProgramId::of(&ra.source, &ra.options),
            "server and client must agree on the content address"
        );
        if compiled.cached {
            cache_hits += 1;
        }
        let reply = client
            .execute(ExecuteRequest {
                program_id: compiled.program_id,
                argsets: ra.argsets.clone(),
                dram_inits: ra.dram_inits.clone(),
                window: ra.window,
            })
            .expect("execute");
        assert_eq!(reply.instances.len(), ra.argsets.len());
        assert!(reply.merged.productive_steps > 0);
        for (i, inst) in reply.instances.iter().enumerate() {
            match inst {
                InstanceOutcome::Ok {
                    dram,
                    wall_micros: _,
                } => {
                    assert_eq!(
                        dram, &ra.oracle_window,
                        "instance {i}: served result differs from run_batch_sequential oracle"
                    );
                }
                InstanceOutcome::Err { message } => panic!("instance {i} failed: {message}"),
            }
        }
    }
    cache_hits
}

#[test]
fn concurrent_clients_mixed_apps_cache_hits_and_oracle_identity() {
    let apps: Vec<RemoteApp> = APP_NAMES.iter().map(|n| remote_app(n, 2)).collect();
    let server = Server::spawn(ServeConfig::default()).expect("spawn");
    let addr = server.local_addr();

    // Two concurrent clients compile and execute the same mixed workload:
    // between them every source is requested twice, so single-flight +
    // content addressing must produce cache hits.
    let total_hits: u64 = std::thread::scope(|s| {
        let handles: Vec<_> = (0..2)
            .map(|_| s.spawn(|| client_session(addr, &apps)))
            .collect();
        handles.into_iter().map(|h| h.join().expect("client")).sum()
    });

    let status = ServeClient::connect(addr)
        .expect("connect")
        .status()
        .expect("status");
    assert!(
        status.cache_hits > 0,
        "repeated sources must hit the cache (status: {status:?})"
    );
    // Each app is compiled by both clients; single-flight + content
    // addressing means exactly one of the two observes a cached compile.
    assert_eq!(total_hits, APP_NAMES.len() as u64);
    // The server-side hit counter additionally counts the execute-path
    // program lookups (2 clients × 3 apps), all of which must have hit.
    assert_eq!(status.cache_hits, total_hits + 6);
    assert_eq!(status.cache_misses, APP_NAMES.len() as u64);
    assert_eq!(status.programs_cached, APP_NAMES.len() as u64);
    assert_eq!(status.failed_instances, 0);
    // 2 clients × 3 apps × 2 instances.
    assert_eq!(status.executed_instances, 12);
    assert!(!status.draining);

    // The Metrics frame mirrors the same run through the server's obs
    // sink: 12 completed instances, real dispatch work, cache counters
    // consistent with Status, names sorted for stable scraping.
    let metrics = ServeClient::connect(addr)
        .expect("connect")
        .metrics()
        .expect("metrics");
    assert_eq!(metrics.get("exec.instances"), Some(12));
    assert!(metrics.get("exec.dispatches").unwrap() > 0);
    assert_eq!(metrics.get("serve.cache.hits"), Some(status.cache_hits));
    assert_eq!(metrics.get("serve.executed_instances"), Some(12));
    assert_eq!(metrics.status.executed_instances, 12);
    assert!(metrics.counters.windows(2).all(|w| w[0].0 <= w[1].0));

    let stats = server.shutdown();
    assert_eq!(stats.executed_instances, 12);
    assert_eq!(stats.failed_instances, 0);
}

#[test]
fn graceful_shutdown_drains_in_flight_work_without_error_frames() {
    // Single executor, so the second job is guaranteed to still be
    // *queued* (not just running) when the drain begins.
    let server = Server::spawn(ServeConfig {
        executor_threads: 1,
        batch_threads: 1,
        ..ServeConfig::default()
    })
    .expect("spawn");
    let addr = server.local_addr();

    // A deliberately slow program: per instance, n nested-loop iterations.
    let source = "dram<u32> output;
         void main(u32 n) {
             foreach (n) { u32 i =>
                 u32 acc = 0;
                 u32 j = 0;
                 while (j <= i) { acc = acc + j; j = j + 1; };
                 output[i] = acc;
             };
         }";
    let options = PassOptions {
        dram_bytes: 1 << 16,
        ..PassOptions::default()
    };
    let program_id = ServeClient::connect(addr)
        .expect("connect")
        .compile(source, &options)
        .expect("compile")
        .program_id;

    // Two clients each submit a multi-instance batch, then the server is
    // shut down while that work is in flight. Both must still receive
    // complete, successful replies — drained, not dropped.
    let clients: Vec<std::thread::JoinHandle<()>> = (0..2)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = ServeClient::connect(addr).expect("connect");
                let reply = client
                    .execute(ExecuteRequest {
                        program_id,
                        argsets: (0..4).map(|_| vec![96u32]).collect(),
                        dram_inits: vec![],
                        window: (0, 16),
                    })
                    .expect("in-flight execute must be drained, not refused");
                assert_eq!(reply.instances.len(), 4);
                for inst in &reply.instances {
                    let InstanceOutcome::Ok { dram, .. } = inst else {
                        panic!("drained instance must succeed, got {inst:?}");
                    };
                    // output[3] = 0+1+2+3.
                    assert_eq!(&dram[12..16], &6u32.to_le_bytes());
                }
            })
        })
        .collect();

    // Wait until the work is genuinely in flight, then pull the plug.
    let mut status_client = ServeClient::connect(addr).expect("connect");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let status = status_client.status().expect("status");
        if status.inflight_jobs + status.queued_jobs > 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "execute jobs never showed up as in flight"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    let stats = server.shutdown();

    for c in clients {
        c.join().expect("client thread");
    }
    assert_eq!(stats.executed_instances, 8, "all 8 instances drained");
    assert_eq!(stats.failed_instances, 0);
}

#[test]
fn typed_errors_for_bad_compile_unknown_program_and_malformed_frames() {
    let server = Server::spawn(ServeConfig::default()).expect("spawn");
    let mut client = ServeClient::connect(server.local_addr()).expect("connect");
    let options = PassOptions {
        dram_bytes: 1 << 12,
        ..PassOptions::default()
    };

    // Failing compile → CompileFailed, connection survives.
    let err = client.compile("void main( {", &options).unwrap_err();
    let ClientError::Server(frame) = err else {
        panic!("wanted a typed server error, got {err}")
    };
    assert_eq!(frame.code, ErrorCode::CompileFailed);

    // Unknown program id → UnknownProgram, connection survives.
    let err = client
        .execute(ExecuteRequest {
            program_id: ProgramId([0xAB; 16]),
            argsets: vec![vec![1]],
            dram_inits: vec![],
            window: (0, 0),
        })
        .unwrap_err();
    let ClientError::Server(frame) = err else {
        panic!("wanted a typed server error, got {err}")
    };
    assert_eq!(frame.code, ErrorCode::UnknownProgram);

    // Malformed body (unknown kind byte) → Malformed, connection survives.
    let reply = client
        .raw_round_trip(&[revet_serve::protocol::WIRE_VERSION, 0x55])
        .expect("reply");
    let resp = revet_serve::protocol::decode_response(&reply).expect("decodable");
    let revet_serve::protocol::Response::Error(frame) = resp else {
        panic!("wanted an error frame, got {resp:?}")
    };
    assert_eq!(frame.code, ErrorCode::Malformed);

    // Wrong version byte (a v1 peer, say) → UnsupportedVersion,
    // connection survives.
    let reply = client.raw_round_trip(&[1u8, 0x03]).expect("reply");
    let resp = revet_serve::protocol::decode_response(&reply).expect("decodable");
    let revet_serve::protocol::Response::Error(frame) = resp else {
        panic!("wanted an error frame, got {resp:?}")
    };
    assert_eq!(frame.code, ErrorCode::UnsupportedVersion);

    // The same connection still does real work afterwards: nothing was
    // poisoned by the failures above.
    let compiled = client
        .compile(
            "dram<u32> output; void main(u32 n) { foreach (n) { u32 i => output[i] = i; }; }",
            &options,
        )
        .expect("healthy compile after errors");
    let reply = client
        .execute(ExecuteRequest {
            program_id: compiled.program_id,
            argsets: vec![vec![3]],
            dram_inits: vec![],
            window: (0, 12),
        })
        .expect("healthy execute after errors");
    let InstanceOutcome::Ok { dram, .. } = &reply.instances[0] else {
        panic!("instance failed")
    };
    assert_eq!(&dram[8..12], &2u32.to_le_bytes());

    // Backpressure surfaces as Busy, not as a hang: a zero-capacity-ish
    // queue is not constructible (min 1), so just check Status round-trips
    // and the server shuts down cleanly with accurate counters.
    let status = client.status().expect("status");
    assert_eq!(status.executed_instances, 1);
    server.shutdown();
}

#[test]
fn structured_compile_failed_frame_carries_line_and_col() {
    let server = Server::spawn(ServeConfig::default()).expect("spawn");
    let mut client = ServeClient::connect(server.local_addr()).expect("connect");

    // Two independent syntax errors (lines 2 and 3): parser recovery must
    // surface both in one round trip, machine-readably.
    let source = "void main() {\n  u32 a = ;\n  u32 b = 1 +;\n}";
    let err = client.compile(source, &PassOptions::default()).unwrap_err();

    let details = err
        .compile_diagnostics()
        .expect("structured CompileFailed payload")
        .to_vec();
    assert_eq!(details.len(), 2, "{details:?}");
    assert_eq!(details[0].code, "E0103");
    assert_eq!((details[0].line, details[0].col), (2, 11));
    assert_eq!(details[1].code, "E0103");
    assert_eq!((details[1].line, details[1].col), (3, 14));
    assert!(details
        .iter()
        .all(|d| d.severity == WireDiagnostic::SEVERITY_ERROR));

    // The frame's message is the full rendered report, caret snippets
    // included — a dumb client can print it verbatim.
    let ClientError::Server(frame) = err else {
        panic!("wanted a typed server error")
    };
    assert!(
        frame.message.contains("--> <input>:2:11"),
        "{}",
        frame.message
    );
    assert!(frame.message.contains("u32 a = ;"), "{}", frame.message);
    assert!(frame.message.contains('^'), "{}", frame.message);

    // The connection survives the failure and still does real work.
    client
        .compile(
            "dram<u32> output; void main(u32 n) { foreach (n) { u32 i => output[i] = i; }; }",
            &PassOptions::default(),
        )
        .expect("healthy compile after structured failure");
    client.shutdown().expect("shutdown ack");
    server.shutdown();
}

/// One source compiled at two opt levels must get two distinct cache
/// entries — different `ProgramId`s, independent compiles, and executes
/// routed to the right program — with results identical across levels.
#[test]
fn two_opt_levels_of_one_source_do_not_cross_contaminate() {
    let name = APP_NAMES[0];
    let base = remote_app(name, 2);
    let o0 = RemoteApp {
        options: PassOptions {
            opt_level: 0,
            ..base.options.clone()
        },
        ..remote_app(name, 2)
    };
    let o2 = RemoteApp {
        options: PassOptions {
            opt_level: 2,
            ..base.options.clone()
        },
        ..remote_app(name, 2)
    };
    assert_eq!(o0.source, o2.source);
    let id0 = ProgramId::of(&o0.source, &o0.options);
    let id2 = ProgramId::of(&o2.source, &o2.options);
    assert_ne!(id0, id2, "opt level must feed the content address");

    let server = Server::spawn(ServeConfig::default()).expect("spawn");
    let addr = server.local_addr();

    // Both levels compile fresh; re-compiling each hits its own entry.
    client_session(addr, &[o0, o2]);
    let hits = client_session(
        addr,
        &[
            RemoteApp {
                options: PassOptions {
                    opt_level: 0,
                    ..base.options.clone()
                },
                ..remote_app(name, 2)
            },
            RemoteApp {
                options: PassOptions {
                    opt_level: 2,
                    ..base.options.clone()
                },
                ..remote_app(name, 2)
            },
        ],
    );
    assert_eq!(hits, 2, "second round must be served from cache");

    let status = ServeClient::connect(addr)
        .expect("connect")
        .status()
        .expect("status");
    assert_eq!(
        status.programs_cached, 2,
        "each opt level owns its own cache slot"
    );
    assert_eq!(status.cache_misses, 2);
    assert_eq!(status.failed_instances, 0);
    server.shutdown();
}
