//! Streaming-session end-to-end tests over live TCP: a resident session
//! fed in chunks must be bit-identical to one-shot execution, idle
//! sessions must be evicted with the typed `SessionExpired` error, the
//! table's capacity must answer `Busy`, and a drain with resident
//! sessions must complete cleanly.

use revet_apps::{app, App, DRAM_BYTES};
use revet_core::PassOptions;
use revet_serve::protocol::{ErrorCode, ExecuteRequest, InstanceOutcome, OpenStreamRequest};
use revet_serve::{ClientError, ServeClient, ServeConfig, Server};
use std::time::Duration;

const OUTER: u32 = 2;
const SCALE: usize = 8;
const SEED: u64 = 0x57E4;
const CHUNKS: usize = 4;

/// Everything a client needs to stream one app remotely, plus the
/// expected output window from the app's own workload oracle.
struct RemoteApp {
    source: String,
    options: PassOptions,
    args: Vec<u32>,
    dram_inits: Vec<(u64, Vec<u8>)>,
    window: (u64, u64),
    expected: Vec<u8>,
}

fn remote_app(name: &str) -> RemoteApp {
    let a: App = app(name).expect("registered app");
    let options = PassOptions {
        dram_bytes: DRAM_BYTES,
        ..PassOptions::default()
    };
    let w = (a.workload)(SCALE, SEED);
    let slice = DRAM_BYTES / a.dram_symbols();
    RemoteApp {
        source: (a.source)(OUTER),
        options,
        args: w.args.clone(),
        dram_inits: w
            .inits
            .iter()
            .map(|(sym, bytes)| ((sym * slice) as u64, bytes.clone()))
            .collect(),
        window: ((w.out_sym * slice) as u64, w.expected.len() as u64),
        expected: w.expected,
    }
}

fn expect_code(err: ClientError, code: ErrorCode) {
    match err {
        ClientError::Server(frame) => assert_eq!(frame.code, code, "{frame}"),
        other => panic!("wanted a typed {code:?} server error, got {other}"),
    }
}

/// The acceptance path: one app fed as four chunks through a streaming
/// session is bit-identical to one-shot `Execute` of the same input, and
/// both match the workload oracle. Session counters are visible in
/// `Status` and `Metrics` while the session is resident.
#[test]
fn chunked_streaming_session_matches_one_shot_execute() {
    let ra = remote_app("murmur3");
    let server = Server::spawn(ServeConfig::default()).expect("spawn");
    let mut client = ServeClient::connect(server.local_addr()).expect("connect");

    let program_id = client
        .compile(&ra.source, &ra.options)
        .expect("compile")
        .program_id;

    // One-shot reference over the same wire: a single instance, all input
    // up front. (The apps' DRAM writes are idempotent, so K identical
    // argsets leave the same image as one — the session feeds the same
    // argset CHUNKS times.)
    let reply = client
        .execute(ExecuteRequest {
            program_id,
            argsets: vec![ra.args.clone()],
            dram_inits: ra.dram_inits.clone(),
            window: ra.window,
        })
        .expect("one-shot execute");
    let InstanceOutcome::Ok { dram: oneshot, .. } = &reply.instances[0] else {
        panic!("one-shot instance failed: {:?}", reply.instances[0]);
    };
    assert_eq!(oneshot, &ra.expected, "one-shot diverges from the oracle");

    let session = client
        .open_stream(OpenStreamRequest {
            program_id,
            dram_inits: ra.dram_inits.clone(),
            window: ra.window,
        })
        .expect("open stream");

    for chunk in 0..CHUNKS {
        let accepted = client.feed(session, vec![ra.args.clone()]).expect("feed");
        assert_eq!(accepted, 1, "chunk {chunk} not accepted");
        if chunk == 0 {
            // Between feed and poll the argset sits in the entry channel:
            // the session's residency is visible in Status and Metrics.
            let status = client.status().expect("status");
            assert_eq!(status.open_sessions, 1);
            assert!(
                status.session_resident_bytes > 0,
                "fed input must count as resident ({status:?})"
            );
            let metrics = client.metrics().expect("metrics");
            assert_eq!(metrics.get("serve.sessions.open"), Some(1));
            assert!(metrics.get("serve.sessions.resident_bytes").unwrap() > 0);
        }
        let poll = client.poll(session).expect("poll");
        assert!(poll.finished, "chunk {chunk} left tokens in flight");
    }

    let close = client.close_stream(session).expect("close");
    assert_eq!(
        &close.dram, oneshot,
        "chunked session DRAM differs from one-shot execute"
    );
    assert_eq!(close.dram, ra.expected, "session diverges from the oracle");
    assert!(close.merged.productive_steps > 0, "report accumulated");

    // The id is gone: double-close answers the typed UnknownSession.
    expect_code(
        client.close_stream(session).unwrap_err(),
        ErrorCode::UnknownSession,
    );
    // As does an id the server never issued.
    expect_code(client.poll(0xDEAD).unwrap_err(), ErrorCode::UnknownSession);

    let status = client.status().expect("status");
    assert_eq!(status.open_sessions, 0);
    server.shutdown();
}

/// Idle sessions are provably evicted: the sweeper drops a session past
/// its idle deadline, later touches answer the typed `SessionExpired`
/// error, and the eviction shows up in the counters.
#[test]
fn idle_sessions_are_evicted_with_typed_session_expired() {
    let ra = remote_app("ip2int");
    let server = Server::spawn(ServeConfig {
        session_idle_timeout: Duration::from_millis(100),
        ..ServeConfig::default()
    })
    .expect("spawn");
    let mut client = ServeClient::connect(server.local_addr()).expect("connect");

    let program_id = client
        .compile(&ra.source, &ra.options)
        .expect("compile")
        .program_id;
    let session = client
        .open_stream(OpenStreamRequest {
            program_id,
            dram_inits: ra.dram_inits.clone(),
            window: ra.window,
        })
        .expect("open stream");
    client.feed(session, vec![ra.args.clone()]).expect("feed");

    // Sit idle well past deadline + sweep period.
    std::thread::sleep(Duration::from_millis(400));

    expect_code(client.poll(session).unwrap_err(), ErrorCode::SessionExpired);
    expect_code(
        client.feed(session, vec![ra.args.clone()]).unwrap_err(),
        ErrorCode::SessionExpired,
    );
    expect_code(
        client.close_stream(session).unwrap_err(),
        ErrorCode::SessionExpired,
    );

    let status = client.status().expect("status");
    assert_eq!(status.open_sessions, 0);
    assert_eq!(status.evicted_sessions, 1);
    let metrics = client.metrics().expect("metrics");
    assert_eq!(metrics.get("serve.sessions.evicted"), Some(1));
    server.shutdown();
}

/// The session table is bounded: opens beyond capacity answer `Busy`,
/// and closing a session frees its slot.
#[test]
fn session_capacity_answers_busy_and_close_frees_a_slot() {
    let ra = remote_app("isipv4");
    let server = Server::spawn(ServeConfig {
        session_capacity: 2,
        ..ServeConfig::default()
    })
    .expect("spawn");
    let mut client = ServeClient::connect(server.local_addr()).expect("connect");

    let program_id = client
        .compile(&ra.source, &ra.options)
        .expect("compile")
        .program_id;
    let open = |client: &mut ServeClient| {
        client.open_stream(OpenStreamRequest {
            program_id,
            dram_inits: ra.dram_inits.clone(),
            window: (0, 0),
        })
    };

    let a = open(&mut client).expect("first open");
    let _b = open(&mut client).expect("second open");
    expect_code(open(&mut client).unwrap_err(), ErrorCode::Busy);

    client.close_stream(a).expect("close");
    open(&mut client).expect("slot freed by close");
    assert_eq!(client.status().expect("status").open_sessions, 2);
    server.shutdown();
}

/// Graceful drain with resident sessions: shutdown completes without
/// hanging, and streaming requests during the drain are refused with
/// `ShuttingDown` rather than left dangling.
#[test]
fn drain_drops_resident_sessions_cleanly() {
    let ra = remote_app("murmur3");
    let server = Server::spawn(ServeConfig::default()).expect("spawn");
    let mut client = ServeClient::connect(server.local_addr()).expect("connect");

    let program_id = client
        .compile(&ra.source, &ra.options)
        .expect("compile")
        .program_id;
    for _ in 0..3 {
        let session = client
            .open_stream(OpenStreamRequest {
                program_id,
                dram_inits: ra.dram_inits.clone(),
                window: ra.window,
            })
            .expect("open stream");
        client.feed(session, vec![ra.args.clone()]).expect("feed");
    }
    assert_eq!(client.status().expect("status").open_sessions, 3);

    // Drain with all three sessions resident (and fed): must not hang.
    server.shutdown();
}
