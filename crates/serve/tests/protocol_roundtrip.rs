//! Wire-protocol property tests: every encodable frame decodes back to
//! itself, and every malformed frame is rejected with a typed error —
//! truncation at *any* byte, oversized length prefixes, wrong version
//! bytes, trailing garbage.

use proptest::prelude::*;
use proptest::test_runner::TestRunner;
use revet_core::{PassOptions, ProgramId};
use revet_serve::protocol::{
    decode_request, decode_response, encode_request, encode_response, read_frame, write_frame,
    CloseReply, ErrorCode, ErrorFrame, ExecuteReply, ExecuteRequest, FrameError, InstanceOutcome,
    MetricsInfo, OpenStreamRequest, PollReply, Request, Response, StatusInfo, WireDiagnostic,
    WireError, WireReport, WireTok, MAX_FRAME_BYTES, WIRE_VERSION,
};

// ---------------------------------------------------------------------------
// Strategies (manual composites over the stand-in's primitives)

fn gen_options(r: &mut TestRunner) -> PassOptions {
    let flag = |r: &mut TestRunner| (0u8..2).generate(r) == 1;
    PassOptions {
        if_to_select: flag(r),
        fuse_allocators: flag(r),
        hoist_allocators: flag(r),
        bufferize_replicate: flag(r),
        pack_subwords: flag(r),
        eliminate_hierarchy: flag(r),
        opt_level: (0u8..3).generate(r),
        threads: flag(r).then(|| (1u32..256).generate(r)),
        dram_bytes: (64usize..(1 << 24)).generate(r),
    }
}

fn gen_status(r: &mut TestRunner) -> StatusInfo {
    StatusInfo {
        programs_cached: any::<u64>().generate(r),
        cache_capacity: any::<u64>().generate(r),
        cache_hits: any::<u64>().generate(r),
        cache_misses: any::<u64>().generate(r),
        cache_evictions: any::<u64>().generate(r),
        queued_jobs: any::<u64>().generate(r),
        inflight_jobs: any::<u64>().generate(r),
        executed_instances: any::<u64>().generate(r),
        failed_instances: any::<u64>().generate(r),
        open_sessions: any::<u64>().generate(r),
        evicted_sessions: any::<u64>().generate(r),
        session_resident_bytes: any::<u64>().generate(r),
        draining: (0u8..2).generate(r) == 1,
    }
}

fn gen_report(r: &mut TestRunner) -> WireReport {
    WireReport {
        rounds: any::<u64>().generate(r),
        productive_steps: any::<u64>().generate(r),
        steps: any::<u64>().generate(r),
        peak_ready: any::<u64>().generate(r),
    }
}

fn gen_toks(r: &mut TestRunner) -> Vec<WireTok> {
    (0..(0usize..6).generate(r))
        .map(|_| {
            if (0u8..2).generate(r) == 0 {
                WireTok::Data(prop::collection::vec(any::<u32>(), 0..4).generate(r))
            } else {
                WireTok::Barrier((1u8..=15).generate(r))
            }
        })
        .collect()
}

fn gen_id(r: &mut TestRunner) -> ProgramId {
    let mut bytes = [0u8; 16];
    for b in &mut bytes {
        *b = (0u8..=255).generate(r);
    }
    ProgramId(bytes)
}

fn gen_blob(r: &mut TestRunner, max: usize) -> Vec<u8> {
    prop::collection::vec(0u8..=255, 0..max).generate(r)
}

fn gen_string(r: &mut TestRunner, max: usize) -> String {
    // Printable ASCII keeps this a valid utf-8 wire string.
    prop::collection::vec(0x20u8..0x7F, 0..max)
        .generate(r)
        .into_iter()
        .map(char::from)
        .collect()
}

/// Full-domain random requests.
struct ArbRequest;

impl Strategy for ArbRequest {
    type Value = Request;
    fn generate(&self, r: &mut TestRunner) -> Request {
        match (0u8..9).generate(r) {
            0 => Request::Compile {
                source: gen_string(r, 200),
                options: gen_options(r),
            },
            1 => Request::Execute(ExecuteRequest {
                program_id: gen_id(r),
                argsets: prop::collection::vec(
                    prop::collection::vec(any::<u32>(), 0..5).boxed(),
                    0..6,
                )
                .generate(r),
                dram_inits: (0..(0usize..4).generate(r))
                    .map(|_| ((0u64..1 << 32).generate(r), gen_blob(r, 64)))
                    .collect(),
                window: ((0u64..1 << 32).generate(r), (0u64..1 << 20).generate(r)),
            }),
            2 => Request::Status,
            3 => Request::Metrics,
            4 => Request::OpenStream(OpenStreamRequest {
                program_id: gen_id(r),
                dram_inits: (0..(0usize..4).generate(r))
                    .map(|_| ((0u64..1 << 32).generate(r), gen_blob(r, 64)))
                    .collect(),
                window: ((0u64..1 << 32).generate(r), (0u64..1 << 20).generate(r)),
            }),
            5 => Request::Feed {
                session: any::<u64>().generate(r),
                argsets: prop::collection::vec(
                    prop::collection::vec(any::<u32>(), 0..5).boxed(),
                    0..6,
                )
                .generate(r),
            },
            6 => Request::Poll {
                session: any::<u64>().generate(r),
            },
            7 => Request::CloseStream {
                session: any::<u64>().generate(r),
            },
            _ => Request::Shutdown,
        }
    }
}

/// Full-domain random responses.
struct ArbResponse;

impl Strategy for ArbResponse {
    type Value = Response;
    fn generate(&self, r: &mut TestRunner) -> Response {
        match (0u8..10).generate(r) {
            0 => Response::Compiled {
                program_id: gen_id(r),
                cached: (0u8..2).generate(r) == 1,
                compile_micros: any::<u64>().generate(r),
            },
            1 => Response::Executed(ExecuteReply {
                merged: gen_report(r),
                instances: (0..(0usize..5).generate(r))
                    .map(|_| {
                        if (0u8..2).generate(r) == 0 {
                            InstanceOutcome::Ok {
                                wall_micros: any::<u64>().generate(r),
                                dram: gen_blob(r, 128),
                            }
                        } else {
                            InstanceOutcome::Err {
                                message: gen_string(r, 80),
                            }
                        }
                    })
                    .collect(),
            }),
            2 => Response::Status(gen_status(r)),
            3 => Response::Metrics(MetricsInfo {
                counters: (0..(0usize..6).generate(r))
                    .map(|_| (gen_string(r, 24), any::<u64>().generate(r)))
                    .collect(),
                status: gen_status(r),
            }),
            4 => Response::StreamOpened {
                session: any::<u64>().generate(r),
            },
            5 => Response::Fed {
                accepted: any::<u64>().generate(r),
            },
            6 => Response::Polled(PollReply {
                tokens: gen_toks(r),
                finished: (0u8..2).generate(r) == 1,
                resident_bytes: any::<u64>().generate(r),
            }),
            7 => Response::StreamClosed(CloseReply {
                merged: gen_report(r),
                tokens: gen_toks(r),
                dram: gen_blob(r, 128),
            }),
            8 => Response::Error(
                ErrorFrame::new(
                    match (0u8..10).generate(r) {
                        0 => ErrorCode::Malformed,
                        1 => ErrorCode::UnsupportedVersion,
                        2 => ErrorCode::FrameTooLarge,
                        3 => ErrorCode::CompileFailed,
                        4 => ErrorCode::UnknownProgram,
                        5 => ErrorCode::Busy,
                        6 => ErrorCode::BadRequest,
                        7 => ErrorCode::UnknownSession,
                        8 => ErrorCode::SessionExpired,
                        _ => ErrorCode::ShuttingDown,
                    },
                    gen_string(r, 80),
                )
                .with_details(
                    (0..(0usize..4).generate(r))
                        .map(|_| WireDiagnostic {
                            code: gen_string(r, 8),
                            severity: (0u8..3).generate(r),
                            line: any::<u32>().generate(r),
                            col: any::<u32>().generate(r),
                            message: gen_string(r, 60),
                        })
                        .collect(),
                ),
            ),
            _ => Response::ShutdownAck,
        }
    }
}

// ---------------------------------------------------------------------------
// Round-trip properties

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn request_encode_decode_round_trips(req in ArbRequest) {
        let body = encode_request(&req);
        prop_assert_eq!(decode_request(&body).unwrap(), req);
    }

    #[test]
    fn response_encode_decode_round_trips(resp in ArbResponse) {
        let body = encode_response(&resp);
        prop_assert_eq!(decode_response(&body).unwrap(), resp);
    }

    #[test]
    fn any_truncation_of_a_request_is_rejected(req in ArbRequest) {
        let body = encode_request(&req);
        for cut in 0..body.len() {
            let res = decode_request(&body[..cut]);
            prop_assert!(
                res.is_err(),
                "decoding the first {} of {} bytes should fail, got {:?}",
                cut, body.len(), res
            );
        }
    }

    #[test]
    fn trailing_garbage_is_rejected(req in ArbRequest, extra in 1usize..5) {
        let mut body = encode_request(&req);
        body.extend(std::iter::repeat_n(0xAAu8, extra));
        prop_assert_eq!(decode_request(&body), Err(WireError::TrailingBytes(extra)));
    }

    #[test]
    fn frame_io_round_trips(req in ArbRequest) {
        let body = encode_request(&req);
        let mut wire = Vec::new();
        write_frame(&mut wire, &body).unwrap();
        let mut cursor = std::io::Cursor::new(&wire);
        prop_assert_eq!(read_frame(&mut cursor).unwrap(), body);
        // Cutting the stream anywhere mid-frame is an io error, never a
        // bogus successful frame.
        for cut in 0..wire.len() {
            let mut cursor = std::io::Cursor::new(&wire[..cut]);
            prop_assert!(matches!(
                read_frame(&mut cursor),
                Err(FrameError::Io(_)) | Err(FrameError::TooShort(_))
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// Fixed rejection cases

#[test]
fn oversized_length_prefix_is_rejected_before_allocation() {
    for len in [MAX_FRAME_BYTES + 1, u32::MAX] {
        let mut wire = len.to_le_bytes().to_vec();
        wire.extend_from_slice(&[0u8; 16]);
        match read_frame(&mut std::io::Cursor::new(wire)) {
            Err(FrameError::TooLarge(got)) => assert_eq!(got, len),
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }
}

#[test]
fn undersized_length_prefix_is_rejected() {
    for len in [0u32, 1] {
        let wire = len.to_le_bytes().to_vec();
        match read_frame(&mut std::io::Cursor::new(wire)) {
            Err(FrameError::TooShort(got)) => assert_eq!(got, len),
            other => panic!("expected TooShort, got {other:?}"),
        }
    }
}

#[test]
fn wrong_version_byte_is_rejected_with_the_version() {
    let mut body = encode_request(&Request::Status);
    for bad in [0u8, WIRE_VERSION + 1, 0xFF] {
        body[0] = bad;
        assert_eq!(
            decode_request(&body),
            Err(WireError::UnsupportedVersion(bad))
        );
        assert_eq!(
            decode_response(&body),
            Err(WireError::UnsupportedVersion(bad))
        );
    }
}

#[test]
fn unknown_kind_bytes_are_rejected() {
    let body = vec![WIRE_VERSION, 0x60];
    assert_eq!(decode_request(&body), Err(WireError::UnknownKind(0x60)));
    assert_eq!(decode_response(&body), Err(WireError::UnknownKind(0x60)));
}

#[test]
fn oversized_body_refused_at_write_time() {
    let body = vec![0u8; MAX_FRAME_BYTES as usize + 1];
    let mut wire = Vec::new();
    assert!(write_frame(&mut wire, &body).is_err());
    assert!(wire.is_empty(), "nothing may reach the stream");
}
