//! Observability invariants, pinned as properties:
//!
//! 1. The obs sink's dispatch counter — and the number of `NodeDispatch`
//!    events in the trace ring — equal the `ExecReport::steps` the
//!    executor itself reports, on all eight Table III apps (planned and
//!    interpreted executors) and on random scheduler-equivalence DAGs.
//!    The trace is an *account* of the run, not a sample of it.
//! 2. Per-worker sinks forked by `BatchRunner::run_obs` and merged after
//!    the join aggregate to exactly the counters a single-threaded run
//!    over the same jobs records.

use proptest::prelude::*;
use revet_apps::all_apps;
use revet_core::PassOptions;
use revet_machine::instr::{AluOp, EwInstr, Operand};
use revet_machine::nodes::{EwNode, OutputSpec, SinkNode, SourceNode};
use revet_machine::{tbar, tdata, Channel, ExecPlan, Graph, MemoryState, TTok};
use revet_obs::{EventKind, ObsSink};
use revet_runtime::{BatchRunner, ExecMode};

const OUTER: u32 = 2;
const SCALE: usize = 8;
const SEED: u64 = 0x5EED;
const MAX_ROUNDS: u64 = 200_000_000;
/// Large enough that no app/DAG in this suite drops events — equality
/// against `steps` requires a complete trace, so every test asserts
/// `trace_dropped() == 0` before counting.
const TRACE_CAP: usize = 1 << 21;

/// Counter snapshot minus wall-clock percentiles — instance timings are
/// real time and legitimately differ between a contended pool and a
/// sequential run, so only the histogram's `.count` is deterministic.
fn deterministic_counters(obs: &ObsSink) -> Vec<(String, u64)> {
    obs.snapshot_counters()
        .into_iter()
        .filter(|(name, _)| {
            !name.ends_with(".p50") && !name.ends_with(".p95") && !name.ends_with(".p99")
        })
        .collect()
}

fn dispatch_events(obs: &ObsSink) -> (u64, u64) {
    let mut total = 0u64;
    let mut productive = 0u64;
    for ev in obs.trace_events() {
        if let EventKind::NodeDispatch {
            productive: p,
            node: _,
        } = ev.kind
        {
            total += 1;
            productive += p as u64;
        }
    }
    (total, productive)
}

/// On every evaluation app, for both executors: the sink's counters and
/// the trace ring agree exactly with the `ExecReport`.
#[test]
fn trace_dispatch_counts_match_exec_report_on_all_apps() {
    for a in all_apps() {
        let (program, args, w) = a.prepare(OUTER, SCALE, SEED, &PassOptions::default());
        for interpreted in [false, true] {
            let obs = ObsSink::with_trace_capacity(TRACE_CAP);
            let mut inst = program.instance();
            let report = if interpreted {
                inst.run_untimed_interpreted_obs(&args, MAX_ROUNDS, &obs)
            } else {
                inst.run_untimed_obs(&args, MAX_ROUNDS, &obs)
            }
            .unwrap_or_else(|e| panic!("{}: {e}", a.name));
            a.check_dram(&inst.memory().dram, &w);

            assert_eq!(obs.trace_dropped(), 0, "{}: ring too small", a.name);
            assert_eq!(
                obs.counters.dispatches.get(),
                report.steps,
                "{} (interpreted={interpreted}): dispatch counter vs report.steps",
                a.name
            );
            assert_eq!(
                obs.counters.productive.get(),
                report.productive_steps,
                "{} (interpreted={interpreted})",
                a.name
            );
            assert_eq!(obs.counters.rounds.get(), report.rounds, "{}", a.name);
            assert_eq!(
                obs.counters.peak_ready.get(),
                report.peak_ready,
                "{}",
                a.name
            );
            let (traced, traced_productive) = dispatch_events(&obs);
            assert_eq!(
                traced, report.steps,
                "{} (interpreted={interpreted}): traced NodeDispatch events vs report.steps",
                a.name
            );
            assert_eq!(traced_productive, report.productive_steps, "{}", a.name);
        }
    }
}

/// Forked per-worker sinks, merged after the pool joins, must equal a
/// single-threaded run's counters exactly — on every app.
#[test]
fn merged_worker_counters_equal_single_threaded_on_all_apps() {
    for a in all_apps() {
        let (program, args, _w) = a.prepare(OUTER, SCALE, SEED, &PassOptions::default());
        let argsets: Vec<Vec<revet_sltf::Word>> = (0..6).map(|_| args.clone()).collect();
        for mode in [ExecMode::Planned, ExecMode::Interpreted] {
            let solo_obs = ObsSink::counters_only();
            let solo = BatchRunner::new(1)
                .with_mode(mode)
                .run_same_obs(&program, &argsets, &solo_obs);
            let pooled_obs = ObsSink::counters_only();
            let pooled =
                BatchRunner::new(4)
                    .with_mode(mode)
                    .run_same_obs(&program, &argsets, &pooled_obs);
            assert_eq!(solo.ok_count(), 6, "{}", a.name);
            assert_eq!(pooled.ok_count(), 6, "{}", a.name);
            assert_eq!(
                deterministic_counters(&solo_obs),
                deterministic_counters(&pooled_obs),
                "{} ({mode:?}): forked+merged counters diverged from sequential",
                a.name
            );
            assert_eq!(solo_obs.counters.instances.get(), 6, "{}", a.name);
            assert_eq!(
                solo_obs.counters.dispatches.get(),
                solo.total().steps,
                "{}",
                a.name
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Random DAGs (the scheduler_equiv generator, compacted)

#[derive(Clone, Copy)]
enum Move {
    Map { sel: u32, op: u32 },
    Dup { sel: u32 },
    Zip { sel_a: u32, sel_b: u32 },
}

fn decode(raw: u32) -> Move {
    let kind = raw % 3;
    let a = (raw / 3) % 1009;
    let b = (raw / 3037) % 1013;
    match kind {
        0 => Move::Map { sel: a, op: b },
        1 => Move::Dup { sel: a },
        _ => Move::Zip { sel_a: a, sel_b: b },
    }
}

/// Grows a random DAG from one source by count-preserving moves (map /
/// dup / zip over open channels), exactly like the machine crate's
/// scheduler-equivalence generator minus the DRAM taps.
fn build(values: &[u32], moves: &[u32]) -> Graph {
    let mut g = Graph::new();
    let mut toks: Vec<TTok> = Vec::new();
    for (i, &v) in values.iter().enumerate() {
        toks.push(tdata([v]));
        if v % 7 == 0 {
            toks.push(tbar(1));
        }
        if i + 1 == values.len() {
            toks.push(tbar(1));
        }
    }
    let first = g.add_chan(Channel::new(1));
    g.add_node("src", Box::new(SourceNode::new(toks)), vec![], vec![first]);
    let mut open = vec![first];
    for (node_idx, &raw) in moves.iter().enumerate() {
        match decode(raw) {
            Move::Map { sel, op } => {
                let src = open.remove(sel as usize % open.len());
                let dst = g.add_chan(Channel::new(1));
                let alu = match op % 4 {
                    0 => AluOp::Add,
                    1 => AluOp::Xor,
                    2 => AluOp::Mul,
                    _ => AluOp::Rotl,
                };
                let instrs = vec![EwInstr::Alu {
                    op: alu,
                    a: Operand::Reg(0),
                    b: Operand::imm(1 + op % 13),
                    dst: 0,
                }];
                g.add_node(
                    format!("map{node_idx}"),
                    Box::new(EwNode::new(1, instrs, vec![OutputSpec::plain([0])])),
                    vec![src],
                    vec![dst],
                );
                open.push(dst);
            }
            Move::Dup { sel } => {
                let src = open.remove(sel as usize % open.len());
                let d0 = g.add_chan(Channel::new(1));
                let d1 = g.add_chan(Channel::new(1));
                g.add_node(
                    format!("dup{node_idx}"),
                    Box::new(EwNode::new(
                        1,
                        Vec::new(),
                        vec![OutputSpec::plain([0]), OutputSpec::plain([0])],
                    )),
                    vec![src],
                    vec![d0, d1],
                );
                open.push(d0);
                open.push(d1);
            }
            Move::Zip { sel_a, sel_b } => {
                if open.len() < 2 {
                    continue;
                }
                let a = open.remove(sel_a as usize % open.len());
                let b = open.remove(sel_b as usize % open.len());
                let dst = g.add_chan(Channel::new(1));
                let instrs = vec![EwInstr::Alu {
                    op: AluOp::Add,
                    a: Operand::Reg(0),
                    b: Operand::Reg(1),
                    dst: 0,
                }];
                g.add_node(
                    format!("zip{node_idx}"),
                    Box::new(EwNode::new(2, instrs, vec![OutputSpec::plain([0])])),
                    vec![a, b],
                    vec![dst],
                );
                open.push(dst);
            }
        }
    }
    for (i, c) in open.into_iter().enumerate() {
        let (sink, _h) = SinkNode::new();
        g.add_node(format!("sink{i}"), Box::new(sink), vec![c], vec![]);
    }
    g.mem = MemoryState::with_dram_size(64);
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// On random DAGs, both the event-driven executor and the compiled
    /// plan keep the sink and the report in exact agreement: dispatch
    /// counter == traced NodeDispatch events == report.steps, and the
    /// productive / rounds / peak-ready views match too.
    #[test]
    fn obs_matches_exec_report_on_random_dags(
        values in prop::collection::vec(0u32..100, 0..14),
        moves in prop::collection::vec(0u32..3_000_000, 0..18),
    ) {
        // Event-driven ready-set executor.
        let mut g = build(&values, &moves);
        let obs = ObsSink::with_trace_capacity(TRACE_CAP);
        let report = g.run_untimed_obs(100_000, &obs).unwrap();
        prop_assert_eq!(obs.trace_dropped(), 0);
        prop_assert_eq!(obs.counters.dispatches.get(), report.steps);
        prop_assert_eq!(obs.counters.productive.get(), report.productive_steps);
        prop_assert_eq!(obs.counters.rounds.get(), report.rounds);
        prop_assert_eq!(obs.counters.peak_ready.get(), report.peak_ready);
        let (traced, traced_productive) = dispatch_events(&obs);
        prop_assert_eq!(traced, report.steps);
        prop_assert_eq!(traced_productive, report.productive_steps);

        // Compiled execution plan over an identical graph.
        let mut pg = build(&values, &moves);
        let plan = ExecPlan::build(&pg);
        let pobs = ObsSink::with_trace_capacity(TRACE_CAP);
        let preport = pg.run_untimed_planned_obs(&plan, 100_000, &pobs).unwrap();
        prop_assert_eq!(pobs.trace_dropped(), 0);
        prop_assert_eq!(pobs.counters.dispatches.get(), preport.steps);
        prop_assert_eq!(pobs.counters.productive.get(), preport.productive_steps);
        prop_assert_eq!(pobs.counters.rounds.get(), preport.rounds);
        prop_assert_eq!(pobs.counters.peak_ready.get(), preport.peak_ready);
        let (ptraced, _) = dispatch_events(&pobs);
        prop_assert_eq!(ptraced, preport.steps);
    }
}
