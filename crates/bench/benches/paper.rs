//! `cargo bench` entry point: regenerates every table and figure at reduced
//! scale, timing the headline kernels with Criterion.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench_tables_and_figures(c: &mut Criterion) {
    // Regenerate every experiment once (the rows are printed so a bench run
    // leaves the full set of results in the log).
    println!("{}", revet_bench::table2());
    println!("{}", revet_bench::table3());
    let t4 = revet_bench::table4(16);
    println!("{}", revet_bench::format_table4(&t4));
    let t5 = revet_bench::table5(16);
    println!("{}", revet_bench::format_table5(&t5));
    let f12 = revet_bench::fig12();
    println!("{}", revet_bench::format_fig12(&f12));
    let f13 = revet_bench::fig13(16);
    println!("{}", revet_bench::format_fig13(&f13));
    let f14 = revet_bench::fig14(&[1_000, 10_000, 100_000, 1_000_000]);
    println!("{}", revet_bench::format_fig14(&f14));
    let (_, aurochs) = revet_bench::aurochs_cmp(8);
    println!("{aurochs}");

    // Timed batch aggregate: the eight apps back-to-back on one machine,
    // folded into a single SimStats (total cycles, DRAM traffic, skip
    // ratio) — the timed counterpart of the batch runtime's merged
    // ExecReport.
    let mut batch = revet_sim::SimStats::default();
    for app in revet_apps::all_apps() {
        let (stats, _) = revet_bench::run_timed(
            &app,
            2,
            8,
            &revet_core::PassOptions::default(),
            revet_sim::IdealModels::default(),
        );
        batch.merge(&stats);
    }
    println!(
        "timed batch aggregate (8 apps, scale 8): {} cycles, DRAM util {:.1}%, \
         scheduler skip ratio {:.2}",
        batch.cycles,
        100.0 * batch.dram_utilization(),
        batch.scheduler_skip_ratio(),
    );

    // Criterion timings for the per-app timed-simulation kernels.
    let mut group = c.benchmark_group("timed_sim");
    group.sample_size(10);
    for app in revet_apps::all_apps() {
        group.bench_function(app.name, |b| {
            b.iter(|| {
                revet_bench::run_timed(
                    &app,
                    2,
                    8,
                    &revet_core::PassOptions::default(),
                    revet_sim::IdealModels::default(),
                )
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("compile");
    group.sample_size(10);
    for app in revet_apps::all_apps() {
        group.bench_function(app.name, |b| {
            b.iter(|| app.compile(2, &revet_core::PassOptions::default()).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tables_and_figures);
criterion_main!(benches);
