//! # revet-bench — harnesses regenerating the paper's tables and figures
//!
//! One driver per experiment (DESIGN.md §3). Each driver returns structured
//! rows and a formatted table so the same code backs the `table*`/`fig*`
//! binaries, the Criterion benches, and EXPERIMENTS.md.
//!
//! Scales are configurable: the defaults keep `cargo bench` minutes-fast;
//! absolute GB/s therefore differ from the paper (whose runs used
//! multi-GiB datasets on the authors' RTL-calibrated simulator), while the
//! *shape* — who wins, by roughly what factor, where the crossovers fall —
//! is the reproduction target.

#![warn(missing_docs)]

use revet_apps::{all_apps, App, Workload};
use revet_baselines::{traits_for, CpuModel, GpuModel};
use revet_core::report::ResourceReport;
use revet_core::{CompiledProgram, PassOptions};
use revet_sim::{IdealModels, RdaConfig, SimStats, Simulator};
use revet_sltf::Word;

/// Default per-app record scale for timed runs.
pub const DEFAULT_SCALE: usize = 512;
/// Default replicate width.
pub const DEFAULT_OUTER: u32 = 8;
/// Workload seed.
pub const SEED: u64 = 0x5EED;

/// One evaluation app, compiled and with its seeded workload loaded — the
/// compile/load/args boilerplate that used to be copy-pasted across the
/// driver binaries, in one place.
pub struct PreparedApp {
    /// The registry entry (name, oracle checker, …).
    pub app: App,
    /// Compiled at the requested width, workload DRAM images loaded.
    pub program: CompiledProgram,
    /// `main` arguments derived from the workload.
    pub args: Vec<Word>,
    /// The generated workload (oracle bytes, byte counts).
    pub workload: Workload,
}

/// Compiles `app` at `outer` and loads its seeded workload at `scale`.
///
/// # Panics
///
/// Panics on compile failure (the harness is also a test).
pub fn prepare_app(app: &App, outer: u32, scale: usize, opts: &PassOptions) -> PreparedApp {
    let (program, args, workload) = app.prepare(outer, scale, SEED, opts);
    PreparedApp {
        app: app.clone(),
        program,
        args,
        workload,
    }
}

/// Every Table III app prepared at the default replicate width and pass
/// options — the shared starting point for the driver binaries.
///
/// # Panics
///
/// Panics on compile failure.
pub fn apps_under_test(scale: usize) -> Vec<PreparedApp> {
    all_apps()
        .iter()
        .map(|a| prepare_app(a, DEFAULT_OUTER, scale, &PassOptions::default()))
        .collect()
}

/// Runs one app through the timed simulator; returns (stats, workload).
///
/// # Panics
///
/// Panics on compile/run/validation failure (the harness is also a test).
pub fn run_timed(
    app: &App,
    outer: u32,
    scale: usize,
    opts: &PassOptions,
    ideal: IdealModels,
) -> (SimStats, Workload) {
    let PreparedApp {
        mut program,
        args,
        workload,
        ..
    } = prepare_app(app, outer, scale, opts);
    let sim = Simulator::new(RdaConfig::default(), ideal);
    let stats = sim
        .run(&mut program, &args, 2_000_000_000)
        .unwrap_or_else(|e| panic!("{}: {e}", app.name));
    app.check(&program, &workload);
    (stats, workload)
}

/// Table II: machine parameters.
pub fn table2() -> String {
    RdaConfig::default().table2()
}

/// Table III: application inventory.
pub fn table3() -> String {
    let mut s = String::from(
        "app          lines  description                                        key features\n",
    );
    for a in all_apps() {
        s.push_str(&format!(
            "{:<12} {:>5}  {:<50} {}\n",
            a.name,
            a.lines(),
            a.description,
            a.key_features
        ));
    }
    s
}

/// One Table IV row.
#[derive(Clone, Debug)]
pub struct Table4Row {
    /// The resource report.
    pub report: ResourceReport,
    /// HBM2 utilization (read, write) from the timed run.
    pub hbm_rw: (f64, f64),
}

/// Table IV: resources used by Revet applications.
pub fn table4(scale: usize) -> Vec<Table4Row> {
    all_apps()
        .iter()
        .map(|a| {
            let program = a.compile(DEFAULT_OUTER, &PassOptions::default()).unwrap();
            let report = ResourceReport::for_program(a.name, &program);
            let (stats, _) = run_timed(
                a,
                DEFAULT_OUTER,
                scale,
                &PassOptions::default(),
                IdealModels::default(),
            );
            Table4Row {
                report,
                hbm_rw: stats.dram_rw_utilization(),
            }
        })
        .collect()
}

/// Formats Table IV.
pub fn format_table4(rows: &[Table4Row]) -> String {
    let mut s = String::from(
        "app          outer lanes | inner CU/MU/AG | outer CU/MU/AG | repl CU/MU | dlk buf rtm | total CU/MU/AG | HBM2 r/w/tot %\n",
    );
    for r in rows {
        let rep = &r.report;
        s.push_str(&format!(
            "{:<12} {:>5} {:>5} | {:>4}/{:>3}/{:>3} | {:>4}/{:>3}/{:>3} | {:>4}/{:>3} | {:>3} {:>3} {:>3} | {:>4}/{:>3}/{:>3} | {:>4.1}/{:>4.1}/{:>4.1}\n",
            rep.name,
            rep.outer,
            rep.lanes,
            rep.inner.0,
            rep.inner.1,
            rep.inner.2,
            rep.outer_units.0,
            rep.outer_units.1,
            rep.outer_units.2,
            rep.replicate.0,
            rep.replicate.1,
            rep.deadlock_mu,
            rep.buffer_mu,
            rep.retime_mu,
            rep.total.0,
            rep.total.1,
            rep.total.2,
            100.0 * r.hbm_rw.0,
            100.0 * r.hbm_rw.1,
            100.0 * (r.hbm_rw.0 + r.hbm_rw.1),
        ));
    }
    s
}

/// One Table V row.
#[derive(Clone, Debug)]
pub struct Table5Row {
    /// Application name.
    pub app: String,
    /// Revet GB/s (timed sim).
    pub revet_gbps: f64,
    /// GPU model GB/s.
    pub gpu_gbps: f64,
    /// CPU model GB/s.
    pub cpu_gbps: f64,
    /// Ideal-DRAM speedup.
    pub ideal_d: f64,
    /// Ideal-SRAM+network speedup.
    pub ideal_sn: f64,
    /// All-ideal speedup.
    pub ideal_snd: f64,
}

/// Table V: performance vs baselines plus ideal-model speedups.
pub fn table5(scale: usize) -> Vec<Table5Row> {
    let gpu = GpuModel::default();
    let cpu = CpuModel::default();
    all_apps()
        .iter()
        .map(|a| {
            let (real, w) = run_timed(
                a,
                DEFAULT_OUTER,
                scale,
                &PassOptions::default(),
                IdealModels::default(),
            );
            let (d, _) = run_timed(
                a,
                DEFAULT_OUTER,
                scale,
                &PassOptions::default(),
                IdealModels::dram_only(),
            );
            let (sn, _) = run_timed(
                a,
                DEFAULT_OUTER,
                scale,
                &PassOptions::default(),
                IdealModels::sram_network(),
            );
            let (snd, _) = run_timed(
                a,
                DEFAULT_OUTER,
                scale,
                &PassOptions::default(),
                IdealModels::all(),
            );
            let t = traits_for(a.name);
            Table5Row {
                app: a.name.to_string(),
                revet_gbps: real.throughput_gbps(w.app_bytes),
                gpu_gbps: gpu.throughput_gbps(&t),
                cpu_gbps: cpu.throughput_gbps(&t),
                ideal_d: real.cycles as f64 / d.cycles as f64,
                ideal_sn: real.cycles as f64 / sn.cycles as f64,
                ideal_snd: real.cycles as f64 / snd.cycles as f64,
            }
        })
        .collect()
}

/// Formats Table V with the geomean row.
pub fn format_table5(rows: &[Table5Row]) -> String {
    let mut s = String::from(
        "app          Revet GB/s   V100 GB/s (x)   CPU GB/s (x)   | ideal D    SN   SND\n",
    );
    let mut gx = 1.0f64;
    let mut cx = 1.0f64;
    for r in rows {
        let g = r.revet_gbps / r.gpu_gbps;
        let c = r.revet_gbps / r.cpu_gbps;
        gx *= g;
        cx *= c;
        s.push_str(&format!(
            "{:<12} {:>10.2} {:>9.2} ({:>5.2}) {:>8.2} ({:>6.1}) | {:>7.2} {:>5.2} {:>5.2}\n",
            r.app, r.revet_gbps, r.gpu_gbps, g, r.cpu_gbps, c, r.ideal_d, r.ideal_sn, r.ideal_snd,
        ));
    }
    let n = rows.len() as f64;
    s.push_str(&format!(
        "geomean speedup vs GPU: {:.2}x   vs CPU: {:.1}x\n",
        gx.powf(1.0 / n),
        cx.powf(1.0 / n)
    ));
    s
}

/// Figure 12: resource increase with optimizations disabled.
#[derive(Clone, Debug)]
pub struct Fig12Row {
    /// Application name.
    pub app: String,
    /// (CU, MU) with all optimizations.
    pub default: (usize, usize),
    /// (CU, MU) with if-to-select disabled.
    pub no_ifconv: (usize, usize),
    /// (CU, MU) with hoisting/bufferization disabled.
    pub no_buffer: (usize, usize),
    /// (CU, MU) with sub-word packing disabled.
    pub no_pack: (usize, usize),
}

/// Runs the Fig. 12 ablations (compile-only).
pub fn fig12() -> Vec<Fig12Row> {
    let cu_mu = |opts: &PassOptions, a: &App| -> (usize, usize) {
        let p = a.compile(DEFAULT_OUTER, opts).unwrap();
        let rep = ResourceReport::for_program(a.name, &p);
        (rep.total.0, rep.total.1)
    };
    all_apps()
        .iter()
        .map(|a| Fig12Row {
            app: a.name.to_string(),
            default: cu_mu(&PassOptions::default(), a),
            no_ifconv: cu_mu(
                &PassOptions {
                    if_to_select: false,
                    ..PassOptions::default()
                },
                a,
            ),
            no_buffer: cu_mu(
                &PassOptions {
                    hoist_allocators: false,
                    bufferize_replicate: false,
                    ..PassOptions::default()
                },
                a,
            ),
            no_pack: cu_mu(
                &PassOptions {
                    pack_subwords: false,
                    ..PassOptions::default()
                },
                a,
            ),
        })
        .collect()
}

/// Formats Fig. 12 as normalized resource ratios.
pub fn format_fig12(rows: &[Fig12Row]) -> String {
    let mut s = String::from(
        "app          default CU/MU | NoIfConv CU(x)/MU(x) | NoBuffer CU(x)/MU(x) | NoPack CU(x)/MU(x)\n",
    );
    for r in rows {
        let rel = |v: usize, base: usize| v as f64 / base.max(1) as f64;
        s.push_str(&format!(
            "{:<12} {:>4}/{:<4} | {:.2}/{:.2} | {:.2}/{:.2} | {:.2}/{:.2}\n",
            r.app,
            r.default.0,
            r.default.1,
            rel(r.no_ifconv.0, r.default.0),
            rel(r.no_ifconv.1, r.default.1),
            rel(r.no_buffer.0, r.default.0),
            rel(r.no_buffer.1, r.default.1),
            rel(r.no_pack.0, r.default.0),
            rel(r.no_pack.1, r.default.1),
        ));
    }
    s
}

/// Figure 13: performance vs area with and without hierarchy removal
/// (murmur3 case study, ideal S/N/D models).
#[derive(Clone, Debug)]
pub struct Fig13Point {
    /// Replicate width (outer parallelism).
    pub outer: u32,
    /// Normalized area (unit count relative to outer=1 with removal).
    pub area: f64,
    /// Normalized performance (1/cycles relative to the same baseline).
    pub perf: f64,
    /// Whether hierarchy removal was enabled.
    pub hier_removed: bool,
}

/// Sweeps outer parallelism for the Fig. 13 scaling curves. Uses a
/// murmur3-with-inner-foreach variant so hierarchy removal has a barrier
/// to eliminate.
pub fn fig13(scale: usize) -> Vec<Fig13Point> {
    let source = |outer: u32, eliminate: bool| -> String {
        let pragma = if eliminate {
            "pragma(eliminate_hierarchy);"
        } else {
            ""
        };
        format!(
            r#"
dram<u32> input;
dram<u32> output;
void main(u32 count) {{
    foreach (count by 4) {{ u32 base =>
        foreach (4) {{ u32 sub =>
            {pragma}
            u32 i = base + sub;
            replicate ({outer}) {{
                readit<16> it(input, i * 16);
                u32 h = 0;
                u32 j = 0;
                while (j < 16) {{
                    u32 k = *it;
                    k = k * 0xcc9e2d51;
                    k = (k << 15) | (k >> 17);
                    k = k * 0x1b873593;
                    h = h ^ k;
                    h = (h << 13) | (h >> 19);
                    h = h * 5 + 0xe6546b64;
                    it++;
                    j = j + 1;
                }};
                output[i] = h;
            }};
        }};
    }};
}}
"#
        )
    };
    let mut points = Vec::new();
    let mut baseline: Option<(f64, f64)> = None;
    for &eliminate in &[true, false] {
        for outer in 1..=6u32 {
            let opts = PassOptions {
                eliminate_hierarchy: eliminate,
                dram_bytes: revet_apps::DRAM_BYTES,
                threads: Some(64),
                ..PassOptions::default()
            };
            let mut program = revet_core::Compiler::new(opts)
                .compile_source(&source(outer, eliminate))
                .unwrap();
            // Workload: `scale` 64 B blobs (reuses murmur3's generator).
            let w = (revet_apps::murmur3_app().workload)(scale, SEED);
            let slice = revet_apps::DRAM_BYTES / 2;
            for (sym, bytes) in &w.inits {
                program.graph.mem.dram[sym * slice..sym * slice + bytes.len()]
                    .copy_from_slice(bytes);
            }
            let sim = Simulator::new(RdaConfig::default(), IdealModels::all());
            let stats = sim
                .run(&mut program, &[Word(scale as u32)], 2_000_000_000)
                .unwrap();
            let rep = ResourceReport::for_program("murmur3-fig13", &program);
            let area = (rep.total.0 + rep.total.1 + rep.total.2) as f64;
            let perf = 1.0 / stats.cycles as f64;
            let (a0, p0) = *baseline.get_or_insert((area, perf));
            points.push(Fig13Point {
                outer,
                area: area / a0,
                perf: perf / p0,
                hier_removed: eliminate,
            });
        }
    }
    points
}

/// Formats Fig. 13.
pub fn format_fig13(points: &[Fig13Point]) -> String {
    let mut s = String::from("variant          outer  norm.area  norm.perf\n");
    for p in points {
        s.push_str(&format!(
            "{:<16} {:>5}  {:>9.2}  {:>9.2}\n",
            if p.hier_removed {
                "hier-removed"
            } else {
                "hierarchical"
            },
            p.outer,
            p.area,
            p.perf
        ));
    }
    s
}

/// Figure 14: per-region load vs input count for `search`, with one
/// replicate region slowed 30%.
#[derive(Clone, Debug)]
pub struct Fig14Point {
    /// Number of input elements.
    pub inputs: usize,
    /// Work fraction (%) of the slow region.
    pub slow_share: f64,
    /// Work fraction (%) of the fastest region.
    pub fast_share: f64,
}

/// Sweeps input counts for the Fig. 14 load-balancing curve using the
/// allocator-queue feedback loop directly (the mechanism of §V-B b): each
/// of 8 regions holds a buffer for `service` cycles per item, the slow
/// region 30% longer, with a bounded shared pointer pool.
pub fn fig14(inputs: &[usize]) -> Vec<Fig14Point> {
    const REGIONS: usize = 8;
    const BUFFERS: usize = 4096;
    inputs
        .iter()
        .map(|&n| {
            // Discrete-event model of the hoisted allocator: pops hand work
            // to the region `ptr % REGIONS` (exactly the compiled dist key).
            let service = |region: usize| -> u64 {
                if region == 0 {
                    13
                } else {
                    10
                }
            };
            let mut free: std::collections::VecDeque<usize> = (0..BUFFERS).collect();
            let mut busy: Vec<(u64, usize)> = Vec::new(); // (done_time, ptr)
            let mut done_per_region = vec![0u64; REGIONS];
            let mut now = 0u64;
            let mut issued = 0usize;
            while issued < n || !busy.is_empty() {
                while issued < n {
                    if let Some(ptr) = free.pop_front() {
                        let region = ptr % REGIONS;
                        busy.push((now + service(region), ptr));
                        done_per_region[region] += 1;
                        issued += 1;
                    } else {
                        break;
                    }
                }
                if let Some((t, _)) = busy.iter().min_by_key(|(t, _)| *t).copied() {
                    now = t;
                    let mut i = 0;
                    while i < busy.len() {
                        if busy[i].0 <= now {
                            free.push_back(busy.swap_remove(i).1);
                        } else {
                            i += 1;
                        }
                    }
                }
            }
            let total: u64 = done_per_region.iter().sum();
            let slow = 100.0 * done_per_region[0] as f64 / total as f64;
            let fast = 100.0 * done_per_region[1..].iter().copied().max().unwrap_or(0) as f64
                / total as f64;
            Fig14Point {
                inputs: n,
                slow_share: slow,
                fast_share: fast,
            }
        })
        .collect()
}

/// Formats Fig. 14.
pub fn format_fig14(points: &[Fig14Point]) -> String {
    let mut s = String::from("inputs      slow-region %   fastest-region %   (even = 12.5%)\n");
    for p in points {
        s.push_str(&format!(
            "{:>8}    {:>12.2}    {:>15.2}\n",
            p.inputs, p.slow_share, p.fast_share
        ));
    }
    s
}

/// §VI-B c: the Aurochs comparison on kD-tree.
pub fn aurochs_cmp(scale: usize) -> (f64, String) {
    let app = revet_apps::kdtree_app();
    let (stats, w) = run_timed(
        &app,
        DEFAULT_OUTER,
        scale,
        &PassOptions::default(),
        IdealModels::default(),
    );
    // Loop completions ≈ nodes visited per query × queries.
    let loop_completions = w.threads * 24;
    let slowdown = revet_sim::aurochs_slowdown(
        &revet_sim::AurochsMode::default(),
        &stats,
        5,
        loop_completions,
    );
    let revet_gbps = stats.throughput_gbps(w.app_bytes);
    let text = format!(
        "kD-tree: Revet {:.3} GB/s; Aurochs model {:.3} GB/s; Revet is {:.1}x faster\n\
         (paper reports >11x; drivers: {} live values through the pipeline,\n\
         serialized per-node comparisons, timeout-based loop synchronization)\n",
        revet_gbps,
        revet_gbps / slowdown,
        slowdown,
        revet_sim::AurochsMode::default().carried_live_values,
    );
    (slowdown, text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig14_shows_load_balancing_shape() {
        let pts = fig14(&[1_000, 100_000]);
        // Small inputs: near-even split. Large inputs: slow region starved
        // below even share, fast regions above.
        assert!((pts[0].slow_share - 12.5).abs() < 1.5, "{:?}", pts[0]);
        assert!(pts[1].slow_share < 11.0, "{:?}", pts[1]);
        assert!(pts[1].fast_share > 12.5, "{:?}", pts[1]);
    }

    #[test]
    fn table_formatters_are_nonempty() {
        assert!(table2().contains("HBM2"));
        assert!(table3().contains("murmur3"));
    }
}
