//! Regenerates Figure 14 (allocator load balancing vs input count).
fn main() {
    let inputs = [1_000, 3_000, 10_000, 30_000, 100_000, 300_000, 1_000_000];
    let pts = revet_bench::fig14(&inputs);
    println!(
        "=== Figure 14: per-region load vs inputs ===\n{}",
        revet_bench::format_fig14(&pts)
    );
}
