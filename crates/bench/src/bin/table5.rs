//! Regenerates Table V (performance vs V100/CPU + ideal models).
fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(revet_bench::DEFAULT_SCALE);
    let rows = revet_bench::table5(scale);
    println!(
        "=== Table V: performance (scale={scale}) ===\n{}",
        revet_bench::format_table5(&rows)
    );
}
