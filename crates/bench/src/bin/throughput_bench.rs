//! Batch throughput: instances/sec when running a mixed batch of the eight
//! evaluation apps through the `revet-runtime` thread pool at 1/2/4/8
//! worker threads.
//!
//! Each app is compiled **once**; the batch references the shared
//! [`revet_core::CompiledProgram`]s and every instance is cloned on a
//! worker ([`revet_core::CompiledProgram::instance`]). Every instance's
//! DRAM output is validated against the app's oracle, and the parallel
//! runs are checked bit-identical to the single-threaded reference —
//! speedup never comes at the cost of determinism.
//!
//! Usage: `cargo run --release -p revet-bench --bin throughput_bench
//! [scale] [instances] [--json [PATH]]` (defaults: scale 64, 32
//! instances). `--json` writes a machine-readable trajectory record
//! (default path `BENCH_throughput.json`) with one row per thread count
//! plus batch latency percentiles.

use revet_bench::{apps_under_test, PreparedApp};
use revet_runtime::{BatchJob, BatchReport, BatchRunner};

fn main() {
    let mut positional: Vec<usize> = Vec::new();
    let mut json: Option<String> = None;
    let mut argv = std::env::args().skip(1).peekable();
    while let Some(arg) = argv.next() {
        if arg == "--json" {
            json = Some(match argv.peek() {
                Some(v) if !v.starts_with("--") => argv.next().unwrap(),
                _ => "BENCH_throughput.json".to_string(),
            });
        } else {
            positional.push(arg.parse().unwrap_or_else(|_| panic!("bad arg {arg}")));
        }
    }
    let scale: usize = positional.first().copied().unwrap_or(64);
    let instances: usize = positional.get(1).copied().unwrap_or(32);
    assert!(instances > 0, "need at least one instance to measure");

    let prepared = apps_under_test(scale);
    // Mixed batch: instances round-robin over the eight apps.
    let jobs: Vec<BatchJob> = (0..instances)
        .map(|i| {
            let p = &prepared[i % prepared.len()];
            BatchJob::new(&p.program, p.args.clone())
        })
        .collect();

    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "=== Batch throughput: {instances} mixed app instances, scale={scale}, \
         {hw} hardware threads ==="
    );
    println!(
        "{:<8} {:>12} {:>14} {:>10}",
        "threads", "elapsed ms", "instances/sec", "speedup"
    );

    let mut baseline: Option<f64> = None;
    let mut reference: Option<Snapshot> = None;
    let mut json_rows: Vec<String> = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let report = BatchRunner::new(threads).run(&jobs);
        if let Some(err) = report.first_error() {
            panic!("batch failed at {threads} threads: {err}");
        }
        check_outputs(&prepared, &report, instances);
        let snap = snapshot(&report);
        match &reference {
            None => reference = Some(snap),
            Some(reference) => assert!(
                *reference == snap,
                "{threads}-thread batch diverged from the 1-thread reference"
            ),
        }
        let ips = report.instances_per_sec();
        let base = *baseline.get_or_insert(ips);
        let lat = report.latency_percentiles().expect("ok instances");
        json_rows.push(format!(
            "    {{\"threads\": {threads}, \"elapsed_ms\": {:.3}, \"instances_per_sec\": {ips:.3}, \
             \"speedup\": {:.3}, \"latency_us\": {{\"p50\": {}, \"p95\": {}, \"p99\": {}}}}}",
            report.elapsed.as_secs_f64() * 1e3,
            ips / base,
            lat.p50.as_micros(),
            lat.p95.as_micros(),
            lat.p99.as_micros(),
        ));
        println!(
            "{:<8} {:>12.1} {:>14.1} {:>9.2}x",
            threads,
            report.elapsed.as_secs_f64() * 1e3,
            ips,
            ips / base
        );
        // The headline claim — ≥2x at 4 threads — needs ≥4 hardware
        // threads to be physically possible; on smaller machines the
        // binary still validates correctness and prints the curve.
        if threads == 4 && hw >= 4 {
            assert!(
                ips / base >= 2.0,
                "4-thread batch not ≥2x over 1 thread ({:.2}x)",
                ips / base
            );
        }
    }
    if hw < 4 {
        println!(
            "note: only {hw} hardware thread(s) available — speedup column is \
             not meaningful on this machine (correctness still verified)."
        );
    }
    println!(
        "all runs validated against app oracles; parallel results \
         bit-identical to the 1-thread reference."
    );
    if let Some(path) = json {
        let doc = format!(
            "{{\n  \"bench\": \"throughput\",\n  \"scale\": {scale},\n  \
             \"instances\": {instances},\n  \"hardware_threads\": {hw},\n  \"rows\": [\n{}\n  ]\n}}\n",
            json_rows.join(",\n")
        );
        std::fs::write(&path, doc).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("wrote {path}");
    }
}

/// Validates every instance's DRAM image against its app's oracle.
fn check_outputs(prepared: &[PreparedApp], report: &BatchReport, instances: usize) {
    for i in 0..instances {
        let p = &prepared[i % prepared.len()];
        let result = report.results[i].as_ref().expect("checked above");
        p.app.check_dram(&result.mem.dram, &p.workload);
    }
}

/// Per-instance (sink tokens, DRAM image) snapshot for equivalence checks.
type Snapshot = Vec<(Vec<revet_machine::TTok>, Vec<u8>)>;

fn snapshot(report: &BatchReport) -> Snapshot {
    report
        .results
        .iter()
        .map(|r| {
            let r = r.as_ref().expect("checked above");
            (r.sink.clone(), r.mem.dram.clone())
        })
        .collect()
}
