//! Regenerates Table IV (resources used by Revet applications).
fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(revet_bench::DEFAULT_SCALE);
    let rows = revet_bench::table4(scale);
    println!(
        "=== Table IV: resources (scale={scale}) ===\n{}",
        revet_bench::format_table4(&rows)
    );
}
