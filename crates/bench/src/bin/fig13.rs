//! Regenerates Figure 13 (perf vs area, hierarchy removal).
fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(32);
    let pts = revet_bench::fig13(scale);
    println!(
        "=== Figure 13: hierarchy removal scaling (scale={scale}) ===\n{}",
        revet_bench::format_fig13(&pts)
    );
}
