//! Regenerates Table III (application inventory).
fn main() {
    println!("=== Table III: applications ===\n{}", revet_bench::table3());
}
