//! Executor + optimizer benchmark over the eight Table III apps.
//!
//! Three sections:
//!
//! 1. **Optimizer effect** — every app compiles twice, classical
//!    optimizations off (`--opt-level 0` equivalent) and at the default
//!    level 2, and runs on the *interpreted* ready-set executor (whose
//!    step counts are comparable across opt levels); reports MIR op
//!    counts, context/link counts, and executor steps for both while
//!    asserting bit-identical DRAM — the optimizer must never change
//!    results.
//! 2. **Plan vs interpreter** — at the default opt level, every app runs
//!    through the compiled [`revet_machine::ExecPlan`] fast path and the interpreted
//!    reference, asserting bit-identical DRAM between the two, and
//!    measures wall-clock step rate (steps/sec) and whole-run throughput
//!    (instances/sec, including per-instance graph cloning — the
//!    `revet-serve` cost model). `plan speedup` is the ratio of
//!    execution-only wall time per instance (interpreted / planned):
//!    how much faster the plan retires the *same work*.
//! 3. The ready-set vs dense-sweep scheduler comparison retained from
//!    the original harness.
//!
//! Usage:
//! `cargo run --release -p revet-bench --bin exec_bench \
//!    [scale] [--json PATH] [--baseline PATH] [--criterion]`
//!
//! `--json PATH` writes the per-app rows as a schema-versioned JSON
//! object (the CI artifact `BENCH_exec.json`). `--baseline PATH` reads a
//! previously committed artifact and **fails the process** if any app's
//! plan speedup drops below 0.8x its baseline value — wall-clock rates
//! vary across machines, the speedup *ratio* is the stable trajectory
//! signal. `--criterion` appends the Criterion wall-clock comparison on
//! the largest app graph.

use criterion::{black_box, Criterion};
use revet_apps::{all_apps, App};
use revet_bench::prepare_app;
use revet_core::{PassOptions, Session};
use revet_machine::ExecReport;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Static + dynamic measurements for one app at one opt level.
struct Side {
    mir_ops: usize,
    contexts: usize,
    links: usize,
    steps: u64,
}

/// Wall-clock measurements for one executor mode at the default level.
struct Rate {
    steps: u64,
    steps_per_sec: f64,
    instances_per_sec: f64,
    /// Execution-only seconds per instance (graph cloning excluded).
    exec_per_instance: f64,
}

struct Row {
    name: &'static str,
    unopt: Side,
    opt: Side,
    planned: Rate,
    interp: Rate,
}

impl Row {
    /// Execution-only wall-clock speedup of the plan over the
    /// interpreter on identical work (same program, same inputs).
    fn plan_speedup(&self) -> f64 {
        self.interp.exec_per_instance / self.planned.exec_per_instance
    }
}

fn opts_at(level: u8) -> PassOptions {
    PassOptions {
        opt_level: level,
        ..PassOptions::default()
    }
}

/// Counts post-pipeline MIR ops for `app` at `level` (the compiled
/// program keeps only the dataflow graph, so the MIR census runs through
/// a separate staged session on the same source).
fn mir_ops(app: &App, outer: u32, level: u8) -> usize {
    let mut opts = opts_at(level);
    opts.dram_bytes = revet_apps::DRAM_BYTES;
    let mut s = Session::new((app.source)(outer), opts);
    s.run_passes()
        .unwrap_or_else(|e| panic!("{}: {e}", app.name))
        .op_count()
}

/// Compiles and runs `app` on the interpreted executor at `level`;
/// returns the measurements and the final DRAM image (for the
/// bit-identical cross-check). Interpreted steps are the comparable
/// dynamic metric across opt levels — planned dispatch counts depend on
/// how many nodes fused into each segment.
fn measure(app: &App, scale: usize, level: u8) -> (Side, Vec<u8>) {
    let mut p = prepare_app(app, revet_bench::DEFAULT_OUTER, scale, &opts_at(level));
    let report: ExecReport = p
        .program
        .run_untimed_interpreted(&p.args, 200_000_000)
        .unwrap();
    app.check(&p.program, &p.workload);
    let side = Side {
        mir_ops: mir_ops(app, revet_bench::DEFAULT_OUTER, level),
        contexts: p.program.contexts.len(),
        links: p.program.links.len(),
        steps: report.steps,
    };
    (side, p.program.graph.mem.dram.clone())
}

/// One timed run of one executor mode: instantiates the compiled
/// program and runs it to quiescence, returning the report, the
/// clone+run wall time, the run-only wall time, and the final DRAM.
fn one_run(
    p: &revet_bench::PreparedApp,
    planned: bool,
) -> (ExecReport, Duration, Duration, Vec<u8>) {
    let t0 = Instant::now();
    let mut inst = p.program.instance();
    let t1 = Instant::now();
    let r = if planned {
        inst.run_untimed(&p.args, 200_000_000)
    } else {
        inst.run_untimed_interpreted(&p.args, 200_000_000)
    }
    .unwrap();
    let exec = t1.elapsed();
    (r, t0.elapsed(), exec, inst.into_memory().dram)
}

/// Times both executor modes at the default opt level, *interleaved*
/// round-robin so machine-load swings hit both modes equally, and using
/// the **minimum** observed per-run time — the standard noise-robust
/// estimator for short benchmarks. `steps_per_sec` uses run-only time;
/// `instances_per_sec` also charges the per-instance graph clone (the
/// serve-style cost model). Also returns both final DRAM images for the
/// bit-identical cross-check.
fn time_modes(p: &revet_bench::PreparedApp) -> (Rate, Rate, Vec<u8>, Vec<u8>) {
    const MIN_ROUNDS: u32 = 5;
    const MIN_ELAPSED: Duration = Duration::from_millis(600);
    let mut rounds = 0u32;
    // Per mode: (min clone+run, min run-only, steps).
    let mut best = [(Duration::MAX, Duration::MAX, 0u64); 2];
    let (dram_p, dram_i);
    let start = Instant::now();
    loop {
        let (rp, tp, ep, dp) = one_run(p, true);
        let (ri, ti, ei, di) = one_run(p, false);
        for (slot, (r, total, exec)) in [(0, (rp, tp, ep)), (1, (ri, ti, ei))] {
            let b = &mut best[slot];
            b.0 = b.0.min(total);
            b.1 = b.1.min(exec);
            b.2 = r.steps;
        }
        rounds += 1;
        if start.elapsed() >= MIN_ELAPSED && rounds >= MIN_ROUNDS {
            dram_p = dp;
            dram_i = di;
            break;
        }
    }
    let rate = |b: (Duration, Duration, u64)| Rate {
        steps: b.2,
        steps_per_sec: b.2 as f64 / b.1.as_secs_f64(),
        instances_per_sec: 1.0 / b.0.as_secs_f64(),
        exec_per_instance: b.1.as_secs_f64(),
    };
    (rate(best[0]), rate(best[1]), dram_p, dram_i)
}

// The scheduler comparison runs with classical optimizations off so its
// numbers stay comparable with the pre-optimizer harness. Its invariant
// (the ready set does strictly fewer scheduler steps than the dense sweep
// on the same graph) holds at the default scale and above; very small
// scales can put the dense node×round product below the ready set's
// productive firing count.
fn run_ready(app: &App, scale: usize) -> (ExecReport, usize) {
    let mut p = prepare_app(app, revet_bench::DEFAULT_OUTER, scale, &opts_at(0));
    let nodes = p.program.graph.node_count();
    (
        p.program
            .run_untimed_interpreted(&p.args, 200_000_000)
            .unwrap(),
        nodes,
    )
}

fn run_dense(app: &App, scale: usize) -> ExecReport {
    let mut p = prepare_app(app, revet_bench::DEFAULT_OUTER, scale, &opts_at(0));
    p.program.run_untimed_dense(&p.args, 200_000_000).unwrap()
}

fn json_escape_free(s: &str) -> &str {
    debug_assert!(!s.contains(['"', '\\']), "app names stay JSON-plain");
    s
}

fn rows_to_json(rows: &[Row], scale: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema_version\": 2,");
    let _ = writeln!(out, "  \"scale\": {scale},");
    let _ = writeln!(out, "  \"rows\": [");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"app\": \"{}\", \
             \"mir_ops_o0\": {}, \"mir_ops_o2\": {}, \
             \"contexts_o0\": {}, \"contexts_o2\": {}, \
             \"links_o0\": {}, \"links_o2\": {}, \
             \"steps_o0\": {}, \"steps_o2\": {}, \
             \"planned_steps\": {}, \"interp_steps\": {}, \
             \"planned_steps_per_sec\": {:.0}, \"interp_steps_per_sec\": {:.0}, \
             \"planned_instances_per_sec\": {:.2}, \"interp_instances_per_sec\": {:.2}, \
             \"plan_speedup\": {:.3}}}",
            json_escape_free(r.name),
            r.unopt.mir_ops,
            r.opt.mir_ops,
            r.unopt.contexts,
            r.opt.contexts,
            r.unopt.links,
            r.opt.links,
            r.unopt.steps,
            r.opt.steps,
            r.planned.steps,
            r.interp.steps,
            r.planned.steps_per_sec,
            r.interp.steps_per_sec,
            r.planned.instances_per_sec,
            r.interp.instances_per_sec,
            r.plan_speedup(),
        );
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Extracts `(app, plan_speedup)` pairs from a schema-2 artifact without
/// a JSON dependency: the writer above emits one row per line, so a line
/// scan for the two keys is exact on our own output.
fn parse_baseline(text: &str) -> Vec<(String, f64)> {
    let field = |line: &str, key: &str| -> Option<String> {
        let at = line.find(key)? + key.len();
        let rest = &line[at..];
        let end = rest.find([',', '}', '"']).unwrap_or(rest.len());
        Some(rest[..end].trim().to_string())
    };
    text.lines()
        .filter_map(|line| {
            let app = field(line, "\"app\": \"")?;
            let speedup: f64 = field(line, "\"plan_speedup\": ")?.parse().ok()?;
            Some((app, speedup))
        })
        .collect()
}

fn main() {
    let mut scale: usize = 256;
    let mut json_path: Option<String> = None;
    let mut baseline_path: Option<String> = None;
    let mut criterion = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json_path = args.next(),
            "--baseline" => baseline_path = args.next(),
            "--criterion" => criterion = true,
            other => {
                if let Ok(n) = other.parse() {
                    scale = n;
                }
            }
        }
    }

    println!("=== Optimizer effect: --opt-level 0 vs 2, interpreted (scale={scale}) ===");
    println!(
        "{:<12} {:>8} {:>8} {:>7} {:>9} {:>9} {:>7} {:>7} {:>12} {:>12}",
        "app",
        "ops O0",
        "ops O2",
        "Δops%",
        "ctx O0",
        "ctx O2",
        "lnk O0",
        "lnk O2",
        "steps O0",
        "steps O2"
    );
    let mut sides = Vec::new();
    let mut reduced = 0usize;
    for app in all_apps() {
        let (unopt, dram0) = measure(&app, scale, 0);
        let (opt, dram2) = measure(&app, scale, 2);
        assert_eq!(
            dram0, dram2,
            "{}: optimized run must leave bit-identical DRAM",
            app.name
        );
        let delta = 100.0 * (unopt.mir_ops as f64 - opt.mir_ops as f64) / unopt.mir_ops as f64;
        if opt.mir_ops < unopt.mir_ops {
            reduced += 1;
        }
        println!(
            "{:<12} {:>8} {:>8} {:>6.1}% {:>9} {:>9} {:>7} {:>7} {:>12} {:>12}",
            app.name,
            unopt.mir_ops,
            opt.mir_ops,
            delta,
            unopt.contexts,
            opt.contexts,
            unopt.links,
            opt.links,
            unopt.steps,
            opt.steps,
        );
        sides.push((app, unopt, opt));
    }
    println!(
        "\n{reduced}/{} apps shrink in MIR op count at -O2",
        sides.len()
    );

    println!("\n=== Execution plan vs interpreter, default level (scale={scale}) ===");
    println!(
        "{:<12} {:>10} {:>10} {:>12} {:>12} {:>9} {:>9} {:>8}",
        "app",
        "plan stp",
        "intp stp",
        "plan stp/s",
        "intp stp/s",
        "plan i/s",
        "intp i/s",
        "speedup"
    );
    let mut rows = Vec::new();
    let mut faster = 0usize;
    for (app, unopt, opt) in sides {
        let p = prepare_app(&app, revet_bench::DEFAULT_OUTER, scale, &opts_at(2));
        let (planned, interp, dram_p, dram_i) = time_modes(&p);
        assert_eq!(
            dram_p, dram_i,
            "{}: planned run must leave bit-identical DRAM vs interpreted",
            app.name
        );
        let row = Row {
            name: app.name,
            unopt,
            opt,
            planned,
            interp,
        };
        if row.plan_speedup() >= 1.5 {
            faster += 1;
        }
        println!(
            "{:<12} {:>10} {:>10} {:>12.2e} {:>12.2e} {:>9.1} {:>9.1} {:>7.2}x",
            row.name,
            row.planned.steps,
            row.interp.steps,
            row.planned.steps_per_sec,
            row.interp.steps_per_sec,
            row.planned.instances_per_sec,
            row.interp.instances_per_sec,
            row.plan_speedup(),
        );
        rows.push(row);
    }
    println!(
        "\n{faster}/{} apps execute >=1.5x faster through the plan",
        rows.len()
    );

    if let Some(path) = json_path {
        let json = rows_to_json(&rows, scale);
        std::fs::write(&path, json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("wrote {path}");
    }

    if let Some(path) = baseline_path {
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        let baseline = parse_baseline(&text);
        assert!(
            !baseline.is_empty(),
            "{path}: no rows with app + plan_speedup found"
        );
        let mut failed = false;
        for (name, base) in &baseline {
            let Some(row) = rows.iter().find(|r| r.name == name.as_str()) else {
                println!("baseline: app {name} no longer measured, skipping");
                continue;
            };
            let now = row.plan_speedup();
            let floor = base * 0.8;
            if now < floor {
                println!(
                    "baseline FAIL {name}: plan speedup {now:.2}x < 0.8 * baseline {base:.2}x"
                );
                failed = true;
            } else {
                println!("baseline ok   {name}: plan speedup {now:.2}x (baseline {base:.2}x)");
            }
        }
        if failed {
            eprintln!("plan speedup regressed >20% against {path}");
            std::process::exit(1);
        }
    }

    println!("\n=== Untimed executor: ready-set vs dense sweep (scale={scale}) ===");
    println!(
        "{:<12} {:>6} {:>12} {:>12} {:>8} {:>8} {:>8}",
        "app", "nodes", "ready steps", "dense steps", "r-ratio", "d-ratio", "work x"
    );
    let mut largest: Option<(usize, App)> = None;
    for app in all_apps() {
        let (ready, nodes) = run_ready(&app, scale);
        let dense = run_dense(&app, scale);
        // The ready set does less work *per round*; on workloads whose
        // productive firing count is close to the dense node×round product
        // (token-serial apps like huff-dec at large scales) the totals can
        // invert — flag those rows instead of aborting the whole harness.
        let marker = if ready.steps < dense.steps { " " } else { "!" };
        println!(
            "{marker}{:<11} {:>6} {:>12} {:>12} {:>8.3} {:>8.3} {:>7.1}x",
            app.name,
            nodes,
            ready.steps,
            dense.steps,
            ready.productive_ratio(),
            dense.productive_ratio(),
            dense.steps as f64 / ready.steps.max(1) as f64,
        );
        if largest.as_ref().is_none_or(|(n, _)| nodes > *n) {
            largest = Some((nodes, app));
        }
    }

    if !criterion {
        return;
    }
    // Criterion timing on the largest evaluation app graph (compile + load
    // are inside the loop — CompiledProgram is consumed by a run — so the
    // two measurements differ only in the executor).
    let (nodes, app) = largest.expect("app registry is not empty");
    println!(
        "\n=== Wall-clock, largest app graph: {} ({nodes} nodes) ===",
        app.name
    );
    let mut c = Criterion::default().configure_from_args();
    let mut group = c.benchmark_group("untimed_exec");
    group.sample_size(10);
    group.bench_function("ready_set", |b| {
        b.iter(|| black_box(run_ready(&app, scale)))
    });
    group.bench_function("dense_sweep", |b| {
        b.iter(|| black_box(run_dense(&app, scale)))
    });
    group.finish();
}
