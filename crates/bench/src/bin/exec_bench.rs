//! Executor + optimizer benchmark over the eight Table III apps.
//!
//! For every app this driver compiles twice — classical optimizations off
//! (`--opt-level 0` equivalent) and at the default level 2 — and reports:
//!
//! - MIR op counts and dataflow context/link counts for both compiles
//!   (the static effect of the optimizer),
//! - untimed executor steps for both (the dynamic effect),
//!
//! while asserting the two runs leave **bit-identical DRAM** and both
//! match the app's oracle — the optimizer must never change results. It
//! then reruns the ready-set vs dense-sweep scheduler comparison retained
//! from the original harness.
//!
//! Usage:
//! `cargo run --release -p revet-bench --bin exec_bench [scale] [--json PATH] [--criterion]`
//!
//! `--json PATH` additionally writes the per-app rows as a JSON array
//! (the CI artifact `BENCH_exec.json`). `--criterion` appends the
//! Criterion wall-clock comparison on the largest app graph.

use criterion::{black_box, Criterion};
use revet_apps::{all_apps, App};
use revet_bench::prepare_app;
use revet_core::{PassOptions, Session};
use revet_machine::ExecReport;
use std::fmt::Write as _;

/// Static + dynamic measurements for one app at one opt level.
struct Side {
    mir_ops: usize,
    contexts: usize,
    links: usize,
    steps: u64,
}

struct Row {
    name: &'static str,
    unopt: Side,
    opt: Side,
}

fn opts_at(level: u8) -> PassOptions {
    PassOptions {
        opt_level: level,
        ..PassOptions::default()
    }
}

/// Counts post-pipeline MIR ops for `app` at `level` (the compiled
/// program keeps only the dataflow graph, so the MIR census runs through
/// a separate staged session on the same source).
fn mir_ops(app: &App, outer: u32, level: u8) -> usize {
    let mut opts = opts_at(level);
    opts.dram_bytes = revet_apps::DRAM_BYTES;
    let mut s = Session::new((app.source)(outer), opts);
    s.run_passes()
        .unwrap_or_else(|e| panic!("{}: {e}", app.name))
        .op_count()
}

/// Compiles and runs `app` untimed at `level`; returns the measurements
/// and the final DRAM image (for the bit-identical cross-check).
fn measure(app: &App, scale: usize, level: u8) -> (Side, Vec<u8>) {
    let mut p = prepare_app(app, revet_bench::DEFAULT_OUTER, scale, &opts_at(level));
    let report: ExecReport = p.program.run_untimed(&p.args, 200_000_000).unwrap();
    app.check(&p.program, &p.workload);
    let side = Side {
        mir_ops: mir_ops(app, revet_bench::DEFAULT_OUTER, level),
        contexts: p.program.contexts.len(),
        links: p.program.links.len(),
        steps: report.steps,
    };
    (side, p.program.graph.mem.dram.clone())
}

// The scheduler comparison runs with classical optimizations off so its
// numbers stay comparable with the pre-optimizer harness. Its invariant
// (the ready set does strictly fewer scheduler steps than the dense sweep
// on the same graph) holds at the default scale and above; very small
// scales can put the dense node×round product below the ready set's
// productive firing count.
fn run_ready(app: &App, scale: usize) -> (ExecReport, usize) {
    let mut p = prepare_app(app, revet_bench::DEFAULT_OUTER, scale, &opts_at(0));
    let nodes = p.program.graph.node_count();
    (p.program.run_untimed(&p.args, 200_000_000).unwrap(), nodes)
}

fn run_dense(app: &App, scale: usize) -> ExecReport {
    let mut p = prepare_app(app, revet_bench::DEFAULT_OUTER, scale, &opts_at(0));
    p.program.run_untimed_dense(&p.args, 200_000_000).unwrap()
}

fn json_escape_free(s: &str) -> &str {
    debug_assert!(!s.contains(['"', '\\']), "app names stay JSON-plain");
    s
}

fn rows_to_json(rows: &[Row], scale: usize) -> String {
    let mut out = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "  {{\"app\": \"{}\", \"scale\": {scale}, \
             \"mir_ops_o0\": {}, \"mir_ops_o2\": {}, \
             \"contexts_o0\": {}, \"contexts_o2\": {}, \
             \"links_o0\": {}, \"links_o2\": {}, \
             \"steps_o0\": {}, \"steps_o2\": {}}}",
            json_escape_free(r.name),
            r.unopt.mir_ops,
            r.opt.mir_ops,
            r.unopt.contexts,
            r.opt.contexts,
            r.unopt.links,
            r.opt.links,
            r.unopt.steps,
            r.opt.steps,
        );
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("]\n");
    out
}

fn main() {
    let mut scale: usize = 256;
    let mut json_path: Option<String> = None;
    let mut criterion = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json_path = args.next(),
            "--criterion" => criterion = true,
            other => {
                if let Ok(n) = other.parse() {
                    scale = n;
                }
            }
        }
    }

    println!("=== Optimizer effect: --opt-level 0 vs 2 (scale={scale}) ===");
    println!(
        "{:<12} {:>8} {:>8} {:>7} {:>9} {:>9} {:>7} {:>7} {:>12} {:>12}",
        "app",
        "ops O0",
        "ops O2",
        "Δops%",
        "ctx O0",
        "ctx O2",
        "lnk O0",
        "lnk O2",
        "steps O0",
        "steps O2"
    );
    let mut rows = Vec::new();
    let mut reduced = 0usize;
    for app in all_apps() {
        let (unopt, dram0) = measure(&app, scale, 0);
        let (opt, dram2) = measure(&app, scale, 2);
        assert_eq!(
            dram0, dram2,
            "{}: optimized run must leave bit-identical DRAM",
            app.name
        );
        let delta = 100.0 * (unopt.mir_ops as f64 - opt.mir_ops as f64) / unopt.mir_ops as f64;
        if opt.mir_ops < unopt.mir_ops {
            reduced += 1;
        }
        println!(
            "{:<12} {:>8} {:>8} {:>6.1}% {:>9} {:>9} {:>7} {:>7} {:>12} {:>12}",
            app.name,
            unopt.mir_ops,
            opt.mir_ops,
            delta,
            unopt.contexts,
            opt.contexts,
            unopt.links,
            opt.links,
            unopt.steps,
            opt.steps,
        );
        rows.push(Row {
            name: app.name,
            unopt,
            opt,
        });
    }
    println!(
        "\n{reduced}/{} apps shrink in MIR op count at -O2",
        rows.len()
    );

    if let Some(path) = json_path {
        let json = rows_to_json(&rows, scale);
        std::fs::write(&path, json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("wrote {path}");
    }

    println!("\n=== Untimed executor: ready-set vs dense sweep (scale={scale}) ===");
    println!(
        "{:<12} {:>6} {:>12} {:>12} {:>8} {:>8} {:>8}",
        "app", "nodes", "ready steps", "dense steps", "r-ratio", "d-ratio", "work x"
    );
    let mut largest: Option<(usize, App)> = None;
    for app in all_apps() {
        let (ready, nodes) = run_ready(&app, scale);
        let dense = run_dense(&app, scale);
        // The ready set does less work *per round*; on workloads whose
        // productive firing count is close to the dense node×round product
        // (token-serial apps like huff-dec at large scales) the totals can
        // invert — flag those rows instead of aborting the whole harness.
        let marker = if ready.steps < dense.steps { " " } else { "!" };
        println!(
            "{marker}{:<11} {:>6} {:>12} {:>12} {:>8.3} {:>8.3} {:>7.1}x",
            app.name,
            nodes,
            ready.steps,
            dense.steps,
            ready.productive_ratio(),
            dense.productive_ratio(),
            dense.steps as f64 / ready.steps.max(1) as f64,
        );
        if largest.as_ref().is_none_or(|(n, _)| nodes > *n) {
            largest = Some((nodes, app));
        }
    }

    if !criterion {
        return;
    }
    // Criterion timing on the largest evaluation app graph (compile + load
    // are inside the loop — CompiledProgram is consumed by a run — so the
    // two measurements differ only in the executor).
    let (nodes, app) = largest.expect("app registry is not empty");
    println!(
        "\n=== Wall-clock, largest app graph: {} ({nodes} nodes) ===",
        app.name
    );
    let mut c = Criterion::default().configure_from_args();
    let mut group = c.benchmark_group("untimed_exec");
    group.sample_size(10);
    group.bench_function("ready_set", |b| {
        b.iter(|| black_box(run_ready(&app, scale)))
    });
    group.bench_function("dense_sweep", |b| {
        b.iter(|| black_box(run_dense(&app, scale)))
    });
    group.finish();
}
