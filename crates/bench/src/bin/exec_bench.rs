//! Executor throughput benchmark: times the untimed ready-set scheduler
//! against the retained dense-sweep reference on the evaluation apps, and
//! reports the productive-step ratios proving the ready set does strictly
//! less scheduler work for the same results.
//!
//! Usage: `cargo run --release -p revet-bench --bin exec_bench [scale]`.

use criterion::{black_box, Criterion};
use revet_apps::{all_apps, App};
use revet_bench::prepare_app;
use revet_core::PassOptions;
use revet_machine::ExecReport;

fn run_ready(app: &App, scale: usize) -> (ExecReport, usize) {
    let mut p = prepare_app(
        app,
        revet_bench::DEFAULT_OUTER,
        scale,
        &PassOptions::default(),
    );
    let nodes = p.program.graph.node_count();
    (p.program.run_untimed(&p.args, 200_000_000).unwrap(), nodes)
}

fn run_dense(app: &App, scale: usize) -> ExecReport {
    let mut p = prepare_app(
        app,
        revet_bench::DEFAULT_OUTER,
        scale,
        &PassOptions::default(),
    );
    p.program.run_untimed_dense(&p.args, 200_000_000).unwrap()
}

fn main() {
    let scale: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(256);

    println!("=== Untimed executor: ready-set vs dense sweep (scale={scale}) ===");
    println!(
        "{:<12} {:>6} {:>12} {:>12} {:>8} {:>8} {:>8}",
        "app", "nodes", "ready steps", "dense steps", "r-ratio", "d-ratio", "work x"
    );
    let mut largest: Option<(usize, App)> = None;
    for app in all_apps() {
        let (ready, nodes) = run_ready(&app, scale);
        let dense = run_dense(&app, scale);
        assert!(
            ready.steps < dense.steps,
            "{}: ready set not strictly cheaper ({} vs {})",
            app.name,
            ready.steps,
            dense.steps
        );
        println!(
            "{:<12} {:>6} {:>12} {:>12} {:>8.3} {:>8.3} {:>7.1}x",
            app.name,
            nodes,
            ready.steps,
            dense.steps,
            ready.productive_ratio(),
            dense.productive_ratio(),
            dense.steps as f64 / ready.steps.max(1) as f64,
        );
        if largest.as_ref().is_none_or(|(n, _)| nodes > *n) {
            largest = Some((nodes, app));
        }
    }

    // Criterion timing on the largest evaluation app graph (compile + load
    // are inside the loop — CompiledProgram is consumed by a run — so the
    // two measurements differ only in the executor).
    let (nodes, app) = largest.expect("app registry is not empty");
    println!(
        "\n=== Wall-clock, largest app graph: {} ({nodes} nodes) ===",
        app.name
    );
    let mut c = Criterion::default().configure_from_args();
    let mut group = c.benchmark_group("untimed_exec");
    group.sample_size(10);
    group.bench_function("ready_set", |b| {
        b.iter(|| black_box(run_ready(&app, scale)))
    });
    group.bench_function("dense_sweep", |b| {
        b.iter(|| black_box(run_dense(&app, scale)))
    });
    group.finish();
}
