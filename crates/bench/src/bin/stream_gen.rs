//! Streaming-session load generator for `revet-serve`: N concurrent
//! clients each hold a long-lived resident session, feed it in chunks,
//! and oracle-check the close-time DRAM window against one-shot
//! execution of the same input.
//!
//! The smoke contract mirrors `load_gen`: **every** session must
//! succeed, every close window must be bit-identical to the one-shot
//! `Execute` reply *and* to the app's own workload oracle, and all N
//! sessions must be provably resident at once (a rendezvous barrier
//! holds every session open while the main thread scrapes `Status`).
//!
//! ```text
//! Usage: stream_gen [--streams N] [--chunks K] [--scale S]
//!                   [--addr HOST:PORT] [--json [PATH]]
//! ```
//!
//! Defaults: 8 streams × 4 chunks at scale 8, self-booted server, no
//! JSON. `--json` without a path splices a `"streams"` section into
//! `BENCH_serve.json` next to `load_gen`'s flat record.

use revet_apps::{all_apps, DRAM_BYTES};
use revet_core::PassOptions;
use revet_runtime::LatencyPercentiles;
use revet_serve::protocol::{ExecuteRequest, InstanceOutcome, OpenStreamRequest};
use revet_serve::{ServeClient, ServeConfig, Server};
use std::net::SocketAddr;
use std::sync::Barrier;
use std::time::{Duration, Instant};

/// One app's streaming workload: what to open/feed, and what the close
/// window must contain.
struct StreamWorkload {
    name: &'static str,
    source: String,
    options: PassOptions,
    args: Vec<u32>,
    dram_inits: Vec<(u64, Vec<u8>)>,
    window: (u64, u64),
    expected: Vec<u8>,
}

fn stream_workloads(scale: usize, outer: u32, seed: u64) -> Vec<StreamWorkload> {
    all_apps()
        .iter()
        .map(|a| {
            let options = PassOptions {
                dram_bytes: DRAM_BYTES,
                ..PassOptions::default()
            };
            let w = (a.workload)(scale, seed);
            let slice = DRAM_BYTES / a.dram_symbols();
            StreamWorkload {
                name: a.name,
                source: (a.source)(outer),
                options,
                args: w.args.clone(),
                dram_inits: w
                    .inits
                    .iter()
                    .map(|(sym, bytes)| ((sym * slice) as u64, bytes.clone()))
                    .collect(),
                window: ((w.out_sym * slice) as u64, w.expected.len() as u64),
                expected: w.expected,
            }
        })
        .collect()
}

#[derive(Default)]
struct StreamOutcome {
    feed_latencies: Vec<Duration>,
    poll_latencies: Vec<Duration>,
    close_latency: Option<Duration>,
    chunks_ok: u64,
    sessions_ok: u64,
}

/// One streaming client's run: open a session, rendezvous so all N are
/// resident at once, feed `chunks` argsets one at a time (polling each
/// to quiescence), close, and verify the close window against both the
/// one-shot `Execute` reply and the workload oracle. Panics on any
/// divergence — the smoke contract is *all* sessions bit-identical.
fn run_stream(
    addr: SocketAddr,
    idx: usize,
    chunks: usize,
    apps: &[StreamWorkload],
    resident: &Barrier,
    scraped: &Barrier,
) -> StreamOutcome {
    let wl = &apps[idx % apps.len()];
    let mut client = ServeClient::connect(addr).expect("connect");
    let mut out = StreamOutcome::default();

    let program_id = client
        .compile(&wl.source, &wl.options)
        .unwrap_or_else(|e| panic!("stream {idx} [{}]: compile: {e}", wl.name))
        .program_id;

    // One-shot reference over the same wire. The apps' DRAM writes are
    // idempotent, so a single instance leaves the same image as the
    // session's `chunks` identical argsets.
    let reply = client
        .execute(ExecuteRequest {
            program_id,
            argsets: vec![wl.args.clone()],
            dram_inits: wl.dram_inits.clone(),
            window: wl.window,
        })
        .unwrap_or_else(|e| panic!("stream {idx} [{}]: one-shot execute: {e}", wl.name));
    let InstanceOutcome::Ok { dram: oneshot, .. } = &reply.instances[0] else {
        panic!("stream {idx} [{}]: one-shot failed", wl.name);
    };
    assert_eq!(
        oneshot, &wl.expected,
        "stream {idx} [{}]: one-shot diverges from the oracle",
        wl.name
    );

    let session = client
        .open_stream(OpenStreamRequest {
            program_id,
            dram_inits: wl.dram_inits.clone(),
            window: wl.window,
        })
        .unwrap_or_else(|e| panic!("stream {idx} [{}]: open: {e}", wl.name));

    for chunk in 0..chunks {
        let t0 = Instant::now();
        let accepted = client
            .feed(session, vec![wl.args.clone()])
            .unwrap_or_else(|e| panic!("stream {idx} [{}] chunk {chunk}: feed: {e}", wl.name));
        out.feed_latencies.push(t0.elapsed());
        assert_eq!(accepted, 1, "stream {idx} chunk {chunk} not accepted");

        if chunk == 0 {
            // Rendezvous: every client parks here with a fed, unpolled
            // session while the main thread scrapes Status — N sessions
            // concurrently resident with nonzero footprint, provably.
            resident.wait();
            scraped.wait();
        }

        let t1 = Instant::now();
        let poll = client
            .poll(session)
            .unwrap_or_else(|e| panic!("stream {idx} [{}] chunk {chunk}: poll: {e}", wl.name));
        out.poll_latencies.push(t1.elapsed());
        assert!(
            poll.finished,
            "stream {idx} [{}] chunk {chunk}: tokens left in flight",
            wl.name
        );
        out.chunks_ok += 1;
    }

    let t2 = Instant::now();
    let close = client
        .close_stream(session)
        .unwrap_or_else(|e| panic!("stream {idx} [{}]: close: {e}", wl.name));
    out.close_latency = Some(t2.elapsed());
    assert_eq!(
        &close.dram, oneshot,
        "stream {idx} [{}]: chunked session DRAM differs from one-shot execute",
        wl.name
    );
    assert_eq!(
        close.dram, wl.expected,
        "stream {idx} [{}]: session diverges from the oracle",
        wl.name
    );
    assert!(
        close.merged.productive_steps > 0,
        "stream {idx} [{}]: merged report is empty",
        wl.name
    );
    out.sessions_ok = 1;
    out
}

/// p50/p95/p99 of a latency sample in microseconds (0s when empty).
fn percentiles_us(samples: &mut [Duration]) -> (u64, u64, u64) {
    match LatencyPercentiles::from_samples(samples) {
        Some(lat) => (
            lat.p50.as_micros() as u64,
            lat.p95.as_micros() as u64,
            lat.p99.as_micros() as u64,
        ),
        None => (0, 0, 0),
    }
}

/// Splices `section` in as the `"streams"` key of the flat JSON object
/// at `path` (the document `load_gen --json` writes), replacing any
/// previous `"streams"` section so re-runs stay idempotent. A missing
/// file yields a document holding only the section.
fn splice_streams_section(path: &str, section: &str) -> String {
    let mut doc = std::fs::read_to_string(path).unwrap_or_else(|_| "{\n}\n".to_string());
    if let Some(pos) = doc.find("  \"streams\":") {
        // Drop the old section (ours is always last — see below).
        doc.truncate(pos);
        doc = doc.trim_end().trim_end_matches(',').to_string();
        doc.push_str("\n}\n");
    }
    let close = doc.rfind('}').expect("trajectory file is a JSON object");
    let head = doc[..close].trim_end().trim_end_matches(',');
    let sep = if head.ends_with('{') { "" } else { "," };
    format!("{head}{sep}\n  \"streams\": {section}\n}}\n")
}

struct Args {
    streams: usize,
    chunks: usize,
    scale: usize,
    addr: Option<String>,
    json: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        streams: 8,
        chunks: 4,
        scale: 8,
        addr: None,
        json: None,
    };
    let mut argv = std::env::args().skip(1).peekable();
    while let Some(flag) = argv.next() {
        let numeric = |argv: &mut std::iter::Peekable<std::iter::Skip<std::env::Args>>| -> usize {
            argv.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{flag} needs a numeric value"))
        };
        match flag.as_str() {
            "--streams" => args.streams = numeric(&mut argv).max(1),
            "--chunks" => args.chunks = numeric(&mut argv).max(1),
            "--scale" => args.scale = numeric(&mut argv).max(1),
            "--addr" => args.addr = Some(argv.next().expect("--addr needs HOST:PORT")),
            "--json" => {
                args.json = Some(match argv.peek() {
                    Some(v) if !v.starts_with("--") => argv.next().unwrap(),
                    _ => "BENCH_serve.json".to_string(),
                });
            }
            other => panic!("unknown flag {other} (see the doc comment for usage)"),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let apps = stream_workloads(args.scale, 2, 0x5EED);

    // Self-boot unless pointed at an external server; the table must
    // admit every concurrent session.
    let own_server = if args.addr.is_none() {
        Some(
            Server::spawn(ServeConfig {
                session_capacity: args.streams.max(32),
                ..ServeConfig::default()
            })
            .expect("boot server"),
        )
    } else {
        None
    };
    let addr: SocketAddr = match (&args.addr, &own_server) {
        (Some(a), _) => a.parse().expect("--addr must be HOST:PORT"),
        (None, Some(s)) => s.local_addr(),
        _ => unreachable!(),
    };

    println!(
        "=== stream_gen: {} streams × {} chunks, scale={}, {} apps, server {} ===",
        args.streams,
        args.chunks,
        args.scale,
        apps.len(),
        if own_server.is_some() {
            format!("self-booted at {addr}")
        } else {
            format!("external at {addr}")
        }
    );

    // Barriers rendezvous the main thread with every stream while all
    // sessions are simultaneously open (see `run_stream`).
    let resident = Barrier::new(args.streams + 1);
    let scraped = Barrier::new(args.streams + 1);

    let wall = Instant::now();
    let (outcomes, peak) = std::thread::scope(|s| {
        let handles: Vec<_> = (0..args.streams)
            .map(|i| {
                let (apps, resident, scraped) = (&apps, &resident, &scraped);
                s.spawn(move || run_stream(addr, i, args.chunks, apps, resident, scraped))
            })
            .collect();

        // All streams are open and parked: scrape the resident peak.
        resident.wait();
        let mut scrape = ServeClient::connect(addr).expect("scrape connect");
        let peak = scrape.status().expect("status");
        scraped.wait();

        let outcomes: Vec<StreamOutcome> = handles
            .into_iter()
            .map(|h| h.join().expect("stream thread failed"))
            .collect();
        (outcomes, peak)
    });
    let elapsed = wall.elapsed();

    assert_eq!(
        peak.open_sessions, args.streams as u64,
        "all {} sessions must be concurrently resident at the rendezvous",
        args.streams
    );
    assert!(
        peak.session_resident_bytes > 0,
        "fed sessions must report nonzero resident bytes at the rendezvous"
    );

    let sessions_ok: u64 = outcomes.iter().map(|o| o.sessions_ok).sum();
    let chunks_ok: u64 = outcomes.iter().map(|o| o.chunks_ok).sum();
    let mut feeds: Vec<Duration> = outcomes
        .iter()
        .flat_map(|o| o.feed_latencies.clone())
        .collect();
    let mut polls: Vec<Duration> = outcomes
        .iter()
        .flat_map(|o| o.poll_latencies.clone())
        .collect();
    let mut closes: Vec<Duration> = outcomes.iter().filter_map(|o| o.close_latency).collect();

    let mut scrape = ServeClient::connect(addr).expect("status connect");
    let status = scrape.status().expect("status");
    let metrics = scrape.metrics().expect("metrics");

    let secs = elapsed.as_secs_f64();
    let cps = chunks_ok as f64 / secs;
    let (feed_p50, feed_p95, feed_p99) = percentiles_us(&mut feeds);
    let (poll_p50, poll_p95, poll_p99) = percentiles_us(&mut polls);
    let (close_p50, _, _) = percentiles_us(&mut closes);
    println!(
        "sessions     {sessions_ok}/{} ok   chunks {chunks_ok} ok   elapsed {:.1} ms",
        args.streams,
        secs * 1e3
    );
    println!(
        "throughput   {cps:.1} chunks/s   peak concurrent resident sessions {}",
        peak.open_sessions
    );
    println!("feed latency p50 {feed_p50} us   p95 {feed_p95} us   p99 {feed_p99} us");
    println!("poll latency p50 {poll_p50} us   p95 {poll_p95} us   p99 {poll_p99} us");
    println!("close        p50 {close_p50} us");
    println!(
        "sessions now open {} evicted {} resident_bytes {}   (peak resident_bytes {})",
        status.open_sessions,
        status.evicted_sessions,
        status.session_resident_bytes,
        peak.session_resident_bytes
    );
    // The Metrics scrape must agree with the Status frame's session view.
    assert_eq!(
        metrics.get("serve.sessions.open"),
        Some(status.open_sessions),
        "Metrics and Status frames must agree on open sessions"
    );
    assert_eq!(
        metrics.get("serve.sessions.evicted"),
        Some(status.evicted_sessions),
        "Metrics and Status frames must agree on evictions"
    );

    if let Some(path) = &args.json {
        let section = format!(
            "{{\n    \"streams\": {},\n    \"chunks_per_stream\": {},\n    \"scale\": {},\n    \
             \"apps\": {},\n    \"sessions_ok\": {sessions_ok},\n    \"chunks_ok\": {chunks_ok},\n    \
             \"elapsed_ms\": {:.3},\n    \"chunks_per_sec\": {cps:.3},\n    \
             \"peak_open_sessions\": {},\n    \"peak_resident_bytes\": {},\n    \
             \"evicted_sessions\": {},\n    \
             \"feed_latency_us\": {{\"p50\": {feed_p50}, \"p95\": {feed_p95}, \"p99\": {feed_p99}}},\n    \
             \"poll_latency_us\": {{\"p50\": {poll_p50}, \"p95\": {poll_p95}, \"p99\": {poll_p99}}},\n    \
             \"close_latency_us\": {{\"p50\": {close_p50}}}\n  }}",
            args.streams,
            args.chunks,
            args.scale,
            apps.len(),
            secs * 1e3,
            peak.open_sessions,
            peak.session_resident_bytes,
            status.evicted_sessions,
        );
        let doc = splice_streams_section(path, &section);
        std::fs::write(path, doc).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("wrote streams section into {path}");
    }

    if let Some(server) = own_server {
        let stats = server.shutdown();
        assert_eq!(stats.failed_instances, 0, "no instance may fail");
    }

    // The smoke contract: every session succeeded and drained clean.
    assert_eq!(
        sessions_ok, args.streams as u64,
        "all sessions must succeed"
    );
    assert_eq!(
        chunks_ok,
        (args.streams * args.chunks) as u64,
        "all chunks must be accepted and drained"
    );
    assert_eq!(status.open_sessions, 0, "every session must be closed");
    println!(
        "all {} sessions succeeded; chunked outputs bit-identical to one-shot and oracle-validated.",
        args.streams
    );
}
