//! Regenerates Table II (RDA parameters).
fn main() {
    println!(
        "=== Table II: RDA parameters ===\n{}",
        revet_bench::table2()
    );
}
