//! Load generator for the `revet-serve` service: N client threads firing
//! a mixed compile+execute workload over the eight evaluation apps,
//! reporting end-to-end throughput and p50/p95/p99 request latency.
//!
//! By default it boots its own server on an ephemeral loopback port —
//! the CI smoke path: boot, fire a burst, assert **every** request
//! succeeded and every instance's DRAM window matches the app oracle,
//! exit non-zero otherwise. Point it at an external server with
//! `--addr`.
//!
//! ```text
//! Usage: load_gen [--clients N] [--requests M] [--instances K]
//!                 [--scale S] [--addr HOST:PORT] [--json [PATH]]
//! ```
//!
//! Defaults: 4 clients × 6 requests × 2 instances at scale 16,
//! self-booted server, no JSON. `--json` without a path writes
//! `BENCH_serve.json` (the machine-readable serving-trajectory record).

use revet_apps::{all_apps, DRAM_BYTES};
use revet_core::PassOptions;
use revet_runtime::LatencyPercentiles;
use revet_serve::protocol::{ExecuteRequest, InstanceOutcome};
use revet_serve::{ServeClient, ServeConfig, Server};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// One app's remote workload: what to send, and what must come back.
struct RemoteWorkload {
    name: &'static str,
    source: String,
    options: PassOptions,
    args: Vec<u32>,
    dram_inits: Vec<(u64, Vec<u8>)>,
    window: (u64, u64),
    expected: Vec<u8>,
}

fn remote_workloads(scale: usize, outer: u32, seed: u64) -> Vec<RemoteWorkload> {
    all_apps()
        .iter()
        .map(|a| {
            let options = PassOptions {
                dram_bytes: DRAM_BYTES,
                ..PassOptions::default()
            };
            let w = (a.workload)(scale, seed);
            let slice = DRAM_BYTES / a.dram_symbols();
            RemoteWorkload {
                name: a.name,
                source: (a.source)(outer),
                options,
                args: w.args.clone(),
                dram_inits: w
                    .inits
                    .iter()
                    .map(|(sym, bytes)| ((sym * slice) as u64, bytes.clone()))
                    .collect(),
                window: ((w.out_sym * slice) as u64, w.expected.len() as u64),
                expected: w.expected,
            }
        })
        .collect()
}

#[derive(Default)]
struct ClientOutcome {
    /// End-to-end execute round-trip latencies.
    latencies: Vec<Duration>,
    /// Compile round-trip latencies (first touch compiles, rest hit).
    compile_latencies: Vec<Duration>,
    requests_ok: u64,
    instances_ok: u64,
    cache_hits_observed: u64,
}

/// One client thread's run. Panics (failing the whole binary) on any
/// server error or oracle mismatch: the smoke contract is *all* requests
/// succeed, not "most".
fn run_client(
    addr: SocketAddr,
    client_idx: usize,
    requests: usize,
    instances: usize,
    apps: &[RemoteWorkload],
) -> ClientOutcome {
    let mut client = ServeClient::connect(addr).expect("connect");
    let mut out = ClientOutcome::default();
    for r in 0..requests {
        // Stagger app order per client so the mix interleaves.
        let wl = &apps[(client_idx + r) % apps.len()];
        let t0 = Instant::now();
        let compiled = client
            .compile(&wl.source, &wl.options)
            .unwrap_or_else(|e| panic!("client {client_idx} req {r} [{}]: compile: {e}", wl.name));
        out.compile_latencies.push(t0.elapsed());
        out.cache_hits_observed += compiled.cached as u64;

        let t1 = Instant::now();
        let reply = client
            .execute(ExecuteRequest {
                program_id: compiled.program_id,
                argsets: (0..instances).map(|_| wl.args.clone()).collect(),
                dram_inits: wl.dram_inits.clone(),
                window: wl.window,
            })
            .unwrap_or_else(|e| panic!("client {client_idx} req {r} [{}]: execute: {e}", wl.name));
        out.latencies.push(t1.elapsed());
        assert_eq!(reply.instances.len(), instances);
        for (i, inst) in reply.instances.iter().enumerate() {
            match inst {
                InstanceOutcome::Ok { dram, .. } => {
                    assert_eq!(
                        dram, &wl.expected,
                        "client {client_idx} req {r} [{}] instance {i}: output differs from oracle",
                        wl.name
                    );
                    out.instances_ok += 1;
                }
                InstanceOutcome::Err { message } => {
                    panic!(
                        "client {client_idx} req {r} [{}] instance {i}: {message}",
                        wl.name
                    )
                }
            }
        }
        out.requests_ok += 1;
    }
    out
}

/// p50/p95/p99 of a latency sample in microseconds (0s when empty),
/// via the runtime's shared nearest-rank implementation.
fn percentiles_us(samples: &mut [Duration]) -> (u64, u64, u64) {
    match LatencyPercentiles::from_samples(samples) {
        Some(lat) => (
            lat.p50.as_micros() as u64,
            lat.p95.as_micros() as u64,
            lat.p99.as_micros() as u64,
        ),
        None => (0, 0, 0),
    }
}

struct Args {
    clients: usize,
    requests: usize,
    instances: usize,
    scale: usize,
    addr: Option<String>,
    json: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        clients: 4,
        requests: 6,
        instances: 2,
        scale: 16,
        addr: None,
        json: None,
    };
    let mut argv = std::env::args().skip(1).peekable();
    while let Some(flag) = argv.next() {
        let numeric = |argv: &mut std::iter::Peekable<std::iter::Skip<std::env::Args>>| -> usize {
            argv.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{flag} needs a numeric value"))
        };
        match flag.as_str() {
            "--clients" => args.clients = numeric(&mut argv).max(1),
            "--requests" => args.requests = numeric(&mut argv).max(1),
            "--instances" => args.instances = numeric(&mut argv).max(1),
            "--scale" => args.scale = numeric(&mut argv).max(1),
            "--addr" => args.addr = Some(argv.next().expect("--addr needs HOST:PORT")),
            "--json" => {
                // Optional path operand; default trajectory file.
                args.json = Some(match argv.peek() {
                    Some(v) if !v.starts_with("--") => argv.next().unwrap(),
                    _ => "BENCH_serve.json".to_string(),
                });
            }
            other => panic!("unknown flag {other} (see the doc comment for usage)"),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let apps = remote_workloads(args.scale, 2, 0x5EED);

    // Self-boot unless pointed at an external server.
    let own_server = if args.addr.is_none() {
        Some(Server::spawn(ServeConfig::default()).expect("boot server"))
    } else {
        None
    };
    let addr: SocketAddr = match (&args.addr, &own_server) {
        (Some(a), _) => a.parse().expect("--addr must be HOST:PORT"),
        (None, Some(s)) => s.local_addr(),
        _ => unreachable!(),
    };

    println!(
        "=== load_gen: {} clients × {} requests × {} instances, scale={}, {} apps, server {} ===",
        args.clients,
        args.requests,
        args.instances,
        args.scale,
        apps.len(),
        if own_server.is_some() {
            format!("self-booted at {addr}")
        } else {
            format!("external at {addr}")
        }
    );

    // Pre-flight: the structured CompileFailed path must be live before
    // load starts — a known-bad source comes back as machine-readable
    // diagnostics (code + line/col), not a flattened string.
    {
        let mut probe = ServeClient::connect(addr).expect("probe connect");
        let err = probe
            .compile("void main() {\n  u32 a = ;\n}", &PassOptions::default())
            .expect_err("bad source must be refused");
        let details = err
            .compile_diagnostics()
            .expect("CompileFailed must carry structured diagnostics");
        assert!(
            details.iter().any(|d| d.code == "E0103" && d.line == 2),
            "diagnostic code/line missing from {details:?}"
        );
        println!(
            "compile-failure probe: {} structured diagnostic(s), first: {}",
            details.len(),
            details[0]
        );
    }

    let wall = Instant::now();
    let outcomes: Vec<ClientOutcome> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..args.clients)
            .map(|c| {
                let apps = &apps;
                s.spawn(move || run_client(addr, c, args.requests, args.instances, apps))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread failed"))
            .collect()
    });
    let elapsed = wall.elapsed();

    let requests_ok: u64 = outcomes.iter().map(|o| o.requests_ok).sum();
    let instances_ok: u64 = outcomes.iter().map(|o| o.instances_ok).sum();
    let hits_observed: u64 = outcomes.iter().map(|o| o.cache_hits_observed).sum();
    let total_requests = (args.clients * args.requests) as u64;
    let mut latencies: Vec<Duration> = outcomes.iter().flat_map(|o| o.latencies.clone()).collect();
    let mut compiles: Vec<Duration> = outcomes
        .iter()
        .flat_map(|o| o.compile_latencies.clone())
        .collect();

    let mut scrape = ServeClient::connect(addr).expect("status connect");
    let status = scrape.status().expect("status");
    let metrics = scrape.metrics().expect("metrics");

    let secs = elapsed.as_secs_f64();
    let rps = requests_ok as f64 / secs;
    let ips = instances_ok as f64 / secs;
    let (p50, p95, p99) = percentiles_us(&mut latencies);
    let (compile_p50, _, _) = percentiles_us(&mut compiles);
    println!(
        "requests     {requests_ok}/{total_requests} ok   instances {instances_ok} ok   elapsed {:.1} ms",
        secs * 1e3
    );
    println!("throughput   {rps:.1} req/s   {ips:.1} instances/s");
    println!("exec latency p50 {p50} us   p95 {p95} us   p99 {p99} us");
    println!("compile      p50 {compile_p50} us (cache hits observed by clients: {hits_observed})");
    println!(
        "server cache hits {} misses {} evictions {}   executed {} failed {}",
        status.cache_hits,
        status.cache_misses,
        status.cache_evictions,
        status.executed_instances,
        status.failed_instances
    );
    println!(
        "sessions     open {} evicted {} resident_bytes {}",
        status.open_sessions, status.evicted_sessions, status.session_resident_bytes
    );
    // The Metrics wire frame: the server-side obs sink's view of the same
    // load. A scrape endpoint must agree with the Status frame.
    println!(
        "server obs   dispatches {} productive {} instances {} peak_ready {} wall p50 {} us",
        metrics.get("exec.dispatches").unwrap_or(0),
        metrics.get("exec.productive").unwrap_or(0),
        metrics.get("exec.instances").unwrap_or(0),
        metrics.get("exec.peak_ready").unwrap_or(0),
        metrics.get("runtime.instance_wall_us.p50").unwrap_or(0),
    );
    assert_eq!(
        metrics.get("serve.executed_instances"),
        Some(status.executed_instances),
        "Metrics and Status frames must agree"
    );

    if let Some(path) = &args.json {
        let json = format!(
            "{{\n  \"bench\": \"load_gen\",\n  \"clients\": {},\n  \"requests_per_client\": {},\n  \
             \"instances_per_execute\": {},\n  \"scale\": {},\n  \"apps\": {},\n  \
             \"requests_ok\": {requests_ok},\n  \"requests_total\": {total_requests},\n  \
             \"instances_ok\": {instances_ok},\n  \"elapsed_ms\": {:.3},\n  \
             \"requests_per_sec\": {rps:.3},\n  \"instances_per_sec\": {ips:.3},\n  \
             \"exec_latency_us\": {{\"p50\": {p50}, \"p95\": {p95}, \"p99\": {p99}}},\n  \
             \"compile_latency_us\": {{\"p50\": {compile_p50}}},\n  \
             \"cache\": {{\"hits\": {}, \"misses\": {}, \"evictions\": {}}},\n  \
             \"server\": {{\"executed_instances\": {}, \"failed_instances\": {}}},\n  \
             \"obs\": {{\"dispatches\": {}, \"productive\": {}, \"peak_ready\": {}}}\n}}\n",
            args.clients,
            args.requests,
            args.instances,
            args.scale,
            apps.len(),
            secs * 1e3,
            status.cache_hits,
            status.cache_misses,
            status.cache_evictions,
            status.executed_instances,
            status.failed_instances,
            metrics.get("exec.dispatches").unwrap_or(0),
            metrics.get("exec.productive").unwrap_or(0),
            metrics.get("exec.peak_ready").unwrap_or(0),
        );
        std::fs::write(path, json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("wrote {path}");
    }

    if let Some(server) = own_server {
        let stats = server.shutdown();
        assert_eq!(stats.failed_instances, 0, "no instance may fail");
    }

    // The smoke contract: every request succeeded (run_client panics on
    // any failure, so reaching here with full counts is the proof).
    assert_eq!(requests_ok, total_requests, "all requests must succeed");
    assert_eq!(
        instances_ok,
        total_requests * args.instances as u64,
        "all instances must succeed"
    );
    // A client's r-th request targets app (client + r) % len, so some app
    // is requested twice — guaranteeing an observable cache hit — only
    // when the burst exceeds the app count (pigeonhole) or a single
    // client wraps around. Don't fail a healthy short single-client run.
    if args.clients * args.requests > apps.len() {
        assert!(
            hits_observed > 0,
            "repeated sources must be served from the program cache"
        );
    }
    println!("all {total_requests} requests succeeded; outputs oracle-validated.");
}
