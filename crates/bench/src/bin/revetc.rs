//! `revetc` — the human entry point for the staged `Session` compile API.
//!
//! ```text
//! revetc FILE [--emit ast|mir|dataflow|report] [--color|--no-color] [-O0]
//! ```
//!
//! Compiles one Revet source file and prints the requested artifact to
//! stdout. On compile failure, prints every diagnostic as a rustc-style
//! caret snippet to stderr and exits with code 1 (code 2 for usage /
//! I/O problems). `--emit`:
//!
//! - `ast` — the parsed AST (debug form)
//! - `mir` — the optimized MIR module (after high-level lowering +
//!   passes), in `revet_mir::print` textual form
//! - `dataflow` — the placed dataflow graph's contexts and links
//! - `report` — the Table IV-style resource report (default)

use revet_core::report::ResourceReport;
use revet_core::{PassOptions, Session};
use std::io::IsTerminal;
use std::process::ExitCode;

const USAGE: &str = "usage: revetc FILE [--emit ast|mir|dataflow|report] [--color|--no-color] [-O0]
       (stderr gets rustc-style diagnostics; exit 1 = compile error, 2 = usage/i/o)";

enum Emit {
    Ast,
    Mir,
    Dataflow,
    Report,
}

fn main() -> ExitCode {
    let mut file: Option<String> = None;
    let mut emit = Emit::Report;
    let mut color: Option<bool> = None;
    let mut opts = PassOptions::default();

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--emit" => {
                let Some(what) = args.next() else {
                    eprintln!("--emit needs a value\n{USAGE}");
                    return ExitCode::from(2);
                };
                emit = match what.as_str() {
                    "ast" => Emit::Ast,
                    "mir" => Emit::Mir,
                    "dataflow" => Emit::Dataflow,
                    "report" => Emit::Report,
                    other => {
                        eprintln!("unknown --emit '{other}'\n{USAGE}");
                        return ExitCode::from(2);
                    }
                };
            }
            "--color" => color = Some(true),
            "--no-color" => color = Some(false),
            "-O0" => {
                opts = PassOptions {
                    dram_bytes: opts.dram_bytes,
                    ..PassOptions::none()
                };
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if file.is_none() && !other.starts_with('-') => file = Some(a),
            other => {
                eprintln!("unexpected argument '{other}'\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let Some(file) = file else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let source = match std::fs::read_to_string(&file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("revetc: cannot read {file}: {e}");
            return ExitCode::from(2);
        }
    };
    let color = color.unwrap_or_else(|| std::io::stderr().is_terminal());

    let mut session = Session::new(source, opts).with_source_name(&file);
    let failed = match emit {
        Emit::Ast => session.parse().map(|ast| println!("{ast:#?}")).is_err(),
        Emit::Mir => {
            // The optimized module is the interesting MIR artifact; the
            // pre-pass form is reachable through the library API.
            session
                .run_passes()
                .map(|m| print!("{}", revet_mir::print_module(m)))
                .is_err()
        }
        Emit::Dataflow => session
            .to_dataflow()
            .map(|p| {
                println!("contexts: {}", p.contexts.len());
                for c in &p.contexts {
                    println!(
                        "  #{:<4} {:<10} unit={:<8} depth={} instrs={:<3} regs={:<3} {}",
                        c.id,
                        c.kind,
                        format!("{:?}", c.unit),
                        c.depth,
                        c.instrs,
                        c.regs,
                        c.label
                    );
                }
                println!("links: {}", p.links.len());
                for l in &p.links {
                    println!(
                        "  ch{:<4} arity={} class={:?} depth={}",
                        l.id, l.arity, l.class, l.depth
                    );
                }
            })
            .is_err(),
        Emit::Report => session
            .to_dataflow()
            .map(|p| println!("{}", ResourceReport::for_program(&file, &p).summary()))
            .is_err(),
    };
    if failed {
        eprint!("{}", session.render_diagnostics(color));
        let n = session.diagnostics().error_count();
        eprintln!("error: compilation failed with {n} error(s)");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
