//! `revetc` — the human entry point for the staged `Session` compile API.
//!
//! ```text
//! revetc FILE [--emit ast|mir|mir-after=<pass>|dataflow|report]
//!        [--opt-level N | -O0|-O1|-O2] [--print-pass-pipeline]
//!        [--color|--no-color]
//! ```
//!
//! Compiles one Revet source file and prints the requested artifact to
//! stdout. On compile failure, prints every diagnostic as a rustc-style
//! caret snippet to stderr and exits with code 1 (code 2 for usage /
//! I/O problems). `--emit`:
//!
//! - `ast` — the parsed AST (debug form)
//! - `mir` — the optimized MIR module (after high-level lowering +
//!   passes), in `revet_mir::print` textual form
//! - `mir-after=<pass>` — the MIR snapshot right after the named pipeline
//!   pass (e.g. `mir-after=lower_views`, `mir-after=cse`)
//! - `dataflow` — the placed dataflow graph's contexts and links
//! - `report` — the Table IV-style resource report plus the per-pass
//!   timing/op-delta table (default)
//!
//! `--opt-level N` (or the `-ON` shorthand) selects the classical
//! optimization level: 0 disables them, 1 enables fold/simplify/DCE, 2
//! (the default) adds CSE and a second clean-up round. `-O0` additionally
//! disables the optional lowering rewrites (`PassOptions::none`), matching
//! the pre-framework behavior of the flag. `--print-pass-pipeline` lists
//! the pass names the current options would run and exits; it needs no
//! FILE.

use revet_core::passes::build_pipeline;
use revet_core::report::ResourceReport;
use revet_core::{PassOptions, Session};
use std::io::IsTerminal;
use std::process::ExitCode;

const USAGE: &str = "usage: revetc FILE [--emit ast|mir|mir-after=<pass>|dataflow|report]
       [--opt-level N | -O0|-O1|-O2] [--print-pass-pipeline] [--color|--no-color]
       (stderr gets rustc-style diagnostics; exit 1 = compile error, 2 = usage/i/o)";

enum Emit {
    Ast,
    Mir,
    MirAfter(String),
    Dataflow,
    Report,
}

fn main() -> ExitCode {
    let mut file: Option<String> = None;
    let mut emit = Emit::Report;
    let mut color: Option<bool> = None;
    let mut opts = PassOptions::default();
    let mut print_pipeline = false;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--emit" => {
                let Some(what) = args.next() else {
                    eprintln!("--emit needs a value\n{USAGE}");
                    return ExitCode::from(2);
                };
                emit = match what.as_str() {
                    "ast" => Emit::Ast,
                    "mir" => Emit::Mir,
                    "dataflow" => Emit::Dataflow,
                    "report" => Emit::Report,
                    other => match other.strip_prefix("mir-after=") {
                        Some(pass) if !pass.is_empty() => Emit::MirAfter(pass.to_string()),
                        _ => {
                            eprintln!("unknown --emit '{other}'\n{USAGE}");
                            return ExitCode::from(2);
                        }
                    },
                };
            }
            "--opt-level" => {
                let level = args.next().and_then(|v| v.parse::<u8>().ok());
                let Some(level) = level else {
                    eprintln!("--opt-level needs a number\n{USAGE}");
                    return ExitCode::from(2);
                };
                opts.opt_level = level.min(2);
            }
            "--print-pass-pipeline" => print_pipeline = true,
            "--color" => color = Some(true),
            "--no-color" => color = Some(false),
            // -O0 predates the optimizer and also turns off the optional
            // lowering rewrites; -O1/-O2 only select the classical level.
            "-O0" => {
                opts = PassOptions {
                    dram_bytes: opts.dram_bytes,
                    ..PassOptions::none()
                };
            }
            "-O1" => opts.opt_level = 1,
            "-O2" => opts.opt_level = 2,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if file.is_none() && !other.starts_with('-') => file = Some(a),
            other => {
                eprintln!("unexpected argument '{other}'\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    if print_pipeline {
        for name in build_pipeline(&opts, opts.threads).names() {
            println!("{name}");
        }
        return ExitCode::SUCCESS;
    }
    let Some(file) = file else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let source = match std::fs::read_to_string(&file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("revetc: cannot read {file}: {e}");
            return ExitCode::from(2);
        }
    };
    let color = color.unwrap_or_else(|| std::io::stderr().is_terminal());

    let mut session = Session::new(source, opts).with_source_name(&file);
    if let Emit::MirAfter(pass) = &emit {
        session = session.capture_mir_after(pass);
    }
    let failed = match &emit {
        Emit::Ast => session.parse().map(|ast| println!("{ast:#?}")).is_err(),
        Emit::Mir => {
            // The optimized module is the interesting MIR artifact; the
            // pre-pass form is reachable through the library API.
            session
                .run_passes()
                .map(|m| print!("{}", revet_mir::print_module(m)))
                .is_err()
        }
        Emit::MirAfter(pass) => match session.run_passes() {
            Ok(_) => match session.captured_mir() {
                Some(text) => {
                    print!("{text}");
                    false
                }
                None => {
                    eprintln!("revetc: no pipeline pass named '{pass}' ran");
                    eprintln!("hint: --print-pass-pipeline lists the passes for these options");
                    return ExitCode::from(2);
                }
            },
            Err(_) => true,
        },
        Emit::Dataflow => session
            .to_dataflow()
            .map(|p| {
                println!("contexts: {}", p.contexts.len());
                for c in &p.contexts {
                    println!(
                        "  #{:<4} {:<10} unit={:<8} depth={} instrs={:<3} regs={:<3} {}",
                        c.id,
                        c.kind,
                        format!("{:?}", c.unit),
                        c.depth,
                        c.instrs,
                        c.regs,
                        c.label
                    );
                }
                println!("links: {}", p.links.len());
                for l in &p.links {
                    println!(
                        "  ch{:<4} arity={} class={:?} depth={}",
                        l.id, l.arity, l.class, l.depth
                    );
                }
            })
            .is_err(),
        Emit::Report => session
            .to_dataflow()
            .map(|p| {
                println!("{}", ResourceReport::for_program(&file, &p).summary());
                if let Some(report) = session.pass_report() {
                    println!("{}", report.summary());
                }
            })
            .is_err(),
    };
    if failed {
        eprint!("{}", session.render_diagnostics(color));
        let n = session.diagnostics().error_count();
        eprintln!("error: compilation failed with {n} error(s)");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
