//! `revetc` — the human entry point for the staged `Session` compile API.
//!
//! ```text
//! revetc FILE|--app NAME [--emit ast|mir|mir-after=<pass>|dataflow|report]
//!        [--opt-level N | -O0|-O1|-O2] [--print-pass-pipeline]
//!        [--profile] [--trace-out FILE.json] [--args A,B,…] [--scale N]
//!        [--color|--no-color]
//! ```
//!
//! Compiles one Revet source file and prints the requested artifact to
//! stdout. On compile failure, prints every diagnostic as a rustc-style
//! caret snippet to stderr and exits with code 1 (code 2 for usage /
//! I/O problems). `--emit`:
//!
//! - `ast` — the parsed AST (debug form)
//! - `mir` — the optimized MIR module (after high-level lowering +
//!   passes), in `revet_mir::print` textual form
//! - `mir-after=<pass>` — the MIR snapshot right after the named pipeline
//!   pass (e.g. `mir-after=lower_views`, `mir-after=cse`)
//! - `dataflow` — the placed dataflow graph's contexts and links
//! - `report` — the Table IV-style resource report plus the per-pass
//!   timing/op-delta table (default)
//!
//! `--opt-level N` (or the `-ON` shorthand) selects the classical
//! optimization level: 0 disables them, 1 enables fold/simplify/DCE, 2
//! (the default) adds CSE and a second clean-up round. `-O0` additionally
//! disables the optional lowering rewrites (`PassOptions::none`), matching
//! the pre-framework behavior of the flag. `--print-pass-pipeline` lists
//! the pass names the current options would run and exits; it needs no
//! FILE.
//!
//! ## Profiling
//!
//! `--profile` and `--trace-out FILE.json` *run* the compiled program
//! (instead of emitting a compile artifact) with an observability sink
//! attached. `--profile` prints the execution counters, per-stage compile
//! timings, and the stall-attribution "top stalls" table; `--trace-out`
//! writes a Chrome `trace_event` JSON file loadable in Perfetto
//! (ui.perfetto.dev) or `chrome://tracing`. `--app NAME` selects one of
//! the registered Table III evaluation apps (its workload supplies `main`
//! arguments and DRAM inputs; `--scale` sizes it); for a FILE, `--args`
//! passes comma-separated u32 `main` arguments.

use revet_apps::{app, DRAM_BYTES};
use revet_core::passes::build_pipeline;
use revet_core::report::ResourceReport;
use revet_core::{PassOptions, Session};
use revet_obs::ObsSink;
use revet_sltf::Word;
use std::io::IsTerminal;
use std::process::ExitCode;

const USAGE: &str =
    "usage: revetc FILE|--app NAME [--emit ast|mir|mir-after=<pass>|dataflow|report]
       [--opt-level N | -O0|-O1|-O2] [--print-pass-pipeline]
       [--profile] [--trace-out FILE.json] [--args A,B,...] [--scale N] [--color|--no-color]
       (stderr gets rustc-style diagnostics; exit 1 = compile error, 2 = usage/i/o)";

/// Trace-ring capacity for `--trace-out`: big enough for the Table III
/// apps at smoke scale, bounded so a huge run cannot eat memory.
const TRACE_CAPACITY: usize = 1 << 18;

const MAX_ROUNDS: u64 = 200_000_000;

enum Emit {
    Ast,
    Mir,
    MirAfter(String),
    Dataflow,
    Report,
}

fn main() -> ExitCode {
    let mut file: Option<String> = None;
    let mut app_name: Option<String> = None;
    let mut emit = Emit::Report;
    let mut color: Option<bool> = None;
    let mut opts = PassOptions::default();
    let mut print_pipeline = false;
    let mut profile = false;
    let mut trace_out: Option<String> = None;
    let mut main_args: Vec<u32> = Vec::new();
    let mut scale: usize = 16;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--app" => {
                let Some(name) = args.next() else {
                    eprintln!("--app needs a name\n{USAGE}");
                    return ExitCode::from(2);
                };
                app_name = Some(name);
            }
            "--profile" => profile = true,
            "--trace-out" => {
                let Some(path) = args.next() else {
                    eprintln!("--trace-out needs a file path\n{USAGE}");
                    return ExitCode::from(2);
                };
                trace_out = Some(path);
            }
            "--args" => {
                let parsed = args
                    .next()
                    .map(|v| v.split(',').map(|s| s.trim().parse::<u32>()).collect());
                match parsed {
                    Some(Ok(list)) => main_args = list,
                    _ => {
                        eprintln!("--args needs comma-separated u32s\n{USAGE}");
                        return ExitCode::from(2);
                    }
                }
            }
            "--scale" => {
                let Some(n) = args.next().and_then(|v| v.parse::<usize>().ok()) else {
                    eprintln!("--scale needs a number\n{USAGE}");
                    return ExitCode::from(2);
                };
                scale = n.max(1);
            }
            "--emit" => {
                let Some(what) = args.next() else {
                    eprintln!("--emit needs a value\n{USAGE}");
                    return ExitCode::from(2);
                };
                emit = match what.as_str() {
                    "ast" => Emit::Ast,
                    "mir" => Emit::Mir,
                    "dataflow" => Emit::Dataflow,
                    "report" => Emit::Report,
                    other => match other.strip_prefix("mir-after=") {
                        Some(pass) if !pass.is_empty() => Emit::MirAfter(pass.to_string()),
                        _ => {
                            eprintln!("unknown --emit '{other}'\n{USAGE}");
                            return ExitCode::from(2);
                        }
                    },
                };
            }
            "--opt-level" => {
                let level = args.next().and_then(|v| v.parse::<u8>().ok());
                let Some(level) = level else {
                    eprintln!("--opt-level needs a number\n{USAGE}");
                    return ExitCode::from(2);
                };
                opts.opt_level = level.min(2);
            }
            "--print-pass-pipeline" => print_pipeline = true,
            "--color" => color = Some(true),
            "--no-color" => color = Some(false),
            // -O0 predates the optimizer and also turns off the optional
            // lowering rewrites; -O1/-O2 only select the classical level.
            "-O0" => {
                opts = PassOptions {
                    dram_bytes: opts.dram_bytes,
                    ..PassOptions::none()
                };
            }
            "-O1" => opts.opt_level = 1,
            "-O2" => opts.opt_level = 2,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if file.is_none() && !other.starts_with('-') => file = Some(a),
            other => {
                eprintln!("unexpected argument '{other}'\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    if print_pipeline {
        for name in build_pipeline(&opts, opts.threads).names() {
            println!("{name}");
        }
        return ExitCode::SUCCESS;
    }
    // Resolve the input: a source FILE, or a registered evaluation app
    // (which also supplies the workload `--profile` runs).
    let selected_app = match &app_name {
        Some(name) => match app(name) {
            Some(a) => Some(a),
            None => {
                let known: Vec<&str> = revet_apps::all_apps().iter().map(|a| a.name).collect();
                eprintln!("revetc: unknown app '{name}' (known: {})", known.join(", "));
                return ExitCode::from(2);
            }
        },
        None => None,
    };
    let (file, source) = if let Some(a) = &selected_app {
        if file.is_some() {
            eprintln!("revetc: FILE and --app are mutually exclusive\n{USAGE}");
            return ExitCode::from(2);
        }
        // Apps are compiled against the shared evaluation DRAM budget.
        opts.dram_bytes = DRAM_BYTES;
        (format!("app:{}", a.name), (a.source)(2))
    } else {
        let Some(file) = file else {
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        };
        match std::fs::read_to_string(&file) {
            Ok(s) => (file, s),
            Err(e) => {
                eprintln!("revetc: cannot read {file}: {e}");
                return ExitCode::from(2);
            }
        }
    };
    let color = color.unwrap_or_else(|| std::io::stderr().is_terminal());

    let mut session = Session::new(source, opts).with_source_name(&file);
    if profile || trace_out.is_some() {
        return run_profiled(
            session,
            selected_app.as_ref(),
            &main_args,
            scale,
            profile,
            trace_out.as_deref(),
            color,
        );
    }
    if let Emit::MirAfter(pass) = &emit {
        session = session.capture_mir_after(pass);
    }
    let failed = match &emit {
        Emit::Ast => session.parse().map(|ast| println!("{ast:#?}")).is_err(),
        Emit::Mir => {
            // The optimized module is the interesting MIR artifact; the
            // pre-pass form is reachable through the library API.
            session
                .run_passes()
                .map(|m| print!("{}", revet_mir::print_module(m)))
                .is_err()
        }
        Emit::MirAfter(pass) => match session.run_passes() {
            Ok(_) => match session.captured_mir() {
                Some(text) => {
                    print!("{text}");
                    false
                }
                None => {
                    eprintln!("revetc: no pipeline pass named '{pass}' ran");
                    eprintln!("hint: --print-pass-pipeline lists the passes for these options");
                    return ExitCode::from(2);
                }
            },
            Err(_) => true,
        },
        Emit::Dataflow => session
            .to_dataflow()
            .map(|p| {
                println!("contexts: {}", p.contexts.len());
                for c in &p.contexts {
                    println!(
                        "  #{:<4} {:<10} unit={:<8} depth={} instrs={:<3} regs={:<3} {}",
                        c.id,
                        c.kind,
                        format!("{:?}", c.unit),
                        c.depth,
                        c.instrs,
                        c.regs,
                        c.label
                    );
                }
                println!("links: {}", p.links.len());
                for l in &p.links {
                    println!(
                        "  ch{:<4} arity={} class={:?} depth={}",
                        l.id, l.arity, l.class, l.depth
                    );
                }
            })
            .is_err(),
        Emit::Report => session
            .to_dataflow()
            .map(|p| {
                println!("{}", ResourceReport::for_program(&file, &p).summary());
                if let Some(report) = session.pass_report() {
                    println!("{}", report.summary());
                }
            })
            .is_err(),
    };
    if failed {
        eprint!("{}", session.render_diagnostics(color));
        let n = session.diagnostics().error_count();
        eprintln!("error: compilation failed with {n} error(s)");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Compile, run once with an enabled observability sink, and report:
/// `--profile` prints counters / compile-stage timings / the top-stalls
/// table, `--trace-out` writes Chrome `trace_event` JSON.
fn run_profiled(
    mut session: Session,
    selected_app: Option<&revet_apps::App>,
    main_args: &[u32],
    scale: usize,
    profile: bool,
    trace_out: Option<&str>,
    color: bool,
) -> ExitCode {
    let mut program = match session.to_dataflow() {
        Ok(p) => p,
        Err(_) => {
            eprint!("{}", session.render_diagnostics(color));
            let n = session.diagnostics().error_count();
            eprintln!("error: compilation failed with {n} error(s)");
            return ExitCode::FAILURE;
        }
    };
    // A registered app brings its own workload (args + DRAM inputs);
    // a plain FILE runs with the `--args` list.
    let args: Vec<Word> = if let Some(a) = selected_app {
        let w = (a.workload)(scale, 0x5EED);
        a.load(&mut program, &w);
        w.args.iter().map(|&x| Word(x)).collect()
    } else {
        main_args.iter().map(|&x| Word(x)).collect()
    };

    let obs = if trace_out.is_some() {
        ObsSink::with_trace_capacity(TRACE_CAPACITY)
    } else {
        ObsSink::counters_only()
    };
    session.emit_compile_trace(&obs);
    let mut inst = program.instance();
    if let Err(e) = inst.run_untimed_obs(&args, MAX_ROUNDS, &obs) {
        eprintln!("revetc: execution failed: {e}");
        return ExitCode::FAILURE;
    }

    if profile {
        println!("== compile stages ==");
        for (stage, wall) in session.stage_timings() {
            println!("  {stage:<12} {:>8} us", wall.as_micros());
        }
        println!("\n== execution counters ==");
        for (name, value) in obs.snapshot_counters() {
            println!("  {name:<28} {value}");
        }
        println!("\n== top stalls ==");
        print!("{}", obs.top_stalls_table(10));
    }
    if let Some(path) = trace_out {
        let json = obs.chrome_trace_json();
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("revetc: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
        let dropped = obs.trace_dropped();
        println!(
            "wrote {path} ({} events{}) — load it at ui.perfetto.dev",
            obs.trace_events().len(),
            if dropped > 0 {
                format!(", {dropped} dropped by the ring")
            } else {
                String::new()
            }
        );
    }
    ExitCode::SUCCESS
}
