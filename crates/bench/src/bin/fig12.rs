//! Regenerates Figure 12 (resource increase with optimizations disabled).
fn main() {
    let rows = revet_bench::fig12();
    println!(
        "=== Figure 12: optimization ablations ===\n{}",
        revet_bench::format_fig12(&rows)
    );
}
