//! Regenerates the §VI-B c Aurochs comparison (kD-tree).
fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);
    let (_, text) = revet_bench::aurochs_cmp(scale);
    println!("=== Aurochs comparison (scale={scale}) ===\n{text}");
}
