//! End-to-end front-end tests: source → MIR → reference interpreter, checked
//! against hand-computed results.

use revet_lang::compile_to_mir;
use revet_mir::{DramLayout, Interp};
use revet_sltf::Word;

/// Runs `main(args)` with DRAM symbols laid out back-to-back, `sym_bytes`
/// each. Returns the final DRAM image.
fn run(src: &str, args: &[u32], dram_init: &[(usize, &[u8])], sym_bytes: u32) -> Vec<u8> {
    let lowered = compile_to_mir(src).unwrap_or_else(|e| panic!("{e}"));
    let module = &lowered.module;
    let layout = DramLayout {
        base: (0..module.drams.len() as u32)
            .map(|i| i * sym_bytes)
            .collect(),
    };
    let mut mem = module.build_memory((module.drams.len() as usize) * sym_bytes as usize);
    for (off, bytes) in dram_init {
        mem.dram[*off..*off + bytes.len()].copy_from_slice(bytes);
    }
    let words: Vec<Word> = args.iter().map(|&a| Word(a)).collect();
    Interp::new(module, &layout, &mut mem)
        .run("main", &words)
        .unwrap_or_else(|e| panic!("{e}"));
    mem.dram.clone()
}

fn read_u32(dram: &[u8], addr: usize) -> u32 {
    u32::from_le_bytes(dram[addr..addr + 4].try_into().unwrap())
}

#[test]
fn squares_via_foreach() {
    let src = r#"
        dram<u32> output;
        void main(u32 n) {
            foreach (n) { u32 i =>
                output[i] = i * i;
            };
        }
    "#;
    let dram = run(src, &[5], &[], 4096);
    for i in 0..5 {
        assert_eq!(read_u32(&dram, 4 * i), (i * i) as u32);
    }
}

#[test]
fn while_loop_collatz_steps() {
    let src = r#"
        dram<u32> output;
        void main(u32 x) {
            u32 n = x;
            u32 steps = 0;
            while (n != 1) {
                if (n & 1) {
                    n = 3 * n + 1;
                } else {
                    n = n / 2;
                };
                steps = steps + 1;
            };
            output[0] = steps;
        }
    "#;
    let dram = run(src, &[6], &[], 4096);
    // 6 → 3 → 10 → 5 → 16 → 8 → 4 → 2 → 1: 8 steps.
    assert_eq!(read_u32(&dram, 0), 8);
}

#[test]
fn strlen_case_study_figure7() {
    // The paper's running example, scaled down: strings at offsets, lengths
    // out. Uses views, replicate, iterators, and a data-dependent while.
    let src = r#"
        dram<u8> input;
        dram<u32> offsets;
        dram<u32> lengths;
        void main(u32 count) {
            foreach (count by 4) { u32 outer =>
                readview<4> in_view(offsets, outer);
                writeview<4> out_view(lengths, outer);
                foreach (4) { u32 idx =>
                    pragma(eliminate_hierarchy);
                    u32 len = 0;
                    u32 off = in_view[idx];
                    replicate (2) {
                        readit<8> it(input, off);
                        while (*it) {
                            len = len + 1;
                            it++;
                        };
                    };
                    out_view[idx] = len;
                };
            };
        }
    "#;
    let strings: &[&str] = &["hello", "", "dataflow", "ab", "xyz", "q", "", "threads!"];
    let mut input = Vec::new();
    let mut offsets = Vec::new();
    for s in strings {
        offsets.extend((input.len() as u32).to_le_bytes());
        input.extend(s.as_bytes());
        input.push(0);
    }
    let dram = run(
        src,
        &[strings.len() as u32],
        &[(0, &input), (4096, &offsets)],
        4096,
    );
    for (i, s) in strings.iter().enumerate() {
        assert_eq!(
            read_u32(&dram, 8192 + 4 * i),
            s.len() as u32,
            "strlen of {s:?}"
        );
    }
}

#[test]
fn foreach_reduce_and_masks() {
    // kD-tree-style lane reduction: AND of comparison masks.
    let src = r#"
        dram<u32> vals;
        dram<u32> output;
        void main(u32 n) {
            u32 m = foreach (n) reduce(&) { u32 lane =>
                yield vals[lane];
            };
            output[0] = m;
        }
    "#;
    let mut vals = Vec::new();
    for v in [0xFFu32, 0x3F, 0x7F] {
        vals.extend(v.to_le_bytes());
    }
    let dram = run(src, &[3], &[(0, &vals)], 4096);
    assert_eq!(read_u32(&dram, 4096), 0x3F);
}

#[test]
fn fork_with_counter_continuation() {
    // The Fig. 9 pattern, hand-written: fork + shared decrement, survivor
    // writes the result.
    let src = r#"
        dram<u32> output;
        void main(u32 n) {
            sram<u32, 1> counter;
            counter[0] = n;
            fork (n) { u32 i =>
                u32 remaining = counter[0] - 1;
                counter[0] = remaining;
                if (remaining) {
                    exit;
                };
            };
            output[0] = 7;
        }
    "#;
    let dram = run(src, &[5], &[], 4096);
    assert_eq!(read_u32(&dram, 0), 7, "exactly one survivor continues");
}

#[test]
fn write_iterator_stream() {
    let src = r#"
        dram<u8> out;
        void main(u32 n) {
            writeit<4> w(out, 0);
            u32 i = 0;
            while (i < n) {
                *w = 65 + i;
                w++;
                i = i + 1;
            };
        }
    "#;
    let dram = run(src, &[4], &[], 4096);
    assert_eq!(&dram[0..4], b"ABCD");
}

#[test]
fn peek_iterator_boyer_moore_flavor() {
    let src = r#"
        dram<u8> text;
        dram<u32> output;
        void main(u32 n) {
            peekreadit<8> it(text, 0);
            u32 hits = 0;
            u32 i = 0;
            while (i < n) {
                // match "ab" using peek
                if ((*it == 'a') && (it.peek(1) == 'b')) {
                    hits = hits + 1;
                };
                it++;
                i = i + 1;
            };
            output[0] = hits;
        }
    "#;
    let text = b"abxabyab";
    let dram = run(src, &[text.len() as u32 - 1], &[(0, text)], 4096);
    assert_eq!(read_u32(&dram, 4096), 3);
}

#[test]
fn subword_types_truncate() {
    let src = r#"
        dram<u32> output;
        void main() {
            u8 x = 300;
            output[0] = x;
            i8 y = (i8) 255;
            if (y < 0) {
                output[1] = 1;
            };
        }
    "#;
    let dram = run(src, &[], &[], 4096);
    assert_eq!(read_u32(&dram, 0), 300 % 256);
    assert_eq!(read_u32(&dram, 4), 1, "i8 sign-extension");
}

#[test]
fn read_only_parent_vars_rejected() {
    let src = r#"
        void main(u32 n) {
            u32 acc = 0;
            foreach (n) { u32 i =>
                acc = acc + i;
            };
        }
    "#;
    let err = compile_to_mir(src).unwrap_err();
    assert!(err.to_string().contains("read-only"), "got: {err}");
    // The diagnostic is structured: coded and spanned at the offending
    // statement.
    let d = &err.as_slice()[0];
    assert_eq!(d.code, revet_diag::codes::SEM_READONLY_ASSIGN);
    let map = revet_diag::SourceMap::new(src);
    let lc = map.line_col(d.span.expect("spanned").start);
    assert_eq!(lc.line, 5, "span should point at the assignment");
}

#[test]
fn replicate_passes_assignments_through() {
    let src = r#"
        dram<u32> output;
        void main(u32 n) {
            u32 len = 0;
            replicate (4) {
                u32 i = 0;
                while (i < n) {
                    len = len + 2;
                    i = i + 1;
                };
            };
            output[0] = len;
        }
    "#;
    let dram = run(src, &[3], &[], 4096);
    assert_eq!(read_u32(&dram, 0), 6);
}

#[test]
fn nested_while_string_search() {
    // Exact-match search with restart — the doubly nested while pattern
    // the paper highlights for search.
    let src = r#"
        dram<u8> text;
        dram<u8> pat;
        dram<u32> output;
        void main(u32 n) {
            u32 found = 0;
            u32 i = 0;
            while (i < n) {
                u32 j = 0;
                u32 ok = 1;
                while (ok && (pat[j] != 0)) {
                    if (text[i + j] != pat[j]) {
                        ok = 0;
                    } else {
                        j = j + 1;
                    };
                };
                if (ok) {
                    found = found + 1;
                };
                i = i + 1;
            };
            output[0] = found;
        }
    "#;
    let text = b"the cat sat on the mat";
    let pat = b"at\0";
    // i ranges over every start position where "at" fits: 0..=len-2.
    let dram = run(
        src,
        &[text.len() as u32 - 1],
        &[(0, text), (4096, pat)],
        4096,
    );
    assert_eq!(read_u32(&dram, 8192), 3);
}
