//! Recursive-descent parser for the Revet language.

use crate::ast::*;
use crate::token::{lex, LexError, Spanned, Tok};
use std::fmt;

/// A parse error with position info.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// Description.
    pub message: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            line: e.line,
            col: e.col,
        }
    }
}

/// Parses a complete program.
///
/// # Errors
///
/// Returns the first lex or parse error.
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    p.program()
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].tok
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        let s = &self.toks[self.pos];
        Err(ParseError {
            message: msg.into(),
            line: s.line,
            col: s.col,
        })
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), ParseError> {
        match self.peek() {
            Tok::Punct(q) if *q == p => {
                self.bump();
                Ok(())
            }
            other => {
                let other = other.clone();
                self.err(format!("expected '{p}', found {other}"))
            }
        }
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), Tok::Punct(q) if *q == p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => self.err(format!("expected identifier, found {other}")),
        }
    }

    fn expect_int(&mut self) -> Result<i64, ParseError> {
        match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                Ok(v)
            }
            other => self.err(format!("expected integer, found {other}")),
        }
    }

    fn is_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s == kw)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.is_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn program(&mut self) -> Result<Program, ParseError> {
        let mut prog = Program::default();
        loop {
            match self.peek() {
                Tok::Eof => break,
                Tok::Ident(s) if s == "dram" => {
                    self.bump();
                    self.expect_punct("<")?;
                    let tname = self.expect_ident()?;
                    let ty = TyName::parse(&tname)
                        .ok_or(())
                        .or_else(|()| self.err(format!("unknown type '{tname}'")))?;
                    self.expect_punct(">")?;
                    let name = self.expect_ident()?;
                    self.expect_punct(";")?;
                    prog.drams.push(DramDeclAst { name, ty });
                }
                Tok::Ident(s) if TyName::parse(s).is_some() => {
                    prog.funcs.push(self.func()?);
                }
                other => {
                    let other = other.clone();
                    return self.err(format!(
                        "expected 'dram' declaration or function, found {other}"
                    ));
                }
            }
        }
        Ok(prog)
    }

    fn ty(&mut self) -> Result<TyName, ParseError> {
        let name = self.expect_ident()?;
        TyName::parse(&name)
            .ok_or(())
            .or_else(|()| self.err(format!("unknown type '{name}'")))
    }

    fn func(&mut self) -> Result<FuncAst, ParseError> {
        let ret = self.ty()?;
        let name = self.expect_ident()?;
        self.expect_punct("(")?;
        let mut params = Vec::new();
        if !self.eat_punct(")") {
            loop {
                let pty = self.ty()?;
                let pname = self.expect_ident()?;
                params.push((pty, pname));
                if self.eat_punct(")") {
                    break;
                }
                self.expect_punct(",")?;
            }
        }
        let body = self.block()?;
        Ok(FuncAst {
            name,
            ret,
            params,
            body,
        })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect_punct("{")?;
        let mut stmts = Vec::new();
        while !self.eat_punct("}") {
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    /// A block followed by an optional semicolon (the paper writes `};`).
    fn block_semi(&mut self) -> Result<Vec<Stmt>, ParseError> {
        let b = self.block()?;
        self.eat_punct(";");
        Ok(b)
    }

    #[allow(clippy::too_many_lines)]
    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        // Control-flow keywords.
        if self.eat_kw("if") {
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            let then = self.block()?;
            let els = if self.eat_kw("else") {
                self.block_semi()?
            } else {
                self.eat_punct(";");
                Vec::new()
            };
            return Ok(Stmt::If { cond, then, els });
        }
        if self.eat_kw("while") {
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            let body = self.block_semi()?;
            return Ok(Stmt::While { cond, body });
        }
        if self.eat_kw("foreach") {
            let (count, step, ity, ivar, body) = self.foreach_tail()?;
            return Ok(Stmt::Foreach {
                count,
                step,
                ity,
                ivar,
                body,
            });
        }
        if self.eat_kw("replicate") {
            self.expect_punct("(")?;
            let ways = self.expect_int()?;
            self.expect_punct(")")?;
            let body = self.block_semi()?;
            return Ok(Stmt::Replicate {
                ways: ways as u32,
                body,
            });
        }
        if self.eat_kw("fork") {
            self.expect_punct("(")?;
            let count = self.expr()?;
            self.expect_punct(")")?;
            self.expect_punct("{")?;
            let ity = self.ty()?;
            let ivar = self.expect_ident()?;
            self.expect_punct("=>")?;
            let mut body = Vec::new();
            while !self.eat_punct("}") {
                body.push(self.stmt()?);
            }
            self.eat_punct(";");
            return Ok(Stmt::Fork {
                count,
                ity,
                ivar,
                body,
            });
        }
        if self.eat_kw("exit") {
            self.expect_punct(";")?;
            return Ok(Stmt::Exit);
        }
        if self.eat_kw("yield") {
            let e = self.expr()?;
            self.expect_punct(";")?;
            return Ok(Stmt::Yield(e));
        }
        if self.eat_kw("return") {
            if self.eat_punct(";") {
                return Ok(Stmt::Return(None));
            }
            let e = self.expr()?;
            self.expect_punct(";")?;
            return Ok(Stmt::Return(Some(e)));
        }
        if self.eat_kw("pragma") {
            self.expect_punct("(")?;
            let name = self.expect_ident()?;
            let value = if self.eat_punct(",") {
                Some(self.expect_int()?)
            } else {
                None
            };
            self.expect_punct(")")?;
            self.expect_punct(";")?;
            return Ok(Stmt::Pragma { name, value });
        }
        // Memory declarations.
        if self.is_kw("sram") {
            self.bump();
            self.expect_punct("<")?;
            let ty = self.ty()?;
            self.expect_punct(",")?;
            let size = self.expect_int()? as u32;
            self.expect_punct(">")?;
            let name = self.expect_ident()?;
            self.expect_punct(";")?;
            return Ok(Stmt::Mem {
                name,
                decl: MemDecl::Sram { ty, size },
            });
        }
        for (kw, kind) in [
            ("readview", ViewKindName::Read),
            ("writeview", ViewKindName::Write),
            ("modifyview", ViewKindName::Modify),
        ] {
            if self.is_kw(kw) {
                self.bump();
                self.expect_punct("<")?;
                let size = self.expect_int()? as u32;
                self.expect_punct(">")?;
                let name = self.expect_ident()?;
                self.expect_punct("(")?;
                let dram = self.expect_ident()?;
                self.expect_punct(",")?;
                let base = self.expr()?;
                self.expect_punct(")")?;
                self.expect_punct(";")?;
                return Ok(Stmt::Mem {
                    name,
                    decl: MemDecl::View {
                        kind,
                        size,
                        dram,
                        base,
                    },
                });
            }
        }
        for (kw, kind) in [
            ("readit", ItKindName::Read),
            ("peekreadit", ItKindName::PeekRead),
            ("writeit", ItKindName::Write),
            ("manualwriteit", ItKindName::ManualWrite),
        ] {
            if self.is_kw(kw) {
                self.bump();
                self.expect_punct("<")?;
                let tile = self.expect_int()? as u32;
                self.expect_punct(">")?;
                let name = self.expect_ident()?;
                self.expect_punct("(")?;
                let dram = self.expect_ident()?;
                self.expect_punct(",")?;
                let seek = self.expr()?;
                self.expect_punct(")")?;
                self.expect_punct(";")?;
                return Ok(Stmt::Mem {
                    name,
                    decl: MemDecl::It {
                        kind,
                        tile,
                        dram,
                        seek,
                    },
                });
            }
        }
        // `*it = e;`
        if self.eat_punct("*") {
            let it = self.expect_ident()?;
            self.expect_punct("=")?;
            let value = self.expr()?;
            self.expect_punct(";")?;
            return Ok(Stmt::DerefStore { it, value });
        }
        // Typed declaration: `ty name [= init];` (possibly foreach-reduce).
        if let Tok::Ident(s) = self.peek() {
            if TyName::parse(s).is_some() && matches!(self.peek2(), Tok::Ident(_)) {
                let ty = self.ty()?;
                let name = self.expect_ident()?;
                let init = if self.eat_punct("=") {
                    Some(self.init_expr()?)
                } else {
                    None
                };
                self.expect_punct(";")?;
                return Ok(Stmt::Decl { ty, name, init });
            }
        }
        // Assignment / compound assignment / store / increment.
        let name = self.expect_ident()?;
        // `name.load(...)` / `name.store(...)` / `name.peek` handled in expr;
        // statement-position method calls:
        if self.eat_punct(".") {
            let method = self.expect_ident()?;
            match method.as_str() {
                "load" | "store" => {
                    self.expect_punct("(")?;
                    let dram = self.expect_ident()?;
                    self.expect_punct(",")?;
                    let base = self.expr()?;
                    self.expect_punct(",")?;
                    let len = self.expr()?;
                    self.expect_punct(")")?;
                    self.expect_punct(";")?;
                    return Ok(Stmt::Bulk {
                        sram: name,
                        load: method == "load",
                        dram,
                        base,
                        len,
                    });
                }
                "inc" => {
                    self.expect_punct("(")?;
                    let last = self.expr()?;
                    self.expect_punct(")")?;
                    self.expect_punct(";")?;
                    return Ok(Stmt::Inc {
                        it: name,
                        last: Some(last),
                    });
                }
                other => return self.err(format!("unknown method '{other}'")),
            }
        }
        if self.eat_punct("++") {
            self.expect_punct(";")?;
            return Ok(Stmt::Inc {
                it: name,
                last: None,
            });
        }
        if self.eat_punct("[") {
            let idx = self.expr()?;
            self.expect_punct("]")?;
            // Compound stores: `a[i] op= e` desugars to load-modify-store.
            for (tok, op) in [
                ("+=", BinOp::Add),
                ("-=", BinOp::Sub),
                ("*=", BinOp::Mul),
                ("/=", BinOp::Div),
                ("%=", BinOp::Rem),
                ("&=", BinOp::And),
                ("|=", BinOp::Or),
                ("^=", BinOp::Xor),
            ] {
                if self.eat_punct(tok) {
                    let rhs = self.expr()?;
                    self.expect_punct(";")?;
                    let cur = Expr::Index(name.clone(), Box::new(idx.clone()));
                    return Ok(Stmt::Store {
                        base: name,
                        idx,
                        value: Expr::Bin(op, Box::new(cur), Box::new(rhs)),
                    });
                }
            }
            self.expect_punct("=")?;
            let value = self.expr()?;
            self.expect_punct(";")?;
            return Ok(Stmt::Store {
                base: name,
                idx,
                value,
            });
        }
        for (tok, op) in [
            ("+=", BinOp::Add),
            ("-=", BinOp::Sub),
            ("*=", BinOp::Mul),
            ("/=", BinOp::Div),
            ("%=", BinOp::Rem),
            ("&=", BinOp::And),
            ("|=", BinOp::Or),
            ("^=", BinOp::Xor),
            ("<<=", BinOp::Shl),
            (">>=", BinOp::Shr),
        ] {
            if self.eat_punct(tok) {
                let rhs = self.expr()?;
                self.expect_punct(";")?;
                return Ok(Stmt::Assign {
                    name: name.clone(),
                    value: Expr::Bin(op, Box::new(Expr::Var(name)), Box::new(rhs)),
                });
            }
        }
        self.expect_punct("=")?;
        let value = self.expr()?;
        self.expect_punct(";")?;
        Ok(Stmt::Assign { name, value })
    }

    /// Initializer expression: ordinary expression or foreach-reduce.
    fn init_expr(&mut self) -> Result<Expr, ParseError> {
        if self.eat_kw("foreach") {
            let (count, step, op, ity, ivar, body) = self.foreach_reduce_tail()?;
            return Ok(Expr::ForeachReduce {
                count: Box::new(count),
                step: step.map(Box::new),
                op,
                ity,
                ivar,
                body,
            });
        }
        self.expr()
    }

    /// After `foreach`: `(count [by step]) { ty i => stmts }`.
    fn foreach_tail(
        &mut self,
    ) -> Result<(Expr, Option<Expr>, TyName, String, Vec<Stmt>), ParseError> {
        self.expect_punct("(")?;
        let count = self.expr()?;
        let step = if self.eat_kw("by") {
            Some(self.expr()?)
        } else {
            None
        };
        self.expect_punct(")")?;
        self.expect_punct("{")?;
        let ity = self.ty()?;
        let ivar = self.expect_ident()?;
        self.expect_punct("=>")?;
        let mut body = Vec::new();
        while !self.eat_punct("}") {
            body.push(self.stmt()?);
        }
        self.eat_punct(";");
        Ok((count, step, ity, ivar, body))
    }

    /// After `foreach` in expression position:
    /// `(count [by step]) reduce(op) { ty i => stmts }`.
    fn foreach_reduce_tail(
        &mut self,
    ) -> Result<(Expr, Option<Expr>, ReduceOp, TyName, String, Vec<Stmt>), ParseError> {
        self.expect_punct("(")?;
        let count = self.expr()?;
        let step = if self.eat_kw("by") {
            Some(self.expr()?)
        } else {
            None
        };
        self.expect_punct(")")?;
        if !self.eat_kw("reduce") {
            return self.err("foreach in expression position needs 'reduce(op)'");
        }
        self.expect_punct("(")?;
        let op = match self.bump() {
            Tok::Punct("+") => ReduceOp::Add,
            Tok::Punct("*") => ReduceOp::Mul,
            Tok::Punct("&") => ReduceOp::And,
            Tok::Punct("|") => ReduceOp::Or,
            Tok::Punct("^") => ReduceOp::Xor,
            Tok::Ident(s) if s == "min" => ReduceOp::Min,
            Tok::Ident(s) if s == "max" => ReduceOp::Max,
            other => return self.err(format!("unknown reduction operator {other}")),
        };
        self.expect_punct(")")?;
        self.expect_punct("{")?;
        let ity = self.ty()?;
        let ivar = self.expect_ident()?;
        self.expect_punct("=>")?;
        let mut body = Vec::new();
        while !self.eat_punct("}") {
            body.push(self.stmt()?);
        }
        Ok((count, step, op, ity, ivar, body))
    }

    // ---- expressions (precedence climbing) ----

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.lor()
    }

    fn lor(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.land()?;
        while self.eat_punct("||") {
            let r = self.land()?;
            e = Expr::Bin(BinOp::LOr, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn land(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.bitor()?;
        while self.eat_punct("&&") {
            let r = self.bitor()?;
            e = Expr::Bin(BinOp::LAnd, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn bitor(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.bitxor()?;
        while self.eat_punct("|") {
            let r = self.bitxor()?;
            e = Expr::Bin(BinOp::Or, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn bitxor(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.bitand()?;
        while self.eat_punct("^") {
            let r = self.bitand()?;
            e = Expr::Bin(BinOp::Xor, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn bitand(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.equality()?;
        while self.eat_punct("&") {
            let r = self.equality()?;
            e = Expr::Bin(BinOp::And, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn equality(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.relational()?;
        loop {
            if self.eat_punct("==") {
                let r = self.relational()?;
                e = Expr::Bin(BinOp::Eq, Box::new(e), Box::new(r));
            } else if self.eat_punct("!=") {
                let r = self.relational()?;
                e = Expr::Bin(BinOp::Ne, Box::new(e), Box::new(r));
            } else {
                return Ok(e);
            }
        }
    }

    fn relational(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.shift()?;
        loop {
            let op = if self.eat_punct("<=") {
                BinOp::Le
            } else if self.eat_punct(">=") {
                BinOp::Ge
            } else if self.eat_punct("<") {
                BinOp::Lt
            } else if self.eat_punct(">") {
                BinOp::Gt
            } else {
                return Ok(e);
            };
            let r = self.shift()?;
            e = Expr::Bin(op, Box::new(e), Box::new(r));
        }
    }

    fn shift(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.additive()?;
        loop {
            if self.eat_punct("<<") {
                let r = self.additive()?;
                e = Expr::Bin(BinOp::Shl, Box::new(e), Box::new(r));
            } else if self.eat_punct(">>") {
                let r = self.additive()?;
                e = Expr::Bin(BinOp::Shr, Box::new(e), Box::new(r));
            } else {
                return Ok(e);
            }
        }
    }

    fn additive(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.multiplicative()?;
        loop {
            if self.eat_punct("+") {
                let r = self.multiplicative()?;
                e = Expr::Bin(BinOp::Add, Box::new(e), Box::new(r));
            } else if self.eat_punct("-") {
                let r = self.multiplicative()?;
                e = Expr::Bin(BinOp::Sub, Box::new(e), Box::new(r));
            } else {
                return Ok(e);
            }
        }
    }

    fn multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.unary()?;
        loop {
            if self.eat_punct("*") {
                let r = self.unary()?;
                e = Expr::Bin(BinOp::Mul, Box::new(e), Box::new(r));
            } else if self.eat_punct("/") {
                let r = self.unary()?;
                e = Expr::Bin(BinOp::Div, Box::new(e), Box::new(r));
            } else if self.eat_punct("%") {
                let r = self.unary()?;
                e = Expr::Bin(BinOp::Rem, Box::new(e), Box::new(r));
            } else {
                return Ok(e);
            }
        }
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        if self.eat_punct("-") {
            let e = self.unary()?;
            return Ok(Expr::Un(UnOp::Neg, Box::new(e)));
        }
        if self.eat_punct("!") {
            let e = self.unary()?;
            return Ok(Expr::Un(UnOp::Not, Box::new(e)));
        }
        if self.eat_punct("~") {
            let e = self.unary()?;
            return Ok(Expr::Un(UnOp::BitNot, Box::new(e)));
        }
        if self.eat_punct("*") {
            let it = self.expect_ident()?;
            return Ok(Expr::Deref(it));
        }
        // Cast: `(ty) e` — lookahead for `( tyname )`.
        if matches!(self.peek(), Tok::Punct("(")) {
            if let Tok::Ident(s) = self.peek2() {
                if TyName::parse(s).is_some()
                    && matches!(
                        self.toks.get(self.pos + 2).map(|t| &t.tok),
                        Some(Tok::Punct(")"))
                    )
                {
                    self.bump(); // (
                    let ty = self.ty()?;
                    self.bump(); // )
                    let e = self.unary()?;
                    return Ok(Expr::Cast(ty, Box::new(e)));
                }
            }
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, ParseError> {
        if self.eat_punct("(") {
            let e = self.expr()?;
            self.expect_punct(")")?;
            return Ok(e);
        }
        match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                Ok(Expr::Int(v))
            }
            Tok::Ident(name) => {
                self.bump();
                if self.eat_punct("[") {
                    let idx = self.expr()?;
                    self.expect_punct("]")?;
                    return Ok(Expr::Index(name, Box::new(idx)));
                }
                if matches!(self.peek(), Tok::Punct(".")) {
                    if let Tok::Ident(m) = self.peek2() {
                        if m == "peek" {
                            self.bump(); // .
                            self.bump(); // peek
                            self.expect_punct("(")?;
                            let e = self.expr()?;
                            self.expect_punct(")")?;
                            return Ok(Expr::Peek(name, Box::new(e)));
                        }
                    }
                }
                Ok(Expr::Var(name))
            }
            other => self.err(format!("expected expression, found {other}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_program() {
        let p = parse_program(
            "dram<u32> output;\nvoid main(u32 n) { foreach (n) { u32 i => output[i] = i * i; }; }",
        )
        .unwrap();
        assert_eq!(p.drams.len(), 1);
        assert_eq!(p.funcs.len(), 1);
        assert_eq!(p.funcs[0].name, "main");
        assert!(matches!(p.funcs[0].body[0], Stmt::Foreach { .. }));
    }

    #[test]
    fn parses_strlen_shape() {
        // The Fig. 7 structure (simplified sizes).
        let src = r#"
            dram<u8> input; dram<u32> offsets; dram<u32> lengths;
            void main(u32 count) {
                foreach (count by 4) { u32 outer =>
                    readview<4> in_view(offsets, outer);
                    writeview<4> out_view(lengths, outer);
                    foreach (4) { u32 idx =>
                        pragma(eliminate_hierarchy);
                        u32 len = 0;
                        u32 off = in_view[idx];
                        replicate (2) {
                            readit<8> it(input, off);
                            while (*it) {
                                len = len + 1;
                                it++;
                            };
                        };
                        out_view[idx] = len;
                    };
                };
            }
        "#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.drams.len(), 3);
        let f = &p.funcs[0];
        let Stmt::Foreach { body, step, .. } = &f.body[0] else {
            panic!("expected foreach");
        };
        assert!(step.is_some());
        assert!(matches!(body[0], Stmt::Mem { .. }));
    }

    #[test]
    fn precedence() {
        let p = parse_program("void main() { u32 x = 1 + 2 * 3 == 7; }").unwrap();
        let Stmt::Decl { init: Some(e), .. } = &p.funcs[0].body[0] else {
            panic!()
        };
        // (1 + (2*3)) == 7
        assert!(matches!(e, Expr::Bin(BinOp::Eq, ..)));
    }

    #[test]
    fn foreach_reduce_expression() {
        let p = parse_program(
            "void main() { u32 m = foreach (15) reduce(&) { u32 lane => yield lane; }; }",
        )
        .unwrap();
        let Stmt::Decl { init: Some(e), .. } = &p.funcs[0].body[0] else {
            panic!()
        };
        assert!(matches!(
            e,
            Expr::ForeachReduce {
                op: ReduceOp::And,
                ..
            }
        ));
    }

    #[test]
    fn fork_exit_and_pragmas() {
        let p = parse_program(
            "void main() { fork (3) { u32 i => if (i) { exit; }; }; pragma(threads, 64); }",
        )
        .unwrap();
        assert!(matches!(p.funcs[0].body[0], Stmt::Fork { .. }));
        assert!(matches!(
            p.funcs[0].body[1],
            Stmt::Pragma {
                value: Some(64),
                ..
            }
        ));
    }

    #[test]
    fn iterators_and_stores() {
        let p = parse_program(
            r#"dram<u8> d; void main() {
                manualwriteit<4> w(d, 0);
                *w = 65;
                w.inc(1);
                peekreadit<4> r(d, 0);
                u32 x = r.peek(2);
                u32 y = *r;
            }"#,
        )
        .unwrap();
        let b = &p.funcs[0].body;
        assert!(matches!(b[1], Stmt::DerefStore { .. }));
        assert!(matches!(b[2], Stmt::Inc { last: Some(_), .. }));
        assert!(matches!(
            b[4],
            Stmt::Decl {
                init: Some(Expr::Peek(..)),
                ..
            }
        ));
    }

    #[test]
    fn compound_assignment_desugars() {
        let p = parse_program("void main() { u32 x = 0; x += 2; }").unwrap();
        let Stmt::Assign { value, .. } = &p.funcs[0].body[1] else {
            panic!()
        };
        assert!(matches!(value, Expr::Bin(BinOp::Add, ..)));
    }

    #[test]
    fn bulk_transfers() {
        let p = parse_program(
            "dram<u32> d; void main() { sram<u32, 16> buf; buf.load(d, 0, 16); buf.store(d, 0, 16); }",
        )
        .unwrap();
        assert!(matches!(p.funcs[0].body[1], Stmt::Bulk { load: true, .. }));
        assert!(matches!(p.funcs[0].body[2], Stmt::Bulk { load: false, .. }));
    }

    #[test]
    fn errors_have_positions() {
        let e = parse_program("void main() {\n  u32 x = ;\n}").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(!e.message.is_empty());
    }

    #[test]
    fn cast_expression() {
        let p = parse_program("void main() { u32 x = (u8) 300; }").unwrap();
        let Stmt::Decl { init: Some(e), .. } = &p.funcs[0].body[0] else {
            panic!()
        };
        assert!(matches!(e, Expr::Cast(TyName::U8, _)));
    }
}
