//! Recursive-descent parser for the Revet language, with error recovery.
//!
//! The parser accumulates every syntax error into a
//! [`Diagnostics`] sink instead of stopping at the first: a failed
//! statement resynchronizes at the next `;` or the enclosing `}` (nested
//! braces are skipped as a unit), a failed top-level item resynchronizes
//! at the next plausible item start. One run therefore reports *all*
//! independent syntax errors, each with a byte [`Span`] pointing at the
//! offending token.

use crate::ast::*;
use crate::token::{lex, Spanned, Tok};
use revet_diag::{codes, Diagnostic, Diagnostics, Span};

/// Hard error budget: after this many diagnostics the parse is abandoned
/// (prevents error avalanches on pathological input).
const MAX_ERRORS: usize = 20;

/// An internal parse failure; becomes a [`Diagnostic`] at the recovery
/// boundary.
#[derive(Clone, Debug)]
struct ParseError {
    code: &'static str,
    message: String,
    span: Span,
}

impl ParseError {
    fn into_diagnostic(self) -> Diagnostic {
        Diagnostic::error(self.code, self.message).with_span(self.span)
    }
}

type PResult<T> = Result<T, ParseError>;

/// Parses a complete program.
///
/// # Errors
///
/// Returns **all** lex and parse diagnostics found in one pass (parser
/// recovery resynchronizes at `;` / `}` boundaries), each carrying a span.
pub fn parse_program(src: &str) -> Result<Program, Diagnostics> {
    let (toks, lex_diags) = lex(src);
    let mut p = Parser {
        toks,
        pos: 0,
        diags: lex_diags.into_iter().collect(),
    };
    let prog = p.program();
    if p.diags.has_errors() {
        // Lexer and parser diagnostics interleave; report in source order.
        p.diags.sort_by_span();
        Err(p.diags)
    } else {
        Ok(prog)
    }
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
    diags: Diagnostics,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].tok
    }

    /// Span of the token about to be consumed.
    fn cur_span(&self) -> Span {
        self.toks[self.pos].span
    }

    /// Span of the last consumed token (statement-end attribution).
    fn prev_span(&self) -> Span {
        self.toks[self.pos.saturating_sub(1)].span
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> PResult<T> {
        self.err_code(codes::PARSE_EXPECTED, msg)
    }

    fn err_code<T>(&self, code: &'static str, msg: impl Into<String>) -> PResult<T> {
        Err(ParseError {
            code,
            message: msg.into(),
            span: self.cur_span(),
        })
    }

    fn over_budget(&self) -> bool {
        self.diags.len() >= MAX_ERRORS
    }

    fn report(&mut self, e: ParseError) {
        self.diags.push(e.into_diagnostic());
        if self.diags.len() == MAX_ERRORS {
            self.diags.push(
                Diagnostic::error(
                    codes::PARSE_TOO_MANY_ERRORS,
                    format!("too many errors ({MAX_ERRORS}); abandoning the parse"),
                )
                .with_span(self.cur_span()),
            );
        }
    }

    fn expect_punct(&mut self, p: &str) -> PResult<()> {
        match self.peek() {
            Tok::Punct(q) if *q == p => {
                self.bump();
                Ok(())
            }
            other => {
                let other = other.clone();
                self.err(format!("expected '{p}', found {other}"))
            }
        }
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), Tok::Punct(q) if *q == p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> PResult<String> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => self.err(format!("expected identifier, found {other}")),
        }
    }

    fn expect_int(&mut self) -> PResult<i64> {
        match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                Ok(v)
            }
            other => self.err(format!("expected integer, found {other}")),
        }
    }

    fn is_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s == kw)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.is_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    // ---- recovery ----

    /// After a failed statement: skip to just past the next `;` at this
    /// nesting depth, or stop before the enclosing `}` / end of input.
    /// Nested `{ … }` groups are skipped whole.
    fn recover_stmt(&mut self) {
        let mut depth = 0usize;
        loop {
            match self.peek() {
                Tok::Eof => return,
                Tok::Punct(";") if depth == 0 => {
                    self.bump();
                    return;
                }
                Tok::Punct("{") => {
                    depth += 1;
                    self.bump();
                }
                Tok::Punct("}") => {
                    if depth == 0 {
                        return;
                    }
                    depth -= 1;
                    self.bump();
                }
                _ => {
                    self.bump();
                }
            }
        }
    }

    /// After a failed top-level item: skip to the next plausible item
    /// start (`dram`, a type name, or end of input), consuming any
    /// intervening brace groups whole.
    fn recover_item(&mut self) {
        // Always make progress, even if the current token looks like an
        // item start (it was part of the failed item).
        if !matches!(self.peek(), Tok::Eof) {
            if self.eat_punct("{") {
                self.skip_brace_group();
            } else {
                self.bump();
            }
        }
        loop {
            match self.peek() {
                Tok::Eof => return,
                Tok::Ident(s) if s == "dram" || TyName::parse(s).is_some() => return,
                Tok::Punct("{") => {
                    self.bump();
                    self.skip_brace_group();
                }
                _ => {
                    self.bump();
                }
            }
        }
    }

    /// Consumes tokens up to and including the `}` matching an already
    /// consumed `{`.
    fn skip_brace_group(&mut self) {
        let mut depth = 1usize;
        while depth > 0 {
            match self.peek() {
                Tok::Eof => return,
                Tok::Punct("{") => depth += 1,
                Tok::Punct("}") => depth -= 1,
                _ => {}
            }
            self.bump();
        }
    }

    // ---- items ----

    fn program(&mut self) -> Program {
        let mut prog = Program::default();
        loop {
            if self.over_budget() {
                break;
            }
            match self.peek() {
                Tok::Eof => break,
                Tok::Ident(s) if s == "dram" => match self.dram_decl() {
                    Ok(d) => prog.drams.push(d),
                    Err(e) => {
                        self.report(e);
                        self.recover_item();
                    }
                },
                Tok::Ident(s) if TyName::parse(s).is_some() => match self.func() {
                    Ok(f) => prog.funcs.push(f),
                    Err(e) => {
                        self.report(e);
                        self.recover_item();
                    }
                },
                other => {
                    let other = other.clone();
                    let e = self
                        .err_code::<()>(
                            codes::PARSE_BAD_ITEM,
                            format!("expected 'dram' declaration or function, found {other}"),
                        )
                        .unwrap_err();
                    self.report(e);
                    self.recover_item();
                }
            }
        }
        prog
    }

    fn dram_decl(&mut self) -> PResult<DramDeclAst> {
        let start = self.cur_span().start;
        self.bump(); // dram
        self.expect_punct("<")?;
        let ty = self.ty()?;
        self.expect_punct(">")?;
        let name = self.expect_ident()?;
        self.expect_punct(";")?;
        Ok(DramDeclAst {
            name,
            ty,
            span: Span::new(start, self.prev_span().end),
        })
    }

    fn ty(&mut self) -> PResult<TyName> {
        match self.peek().clone() {
            Tok::Ident(name) => match TyName::parse(&name) {
                Some(t) => {
                    self.bump();
                    Ok(t)
                }
                None => self.err_code(codes::PARSE_UNKNOWN_TYPE, format!("unknown type '{name}'")),
            },
            other => self.err(format!("expected type name, found {other}")),
        }
    }

    fn func(&mut self) -> PResult<FuncAst> {
        let start = self.cur_span().start;
        let ret = self.ty()?;
        let name = self.expect_ident()?;
        self.expect_punct("(")?;
        let mut params = Vec::new();
        if !self.eat_punct(")") {
            loop {
                let pty = self.ty()?;
                let pname = self.expect_ident()?;
                params.push((pty, pname));
                if self.eat_punct(")") {
                    break;
                }
                self.expect_punct(",")?;
            }
        }
        let span = Span::new(start, self.prev_span().end);
        let body = self.block()?;
        Ok(FuncAst {
            name,
            ret,
            params,
            body,
            span,
        })
    }

    // ---- statements ----

    fn block(&mut self) -> PResult<Vec<Stmt>> {
        self.expect_punct("{")?;
        self.stmt_seq()
    }

    /// A block followed by an optional semicolon (the paper writes `};`).
    fn block_semi(&mut self) -> PResult<Vec<Stmt>> {
        let b = self.block()?;
        self.eat_punct(";");
        Ok(b)
    }

    /// Parses statements until the closing `}` (consumed), recovering from
    /// individual statement failures so every statement-level error in the
    /// block is reported.
    fn stmt_seq(&mut self) -> PResult<Vec<Stmt>> {
        let mut stmts = Vec::new();
        loop {
            if self.eat_punct("}") {
                return Ok(stmts);
            }
            if matches!(self.peek(), Tok::Eof) {
                return self.err("expected '}', found end of input");
            }
            if self.over_budget() {
                return Ok(stmts);
            }
            match self.stmt() {
                Ok(s) => stmts.push(s),
                Err(e) => {
                    self.report(e);
                    self.recover_stmt();
                }
            }
        }
    }

    fn stmt(&mut self) -> PResult<Stmt> {
        let start = self.cur_span().start;
        let kind = self.stmt_kind()?;
        Ok(Stmt::new(kind, Span::new(start, self.prev_span().end)))
    }

    #[allow(clippy::too_many_lines)]
    fn stmt_kind(&mut self) -> PResult<StmtKind> {
        // Control-flow keywords.
        if self.eat_kw("if") {
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            let then = self.block()?;
            let els = if self.eat_kw("else") {
                self.block_semi()?
            } else {
                self.eat_punct(";");
                Vec::new()
            };
            return Ok(StmtKind::If { cond, then, els });
        }
        if self.eat_kw("while") {
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            let body = self.block_semi()?;
            return Ok(StmtKind::While { cond, body });
        }
        if self.eat_kw("foreach") {
            let (count, step, ity, ivar, body) = self.foreach_tail()?;
            return Ok(StmtKind::Foreach {
                count,
                step,
                ity,
                ivar,
                body,
            });
        }
        if self.eat_kw("replicate") {
            self.expect_punct("(")?;
            let ways = self.expect_int()?;
            self.expect_punct(")")?;
            let body = self.block_semi()?;
            return Ok(StmtKind::Replicate {
                ways: ways as u32,
                body,
            });
        }
        if self.eat_kw("fork") {
            self.expect_punct("(")?;
            let count = self.expr()?;
            self.expect_punct(")")?;
            self.expect_punct("{")?;
            let ity = self.ty()?;
            let ivar = self.expect_ident()?;
            self.expect_punct("=>")?;
            let body = self.stmt_seq()?;
            self.eat_punct(";");
            return Ok(StmtKind::Fork {
                count,
                ity,
                ivar,
                body,
            });
        }
        if self.eat_kw("exit") {
            self.expect_punct(";")?;
            return Ok(StmtKind::Exit);
        }
        if self.eat_kw("yield") {
            let e = self.expr()?;
            self.expect_punct(";")?;
            return Ok(StmtKind::Yield(e));
        }
        if self.eat_kw("return") {
            if self.eat_punct(";") {
                return Ok(StmtKind::Return(None));
            }
            let e = self.expr()?;
            self.expect_punct(";")?;
            return Ok(StmtKind::Return(Some(e)));
        }
        if self.eat_kw("pragma") {
            self.expect_punct("(")?;
            let name = self.expect_ident()?;
            let value = if self.eat_punct(",") {
                Some(self.expect_int()?)
            } else {
                None
            };
            self.expect_punct(")")?;
            self.expect_punct(";")?;
            return Ok(StmtKind::Pragma { name, value });
        }
        // Memory declarations.
        if self.is_kw("sram") {
            self.bump();
            self.expect_punct("<")?;
            let ty = self.ty()?;
            self.expect_punct(",")?;
            let size = self.expect_int()? as u32;
            self.expect_punct(">")?;
            let name = self.expect_ident()?;
            self.expect_punct(";")?;
            return Ok(StmtKind::Mem {
                name,
                decl: MemDecl::Sram { ty, size },
            });
        }
        for (kw, kind) in [
            ("readview", ViewKindName::Read),
            ("writeview", ViewKindName::Write),
            ("modifyview", ViewKindName::Modify),
        ] {
            if self.is_kw(kw) {
                self.bump();
                self.expect_punct("<")?;
                let size = self.expect_int()? as u32;
                self.expect_punct(">")?;
                let name = self.expect_ident()?;
                self.expect_punct("(")?;
                let dram = self.expect_ident()?;
                self.expect_punct(",")?;
                let base = self.expr()?;
                self.expect_punct(")")?;
                self.expect_punct(";")?;
                return Ok(StmtKind::Mem {
                    name,
                    decl: MemDecl::View {
                        kind,
                        size,
                        dram,
                        base,
                    },
                });
            }
        }
        for (kw, kind) in [
            ("readit", ItKindName::Read),
            ("peekreadit", ItKindName::PeekRead),
            ("writeit", ItKindName::Write),
            ("manualwriteit", ItKindName::ManualWrite),
        ] {
            if self.is_kw(kw) {
                self.bump();
                self.expect_punct("<")?;
                let tile = self.expect_int()? as u32;
                self.expect_punct(">")?;
                let name = self.expect_ident()?;
                self.expect_punct("(")?;
                let dram = self.expect_ident()?;
                self.expect_punct(",")?;
                let seek = self.expr()?;
                self.expect_punct(")")?;
                self.expect_punct(";")?;
                return Ok(StmtKind::Mem {
                    name,
                    decl: MemDecl::It {
                        kind,
                        tile,
                        dram,
                        seek,
                    },
                });
            }
        }
        // `*it = e;`
        if self.eat_punct("*") {
            let it = self.expect_ident()?;
            self.expect_punct("=")?;
            let value = self.expr()?;
            self.expect_punct(";")?;
            return Ok(StmtKind::DerefStore { it, value });
        }
        // Typed declaration: `ty name [= init];` (possibly foreach-reduce).
        if let Tok::Ident(s) = self.peek() {
            if TyName::parse(s).is_some() && matches!(self.peek2(), Tok::Ident(_)) {
                let ty = self.ty()?;
                let name = self.expect_ident()?;
                let init = if self.eat_punct("=") {
                    Some(self.init_expr()?)
                } else {
                    None
                };
                self.expect_punct(";")?;
                return Ok(StmtKind::Decl { ty, name, init });
            }
        }
        // Assignment / compound assignment / store / increment.
        let name = self.expect_ident()?;
        // `name.load(...)` / `name.store(...)` / `name.peek` handled in expr;
        // statement-position method calls:
        if self.eat_punct(".") {
            let method = self.expect_ident()?;
            match method.as_str() {
                "load" | "store" => {
                    self.expect_punct("(")?;
                    let dram = self.expect_ident()?;
                    self.expect_punct(",")?;
                    let base = self.expr()?;
                    self.expect_punct(",")?;
                    let len = self.expr()?;
                    self.expect_punct(")")?;
                    self.expect_punct(";")?;
                    return Ok(StmtKind::Bulk {
                        sram: name,
                        load: method == "load",
                        dram,
                        base,
                        len,
                    });
                }
                "inc" => {
                    self.expect_punct("(")?;
                    let last = self.expr()?;
                    self.expect_punct(")")?;
                    self.expect_punct(";")?;
                    return Ok(StmtKind::Inc {
                        it: name,
                        last: Some(last),
                    });
                }
                other => return self.err(format!("unknown method '{other}'")),
            }
        }
        if self.eat_punct("++") {
            self.expect_punct(";")?;
            return Ok(StmtKind::Inc {
                it: name,
                last: None,
            });
        }
        if self.eat_punct("[") {
            let idx = self.expr()?;
            self.expect_punct("]")?;
            // Compound stores: `a[i] op= e` desugars to load-modify-store.
            for (tok, op) in [
                ("+=", BinOp::Add),
                ("-=", BinOp::Sub),
                ("*=", BinOp::Mul),
                ("/=", BinOp::Div),
                ("%=", BinOp::Rem),
                ("&=", BinOp::And),
                ("|=", BinOp::Or),
                ("^=", BinOp::Xor),
            ] {
                if self.eat_punct(tok) {
                    let rhs = self.expr()?;
                    self.expect_punct(";")?;
                    let cur = Expr::Index(name.clone(), Box::new(idx.clone()));
                    return Ok(StmtKind::Store {
                        base: name,
                        idx,
                        value: Expr::Bin(op, Box::new(cur), Box::new(rhs)),
                    });
                }
            }
            self.expect_punct("=")?;
            let value = self.expr()?;
            self.expect_punct(";")?;
            return Ok(StmtKind::Store {
                base: name,
                idx,
                value,
            });
        }
        for (tok, op) in [
            ("+=", BinOp::Add),
            ("-=", BinOp::Sub),
            ("*=", BinOp::Mul),
            ("/=", BinOp::Div),
            ("%=", BinOp::Rem),
            ("&=", BinOp::And),
            ("|=", BinOp::Or),
            ("^=", BinOp::Xor),
            ("<<=", BinOp::Shl),
            (">>=", BinOp::Shr),
        ] {
            if self.eat_punct(tok) {
                let rhs = self.expr()?;
                self.expect_punct(";")?;
                return Ok(StmtKind::Assign {
                    name: name.clone(),
                    value: Expr::Bin(op, Box::new(Expr::Var(name)), Box::new(rhs)),
                });
            }
        }
        self.expect_punct("=")?;
        let value = self.expr()?;
        self.expect_punct(";")?;
        Ok(StmtKind::Assign { name, value })
    }

    /// Initializer expression: ordinary expression or foreach-reduce.
    fn init_expr(&mut self) -> PResult<Expr> {
        if self.eat_kw("foreach") {
            let (count, step, op, ity, ivar, body) = self.foreach_reduce_tail()?;
            return Ok(Expr::ForeachReduce {
                count: Box::new(count),
                step: step.map(Box::new),
                op,
                ity,
                ivar,
                body,
            });
        }
        self.expr()
    }

    /// After `foreach`: `(count [by step]) { ty i => stmts }`.
    fn foreach_tail(&mut self) -> PResult<(Expr, Option<Expr>, TyName, String, Vec<Stmt>)> {
        self.expect_punct("(")?;
        let count = self.expr()?;
        let step = if self.eat_kw("by") {
            Some(self.expr()?)
        } else {
            None
        };
        self.expect_punct(")")?;
        self.expect_punct("{")?;
        let ity = self.ty()?;
        let ivar = self.expect_ident()?;
        self.expect_punct("=>")?;
        let body = self.stmt_seq()?;
        self.eat_punct(";");
        Ok((count, step, ity, ivar, body))
    }

    /// After `foreach` in expression position:
    /// `(count [by step]) reduce(op) { ty i => stmts }`.
    fn foreach_reduce_tail(
        &mut self,
    ) -> PResult<(Expr, Option<Expr>, ReduceOp, TyName, String, Vec<Stmt>)> {
        self.expect_punct("(")?;
        let count = self.expr()?;
        let step = if self.eat_kw("by") {
            Some(self.expr()?)
        } else {
            None
        };
        self.expect_punct(")")?;
        if !self.eat_kw("reduce") {
            return self.err("foreach in expression position needs 'reduce(op)'");
        }
        self.expect_punct("(")?;
        let op = match self.peek().clone() {
            Tok::Punct("+") => ReduceOp::Add,
            Tok::Punct("*") => ReduceOp::Mul,
            Tok::Punct("&") => ReduceOp::And,
            Tok::Punct("|") => ReduceOp::Or,
            Tok::Punct("^") => ReduceOp::Xor,
            Tok::Ident(s) if s == "min" => ReduceOp::Min,
            Tok::Ident(s) if s == "max" => ReduceOp::Max,
            other => return self.err(format!("unknown reduction operator {other}")),
        };
        self.bump();
        self.expect_punct(")")?;
        self.expect_punct("{")?;
        let ity = self.ty()?;
        let ivar = self.expect_ident()?;
        self.expect_punct("=>")?;
        let body = self.stmt_seq()?;
        Ok((count, step, op, ity, ivar, body))
    }

    // ---- expressions (precedence climbing) ----

    fn expr(&mut self) -> PResult<Expr> {
        self.lor()
    }

    fn lor(&mut self) -> PResult<Expr> {
        let mut e = self.land()?;
        while self.eat_punct("||") {
            let r = self.land()?;
            e = Expr::Bin(BinOp::LOr, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn land(&mut self) -> PResult<Expr> {
        let mut e = self.bitor()?;
        while self.eat_punct("&&") {
            let r = self.bitor()?;
            e = Expr::Bin(BinOp::LAnd, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn bitor(&mut self) -> PResult<Expr> {
        let mut e = self.bitxor()?;
        while self.eat_punct("|") {
            let r = self.bitxor()?;
            e = Expr::Bin(BinOp::Or, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn bitxor(&mut self) -> PResult<Expr> {
        let mut e = self.bitand()?;
        while self.eat_punct("^") {
            let r = self.bitand()?;
            e = Expr::Bin(BinOp::Xor, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn bitand(&mut self) -> PResult<Expr> {
        let mut e = self.equality()?;
        while self.eat_punct("&") {
            let r = self.equality()?;
            e = Expr::Bin(BinOp::And, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn equality(&mut self) -> PResult<Expr> {
        let mut e = self.relational()?;
        loop {
            if self.eat_punct("==") {
                let r = self.relational()?;
                e = Expr::Bin(BinOp::Eq, Box::new(e), Box::new(r));
            } else if self.eat_punct("!=") {
                let r = self.relational()?;
                e = Expr::Bin(BinOp::Ne, Box::new(e), Box::new(r));
            } else {
                return Ok(e);
            }
        }
    }

    fn relational(&mut self) -> PResult<Expr> {
        let mut e = self.shift()?;
        loop {
            let op = if self.eat_punct("<=") {
                BinOp::Le
            } else if self.eat_punct(">=") {
                BinOp::Ge
            } else if self.eat_punct("<") {
                BinOp::Lt
            } else if self.eat_punct(">") {
                BinOp::Gt
            } else {
                return Ok(e);
            };
            let r = self.shift()?;
            e = Expr::Bin(op, Box::new(e), Box::new(r));
        }
    }

    fn shift(&mut self) -> PResult<Expr> {
        let mut e = self.additive()?;
        loop {
            if self.eat_punct("<<") {
                let r = self.additive()?;
                e = Expr::Bin(BinOp::Shl, Box::new(e), Box::new(r));
            } else if self.eat_punct(">>") {
                let r = self.additive()?;
                e = Expr::Bin(BinOp::Shr, Box::new(e), Box::new(r));
            } else {
                return Ok(e);
            }
        }
    }

    fn additive(&mut self) -> PResult<Expr> {
        let mut e = self.multiplicative()?;
        loop {
            if self.eat_punct("+") {
                let r = self.multiplicative()?;
                e = Expr::Bin(BinOp::Add, Box::new(e), Box::new(r));
            } else if self.eat_punct("-") {
                let r = self.multiplicative()?;
                e = Expr::Bin(BinOp::Sub, Box::new(e), Box::new(r));
            } else {
                return Ok(e);
            }
        }
    }

    fn multiplicative(&mut self) -> PResult<Expr> {
        let mut e = self.unary()?;
        loop {
            if self.eat_punct("*") {
                let r = self.unary()?;
                e = Expr::Bin(BinOp::Mul, Box::new(e), Box::new(r));
            } else if self.eat_punct("/") {
                let r = self.unary()?;
                e = Expr::Bin(BinOp::Div, Box::new(e), Box::new(r));
            } else if self.eat_punct("%") {
                let r = self.unary()?;
                e = Expr::Bin(BinOp::Rem, Box::new(e), Box::new(r));
            } else {
                return Ok(e);
            }
        }
    }

    fn unary(&mut self) -> PResult<Expr> {
        if self.eat_punct("-") {
            let e = self.unary()?;
            return Ok(Expr::Un(UnOp::Neg, Box::new(e)));
        }
        if self.eat_punct("!") {
            let e = self.unary()?;
            return Ok(Expr::Un(UnOp::Not, Box::new(e)));
        }
        if self.eat_punct("~") {
            let e = self.unary()?;
            return Ok(Expr::Un(UnOp::BitNot, Box::new(e)));
        }
        if self.eat_punct("*") {
            let it = self.expect_ident()?;
            return Ok(Expr::Deref(it));
        }
        // Cast: `(ty) e` — lookahead for `( tyname )`.
        if matches!(self.peek(), Tok::Punct("(")) {
            if let Tok::Ident(s) = self.peek2() {
                if TyName::parse(s).is_some()
                    && matches!(
                        self.toks.get(self.pos + 2).map(|t| &t.tok),
                        Some(Tok::Punct(")"))
                    )
                {
                    self.bump(); // (
                    let ty = self.ty()?;
                    self.bump(); // )
                    let e = self.unary()?;
                    return Ok(Expr::Cast(ty, Box::new(e)));
                }
            }
        }
        self.postfix()
    }

    fn postfix(&mut self) -> PResult<Expr> {
        if self.eat_punct("(") {
            let e = self.expr()?;
            self.expect_punct(")")?;
            return Ok(e);
        }
        match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                Ok(Expr::Int(v))
            }
            Tok::Ident(name) => {
                self.bump();
                if self.eat_punct("[") {
                    let idx = self.expr()?;
                    self.expect_punct("]")?;
                    return Ok(Expr::Index(name, Box::new(idx)));
                }
                if matches!(self.peek(), Tok::Punct(".")) {
                    if let Tok::Ident(m) = self.peek2() {
                        if m == "peek" {
                            self.bump(); // .
                            self.bump(); // peek
                            self.expect_punct("(")?;
                            let e = self.expr()?;
                            self.expect_punct(")")?;
                            return Ok(Expr::Peek(name, Box::new(e)));
                        }
                    }
                }
                Ok(Expr::Var(name))
            }
            other => self.err_code(
                codes::PARSE_EXPECTED_EXPR,
                format!("expected expression, found {other}"),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use revet_diag::SourceMap;

    #[test]
    fn parses_minimal_program() {
        let p = parse_program(
            "dram<u32> output;\nvoid main(u32 n) { foreach (n) { u32 i => output[i] = i * i; }; }",
        )
        .unwrap();
        assert_eq!(p.drams.len(), 1);
        assert_eq!(p.funcs.len(), 1);
        assert_eq!(p.funcs[0].name, "main");
        assert!(matches!(p.funcs[0].body[0].kind, StmtKind::Foreach { .. }));
    }

    #[test]
    fn parses_strlen_shape() {
        // The Fig. 7 structure (simplified sizes).
        let src = r#"
            dram<u8> input; dram<u32> offsets; dram<u32> lengths;
            void main(u32 count) {
                foreach (count by 4) { u32 outer =>
                    readview<4> in_view(offsets, outer);
                    writeview<4> out_view(lengths, outer);
                    foreach (4) { u32 idx =>
                        pragma(eliminate_hierarchy);
                        u32 len = 0;
                        u32 off = in_view[idx];
                        replicate (2) {
                            readit<8> it(input, off);
                            while (*it) {
                                len = len + 1;
                                it++;
                            };
                        };
                        out_view[idx] = len;
                    };
                };
            }
        "#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.drams.len(), 3);
        let f = &p.funcs[0];
        let StmtKind::Foreach { body, step, .. } = &f.body[0].kind else {
            panic!("expected foreach");
        };
        assert!(step.is_some());
        assert!(matches!(body[0].kind, StmtKind::Mem { .. }));
    }

    #[test]
    fn precedence() {
        let p = parse_program("void main() { u32 x = 1 + 2 * 3 == 7; }").unwrap();
        let StmtKind::Decl { init: Some(e), .. } = &p.funcs[0].body[0].kind else {
            panic!()
        };
        // (1 + (2*3)) == 7
        assert!(matches!(e, Expr::Bin(BinOp::Eq, ..)));
    }

    #[test]
    fn foreach_reduce_expression() {
        let p = parse_program(
            "void main() { u32 m = foreach (15) reduce(&) { u32 lane => yield lane; }; }",
        )
        .unwrap();
        let StmtKind::Decl { init: Some(e), .. } = &p.funcs[0].body[0].kind else {
            panic!()
        };
        assert!(matches!(
            e,
            Expr::ForeachReduce {
                op: ReduceOp::And,
                ..
            }
        ));
    }

    #[test]
    fn fork_exit_and_pragmas() {
        let p = parse_program(
            "void main() { fork (3) { u32 i => if (i) { exit; }; }; pragma(threads, 64); }",
        )
        .unwrap();
        assert!(matches!(p.funcs[0].body[0].kind, StmtKind::Fork { .. }));
        assert!(matches!(
            p.funcs[0].body[1].kind,
            StmtKind::Pragma {
                value: Some(64),
                ..
            }
        ));
    }

    #[test]
    fn iterators_and_stores() {
        let p = parse_program(
            r#"dram<u8> d; void main() {
                manualwriteit<4> w(d, 0);
                *w = 65;
                w.inc(1);
                peekreadit<4> r(d, 0);
                u32 x = r.peek(2);
                u32 y = *r;
            }"#,
        )
        .unwrap();
        let b = &p.funcs[0].body;
        assert!(matches!(b[1].kind, StmtKind::DerefStore { .. }));
        assert!(matches!(b[2].kind, StmtKind::Inc { last: Some(_), .. }));
        assert!(matches!(
            b[4].kind,
            StmtKind::Decl {
                init: Some(Expr::Peek(..)),
                ..
            }
        ));
    }

    #[test]
    fn compound_assignment_desugars() {
        let p = parse_program("void main() { u32 x = 0; x += 2; }").unwrap();
        let StmtKind::Assign { value, .. } = &p.funcs[0].body[1].kind else {
            panic!()
        };
        assert!(matches!(value, Expr::Bin(BinOp::Add, ..)));
    }

    #[test]
    fn bulk_transfers() {
        let p = parse_program(
            "dram<u32> d; void main() { sram<u32, 16> buf; buf.load(d, 0, 16); buf.store(d, 0, 16); }",
        )
        .unwrap();
        assert!(matches!(
            p.funcs[0].body[1].kind,
            StmtKind::Bulk { load: true, .. }
        ));
        assert!(matches!(
            p.funcs[0].body[2].kind,
            StmtKind::Bulk { load: false, .. }
        ));
    }

    #[test]
    fn errors_have_spans() {
        let src = "void main() {\n  u32 x = ;\n}";
        let diags = parse_program(src).unwrap_err();
        assert_eq!(diags.error_count(), 1);
        let d = &diags.as_slice()[0];
        assert_eq!(d.code, codes::PARSE_EXPECTED_EXPR);
        let lc = SourceMap::new(src).line_col(d.span.expect("spanned").start);
        assert_eq!((lc.line, lc.col), (2, 11));
    }

    #[test]
    fn recovery_reports_multiple_statement_errors() {
        // Two independent bad statements; the good one between them parses.
        let src = "void main() {\n  u32 x = ;\n  u32 y = 1;\n  y = @ 2;\n}";
        let diags = parse_program(src).unwrap_err();
        assert_eq!(diags.error_count(), 2, "{diags}");
        let map = SourceMap::new(src);
        let lines: Vec<u32> = diags
            .iter()
            .map(|d| map.line_col(d.span.expect("spanned").start).line)
            .collect();
        assert_eq!(lines, vec![2, 4]);
    }

    #[test]
    fn recovery_crosses_functions() {
        // A broken function does not hide errors in the next one.
        let src = "void f() { u32 a = ; }\nvoid g() { return 3 }";
        let diags = parse_program(src).unwrap_err();
        assert_eq!(diags.error_count(), 2, "{diags}");
    }

    #[test]
    fn statement_spans_cover_the_text() {
        let src = "void main() { u32 x = 1 + 2; }";
        let p = parse_program(src).unwrap();
        let s = &p.funcs[0].body[0];
        assert_eq!(
            &src[s.span.start as usize..s.span.end as usize],
            "u32 x = 1 + 2;"
        );
        assert_eq!(
            &src[p.funcs[0].span.start as usize..p.funcs[0].span.end as usize],
            "void main()"
        );
    }

    #[test]
    fn error_budget_caps_the_avalanche() {
        let bad = "void main() { ".to_string() + &"u32 x = ;\n".repeat(100) + "}";
        let diags = parse_program(&bad).unwrap_err();
        assert!(diags.len() <= MAX_ERRORS + 1, "{}", diags.len());
        assert!(diags.iter().any(|d| d.code == codes::PARSE_TOO_MANY_ERRORS));
    }

    #[test]
    fn unclosed_block_is_a_single_clean_error() {
        let diags = parse_program("void main() { u32 x = 1;").unwrap_err();
        assert_eq!(diags.error_count(), 1, "{diags}");
        assert!(diags.as_slice()[0].message.contains("end of input"));
    }

    #[test]
    fn cast_expression() {
        let p = parse_program("void main() { u32 x = (u8) 300; }").unwrap();
        let StmtKind::Decl { init: Some(e), .. } = &p.funcs[0].body[0].kind else {
            panic!()
        };
        assert!(matches!(e, Expr::Cast(TyName::U8, _)));
    }
}
