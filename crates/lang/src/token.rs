//! The Revet lexer.
//!
//! The surface language is a small C-like imperative language (§IV) with
//! explicit parallel constructs (`foreach`, `replicate`, `fork`, `exit`) and
//! access-pattern-optimized memory declarations (Table I).

use std::fmt;

/// A lexical token.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Tok {
    /// An identifier or keyword.
    Ident(String),
    /// An integer literal (decimal, hex `0x…`, or char `'a'`).
    Int(i64),
    /// Punctuation / operator, canonical spelling.
    Punct(&'static str),
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "'{s}'"),
            Tok::Int(v) => write!(f, "'{v}'"),
            Tok::Punct(p) => write!(f, "'{p}'"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its source position.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// A lexing error.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LexError {
    /// Description.
    pub message: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for LexError {}

/// Multi-character operators, longest first (order matters).
const PUNCTS: &[&str] = &[
    "<<=", ">>=", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "+=", "-=", "*=", "/=", "%=",
    "&=", "|=", "^=", "++", "--", "::", "=>", "->", "+", "-", "*", "/", "%", "&", "|", "^", "~",
    "!", "<", ">", "=", "(", ")", "{", "}", "[", "]", ",", ";", ".", ":",
];

/// Tokenizes Revet source.
///
/// # Errors
///
/// Returns [`LexError`] for unterminated char literals, bad escapes, or
/// unexpected characters.
pub fn lex(src: &str) -> Result<Vec<Spanned>, LexError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;
    let err = |m: String, line: u32, col: u32| LexError {
        message: m,
        line,
        col,
    };
    'outer: while i < bytes.len() {
        let c = bytes[i] as char;
        if c == '\n' {
            i += 1;
            line += 1;
            col = 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            col += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < bytes.len() {
            if bytes[i + 1] == b'/' {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                continue;
            }
            if bytes[i + 1] == b'*' {
                i += 2;
                col += 2;
                while i + 1 < bytes.len() {
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        col += 2;
                        continue 'outer;
                    }
                    if bytes[i] == b'\n' {
                        line += 1;
                        col = 1;
                    } else {
                        col += 1;
                    }
                    i += 1;
                }
                return Err(err("unterminated block comment".into(), line, col));
            }
        }
        let start_col = col;
        // Identifiers / keywords.
        if c.is_ascii_alphabetic() || c == '_' {
            let s = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
                col += 1;
            }
            out.push(Spanned {
                tok: Tok::Ident(src[s..i].to_string()),
                line,
                col: start_col,
            });
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() {
            let s = i;
            let radix = if c == '0' && i + 1 < bytes.len() && (bytes[i + 1] | 32) == b'x' {
                i += 2;
                col += 2;
                16
            } else {
                10
            };
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
                col += 1;
            }
            let text = src[s..i].replace('_', "");
            let digits = if radix == 16 { &text[2..] } else { &text[..] };
            let v = i64::from_str_radix(digits, radix).map_err(|e| {
                err(
                    format!("bad integer literal '{text}': {e}"),
                    line,
                    start_col,
                )
            })?;
            out.push(Spanned {
                tok: Tok::Int(v),
                line,
                col: start_col,
            });
            continue;
        }
        // Char literals.
        if c == '\'' {
            let mut j = i + 1;
            let v: u8 = if j < bytes.len() && bytes[j] == b'\\' {
                j += 1;
                let e = *bytes
                    .get(j)
                    .ok_or_else(|| err("unterminated char literal".into(), line, start_col))?;
                j += 1;
                match e {
                    b'n' => b'\n',
                    b't' => b'\t',
                    b'r' => b'\r',
                    b'0' => 0,
                    b'\\' => b'\\',
                    b'\'' => b'\'',
                    other => {
                        return Err(err(
                            format!("unknown escape '\\{}'", other as char),
                            line,
                            start_col,
                        ))
                    }
                }
            } else if j < bytes.len() {
                let v = bytes[j];
                j += 1;
                v
            } else {
                return Err(err("unterminated char literal".into(), line, start_col));
            };
            if j >= bytes.len() || bytes[j] != b'\'' {
                return Err(err("unterminated char literal".into(), line, start_col));
            }
            col += (j + 1 - i) as u32;
            i = j + 1;
            out.push(Spanned {
                tok: Tok::Int(v as i64),
                line,
                col: start_col,
            });
            continue;
        }
        // Operators.
        for p in PUNCTS {
            if src[i..].starts_with(p) {
                out.push(Spanned {
                    tok: Tok::Punct(p),
                    line,
                    col: start_col,
                });
                i += p.len();
                col += p.len() as u32;
                continue 'outer;
            }
        }
        return Err(err(format!("unexpected character '{c}'"), line, col));
    }
    out.push(Spanned {
        tok: Tok::Eof,
        line,
        col,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn idents_numbers_ops() {
        assert_eq!(
            toks("x1 = 0x10 + 2;"),
            vec![
                Tok::Ident("x1".into()),
                Tok::Punct("="),
                Tok::Int(16),
                Tok::Punct("+"),
                Tok::Int(2),
                Tok::Punct(";"),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn char_literals_and_escapes() {
        assert_eq!(toks("'a'"), vec![Tok::Int(97), Tok::Eof]);
        assert_eq!(toks("'\\n'"), vec![Tok::Int(10), Tok::Eof]);
        assert_eq!(toks("'\\0'"), vec![Tok::Int(0), Tok::Eof]);
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            toks("a // line\n/* block\n */ b"),
            vec![Tok::Ident("a".into()), Tok::Ident("b".into()), Tok::Eof]
        );
    }

    #[test]
    fn multi_char_ops_longest_match() {
        assert_eq!(
            toks("a >>= b << c => d"),
            vec![
                Tok::Ident("a".into()),
                Tok::Punct(">>="),
                Tok::Ident("b".into()),
                Tok::Punct("<<"),
                Tok::Ident("c".into()),
                Tok::Punct("=>"),
                Tok::Ident("d".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn positions_tracked() {
        let ts = lex("a\n  b").unwrap();
        assert_eq!((ts[0].line, ts[0].col), (1, 1));
        assert_eq!((ts[1].line, ts[1].col), (2, 3));
    }

    #[test]
    fn lex_errors() {
        assert!(lex("@").is_err());
        assert!(lex("'x").is_err());
        assert!(lex("/* unterminated").is_err());
    }
}
