//! The Revet lexer.
//!
//! The surface language is a small C-like imperative language (§IV) with
//! explicit parallel constructs (`foreach`, `replicate`, `fork`, `exit`) and
//! access-pattern-optimized memory declarations (Table I).
//!
//! Tokens carry **byte spans** into the source; line/column pairs are
//! resolved lazily through a [`revet_diag::SourceMap`] at render time. The
//! lexer *recovers* from bad input — it reports a [`Diagnostic`] per
//! problem and keeps scanning, so one run surfaces every lexical error.

use revet_diag::{codes, Diagnostic, Span};
use std::fmt;

/// A lexical token.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Tok {
    /// An identifier or keyword.
    Ident(String),
    /// An integer literal (decimal, hex `0x…`, or char `'a'`).
    Int(i64),
    /// Punctuation / operator, canonical spelling.
    Punct(&'static str),
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "'{s}'"),
            Tok::Int(v) => write!(f, "'{v}'"),
            Tok::Punct(p) => write!(f, "'{p}'"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its source span.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// Byte range in the source.
    pub span: Span,
}

/// Multi-character operators, longest first (order matters).
const PUNCTS: &[&str] = &[
    "<<=", ">>=", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "+=", "-=", "*=", "/=", "%=",
    "&=", "|=", "^=", "++", "--", "::", "=>", "->", "+", "-", "*", "/", "%", "&", "|", "^", "~",
    "!", "<", ">", "=", "(", ")", "{", "}", "[", "]", ",", ";", ".", ":",
];

/// Tokenizes Revet source.
///
/// Always returns the token stream (terminated by [`Tok::Eof`]) plus any
/// lexical diagnostics. Malformed input is skipped, not fatal: an
/// unexpected character yields one diagnostic and scanning continues, so
/// the parser still sees everything after it.
pub fn lex(src: &str) -> (Vec<Spanned>, Vec<Diagnostic>) {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut diags = Vec::new();
    let mut i = 0usize;
    'outer: while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < bytes.len() {
            if bytes[i + 1] == b'/' {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                continue;
            }
            if bytes[i + 1] == b'*' {
                let open = i;
                i += 2;
                while i + 1 < bytes.len() {
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        continue 'outer;
                    }
                    i += 1;
                }
                diags.push(
                    Diagnostic::error(codes::LEX_UNTERMINATED, "unterminated block comment")
                        .with_span(Span::new(open as u32, (open + 2) as u32)),
                );
                break;
            }
        }
        let start = i;
        // Identifiers / keywords.
        if c.is_ascii_alphabetic() || c == '_' {
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            out.push(Spanned {
                tok: Tok::Ident(src[start..i].to_string()),
                span: Span::new(start as u32, i as u32),
            });
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() {
            let radix = if c == '0' && i + 1 < bytes.len() && (bytes[i + 1] | 32) == b'x' {
                i += 2;
                16
            } else {
                10
            };
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            let span = Span::new(start as u32, i as u32);
            let text = src[start..i].replace('_', "");
            let digits = if radix == 16 { &text[2..] } else { &text[..] };
            match i64::from_str_radix(digits, radix) {
                Ok(v) => out.push(Spanned {
                    tok: Tok::Int(v),
                    span,
                }),
                Err(e) => diags.push(
                    Diagnostic::error(
                        codes::LEX_BAD_LITERAL,
                        format!("bad integer literal '{text}': {e}"),
                    )
                    .with_span(span),
                ),
            }
            continue;
        }
        // Char literals.
        if c == '\'' {
            match lex_char(bytes, start) {
                Ok((v, next)) => {
                    out.push(Spanned {
                        tok: Tok::Int(v as i64),
                        span: Span::new(start as u32, next as u32),
                    });
                    i = next;
                }
                Err((d, next)) => {
                    diags.push(d);
                    i = next;
                }
            }
            continue;
        }
        // Operators.
        for p in PUNCTS {
            if src[i..].starts_with(p) {
                i += p.len();
                out.push(Spanned {
                    tok: Tok::Punct(p),
                    span: Span::new(start as u32, i as u32),
                });
                continue 'outer;
            }
        }
        // Nothing matched: report the (full, possibly multi-byte) char and
        // keep scanning after it.
        let ch = src[i..].chars().next().expect("in bounds");
        let w = ch.len_utf8();
        diags.push(
            Diagnostic::error(
                codes::LEX_UNEXPECTED_CHAR,
                format!("unexpected character '{ch}'"),
            )
            .with_span(Span::new(start as u32, (start + w) as u32)),
        );
        i += w;
    }
    out.push(Spanned {
        tok: Tok::Eof,
        span: Span::point(src.len() as u32),
    });
    (out, diags)
}

/// Scans one char literal starting at the opening quote. Returns the value
/// and the index past the closing quote, or a diagnostic and a resync
/// index.
fn lex_char(bytes: &[u8], start: usize) -> Result<(u8, usize), (Diagnostic, usize)> {
    let unterminated = |end: usize| {
        (
            Diagnostic::error(codes::LEX_UNTERMINATED, "unterminated char literal")
                .with_span(Span::new(start as u32, end as u32)),
            end,
        )
    };
    let mut j = start + 1;
    let v: u8 = if j < bytes.len() && bytes[j] == b'\\' {
        j += 1;
        let Some(&e) = bytes.get(j) else {
            return Err(unterminated(j));
        };
        j += 1;
        match e {
            b'n' => b'\n',
            b't' => b'\t',
            b'r' => b'\r',
            b'0' => 0,
            b'\\' => b'\\',
            b'\'' => b'\'',
            other => {
                // Skip the closing quote too when it is present, so one bad
                // escape doesn't cascade into "unexpected '''".
                let end = if bytes.get(j) == Some(&b'\'') {
                    j + 1
                } else {
                    j
                };
                return Err((
                    Diagnostic::error(
                        codes::LEX_BAD_LITERAL,
                        format!("unknown escape '\\{}'", other as char),
                    )
                    .with_span(Span::new(start as u32, end as u32)),
                    end,
                ));
            }
        }
    } else if j < bytes.len() {
        let v = bytes[j];
        j += 1;
        v
    } else {
        return Err(unterminated(j));
    };
    if j >= bytes.len() || bytes[j] != b'\'' {
        return Err(unterminated(j));
    }
    Ok((v, j + 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use revet_diag::SourceMap;

    fn toks(src: &str) -> Vec<Tok> {
        let (ts, diags) = lex(src);
        assert!(diags.is_empty(), "{diags:?}");
        ts.into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn idents_numbers_ops() {
        assert_eq!(
            toks("x1 = 0x10 + 2;"),
            vec![
                Tok::Ident("x1".into()),
                Tok::Punct("="),
                Tok::Int(16),
                Tok::Punct("+"),
                Tok::Int(2),
                Tok::Punct(";"),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn char_literals_and_escapes() {
        assert_eq!(toks("'a'"), vec![Tok::Int(97), Tok::Eof]);
        assert_eq!(toks("'\\n'"), vec![Tok::Int(10), Tok::Eof]);
        assert_eq!(toks("'\\0'"), vec![Tok::Int(0), Tok::Eof]);
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            toks("a // line\n/* block\n */ b"),
            vec![Tok::Ident("a".into()), Tok::Ident("b".into()), Tok::Eof]
        );
    }

    #[test]
    fn multi_char_ops_longest_match() {
        assert_eq!(
            toks("a >>= b << c => d"),
            vec![
                Tok::Ident("a".into()),
                Tok::Punct(">>="),
                Tok::Ident("b".into()),
                Tok::Punct("<<"),
                Tok::Ident("c".into()),
                Tok::Punct("=>"),
                Tok::Ident("d".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn spans_resolve_to_positions() {
        let (ts, diags) = lex("a\n  b");
        assert!(diags.is_empty());
        let map = SourceMap::new("a\n  b");
        let lc0 = map.line_col(ts[0].span.start);
        let lc1 = map.line_col(ts[1].span.start);
        assert_eq!((lc0.line, lc0.col), (1, 1));
        assert_eq!((lc1.line, lc1.col), (2, 3));
        // Eof is a point span at the end of input.
        assert_eq!(ts.last().unwrap().span, Span::point(5));
    }

    #[test]
    fn lex_errors_are_spanned_diagnostics() {
        let (_, d) = lex("@");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, codes::LEX_UNEXPECTED_CHAR);
        assert_eq!(d[0].span, Some(Span::new(0, 1)));
        let (_, d) = lex("'x");
        assert_eq!(d[0].code, codes::LEX_UNTERMINATED);
        let (_, d) = lex("/* unterminated");
        assert_eq!(d[0].code, codes::LEX_UNTERMINATED);
    }

    #[test]
    fn lexer_recovers_and_reports_every_error() {
        // Two independent bad characters; the tokens between them survive.
        let (ts, d) = lex("a @ b $ c");
        assert_eq!(d.len(), 2);
        assert_eq!(
            ts.iter().map(|s| &s.tok).cloned().collect::<Vec<_>>(),
            vec![
                Tok::Ident("a".into()),
                Tok::Ident("b".into()),
                Tok::Ident("c".into()),
                Tok::Eof
            ]
        );
        // Spans point at the two offenders.
        assert_eq!(d[0].span, Some(Span::new(2, 3)));
        assert_eq!(d[1].span, Some(Span::new(6, 7)));
    }

    #[test]
    fn non_ascii_reported_as_one_char() {
        let (_, d) = lex("λ");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].span, Some(Span::new(0, 2)));
        assert!(d[0].message.contains('λ'));
    }
}
