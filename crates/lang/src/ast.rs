//! The Revet abstract syntax tree.
//!
//! Statements, function signatures, and DRAM declarations carry byte
//! [`Span`]s into the source text; semantic diagnostics from lowering
//! attribute themselves at statement granularity through them.

use revet_diag::Span;

/// Surface integer types (signedness is a front-end property; MIR keeps only
/// storage width).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum TyName {
    /// Unsigned 8-bit.
    U8,
    /// Unsigned 16-bit.
    U16,
    /// Unsigned 32-bit.
    U32,
    /// Signed 8-bit.
    I8,
    /// Signed 16-bit.
    I16,
    /// Signed 32-bit.
    I32,
    /// No value.
    Void,
}

impl TyName {
    /// True for the signed variants.
    pub fn signed(self) -> bool {
        matches!(self, TyName::I8 | TyName::I16 | TyName::I32)
    }

    /// Storage width in bytes.
    pub fn bytes(self) -> u32 {
        match self {
            TyName::U8 | TyName::I8 => 1,
            TyName::U16 | TyName::I16 => 2,
            TyName::U32 | TyName::I32 => 4,
            TyName::Void => 0,
        }
    }

    /// Parses a type name.
    pub fn parse(s: &str) -> Option<TyName> {
        Some(match s {
            "u8" | "char" => TyName::U8,
            "u16" => TyName::U16,
            "u32" | "uint" => TyName::U32,
            "i8" => TyName::I8,
            "i16" => TyName::I16,
            "i32" | "int" => TyName::I32,
            "void" => TyName::Void,
            _ => return None,
        })
    }
}

/// Binary operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    LAnd,
    LOr,
}

/// Unary operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum UnOp {
    Neg,
    Not,
    BitNot,
}

/// Reduction operators for `foreach … reduce(op)`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum ReduceOp {
    Add,
    Mul,
    And,
    Or,
    Xor,
    Min,
    Max,
}

/// An expression.
#[derive(Clone, PartialEq, Debug)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Variable reference.
    Var(String),
    /// `a op b`.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// `op a`.
    Un(UnOp, Box<Expr>),
    /// `base[idx]` — DRAM symbol, view, or SRAM indexing.
    Index(String, Box<Expr>),
    /// `*it`.
    Deref(String),
    /// `it.peek(e)`.
    Peek(String, Box<Expr>),
    /// `(ty) e`.
    Cast(TyName, Box<Expr>),
    /// `foreach (count [by step]) reduce(op) { ty i => body }` as a value.
    ForeachReduce {
        /// Trip count.
        count: Box<Expr>,
        /// Step (`by`), default 1.
        step: Option<Box<Expr>>,
        /// Reduction operator.
        op: ReduceOp,
        /// Index variable type.
        ity: TyName,
        /// Index variable name.
        ivar: String,
        /// Body; must `yield` a value.
        body: Vec<Stmt>,
    },
}

/// Kinds of memory object declarations (Table I).
#[derive(Clone, PartialEq, Debug)]
pub enum MemDecl {
    /// `sram<ty, size> name;`
    Sram {
        /// Element type.
        ty: TyName,
        /// Element count.
        size: u32,
    },
    /// `readview<size> name(dram, base);` and friends.
    View {
        /// read / write / modify.
        kind: ViewKindName,
        /// Tile size in elements.
        size: u32,
        /// Backing DRAM symbol.
        dram: String,
        /// Base element index.
        base: Expr,
    },
    /// `readit<tile> name(dram, seek);` and friends.
    It {
        /// Iterator flavor.
        kind: ItKindName,
        /// Tile size.
        tile: u32,
        /// Backing DRAM symbol.
        dram: String,
        /// Starting element index.
        seek: Expr,
    },
}

/// View flavors.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum ViewKindName {
    Read,
    Write,
    Modify,
}

/// Iterator flavors.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum ItKindName {
    Read,
    PeekRead,
    Write,
    ManualWrite,
}

/// A statement: what it does plus where it sits in the source.
#[derive(Clone, PartialEq, Debug)]
pub struct Stmt {
    /// The statement proper.
    pub kind: StmtKind,
    /// Byte range of the whole statement (keyword through trailing `;`).
    pub span: Span,
}

impl Stmt {
    /// A statement with its span.
    pub fn new(kind: StmtKind, span: Span) -> Stmt {
        Stmt { kind, span }
    }
}

/// The statement kinds.
#[derive(Clone, PartialEq, Debug)]
pub enum StmtKind {
    /// `ty name = expr;` (or `ty name;`, zero-initialized).
    Decl {
        /// Declared type.
        ty: TyName,
        /// Variable name.
        name: String,
        /// Initializer.
        init: Option<Expr>,
    },
    /// A memory object declaration.
    Mem {
        /// Object name.
        name: String,
        /// What it is.
        decl: MemDecl,
    },
    /// `name = expr;`
    Assign {
        /// Target variable.
        name: String,
        /// New value.
        value: Expr,
    },
    /// `base[idx] = expr;`
    Store {
        /// DRAM symbol / view / SRAM name.
        base: String,
        /// Element index.
        idx: Expr,
        /// Stored value.
        value: Expr,
    },
    /// `*it = expr;`
    DerefStore {
        /// Iterator name.
        it: String,
        /// Stored value.
        value: Expr,
    },
    /// `it++;` — optionally `it.inc(last)` for manual-flush write iterators.
    Inc {
        /// Iterator name.
        it: String,
        /// Last-iteration hint.
        last: Option<Expr>,
    },
    /// `if (c) { … } [else { … }];`
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then: Vec<Stmt>,
        /// Else branch.
        els: Vec<Stmt>,
    },
    /// `while (c) { … };`
    While {
        /// Condition (re-evaluated each iteration).
        cond: Expr,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `foreach (count [by step]) { ty i => … };` (statement form, no value).
    Foreach {
        /// Trip count.
        count: Expr,
        /// Step, default 1.
        step: Option<Expr>,
        /// Index variable type.
        ity: TyName,
        /// Index variable name.
        ivar: String,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `replicate (ways) { … };`
    Replicate {
        /// Physical duplication factor.
        ways: u32,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `fork (count) { ty i => … };`
    Fork {
        /// Spawn count.
        count: Expr,
        /// Index variable type.
        ity: TyName,
        /// Index variable name.
        ivar: String,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `exit;`
    Exit,
    /// `yield expr;` (inside reducing foreach bodies).
    Yield(Expr),
    /// `return [expr];`
    Return(Option<Expr>),
    /// `pragma(name [, value]);`
    Pragma {
        /// Pragma name.
        name: String,
        /// Optional integer argument.
        value: Option<i64>,
    },
    /// `name.load(dram, base, len);` / `name.store(dram, base, len);` —
    /// explicit bulk transfer for raw SRAM (Fig. 5 upper half).
    Bulk {
        /// SRAM object name.
        sram: String,
        /// true = load (DRAM→SRAM).
        load: bool,
        /// DRAM symbol.
        dram: String,
        /// First element index.
        base: Expr,
        /// Element count.
        len: Expr,
    },
}

/// A DRAM symbol declaration: `dram<ty> name;`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DramDeclAst {
    /// Symbol name.
    pub name: String,
    /// Element type.
    pub ty: TyName,
    /// Byte range of the declaration.
    pub span: Span,
}

/// A function definition.
#[derive(Clone, PartialEq, Debug)]
pub struct FuncAst {
    /// Name (`main` is the entry point).
    pub name: String,
    /// Return type.
    pub ret: TyName,
    /// Parameters.
    pub params: Vec<(TyName, String)>,
    /// Body.
    pub body: Vec<Stmt>,
    /// Byte range of the signature (return type through `)`).
    pub span: Span,
}

/// A parsed program.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Program {
    /// DRAM symbols.
    pub drams: Vec<DramDeclAst>,
    /// Functions.
    pub funcs: Vec<FuncAst>,
}
