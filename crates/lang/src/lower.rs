//! AST → MIR lowering: symbol resolution, type checking, and conversion of
//! mutable variables to SSA form.
//!
//! Mutable-variable conversion follows the structured-control-flow shape:
//! variables assigned inside an `if` become region yields and op results;
//! variables assigned inside a `while` become loop-carried values; `foreach`
//! bodies get a *read-only* view of parent variables (§IV-A a — the language
//! guarantee that makes threads trivially parallel), while `replicate` and
//! `fork` bodies may assign (the continuation thread's values flow out as op
//! results).

use crate::ast::{
    BinOp, Expr, ItKindName, MemDecl, Program, ReduceOp, Stmt, StmtKind, TyName, UnOp, ViewKindName,
};
use revet_diag::{codes, Diagnostic, Diagnostics, Span};
use revet_mir::{
    AluOp, ForeachFlags, Func, ItKind, Module, OpKind, RegionBuilder, Ty, Value, ViewKind,
};
use std::collections::{HashMap, HashSet};

/// A lowering (semantic) error: internal carrier, converted to a
/// [`Diagnostic`] at the `lower_program` boundary. Errors raised deep in
/// expression lowering start span-less; the statement-walking loop
/// attributes them to the enclosing statement's span.
#[derive(Clone, PartialEq, Eq, Debug)]
struct LowerError {
    code: &'static str,
    message: String,
    span: Option<Span>,
}

impl LowerError {
    fn new(m: impl Into<String>) -> Self {
        LowerError::code(codes::SEM_GENERAL, m)
    }

    fn code(code: &'static str, m: impl Into<String>) -> Self {
        LowerError {
            code,
            message: m.into(),
            span: None,
        }
    }

    fn or_span(mut self, span: Span) -> Self {
        self.span.get_or_insert(span);
        self
    }

    fn into_diagnostic(self) -> Diagnostic {
        let d = Diagnostic::error(self.code, self.message);
        match self.span {
            Some(s) => d.with_span(s),
            None => d,
        }
    }
}

/// Lowering output: the module plus module-level attributes gathered from
/// pragmas.
#[derive(Clone, Debug)]
pub struct Lowered {
    /// The MIR module (verified).
    pub module: Module,
    /// `pragma(threads, N)` hint: thread-local buffer count for allocators.
    pub thread_count_hint: Option<u32>,
}

/// Lowers a parsed program to MIR.
///
/// # Errors
///
/// Returns spanned [`Diagnostics`] for unknown names, type mismatches,
/// writes to read-only parent variables inside `foreach`, and malformed
/// yields. Lowering stops at the first semantic error (multi-error
/// reporting is the parser's recovery job).
pub fn lower_program(prog: &Program) -> Result<Lowered, Diagnostics> {
    lower_program_inner(prog).map_err(|e| Diagnostics::from(e.into_diagnostic()))
}

fn lower_program_inner(prog: &Program) -> Result<Lowered, LowerError> {
    let mut module = Module::default();
    let mut dram_map = HashMap::new();
    let mut dram_tys = HashMap::new();
    for d in &prog.drams {
        let r = module.add_dram(d.name.clone(), d.ty.bytes());
        dram_map.insert(d.name.clone(), r);
        dram_tys.insert(d.name.clone(), d.ty);
    }
    let mut thread_count_hint = None;
    for fast in &prog.funcs {
        let param_tys: Vec<Ty> = fast.params.iter().map(|(t, _)| storage_ty(*t)).collect();
        let results = if fast.ret == TyName::Void {
            vec![]
        } else {
            vec![storage_ty(fast.ret)]
        };
        let mut func = Func::new(fast.name.clone(), &param_tys, results);
        let mut lw = Lowerer {
            func: &mut func,
            drams: &dram_map,
            dram_tys: &dram_tys,
            scopes: vec![Scope::new(false)],
            thread_count_hint: &mut thread_count_hint,
            ret: fast.ret,
        };
        for ((ty, name), val) in fast.params.iter().zip(lw.func.params.clone()) {
            lw.scopes[0]
                .bindings
                .insert(name.clone(), Binding::Var(VarInfo { val, ty: *ty }));
        }
        let mut b = RegionBuilder::new();
        lw.lower_block(&fast.body, &mut b)
            .map_err(|e| e.or_span(fast.span))?;
        // Ensure a return terminator.
        if !matches!(
            b_last_kind(&b),
            Some(OpKind::Return(_)) | Some(OpKind::Exit)
        ) {
            if fast.ret != TyName::Void {
                return Err(LowerError::code(
                    codes::SEM_BAD_YIELD_RETURN,
                    format!("function '{}' must end with return of a value", fast.name),
                )
                .or_span(fast.span));
            }
            b.emit0(OpKind::Return(vec![]));
        }
        func.body = b.build();
        module.funcs.push(func);
    }
    revet_mir::verify_module(&module).map_err(|e| {
        let le = LowerError::code(codes::MIR_VERIFY, e.to_string());
        match e.span {
            Some(s) => le.or_span(s),
            None => le,
        }
    })?;
    Ok(Lowered {
        module,
        thread_count_hint,
    })
}

fn b_last_kind(b: &RegionBuilder) -> Option<OpKind> {
    b.last_kind().cloned()
}

/// Storage type for a surface type.
fn storage_ty(t: TyName) -> Ty {
    match t {
        TyName::U8 | TyName::I8 => Ty::I8,
        TyName::U16 | TyName::I16 => Ty::I16,
        TyName::U32 | TyName::I32 => Ty::I32,
        TyName::Void => Ty::Void,
    }
}

#[derive(Clone, Debug)]
struct VarInfo {
    val: Value,
    ty: TyName,
}

#[derive(Clone, Copy, Debug)]
enum HandleKind {
    Sram,
    View(ViewKindName),
    It(ItKindName),
}

#[derive(Clone, Debug)]
enum Binding {
    Var(VarInfo),
    Handle {
        val: Value,
        kind: HandleKind,
        elem: TyName,
    },
}

#[derive(Debug)]
struct Scope {
    bindings: HashMap<String, Binding>,
    /// A thread boundary: assignments cannot cross it (foreach bodies).
    read_only_below: bool,
}

impl Scope {
    fn new(read_only_below: bool) -> Self {
        Scope {
            bindings: HashMap::new(),
            read_only_below,
        }
    }
}

struct Lowerer<'a> {
    func: &'a mut Func,
    drams: &'a HashMap<String, revet_mir::DramRef>,
    dram_tys: &'a HashMap<String, TyName>,
    scopes: Vec<Scope>,
    thread_count_hint: &'a mut Option<u32>,
    ret: TyName,
}

impl Lowerer<'_> {
    fn lookup(&self, name: &str) -> Option<&Binding> {
        for s in self.scopes.iter().rev() {
            if let Some(b) = s.bindings.get(name) {
                return Some(b);
            }
        }
        None
    }

    /// Finds the variable for assignment. Returns its info; the new value is
    /// always written as a *shadow* in the innermost scope so that region
    /// lowering never mutates enclosing-scope bindings (the enclosing
    /// construct re-binds from region results instead).
    fn lookup_var_for_assign(&mut self, name: &str) -> Result<(usize, VarInfo), LowerError> {
        let mut crossed_boundary = false;
        for (i, s) in self.scopes.iter().enumerate().rev() {
            if let Some(Binding::Var(v)) = s.bindings.get(name) {
                if crossed_boundary {
                    return Err(LowerError::code(
                        codes::SEM_READONLY_ASSIGN,
                        format!(
                            "cannot assign '{name}': foreach threads have a read-only view \
                             of parent variables (allocate memory to communicate)"
                        ),
                    ));
                }
                let _ = i;
                return Ok((self.scopes.len() - 1, v.clone()));
            }
            if s.read_only_below {
                crossed_boundary = true;
            }
        }
        Err(LowerError::code(
            codes::SEM_UNKNOWN_NAME,
            format!("assignment to unknown variable '{name}'"),
        ))
    }

    fn set_var(&mut self, scope_idx: usize, name: &str, val: Value, ty: TyName) {
        self.scopes[scope_idx]
            .bindings
            .insert(name.to_string(), Binding::Var(VarInfo { val, ty }));
    }

    /// Current value of a variable visible from here (for carried-value
    /// bookkeeping).
    fn var(&self, name: &str) -> Option<VarInfo> {
        match self.lookup(name) {
            Some(Binding::Var(v)) => Some(v.clone()),
            _ => None,
        }
    }

    // ---- expressions ----

    fn lower_expr(
        &mut self,
        e: &Expr,
        b: &mut RegionBuilder,
    ) -> Result<(Value, TyName), LowerError> {
        match e {
            Expr::Int(v) => {
                let val = b.emit(self.func, OpKind::ConstI(*v, Ty::I32), Ty::I32);
                Ok((val, if *v < 0 { TyName::I32 } else { TyName::U32 }))
            }
            Expr::Var(name) => match self.lookup(name) {
                Some(Binding::Var(v)) => Ok((v.val, v.ty)),
                Some(Binding::Handle { .. }) => Err(LowerError::code(
                    codes::SEM_KIND_MISUSE,
                    format!("'{name}' is a memory object, not a scalar value"),
                )),
                None => Err(LowerError::code(
                    codes::SEM_UNKNOWN_NAME,
                    format!("unknown variable '{name}'"),
                )),
            },
            Expr::Bin(op, l, r) => {
                let (lv, lt) = self.lower_expr(l, b)?;
                let (rv, rt) = self.lower_expr(r, b)?;
                let signed = lt.signed() || rt.signed();
                let (alu, out_ty) = select_alu(*op, signed)?;
                let res = match op {
                    // No short-circuit: operands are effect-free; evaluate
                    // both and combine (documented divergence from C).
                    BinOp::LAnd => {
                        let zero = b.const_i32(self.func, 0);
                        let ln = b.bin(self.func, AluOp::Ne, lv, zero);
                        let rn = b.bin(self.func, AluOp::Ne, rv, zero);
                        b.bin(self.func, AluOp::And, ln, rn)
                    }
                    BinOp::LOr => {
                        let or = b.bin(self.func, AluOp::Or, lv, rv);
                        let zero = b.const_i32(self.func, 0);
                        b.bin(self.func, AluOp::Ne, or, zero)
                    }
                    _ => b.bin(self.func, alu, lv, rv),
                };
                Ok((res, out_ty_for(out_ty, lt, rt, signed)))
            }
            Expr::Un(op, inner) => {
                let (v, t) = self.lower_expr(inner, b)?;
                match op {
                    UnOp::Neg => {
                        let zero = b.const_i32(self.func, 0);
                        Ok((b.bin(self.func, AluOp::Sub, zero, v), TyName::I32))
                    }
                    UnOp::Not => {
                        let zero = b.const_i32(self.func, 0);
                        Ok((b.bin(self.func, AluOp::Eq, v, zero), TyName::U32))
                    }
                    UnOp::BitNot => {
                        let ones = b.const_i32(self.func, -1);
                        Ok((b.bin(self.func, AluOp::Xor, v, ones), t))
                    }
                }
            }
            Expr::Index(base, idx) => {
                let (iv, _) = self.lower_expr(idx, b)?;
                if let Some(&dram) = self.drams.get(base) {
                    let ety = self.dram_tys[base];
                    let raw = b.emit(
                        self.func,
                        OpKind::DramRead { dram, idx: iv },
                        storage_ty(ety),
                    );
                    return Ok((self.extend(raw, ety, b), promote(ety)));
                }
                match self.lookup(base).cloned() {
                    Some(Binding::Handle { val, kind, elem }) => match kind {
                        HandleKind::Sram | HandleKind::View(_) => {
                            let raw = b.emit(
                                self.func,
                                OpKind::ViewRead { view: val, idx: iv },
                                storage_ty(elem),
                            );
                            Ok((self.extend(raw, elem, b), promote(elem)))
                        }
                        HandleKind::It(_) => Err(LowerError::code(
                            codes::SEM_KIND_MISUSE,
                            format!("iterator '{base}' cannot be indexed; use *{base}"),
                        )),
                    },
                    Some(Binding::Var(_)) => Err(LowerError::code(
                        codes::SEM_KIND_MISUSE,
                        format!("'{base}' is a scalar and cannot be indexed"),
                    )),
                    None => Err(LowerError::code(
                        codes::SEM_UNKNOWN_NAME,
                        format!("unknown memory object '{base}'"),
                    )),
                }
            }
            Expr::Deref(name) => {
                let (val, elem) =
                    self.it_handle(name, &[ItKindName::Read, ItKindName::PeekRead])?;
                let raw = b.emit(self.func, OpKind::ItDeref { it: val }, storage_ty(elem));
                Ok((self.extend(raw, elem, b), promote(elem)))
            }
            Expr::Peek(name, ahead) => {
                let (av, _) = self.lower_expr(ahead, b)?;
                let (val, elem) = self.it_handle(name, &[ItKindName::PeekRead])?;
                let raw = b.emit(
                    self.func,
                    OpKind::ItPeek { it: val, ahead: av },
                    storage_ty(elem),
                );
                Ok((self.extend(raw, elem, b), promote(elem)))
            }
            Expr::Cast(ty, inner) => {
                let (v, _) = self.lower_expr(inner, b)?;
                if *ty == TyName::Void {
                    return Err(LowerError::new("cannot cast to void"));
                }
                let res = b.emit(
                    self.func,
                    OpKind::Cast {
                        v,
                        to: storage_ty(*ty),
                        signed: ty.signed(),
                    },
                    storage_ty(*ty),
                );
                Ok((res, *ty))
            }
            Expr::ForeachReduce {
                count,
                step,
                op,
                ity,
                ivar,
                body,
            } => {
                let (cv, _) = self.lower_expr(count, b)?;
                let sv = match step {
                    Some(s) => self.lower_expr(s, b)?.0,
                    None => b.const_i32(self.func, 1),
                };
                let lo = b.const_i32(self.func, 0);
                let idx = self.func.new_value(Ty::I32);
                self.scopes.push(Scope::new(true));
                self.scopes
                    .last_mut()
                    .expect("just pushed")
                    .bindings
                    .insert(ivar.clone(), Binding::Var(VarInfo { val: idx, ty: *ity }));
                let mut body_b = RegionBuilder::with_args(vec![idx]);
                let (stmts, yielded) = split_trailing_yield(body)?;
                self.lower_block(stmts, &mut body_b)?;
                let yielded = yielded.ok_or_else(|| {
                    LowerError::code(
                        codes::SEM_BAD_YIELD_RETURN,
                        "reducing foreach body must end with 'yield expr;'",
                    )
                })?;
                let (yv, _) = self.lower_expr(yielded, &mut body_b)?;
                body_b.emit0(OpKind::Yield(vec![yv]));
                self.scopes.pop();
                let result = self.func.new_value(Ty::I32);
                b.push(
                    OpKind::Foreach {
                        lo,
                        hi: cv,
                        step: sv,
                        body: body_b.build(),
                        reduce: vec![reduce_alu(*op)],
                        flags: ForeachFlags::default(),
                    },
                    vec![result],
                );
                Ok((result, TyName::U32))
            }
        }
    }

    /// Zero/sign-extends a narrow load so variables always hold canonical
    /// 32-bit lane values.
    fn extend(&mut self, v: Value, ty: TyName, b: &mut RegionBuilder) -> Value {
        if ty.bytes() >= 4 || !ty.signed() {
            return v; // loads are already zero-extended
        }
        b.emit(
            self.func,
            OpKind::Cast {
                v,
                to: Ty::I32,
                signed: true,
            },
            Ty::I32,
        )
    }

    fn it_handle(&self, name: &str, allowed: &[ItKindName]) -> Result<(Value, TyName), LowerError> {
        match self.lookup(name) {
            Some(Binding::Handle {
                val,
                kind: HandleKind::It(k),
                elem,
            }) => {
                if allowed.contains(k) {
                    Ok((*val, *elem))
                } else {
                    Err(LowerError::code(
                        codes::SEM_KIND_MISUSE,
                        format!("iterator '{name}' of kind {k:?} does not support this operation"),
                    ))
                }
            }
            _ => Err(LowerError::code(
                codes::SEM_KIND_MISUSE,
                format!("'{name}' is not an iterator"),
            )),
        }
    }

    /// Truncates a value to a narrow declared type (keeps lane values
    /// canonical for u8/u16 variables).
    fn narrow_to(&mut self, v: Value, ty: TyName, b: &mut RegionBuilder) -> Value {
        if ty.bytes() >= 4 {
            return v;
        }
        b.emit(
            self.func,
            OpKind::Cast {
                v,
                to: storage_ty(ty),
                signed: ty.signed(),
            },
            storage_ty(ty),
        )
    }

    // ---- statements ----

    fn lower_block(&mut self, stmts: &[Stmt], b: &mut RegionBuilder) -> Result<(), LowerError> {
        for (i, s) in stmts.iter().enumerate() {
            // Every value created while lowering this statement inherits
            // its span (unless an inner statement pinned a finer one) —
            // this is what lets MIR verification and dataflow lowering
            // point back at source lines long after the AST is gone.
            let first_new = self.func.value_count() as u32;
            let terminated = self.lower_stmt(s, b).map_err(|e| e.or_span(s.span))?;
            for v in first_new..self.func.value_count() as u32 {
                self.func.spans.set_if_absent(Value(v), s.span);
            }
            if terminated && i + 1 < stmts.len() {
                return Err(LowerError::new("unreachable statements after exit/return")
                    .or_span(stmts[i + 1].span));
            }
        }
        Ok(())
    }

    /// Lowers one statement; returns true if it terminated the region.
    #[allow(clippy::too_many_lines)]
    fn lower_stmt(&mut self, s: &Stmt, b: &mut RegionBuilder) -> Result<bool, LowerError> {
        match &s.kind {
            StmtKind::Decl { ty, name, init } => {
                let (v, _) = match init {
                    Some(e) => self.lower_expr(e, b)?,
                    None => (b.const_i32(self.func, 0), TyName::U32),
                };
                let v = self.narrow_to(v, *ty, b);
                let idx = self.scopes.len() - 1;
                self.set_var(idx, name, v, *ty);
                Ok(false)
            }
            StmtKind::Mem { name, decl } => {
                let (kind, handle_kind, elem) = match decl {
                    MemDecl::Sram { ty, size } => (
                        OpKind::ViewNew {
                            kind: ViewKind::Sram,
                            dram: None,
                            base: None,
                            size: *size,
                        },
                        HandleKind::Sram,
                        *ty,
                    ),
                    MemDecl::View {
                        kind,
                        size,
                        dram,
                        base,
                    } => {
                        let d = *self.drams.get(dram).ok_or_else(|| {
                            LowerError::code(
                                codes::SEM_UNKNOWN_NAME,
                                format!("unknown dram '{dram}'"),
                            )
                        })?;
                        let ety = self.dram_tys[dram];
                        let (bv, _) = self.lower_expr(base, b)?;
                        (
                            OpKind::ViewNew {
                                kind: match kind {
                                    ViewKindName::Read => ViewKind::Read,
                                    ViewKindName::Write => ViewKind::Write,
                                    ViewKindName::Modify => ViewKind::Modify,
                                },
                                dram: Some(d),
                                base: Some(bv),
                                size: *size,
                            },
                            HandleKind::View(*kind),
                            ety,
                        )
                    }
                    MemDecl::It {
                        kind,
                        tile,
                        dram,
                        seek,
                    } => {
                        let d = *self.drams.get(dram).ok_or_else(|| {
                            LowerError::code(
                                codes::SEM_UNKNOWN_NAME,
                                format!("unknown dram '{dram}'"),
                            )
                        })?;
                        let ety = self.dram_tys[dram];
                        let (sv, _) = self.lower_expr(seek, b)?;
                        (
                            OpKind::ItNew {
                                kind: match kind {
                                    ItKindName::Read => ItKind::Read,
                                    ItKindName::PeekRead => ItKind::PeekRead,
                                    ItKindName::Write => ItKind::Write,
                                    ItKindName::ManualWrite => ItKind::ManualWrite,
                                },
                                dram: d,
                                seek: sv,
                                tile: *tile,
                            },
                            HandleKind::It(*kind),
                            ety,
                        )
                    }
                };
                let val = b.emit(self.func, kind, Ty::Handle);
                let idx = self.scopes.len() - 1;
                self.scopes[idx].bindings.insert(
                    name.clone(),
                    Binding::Handle {
                        val,
                        kind: handle_kind,
                        elem,
                    },
                );
                Ok(false)
            }
            StmtKind::Assign { name, value } => {
                let (v, _) = self.lower_expr(value, b)?;
                let (idx, info) = self.lookup_var_for_assign(name)?;
                let v = self.narrow_to(v, info.ty, b);
                self.set_var(idx, name, v, info.ty);
                Ok(false)
            }
            StmtKind::Store { base, idx, value } => {
                let (iv, _) = self.lower_expr(idx, b)?;
                let (vv, _) = self.lower_expr(value, b)?;
                if let Some(&dram) = self.drams.get(base) {
                    b.emit0(OpKind::DramWrite {
                        dram,
                        idx: iv,
                        val: vv,
                    });
                    return Ok(false);
                }
                match self.lookup(base).cloned() {
                    Some(Binding::Handle { val, kind, .. }) => match kind {
                        HandleKind::Sram
                        | HandleKind::View(ViewKindName::Write | ViewKindName::Modify) => {
                            b.emit0(OpKind::ViewWrite {
                                view: val,
                                idx: iv,
                                val: vv,
                            });
                            Ok(false)
                        }
                        HandleKind::View(ViewKindName::Read) => Err(LowerError::code(
                            codes::SEM_KIND_MISUSE,
                            format!("cannot write through read view '{base}'"),
                        )),
                        HandleKind::It(_) => Err(LowerError::code(
                            codes::SEM_KIND_MISUSE,
                            format!("cannot index-store through iterator '{base}'"),
                        )),
                    },
                    _ => Err(LowerError::code(
                        codes::SEM_UNKNOWN_NAME,
                        format!("unknown store target '{base}'"),
                    )),
                }
            }
            StmtKind::DerefStore { it, value } => {
                let (vv, _) = self.lower_expr(value, b)?;
                let (val, _) = self.it_handle(it, &[ItKindName::Write, ItKindName::ManualWrite])?;
                b.emit0(OpKind::ItWrite { it: val, val: vv });
                Ok(false)
            }
            StmtKind::Inc { it, last } => {
                let lv = match last {
                    Some(e) => Some(self.lower_expr(e, b)?.0),
                    None => None,
                };
                let (val, _) = self.it_handle(
                    it,
                    &[
                        ItKindName::Read,
                        ItKindName::PeekRead,
                        ItKindName::Write,
                        ItKindName::ManualWrite,
                    ],
                )?;
                b.emit0(OpKind::ItInc { it: val, last: lv });
                Ok(false)
            }
            StmtKind::If { cond, then, els } => {
                let (cv, _) = self.lower_expr(cond, b)?;
                let assigned = self.assigned_outer_vars(then.iter().chain(els.iter()));
                // Lower both branches in child scopes.
                let mut then_b = RegionBuilder::new();
                self.scopes.push(Scope::new(false));
                self.lower_block(then, &mut then_b)?;
                if !matches!(
                    b_last_kind(&then_b),
                    Some(OpKind::Exit) | Some(OpKind::Return(_))
                ) {
                    let vals: Vec<Value> = assigned
                        .iter()
                        .map(|n| self.var(n).expect("assigned var exists").val)
                        .collect();
                    then_b.emit0(OpKind::Yield(vals));
                }
                self.scopes.pop();
                let mut else_b = RegionBuilder::new();
                self.scopes.push(Scope::new(false));
                self.lower_block(els, &mut else_b)?;
                if !matches!(
                    b_last_kind(&else_b),
                    Some(OpKind::Exit) | Some(OpKind::Return(_))
                ) {
                    let vals: Vec<Value> = assigned
                        .iter()
                        .map(|n| self.var(n).expect("assigned var exists").val)
                        .collect();
                    else_b.emit0(OpKind::Yield(vals));
                }
                self.scopes.pop();
                let results: Vec<Value> = assigned
                    .iter()
                    .map(|n| {
                        let ty = self.var(n).expect("assigned var exists").ty;
                        self.func.new_value(storage_ty(ty))
                    })
                    .collect();
                b.push(
                    OpKind::If {
                        cond: cv,
                        then: then_b.build(),
                        else_: else_b.build(),
                    },
                    results.clone(),
                );
                for (n, r) in assigned.iter().zip(&results) {
                    let (idx, info) = self.lookup_var_for_assign(n)?;
                    self.set_var(idx, n, *r, info.ty);
                }
                Ok(false)
            }
            StmtKind::While { cond, body } => {
                let assigned = self.assigned_outer_vars(body.iter());
                let inits: Vec<Value> = assigned
                    .iter()
                    .map(|n| self.var(n).expect("assigned var exists").val)
                    .collect();
                let tys: Vec<TyName> = assigned
                    .iter()
                    .map(|n| self.var(n).expect("assigned var exists").ty)
                    .collect();
                // before region: carried args, evaluate cond.
                let before_args: Vec<Value> = tys
                    .iter()
                    .map(|t| self.func.new_value(storage_ty(*t)))
                    .collect();
                self.scopes.push(Scope::new(false));
                for ((n, t), v) in assigned.iter().zip(&tys).zip(&before_args) {
                    let idx = self.scopes.len() - 1;
                    self.set_var(idx, n, *v, *t);
                }
                let mut before_b = RegionBuilder::with_args(before_args.clone());
                let (cv, _) = self.lower_expr(cond, &mut before_b)?;
                before_b.emit0(OpKind::Condition {
                    cond: cv,
                    fwd: before_args.clone(),
                });
                self.scopes.pop();
                // after region: body.
                let after_args: Vec<Value> = tys
                    .iter()
                    .map(|t| self.func.new_value(storage_ty(*t)))
                    .collect();
                self.scopes.push(Scope::new(false));
                for ((n, t), v) in assigned.iter().zip(&tys).zip(&after_args) {
                    let idx = self.scopes.len() - 1;
                    self.set_var(idx, n, *v, *t);
                }
                let mut after_b = RegionBuilder::with_args(after_args);
                self.lower_block(body, &mut after_b)?;
                if !matches!(b_last_kind(&after_b), Some(OpKind::Exit)) {
                    let next: Vec<Value> = assigned
                        .iter()
                        .map(|n| self.var(n).expect("assigned var exists").val)
                        .collect();
                    after_b.emit0(OpKind::Yield(next));
                }
                self.scopes.pop();
                let results: Vec<Value> = tys
                    .iter()
                    .map(|t| self.func.new_value(storage_ty(*t)))
                    .collect();
                b.push(
                    OpKind::While {
                        inits,
                        before: before_b.build(),
                        after: after_b.build(),
                    },
                    results.clone(),
                );
                for ((n, t), r) in assigned.iter().zip(&tys).zip(&results) {
                    let (idx, _) = self.lookup_var_for_assign(n)?;
                    self.set_var(idx, n, *r, *t);
                }
                Ok(false)
            }
            StmtKind::Foreach {
                count,
                step,
                ity,
                ivar,
                body,
            } => {
                let (cv, _) = self.lower_expr(count, b)?;
                let sv = match step {
                    Some(e) => self.lower_expr(e, b)?.0,
                    None => b.const_i32(self.func, 1),
                };
                let lo = b.const_i32(self.func, 0);
                let (body_stmts, flags) = strip_pragmas(body, self.thread_count_hint);
                let idx = self.func.new_value(Ty::I32);
                self.scopes.push(Scope::new(true));
                let sidx = self.scopes.len() - 1;
                self.set_var(sidx, ivar, idx, *ity);
                let mut body_b = RegionBuilder::with_args(vec![idx]);
                self.lower_block(&body_stmts, &mut body_b)?;
                if !matches!(b_last_kind(&body_b), Some(OpKind::Exit)) {
                    body_b.emit0(OpKind::Yield(vec![]));
                }
                self.scopes.pop();
                b.push(
                    OpKind::Foreach {
                        lo,
                        hi: cv,
                        step: sv,
                        body: body_b.build(),
                        reduce: vec![],
                        flags,
                    },
                    vec![],
                );
                Ok(false)
            }
            StmtKind::Replicate { ways, body } => {
                let (body_stmts, _) = strip_pragmas(body, self.thread_count_hint);
                let assigned = self.assigned_outer_vars(body_stmts.iter());
                self.scopes.push(Scope::new(false));
                let mut body_b = RegionBuilder::new();
                self.lower_block(&body_stmts, &mut body_b)?;
                let exits = matches!(b_last_kind(&body_b), Some(OpKind::Exit));
                if !exits {
                    let vals: Vec<Value> = assigned
                        .iter()
                        .map(|n| self.var(n).expect("assigned var exists").val)
                        .collect();
                    body_b.emit0(OpKind::Yield(vals));
                }
                self.scopes.pop();
                let results: Vec<Value> = assigned
                    .iter()
                    .map(|n| {
                        let ty = self.var(n).expect("assigned var exists").ty;
                        self.func.new_value(storage_ty(ty))
                    })
                    .collect();
                b.push(
                    OpKind::Replicate {
                        ways: *ways,
                        body: body_b.build(),
                    },
                    results.clone(),
                );
                for (n, r) in assigned.iter().zip(&results) {
                    let (idx, info) = self.lookup_var_for_assign(n)?;
                    self.set_var(idx, n, *r, info.ty);
                }
                Ok(false)
            }
            StmtKind::Fork {
                count,
                ity,
                ivar,
                body,
            } => {
                let (cv, _) = self.lower_expr(count, b)?;
                let assigned = self.assigned_outer_vars(body.iter());
                let idx = self.func.new_value(Ty::I32);
                self.scopes.push(Scope::new(false));
                let sidx = self.scopes.len() - 1;
                self.set_var(sidx, ivar, idx, *ity);
                let mut body_b = RegionBuilder::with_args(vec![idx]);
                self.lower_block(body, &mut body_b)?;
                if !matches!(b_last_kind(&body_b), Some(OpKind::Exit)) {
                    let vals: Vec<Value> = assigned
                        .iter()
                        .map(|n| self.var(n).expect("assigned var exists").val)
                        .collect();
                    body_b.emit0(OpKind::Yield(vals));
                }
                self.scopes.pop();
                let results: Vec<Value> = assigned
                    .iter()
                    .map(|n| {
                        let ty = self.var(n).expect("assigned var exists").ty;
                        self.func.new_value(storage_ty(ty))
                    })
                    .collect();
                b.push(
                    OpKind::Fork {
                        count: cv,
                        body: body_b.build(),
                    },
                    results.clone(),
                );
                for (n, r) in assigned.iter().zip(&results) {
                    let (idx, info) = self.lookup_var_for_assign(n)?;
                    self.set_var(idx, n, *r, info.ty);
                }
                Ok(false)
            }
            StmtKind::Exit => {
                b.emit0(OpKind::Exit);
                Ok(true)
            }
            StmtKind::Yield(_) => Err(LowerError::code(
                codes::SEM_BAD_YIELD_RETURN,
                "'yield' is only allowed as the final statement of a reducing foreach",
            )),
            StmtKind::Return(e) => {
                let vals = match e {
                    Some(e) => {
                        if self.ret == TyName::Void {
                            return Err(LowerError::code(
                                codes::SEM_BAD_YIELD_RETURN,
                                "void function returns a value",
                            ));
                        }
                        vec![self.lower_expr(e, b)?.0]
                    }
                    None => {
                        if self.ret != TyName::Void {
                            return Err(LowerError::code(
                                codes::SEM_BAD_YIELD_RETURN,
                                "non-void function returns nothing",
                            ));
                        }
                        vec![]
                    }
                };
                b.emit0(OpKind::Return(vals));
                Ok(true)
            }
            StmtKind::Pragma { name, value } => {
                if name == "threads" {
                    *self.thread_count_hint = value.map(|v| v as u32);
                    Ok(false)
                } else {
                    Err(LowerError::new(format!(
                        "pragma '{name}' is not valid here"
                    )))
                }
            }
            StmtKind::Bulk {
                sram,
                load,
                dram,
                base,
                len,
            } => {
                let d = *self.drams.get(dram).ok_or_else(|| {
                    LowerError::code(codes::SEM_UNKNOWN_NAME, format!("unknown dram '{dram}'"))
                })?;
                let (bv, _) = self.lower_expr(base, b)?;
                let (lv, _) = self.lower_expr(len, b)?;
                match self.lookup(sram).cloned() {
                    Some(Binding::Handle {
                        val,
                        kind: HandleKind::Sram,
                        ..
                    }) => {
                        // Bulk ops through raw SRAM handles are expressed as
                        // a loop of view accesses; the high-level lowering
                        // pass turns views into physical SRAM + real bulk
                        // ops. Here we emit the simple elementwise loop.
                        let zero = b.const_i32(self.func, 0);
                        let one = b.const_i32(self.func, 1);
                        let idx = self.func.new_value(Ty::I32);
                        let mut body_b = RegionBuilder::with_args(vec![idx]);
                        if *load {
                            let di = body_b.bin(self.func, AluOp::Add, bv, idx);
                            let v = body_b.emit(
                                self.func,
                                OpKind::DramRead { dram: d, idx: di },
                                Ty::I32,
                            );
                            body_b.push(
                                OpKind::ViewWrite {
                                    view: val,
                                    idx,
                                    val: v,
                                },
                                vec![],
                            );
                        } else {
                            let v = body_b.emit(
                                self.func,
                                OpKind::ViewRead { view: val, idx },
                                Ty::I32,
                            );
                            let di = body_b.bin(self.func, AluOp::Add, bv, idx);
                            body_b.push(
                                OpKind::DramWrite {
                                    dram: d,
                                    idx: di,
                                    val: v,
                                },
                                vec![],
                            );
                        }
                        body_b.emit0(OpKind::Yield(vec![]));
                        b.push(
                            OpKind::Foreach {
                                lo: zero,
                                hi: lv,
                                step: one,
                                body: body_b.build(),
                                reduce: vec![],
                                flags: ForeachFlags::default(),
                            },
                            vec![],
                        );
                        Ok(false)
                    }
                    _ => Err(LowerError::code(
                        codes::SEM_KIND_MISUSE,
                        format!("'{sram}' is not a raw SRAM"),
                    )),
                }
            }
        }
    }

    /// Variables from enclosing scopes assigned anywhere in `stmts`
    /// (deterministic order).
    fn assigned_outer_vars<'s>(&self, stmts: impl Iterator<Item = &'s Stmt>) -> Vec<String> {
        let mut declared = HashSet::new();
        let mut out = Vec::new();
        for s in stmts {
            collect_assigned(s, &mut declared, &mut out);
        }
        out.retain(|n| self.var(n).is_some());
        out
    }
}

fn collect_assigned(s: &Stmt, declared: &mut HashSet<String>, out: &mut Vec<String>) {
    let add = |n: &String, declared: &HashSet<String>, out: &mut Vec<String>| {
        if !declared.contains(n) && !out.contains(n) {
            out.push(n.clone());
        }
    };
    match &s.kind {
        StmtKind::Decl { name, .. } | StmtKind::Mem { name, .. } => {
            declared.insert(name.clone());
        }
        StmtKind::Assign { name, .. } => add(name, declared, out),
        StmtKind::If { then, els, .. } => {
            // Each branch has its own declaration scope.
            let mut d1 = declared.clone();
            for t in then {
                collect_assigned(t, &mut d1, out);
            }
            let mut d2 = declared.clone();
            for t in els {
                collect_assigned(t, &mut d2, out);
            }
        }
        StmtKind::While { body, .. } | StmtKind::Replicate { body, .. } => {
            let mut d = declared.clone();
            for t in body {
                collect_assigned(t, &mut d, out);
            }
        }
        StmtKind::Fork { body, ivar, .. } => {
            let mut d = declared.clone();
            d.insert(ivar.clone());
            for t in body {
                collect_assigned(t, &mut d, out);
            }
        }
        // foreach bodies cannot assign parent variables (checked later).
        StmtKind::Foreach { .. } => {}
        _ => {}
    }
}

/// Splits a trailing `yield e;` from a statement list.
fn split_trailing_yield(stmts: &[Stmt]) -> Result<(&[Stmt], Option<&Expr>), LowerError> {
    match stmts.last().map(|s| &s.kind) {
        Some(StmtKind::Yield(e)) => Ok((&stmts[..stmts.len() - 1], Some(e))),
        _ => Ok((stmts, None)),
    }
}

/// Removes leading pragmas from a body, interpreting them.
fn strip_pragmas<'s>(
    stmts: &'s [Stmt],
    thread_hint: &mut Option<u32>,
) -> (Vec<Stmt>, ForeachFlags) {
    let mut flags = ForeachFlags::default();
    let mut rest: Vec<Stmt> = Vec::with_capacity(stmts.len());
    for s in stmts {
        if let StmtKind::Pragma { name, value } = &s.kind {
            match name.as_str() {
                "eliminate_hierarchy" => {
                    flags.eliminate_hierarchy = true;
                    continue;
                }
                "threads" => {
                    *thread_hint = value.map(|v| v as u32);
                    continue;
                }
                _ => {}
            }
        }
        rest.push(s.clone());
    }
    let _ = &rest;
    (rest, flags)
}

/// Picks the ALU op for a surface operator given operand signedness.
fn select_alu(op: BinOp, signed: bool) -> Result<(AluOp, TyName), LowerError> {
    use AluOp as A;
    let t = if signed { TyName::I32 } else { TyName::U32 };
    Ok(match op {
        BinOp::Add => (A::Add, t),
        BinOp::Sub => (A::Sub, t),
        BinOp::Mul => (A::Mul, t),
        BinOp::Div => (if signed { A::DivS } else { A::DivU }, t),
        BinOp::Rem => (if signed { A::RemS } else { A::RemU }, t),
        BinOp::And => (A::And, t),
        BinOp::Or => (A::Or, t),
        BinOp::Xor => (A::Xor, t),
        BinOp::Shl => (A::Shl, t),
        BinOp::Shr => (if signed { A::ShrS } else { A::ShrU }, t),
        BinOp::Eq => (A::Eq, TyName::U32),
        BinOp::Ne => (A::Ne, TyName::U32),
        BinOp::Lt => (if signed { A::LtS } else { A::LtU }, TyName::U32),
        BinOp::Le => (if signed { A::LeS } else { A::LeU }, TyName::U32),
        BinOp::Gt => (if signed { A::GtS } else { A::GtU }, TyName::U32),
        BinOp::Ge => (if signed { A::GeS } else { A::GeU }, TyName::U32),
        BinOp::LAnd | BinOp::LOr => (A::And, TyName::U32),
    })
}

fn out_ty_for(base: TyName, _l: TyName, _r: TyName, signed: bool) -> TyName {
    match base {
        TyName::U32 if signed => TyName::I32,
        other => other,
    }
}

/// Promotes a storage type to its 32-bit compute type.
fn promote(t: TyName) -> TyName {
    if t.signed() {
        TyName::I32
    } else {
        TyName::U32
    }
}

fn reduce_alu(op: ReduceOp) -> AluOp {
    match op {
        ReduceOp::Add => AluOp::Add,
        ReduceOp::Mul => AluOp::Mul,
        ReduceOp::And => AluOp::And,
        ReduceOp::Or => AluOp::Or,
        ReduceOp::Xor => AluOp::Xor,
        ReduceOp::Min => AluOp::MinU,
        ReduceOp::Max => AluOp::MaxU,
    }
}
