//! # revet-lang — the Revet language front end
//!
//! The Revet surface language (§IV of the paper): a small C-like imperative
//! language with user-annotated parallelism (`foreach`, `replicate`, `fork`,
//! `exit`) and access-pattern-optimized memory objects (Table I: SRAM,
//! read/write/modify views, read/peek/write/manual-write iterators).
//!
//! Pipeline: [`lex`] → [`parse_program`] → [`lower_program`] (symbol
//! resolution, type checking, SSA conversion) → verified [`revet_mir`]
//! module.
//!
//! Every stage reports through [`revet_diag`]: tokens and AST statements
//! carry byte [`Span`](revet_diag::Span)s, the parser *recovers* at `;` /
//! `}` boundaries so one run reports every syntax error, and failures come
//! back as a [`Diagnostics`] sink of structured, span-carrying
//! [`Diagnostic`](revet_diag::Diagnostic)s rather than strings.
//!
//! ## Example
//!
//! ```
//! let src = r#"
//!     dram<u32> output;
//!     void main(u32 n) {
//!         foreach (n) { u32 i =>
//!             output[i] = i * i;
//!         };
//!     }
//! "#;
//! let prog = revet_lang::parse_program(src).unwrap();
//! let lowered = revet_lang::lower_program(&prog).unwrap();
//! assert!(lowered.module.func("main").is_some());
//! ```
//!
//! Malformed source yields one spanned diagnostic per problem:
//!
//! ```
//! let diags = revet_lang::compile_to_mir("void main() {\n  u32 a = ;\n  b = 1 +;\n}")
//!     .unwrap_err();
//! assert_eq!(diags.error_count(), 2);
//! assert!(diags.iter().all(|d| d.span.is_some()));
//! ```

#![warn(missing_docs)]

pub mod ast;
mod lower;
mod parser;
mod token;

pub use lower::{lower_program, Lowered};
pub use parser::parse_program;
pub use token::{lex, Spanned, Tok};

use revet_diag::Diagnostics;

/// Parses and lowers source in one step.
///
/// # Errors
///
/// Returns the accumulated [`Diagnostics`]: every lex/parse error found by
/// recovery, or the first semantic error, each with a source span.
pub fn compile_to_mir(src: &str) -> Result<Lowered, Diagnostics> {
    let prog = parse_program(src)?;
    lower_program(&prog)
}
