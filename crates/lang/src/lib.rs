//! # revet-lang — the Revet language front end
//!
//! The Revet surface language (§IV of the paper): a small C-like imperative
//! language with user-annotated parallelism (`foreach`, `replicate`, `fork`,
//! `exit`) and access-pattern-optimized memory objects (Table I: SRAM,
//! read/write/modify views, read/peek/write/manual-write iterators).
//!
//! Pipeline: [`lex`] → [`parse_program`] → [`lower_program`] (symbol
//! resolution, type checking, SSA conversion) → verified [`revet_mir`]
//! module.
//!
//! ## Example
//!
//! ```
//! let src = r#"
//!     dram<u32> output;
//!     void main(u32 n) {
//!         foreach (n) { u32 i =>
//!             output[i] = i * i;
//!         };
//!     }
//! "#;
//! let prog = revet_lang::parse_program(src).unwrap();
//! let lowered = revet_lang::lower_program(&prog).unwrap();
//! assert!(lowered.module.func("main").is_some());
//! ```

#![warn(missing_docs)]

pub mod ast;
mod lower;
mod parser;
mod token;

pub use lower::{lower_program, LowerError, Lowered};
pub use parser::{parse_program, ParseError};
pub use token::{lex, LexError, Spanned, Tok};

/// Parses and lowers source in one step.
///
/// # Errors
///
/// Returns a formatted parse or semantic error.
pub fn compile_to_mir(src: &str) -> Result<Lowered, String> {
    let prog = parse_program(src).map_err(|e| e.to_string())?;
    lower_program(&prog).map_err(|e| e.to_string())
}
