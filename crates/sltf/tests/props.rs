//! Property-based tests for SLTF encoding invariants.

use proptest::prelude::*;
use revet_sltf::{canonicalize, Ragged, Stream, Token, Word};

/// Strategy producing ragged tensors of exactly `dims` dimensions.
fn ragged(dims: u8) -> BoxedStrategy<Ragged> {
    if dims == 1 {
        prop::collection::vec(any::<u32>(), 0..8)
            .prop_map(|ws| Ragged::leaf(ws))
            .boxed()
    } else {
        prop::collection::vec(ragged(dims - 1), 0..5)
            .prop_map(Ragged::node)
            .boxed()
    }
}

proptest! {
    /// Canonical encode → decode is the identity, for 1..=4 dimensions.
    #[test]
    fn canonical_roundtrip(dims in 1u8..=4, seed in 0u32..u32::MAX) {
        let mut runner = proptest::test_runner::TestRunner::deterministic();
        let _ = seed;
        let t = ragged(dims).new_tree(&mut runner).unwrap().current();
        let enc = t.encode_canonical(dims);
        prop_assert_eq!(Ragged::decode(&enc, dims).unwrap(), t);
    }

    /// Explicit encode → decode is also the identity.
    #[test]
    fn explicit_roundtrip(t in ragged(3)) {
        let enc = t.encode_explicit(3);
        prop_assert_eq!(Ragged::decode(&enc, 3).unwrap(), t);
    }

    /// Canonicalizing an explicit encoding equals the canonical encoding.
    #[test]
    fn canonicalize_matches_direct(t in ragged(3)) {
        prop_assert_eq!(canonicalize(t.encode_explicit(3)), t.encode_canonical(3));
    }

    /// Canonicalization is idempotent.
    #[test]
    fn canonicalize_idempotent(t in ragged(2)) {
        let once = canonicalize(t.encode_explicit(2));
        prop_assert_eq!(canonicalize(once.clone()), once);
    }

    /// Distinct tensors have distinct canonical encodings (injectivity over a
    /// sampled pair).
    #[test]
    fn encoding_injective(a in ragged(2), b in ragged(2)) {
        if a != b {
            prop_assert_ne!(a.encode_canonical(2), b.encode_canonical(2));
        }
    }

    /// Data words survive encoding in order, and barrier counts never exceed
    /// the explicit form.
    #[test]
    fn data_preserved_in_order(t in ragged(3)) {
        let s = Stream::from_ragged(&t, 3);
        prop_assert_eq!(s.data_words(), t.flatten_elements());
        prop_assert!(s.barrier_len() <= t.encode_explicit(3).iter().filter(|x| x.is_barrier()).count());
    }

    /// A vector link never needs more cycles than a scalar link, and both
    /// need at least one cycle per barrier.
    #[test]
    fn link_cycles_monotone(t in ragged(2)) {
        let s = Stream::from_ragged(&t, 2);
        let vec_cycles = s.link_cycles(16);
        let scal_cycles = s.link_cycles(1);
        prop_assert!(vec_cycles <= scal_cycles);
        prop_assert!(vec_cycles >= s.barrier_len() as u64);
    }

    /// Sequences of tensors on one link decode back to the same sequence.
    #[test]
    fn sequence_roundtrip(ts in prop::collection::vec(ragged(2), 0..5)) {
        let s = Stream::from_ragged_sequence(ts.iter(), 2);
        prop_assert_eq!(s.to_ragged_sequence(2).unwrap(), ts);
    }
}

#[test]
fn tokens_are_small() {
    // A stream token should stay register-sized; the simulator moves a lot of
    // them around.
    assert!(std::mem::size_of::<Token>() <= 8);
    assert_eq!(std::mem::size_of::<Word>(), 4);
}
