//! Whole-stream utilities over SLTF token sequences.
//!
//! A [`Stream`] is an owned sequence of [`Token`]s as observed on one on-chip
//! link over time. It is the lingua franca of unit tests and of the untimed
//! executor's inputs/outputs; the machine itself works on queues of tokens.

use crate::{canonicalize, BarrierLevel, DecodeError, Ragged, Token, Word};
use core::fmt;

/// An owned SLTF token sequence.
///
/// # Examples
///
/// ```
/// use revet_sltf::{Stream, Ragged};
///
/// let t = Ragged::node([Ragged::leaf([0u32, 1]), Ragged::leaf([2u32])]);
/// let s = Stream::from_ragged(&t, 2);
/// assert_eq!(s.data_len(), 3);
/// assert_eq!(s.to_ragged(2).unwrap(), t);
/// ```
#[derive(Clone, PartialEq, Eq, Default, Debug)]
pub struct Stream {
    tokens: Vec<Token>,
}

impl Stream {
    /// An empty stream.
    pub fn new() -> Self {
        Stream::default()
    }

    /// Builds a stream from tokens.
    pub fn from_tokens(tokens: impl IntoIterator<Item = Token>) -> Self {
        Stream {
            tokens: tokens.into_iter().collect(),
        }
    }

    /// Builds a stream of bare data words with no barriers.
    pub fn from_words<I, W>(words: I) -> Self
    where
        I: IntoIterator<Item = W>,
        W: Into<Word>,
    {
        Stream {
            tokens: words.into_iter().map(|w| Token::Data(w.into())).collect(),
        }
    }

    /// Encodes a ragged tensor canonically at dimensionality `dims`.
    pub fn from_ragged(tensor: &Ragged, dims: u8) -> Self {
        Stream {
            tokens: tensor.encode_canonical(dims),
        }
    }

    /// Encodes a sequence of `dims`-D tensors back-to-back.
    pub fn from_ragged_sequence<'a>(
        tensors: impl IntoIterator<Item = &'a Ragged>,
        dims: u8,
    ) -> Self {
        let mut tokens = Vec::new();
        for t in tensors {
            tokens.extend(t.encode_canonical(dims));
        }
        Stream { tokens }
    }

    /// Decodes the stream as exactly one `dims`-D tensor.
    ///
    /// # Errors
    ///
    /// See [`Ragged::decode`].
    pub fn to_ragged(&self, dims: u8) -> Result<Ragged, DecodeError> {
        Ragged::decode(&self.tokens, dims)
    }

    /// Decodes the stream as a sequence of `dims`-D tensors.
    ///
    /// # Errors
    ///
    /// See [`Ragged::decode_sequence`].
    pub fn to_ragged_sequence(&self, dims: u8) -> Result<Vec<Ragged>, DecodeError> {
        Ragged::decode_sequence(&self.tokens, dims)
    }

    /// The underlying token slice.
    pub fn tokens(&self) -> &[Token] {
        &self.tokens
    }

    /// Consumes the stream, yielding its tokens.
    pub fn into_tokens(self) -> Vec<Token> {
        self.tokens
    }

    /// Appends a token.
    pub fn push(&mut self, tok: Token) {
        self.tokens.push(tok);
    }

    /// Appends all tokens of `other`.
    pub fn extend_from(&mut self, other: &Stream) {
        self.tokens.extend_from_slice(&other.tokens);
    }

    /// Number of tokens (data + barriers).
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// True if the stream holds no tokens at all.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Number of data tokens.
    pub fn data_len(&self) -> usize {
        self.tokens.iter().filter(|t| t.is_data()).count()
    }

    /// Number of barrier tokens.
    pub fn barrier_len(&self) -> usize {
        self.tokens.len() - self.data_len()
    }

    /// The data payloads in order, barriers skipped.
    pub fn data_words(&self) -> Vec<Word> {
        self.tokens
            .iter()
            .filter_map(|t| t.data().copied())
            .collect()
    }

    /// The highest barrier level present, if any.
    pub fn max_barrier_level(&self) -> Option<BarrierLevel> {
        self.tokens.iter().filter_map(Token::barrier_level).max()
    }

    /// Rewrites the stream into canonical form (drops implied barriers).
    pub fn canonicalized(self) -> Stream {
        Stream {
            tokens: canonicalize(self.tokens),
        }
    }

    /// Cycles needed to transmit this stream on a link of the given data
    /// width, under the §III-C rule: a link moves up to `width` data elements
    /// *and* at most one barrier per cycle.
    ///
    /// ```
    /// use revet_sltf::{data, omega, Stream};
    /// // (t1, t2, Ω1) fits in one vector cycle but takes two scalar cycles.
    /// let s = Stream::from_tokens([data(1), data(2), omega(1)]);
    /// assert_eq!(s.link_cycles(16), 1);
    /// assert_eq!(s.link_cycles(1), 2);
    /// // (Ω1, Ω2) takes two cycles on any link.
    /// let b = Stream::from_tokens([omega(1), omega(2)]);
    /// assert_eq!(b.link_cycles(16), 2);
    /// ```
    pub fn link_cycles(&self, width: usize) -> u64 {
        assert!(width >= 1, "link width must be positive");
        let mut cycles: u64 = 0;
        let mut data_in_flight = 0usize;
        let mut barrier_in_flight = false;
        for tok in &self.tokens {
            match tok {
                Token::Data(_) => {
                    if barrier_in_flight || data_in_flight == width {
                        cycles += 1;
                        data_in_flight = 0;
                        barrier_in_flight = false;
                    }
                    data_in_flight += 1;
                }
                Token::Barrier(_) => {
                    if barrier_in_flight {
                        cycles += 1;
                        data_in_flight = 0;
                    }
                    barrier_in_flight = true;
                }
            }
        }
        if data_in_flight > 0 || barrier_in_flight {
            cycles += 1;
        }
        cycles
    }
}

impl FromIterator<Token> for Stream {
    fn from_iter<I: IntoIterator<Item = Token>>(iter: I) -> Self {
        Stream::from_tokens(iter)
    }
}

impl Extend<Token> for Stream {
    fn extend<I: IntoIterator<Item = Token>>(&mut self, iter: I) {
        self.tokens.extend(iter);
    }
}

impl IntoIterator for Stream {
    type Item = Token;
    type IntoIter = std::vec::IntoIter<Token>;
    fn into_iter(self) -> Self::IntoIter {
        self.tokens.into_iter()
    }
}

impl<'a> IntoIterator for &'a Stream {
    type Item = &'a Token;
    type IntoIter = std::slice::Iter<'a, Token>;
    fn into_iter(self) -> Self::IntoIter {
        self.tokens.iter()
    }
}

impl fmt::Display for Stream {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, t) in self.tokens.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{data, omega};

    #[test]
    fn counts() {
        let s = Stream::from_tokens([data(1), omega(1), data(2), omega(2)]);
        assert_eq!(s.len(), 4);
        assert_eq!(s.data_len(), 2);
        assert_eq!(s.barrier_len(), 2);
        assert_eq!(s.max_barrier_level(), Some(BarrierLevel::of(2)));
        assert!(!s.is_empty());
    }

    #[test]
    fn from_words_has_no_barriers() {
        let s = Stream::from_words([1u32, 2, 3]);
        assert_eq!(s.barrier_len(), 0);
        assert_eq!(s.data_words(), vec![Word(1), Word(2), Word(3)]);
    }

    #[test]
    fn canonicalized_drops_implied() {
        let s = Stream::from_tokens([data(2), omega(1), omega(2)]).canonicalized();
        assert_eq!(s.tokens(), &[data(2), omega(2)]);
    }

    #[test]
    fn link_cycles_scalar_vs_vector() {
        // 17 data words + Ω1: vector = 2 cycles (16 + 1&Ω), scalar = 17.
        let mut toks: Vec<Token> = (0..17u32).map(data).collect();
        toks.push(omega(1));
        let s = Stream::from_tokens(toks);
        assert_eq!(s.link_cycles(16), 2);
        assert_eq!(s.link_cycles(1), 17);
    }

    #[test]
    fn link_cycles_back_to_back_barriers() {
        let s = Stream::from_tokens([omega(1), omega(1), omega(2)]);
        assert_eq!(s.link_cycles(16), 3);
    }

    #[test]
    fn ragged_sequence_roundtrip() {
        let a = Ragged::leaf([1, 2]);
        let b = Ragged::leaf::<_, Word>([]);
        let s = Stream::from_ragged_sequence([&a, &b], 1);
        assert_eq!(s.to_ragged_sequence(1).unwrap(), vec![a, b]);
    }

    #[test]
    fn display() {
        let s = Stream::from_tokens([data(1), omega(1)]);
        assert_eq!(s.to_string(), "1 Ω1");
    }
}
