//! Ragged k-dimensional tensors and their SLTF stream encodings.
//!
//! §III-A: "the hierarchy metadata represents ragged k-dimensional tensors,
//! where the number of dimensions is fixed but each dimension can have a
//! variable size." A `k`-D ragged tensor is streamed depth-first with barrier
//! tokens terminating each dimension. Two encodings exist:
//!
//! - **explicit**: every sub-tensor is terminated by its own barrier;
//! - **canonical**: a barrier Ωj immediately preceding a higher barrier is
//!   omitted when data precedes it (the paper: "Ω2 implies an Ω1 after
//!   element 2"). Decoding accepts both.
//!
//! Empty tensors stay distinct (§III-A b): `[[]]` ↔ Ω1 Ω2, `[[],[]]` ↔
//! Ω1 Ω1 Ω2, `[]` ↔ Ω2 — essential for composing reductions.

use crate::{BarrierLevel, Token, Word};
use core::fmt;

/// A node of a ragged tensor: either a run of leaf words (dimension 1) or a
/// list of sub-tensors.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Ragged {
    /// A 1-D run of data words.
    Leaf(Vec<Word>),
    /// A (k>1)-D tensor: a variable-length list of (k-1)-D sub-tensors.
    Node(Vec<Ragged>),
}

/// An error produced while decoding an SLTF stream into a ragged tensor.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DecodeError {
    /// A barrier level exceeded the declared tensor dimensionality.
    LevelTooHigh {
        /// The offending barrier level.
        level: u8,
        /// The declared number of dimensions.
        dims: u8,
    },
    /// The stream ended before the tensor was terminated by a top barrier.
    Truncated,
    /// Data tokens remained after the final top-level barrier.
    TrailingTokens,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::LevelTooHigh { level, dims } => {
                write!(f, "barrier Ω{level} exceeds tensor dimensionality {dims}")
            }
            DecodeError::Truncated => {
                write!(f, "stream ended before the closing top-level barrier")
            }
            DecodeError::TrailingTokens => write!(f, "tokens remained after the closing barrier"),
        }
    }
}

impl std::error::Error for DecodeError {}

impl Ragged {
    /// Creates a leaf from anything word-like.
    ///
    /// ```
    /// use revet_sltf::Ragged;
    /// let r = Ragged::leaf([1u32, 2, 3]);
    /// assert_eq!(r.element_count(), 3);
    /// ```
    pub fn leaf<I, W>(words: I) -> Self
    where
        I: IntoIterator<Item = W>,
        W: Into<Word>,
    {
        Ragged::Leaf(words.into_iter().map(Into::into).collect())
    }

    /// Creates an inner node from sub-tensors.
    pub fn node(children: impl IntoIterator<Item = Ragged>) -> Self {
        Ragged::Node(children.into_iter().collect())
    }

    /// An empty tensor of `dims` dimensions (`dims >= 1`).
    ///
    /// # Panics
    ///
    /// Panics if `dims == 0`.
    pub fn empty(dims: u8) -> Self {
        assert!(dims >= 1, "a tensor has at least one dimension");
        if dims == 1 {
            Ragged::Leaf(Vec::new())
        } else {
            Ragged::Node(Vec::new())
        }
    }

    /// The dimensionality of this tensor (leaves are 1-D). For `Node`s the
    /// depth follows the first child, or 2 for an empty node.
    pub fn dims(&self) -> u8 {
        match self {
            Ragged::Leaf(_) => 1,
            Ragged::Node(children) => children.first().map_or(1, Ragged::dims) + 1,
        }
    }

    /// Total number of data elements in the tensor.
    pub fn element_count(&self) -> usize {
        match self {
            Ragged::Leaf(ws) => ws.len(),
            Ragged::Node(children) => children.iter().map(Ragged::element_count).sum(),
        }
    }

    /// The number of immediate children (outermost-dimension length).
    pub fn len(&self) -> usize {
        match self {
            Ragged::Leaf(ws) => ws.len(),
            Ragged::Node(children) => children.len(),
        }
    }

    /// True if the outermost dimension is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flat list of all data elements in stream order.
    pub fn flatten_elements(&self) -> Vec<Word> {
        let mut out = Vec::with_capacity(self.element_count());
        self.collect_elements(&mut out);
        out
    }

    fn collect_elements(&self, out: &mut Vec<Word>) {
        match self {
            Ragged::Leaf(ws) => out.extend_from_slice(ws),
            Ragged::Node(children) => {
                for c in children {
                    c.collect_elements(out);
                }
            }
        }
    }

    /// Encodes the tensor **explicitly**: every sub-tensor is terminated by
    /// its own barrier, with the whole tensor terminated at level `dims`.
    ///
    /// The tensor's own declared dimensionality is `dims`; children encode at
    /// `dims - 1`.
    ///
    /// # Panics
    ///
    /// Panics if `dims` is 0, exceeds 15, or is smaller than the structural
    /// depth of the tensor.
    pub fn encode_explicit(&self, dims: u8) -> Vec<Token> {
        let mut out = Vec::new();
        self.encode_inner(dims, &mut out);
        out.push(Token::Barrier(BarrierLevel::of(dims)));
        out
    }

    fn encode_inner(&self, dims: u8, out: &mut Vec<Token>) {
        match self {
            Ragged::Leaf(ws) => {
                assert!(dims >= 1, "leaf encoded at dimension 0");
                out.extend(ws.iter().map(|w| Token::Data(*w)));
            }
            Ragged::Node(children) => {
                assert!(dims >= 2, "node encoded at dimension {dims} < 2");
                for c in children {
                    c.encode_inner(dims - 1, out);
                    out.push(Token::Barrier(BarrierLevel::of(dims - 1)));
                }
            }
        }
    }

    /// Encodes the tensor in **canonical** SLTF form: redundant barriers
    /// implied by a following higher barrier are omitted (exactly when data
    /// immediately precedes them).
    ///
    /// ```
    /// use revet_sltf::{data, omega, Ragged};
    ///
    /// // [[0, 1], [2]]  ⇒  0 1 Ω1 2 Ω2         (paper §III-A)
    /// let t = Ragged::node([Ragged::leaf([0u32, 1]), Ragged::leaf([2u32])]);
    /// assert_eq!(
    ///     t.encode_canonical(2),
    ///     vec![data(0u32), data(1u32), omega(1), data(2u32), omega(2)]
    /// );
    /// ```
    pub fn encode_canonical(&self, dims: u8) -> Vec<Token> {
        canonicalize(self.encode_explicit(dims))
    }

    /// Decodes an SLTF token slice into a `dims`-dimensional ragged tensor.
    /// Accepts both canonical and explicit encodings. The stream must consist
    /// of exactly one tensor (one top-level barrier at level `dims`, at the
    /// end).
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] if a barrier exceeds `dims`, the stream is
    /// truncated, or tokens trail the closing barrier.
    pub fn decode(tokens: &[Token], dims: u8) -> Result<Ragged, DecodeError> {
        let mut decoder = Decoder::new(dims);
        let mut result = None;
        for (i, tok) in tokens.iter().enumerate() {
            if result.is_some() {
                let _ = i;
                return Err(DecodeError::TrailingTokens);
            }
            if let Some(t) = decoder.push(*tok)? {
                result = Some(t);
            }
        }
        result.ok_or(DecodeError::Truncated)
    }

    /// Decodes a stream containing a *sequence* of `dims`-D tensors (each
    /// terminated at level `dims`).
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on malformed input or a trailing partial
    /// tensor.
    pub fn decode_sequence(tokens: &[Token], dims: u8) -> Result<Vec<Ragged>, DecodeError> {
        let mut decoder = Decoder::new(dims);
        let mut out = Vec::new();
        for tok in tokens {
            if let Some(t) = decoder.push(*tok)? {
                out.push(t);
            }
        }
        if decoder.has_pending() {
            return Err(DecodeError::Truncated);
        }
        Ok(out)
    }
}

impl fmt::Display for Ragged {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ragged::Leaf(ws) => {
                write!(f, "[")?;
                for (i, w) in ws.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{w}")?;
                }
                write!(f, "]")
            }
            Ragged::Node(children) => {
                write!(f, "[")?;
                for (i, c) in children.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, "]")
            }
        }
    }
}

/// Removes barriers implied by canonical form: an Ωj immediately followed by
/// an Ωk with `k > j` is dropped when the token before the Ωj is data.
///
/// This is the normative canonicalization rule from DESIGN.md §5; removing a
/// barrier after another barrier would merge distinct empty sub-tensors, so
/// only data-preceded barriers are removable.
pub fn canonicalize(tokens: Vec<Token>) -> Vec<Token> {
    let mut out: Vec<Token> = Vec::with_capacity(tokens.len());
    for tok in tokens {
        if let Token::Barrier(level) = tok {
            // Drop a pending lower barrier if it directly follows data.
            while let Some(&Token::Barrier(prev)) = out.last() {
                if prev < level && preceded_by_data(&out) {
                    out.pop();
                } else {
                    break;
                }
            }
        }
        out.push(tok);
    }
    out
}

fn preceded_by_data(out: &[Token]) -> bool {
    out.len() >= 2 && out[out.len() - 2].is_data()
}

/// An incremental SLTF decoder: feed tokens, receive completed `dims`-D
/// tensors.
///
/// Maintains one builder per dimension. On Ωn, intermediate dimensions
/// `j < n` are closed only if they hold pending content (this is what makes
/// implied barriers decodable), while dimension `n` itself always closes —
/// possibly producing an empty sub-tensor, preserving `[[]]` vs `[]`.
#[derive(Debug, Clone)]
pub struct Decoder {
    dims: u8,
    /// `leaf` is the dimension-1 builder; `inner[j]` collects completed
    /// (j+1)-dimensional sub-tensors.
    leaf: Vec<Word>,
    inner: Vec<Vec<Ragged>>,
    leaf_pending: bool,
    inner_pending: Vec<bool>,
}

impl Decoder {
    /// Creates a decoder for `dims`-dimensional tensors.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= dims <= 15`.
    pub fn new(dims: u8) -> Self {
        assert!((1..=15).contains(&dims), "dims must be in 1..=15");
        Decoder {
            dims,
            leaf: Vec::new(),
            inner: vec![Vec::new(); dims.saturating_sub(1) as usize],
            leaf_pending: false,
            inner_pending: vec![false; dims.saturating_sub(1) as usize],
        }
    }

    /// True if a partially decoded tensor is buffered.
    pub fn has_pending(&self) -> bool {
        self.leaf_pending
            || !self.leaf.is_empty()
            || self.inner_pending.iter().any(|&p| p)
            || self.inner.iter().any(|v| !v.is_empty())
    }

    /// Feeds one token; returns a completed tensor when a level-`dims`
    /// barrier closes one.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::LevelTooHigh`] for barriers above `dims`.
    pub fn push(&mut self, tok: Token) -> Result<Option<Ragged>, DecodeError> {
        match tok {
            Token::Data(w) => {
                self.leaf.push(w);
                self.leaf_pending = true;
                Ok(None)
            }
            Token::Barrier(level) => {
                let n = level.get();
                if n > self.dims {
                    return Err(DecodeError::LevelTooHigh {
                        level: n,
                        dims: self.dims,
                    });
                }
                // Close dimensions 1..n conditionally, n unconditionally.
                for j in 1..=n {
                    let unconditional = j == n;
                    if j == 1 {
                        if unconditional || self.leaf_pending || !self.leaf.is_empty() {
                            let run = Ragged::Leaf(std::mem::take(&mut self.leaf));
                            self.leaf_pending = false;
                            if self.dims == 1 && unconditional {
                                return Ok(Some(run));
                            }
                            self.inner[0].push(run);
                            self.inner_pending[0] = true;
                        }
                    } else {
                        let idx = (j - 2) as usize;
                        if unconditional || self.inner_pending[idx] {
                            let node = Ragged::Node(std::mem::take(&mut self.inner[idx]));
                            self.inner_pending[idx] = false;
                            if j == self.dims && unconditional {
                                return Ok(Some(node));
                            }
                            self.inner[idx + 1].push(node);
                            self.inner_pending[idx + 1] = true;
                        }
                    }
                }
                Ok(None)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{data, omega};

    fn t2(spec: &[&[i32]]) -> Ragged {
        Ragged::node(spec.iter().map(|r| Ragged::leaf(r.iter().copied())))
    }

    #[test]
    fn paper_example_canonical() {
        // [[0,1],[2]] → 0 1 Ω1 2 Ω2
        let t = t2(&[&[0, 1], &[2]]);
        assert_eq!(
            t.encode_canonical(2),
            vec![data(0), data(1), omega(1), data(2), omega(2)]
        );
    }

    #[test]
    fn paper_example_explicit_decodes_same() {
        let t = t2(&[&[0, 1], &[2]]);
        let explicit = t.encode_explicit(2);
        assert_eq!(
            explicit,
            vec![data(0), data(1), omega(1), data(2), omega(1), omega(2)]
        );
        assert_eq!(Ragged::decode(&explicit, 2).unwrap(), t);
        assert_eq!(Ragged::decode(&t.encode_canonical(2), 2).unwrap(), t);
    }

    #[test]
    fn empty_tensors_have_distinct_encodings() {
        // §III-A b: [[]] vs [[],[]] vs [] must stay distinguishable.
        let a = t2(&[&[]]); // [[]]
        let b = t2(&[&[], &[]]); // [[],[]]
        let c = Ragged::Node(vec![]); // []
        assert_eq!(a.encode_canonical(2), vec![omega(1), omega(2)]);
        assert_eq!(b.encode_canonical(2), vec![omega(1), omega(1), omega(2)]);
        assert_eq!(c.encode_canonical(2), vec![omega(2)]);
        for t in [&a, &b, &c] {
            assert_eq!(&Ragged::decode(&t.encode_canonical(2), 2).unwrap(), t);
        }
    }

    #[test]
    fn three_dim_mixed() {
        // [[[1]], []] → explicit 1 Ω1 Ω2 Ω2 Ω3, canonical 1 Ω2 Ω2 Ω3
        let t = Ragged::node([Ragged::node([Ragged::leaf([1])]), Ragged::Node(vec![])]);
        let canon = t.encode_canonical(3);
        assert_eq!(canon, vec![data(1), omega(2), omega(2), omega(3)]);
        assert_eq!(Ragged::decode(&canon, 3).unwrap(), t);
        assert_eq!(Ragged::decode(&t.encode_explicit(3), 3).unwrap(), t);
    }

    #[test]
    fn one_dim_roundtrip() {
        let t = Ragged::leaf([5, 6, 7]);
        let enc = t.encode_canonical(1);
        assert_eq!(enc, vec![data(5), data(6), data(7), omega(1)]);
        assert_eq!(Ragged::decode(&enc, 1).unwrap(), t);
    }

    #[test]
    fn sequence_decoding() {
        let a = Ragged::leaf([1]);
        let b = Ragged::leaf::<_, Word>([]);
        let mut stream = a.encode_canonical(1);
        stream.extend(b.encode_canonical(1));
        let seq = Ragged::decode_sequence(&stream, 1).unwrap();
        assert_eq!(seq, vec![a, b]);
    }

    #[test]
    fn errors() {
        assert_eq!(
            Ragged::decode(&[omega(3)], 2),
            Err(DecodeError::LevelTooHigh { level: 3, dims: 2 })
        );
        assert_eq!(Ragged::decode(&[data(1)], 1), Err(DecodeError::Truncated));
        assert_eq!(
            Ragged::decode(&[omega(1), data(1)], 1),
            Err(DecodeError::TrailingTokens)
        );
    }

    #[test]
    fn trailing_leading_empty_runs() {
        // [[],[1],[]] keeps its leading and trailing empties.
        let t = t2(&[&[], &[1], &[]]);
        let canon = t.encode_canonical(2);
        assert_eq!(canon, vec![omega(1), data(1), omega(1), omega(1), omega(2)]);
        assert_eq!(Ragged::decode(&canon, 2).unwrap(), t);
    }

    #[test]
    fn display() {
        let t = t2(&[&[0, 1], &[2]]);
        assert_eq!(t.to_string(), "[[0, 1], [2]]");
    }

    #[test]
    fn element_count_and_flatten() {
        let t = t2(&[&[0, 1], &[2]]);
        assert_eq!(t.element_count(), 3);
        assert_eq!(
            t.flatten_elements(),
            vec![Word::from_i32(0), Word::from_i32(1), Word::from_i32(2)]
        );
    }
}
