//! 32-bit machine words.
//!
//! Every on-chip lane in the Revet machine model is 32 bits wide (§III of the
//! paper). A [`Word`] is an untyped 32-bit value; typed views (signed,
//! unsigned, float, sub-word) are provided as conversions so the element-wise
//! interpreter can reinterpret lanes without allocation.

use core::fmt;

/// An untyped 32-bit machine word — the unit of data on every lane.
///
/// # Examples
///
/// ```
/// use revet_sltf::Word;
///
/// let w = Word::from_i32(-3);
/// assert_eq!(w.as_i32(), -3);
/// assert_eq!(Word::from_u32(7).as_u32(), 7);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Word(pub u32);

impl Word {
    /// The all-zero word (also used as the void-token payload).
    pub const ZERO: Word = Word(0);

    /// Creates a word from an unsigned 32-bit value.
    #[inline]
    pub const fn from_u32(v: u32) -> Self {
        Word(v)
    }

    /// Creates a word from a signed 32-bit value (two's complement bits).
    #[inline]
    pub const fn from_i32(v: i32) -> Self {
        Word(v as u32)
    }

    /// Creates a word from an `f32` bit pattern.
    #[inline]
    pub fn from_f32(v: f32) -> Self {
        Word(v.to_bits())
    }

    /// Creates a word holding a boolean (1 = true, 0 = false).
    #[inline]
    pub const fn from_bool(v: bool) -> Self {
        Word(v as u32)
    }

    /// The word reinterpreted as unsigned.
    #[inline]
    pub const fn as_u32(self) -> u32 {
        self.0
    }

    /// The word reinterpreted as signed two's complement.
    #[inline]
    pub const fn as_i32(self) -> i32 {
        self.0 as i32
    }

    /// The word reinterpreted as an IEEE-754 single.
    #[inline]
    pub fn as_f32(self) -> f32 {
        f32::from_bits(self.0)
    }

    /// True iff the word is non-zero (the machine's boolean convention).
    #[inline]
    pub const fn as_bool(self) -> bool {
        self.0 != 0
    }

    /// Reads the `idx`-th 8-bit sub-word (0..4), as used by sub-word packing.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 4`.
    #[inline]
    pub fn sub_u8(self, idx: usize) -> u8 {
        assert!(idx < 4, "u8 sub-word index out of range: {idx}");
        (self.0 >> (8 * idx)) as u8
    }

    /// Reads the `idx`-th 16-bit sub-word (0..2).
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 2`.
    #[inline]
    pub fn sub_u16(self, idx: usize) -> u16 {
        assert!(idx < 2, "u16 sub-word index out of range: {idx}");
        (self.0 >> (16 * idx)) as u16
    }

    /// Returns a copy with the `idx`-th 8-bit sub-word replaced.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 4`.
    #[inline]
    pub fn with_sub_u8(self, idx: usize, v: u8) -> Word {
        assert!(idx < 4, "u8 sub-word index out of range: {idx}");
        let shift = 8 * idx;
        Word((self.0 & !(0xFFu32 << shift)) | ((v as u32) << shift))
    }

    /// Returns a copy with the `idx`-th 16-bit sub-word replaced.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 2`.
    #[inline]
    pub fn with_sub_u16(self, idx: usize, v: u16) -> Word {
        assert!(idx < 2, "u16 sub-word index out of range: {idx}");
        let shift = 16 * idx;
        Word((self.0 & !(0xFFFFu32 << shift)) | ((v as u32) << shift))
    }
}

impl fmt::Debug for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}", self.0 as i32)
    }
}

impl fmt::Display for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0 as i32)
    }
}

impl fmt::LowerHex for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

impl fmt::Binary for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

impl fmt::Octal for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Octal::fmt(&self.0, f)
    }
}

impl From<u32> for Word {
    fn from(v: u32) -> Self {
        Word(v)
    }
}

impl From<i32> for Word {
    fn from(v: i32) -> Self {
        Word::from_i32(v)
    }
}

impl From<bool> for Word {
    fn from(v: bool) -> Self {
        Word::from_bool(v)
    }
}

impl From<Word> for u32 {
    fn from(w: Word) -> u32 {
        w.0
    }
}

impl From<Word> for i32 {
    fn from(w: Word) -> i32 {
        w.as_i32()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_signed() {
        for v in [-1, 0, 1, i32::MIN, i32::MAX] {
            assert_eq!(Word::from_i32(v).as_i32(), v);
        }
    }

    #[test]
    fn roundtrip_float() {
        for v in [0.0f32, -1.5, f32::INFINITY, 3.25e9] {
            assert_eq!(Word::from_f32(v).as_f32(), v);
        }
    }

    #[test]
    fn bool_convention() {
        assert!(Word::from_bool(true).as_bool());
        assert!(!Word::from_bool(false).as_bool());
        assert!(Word::from_u32(17).as_bool());
    }

    #[test]
    fn sub_word_u8_read_write() {
        let w = Word::from_u32(0xAABBCCDD);
        assert_eq!(w.sub_u8(0), 0xDD);
        assert_eq!(w.sub_u8(3), 0xAA);
        let w2 = w.with_sub_u8(1, 0x11);
        assert_eq!(w2.as_u32(), 0xAABB11DD);
        // untouched lanes preserved
        assert_eq!(w2.sub_u8(0), 0xDD);
        assert_eq!(w2.sub_u8(3), 0xAA);
    }

    #[test]
    fn sub_word_u16_read_write() {
        let w = Word::from_u32(0xAABBCCDD);
        assert_eq!(w.sub_u16(0), 0xCCDD);
        assert_eq!(w.sub_u16(1), 0xAABB);
        let w2 = w.with_sub_u16(1, 0x1234);
        assert_eq!(w2.as_u32(), 0x1234CCDD);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn sub_word_oob_panics() {
        Word::ZERO.sub_u8(4);
    }

    #[test]
    fn debug_is_nonempty() {
        assert_eq!(format!("{:?}", Word::from_i32(-2)), "w-2");
    }
}
