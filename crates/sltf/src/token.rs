//! Stream tokens: data elements and barrier (done) tokens Ωn.
//!
//! §III-A of the paper: hierarchy across groups of dataflow threads is encoded
//! *in-band* in the element order and *out-of-band* as barrier tokens Ωn that
//! terminate dimension `n` of a ragged tensor. At most one barrier travels per
//! link per cycle, and `n ≤ 15` (four bits of link metadata).

use crate::Word;
use core::fmt;

/// The maximum representable barrier level (the paper allots 4 bits; Ω0 is
/// not a valid barrier, so levels span 1..=15).
pub const MAX_BARRIER_LEVEL: u8 = 15;

/// A barrier level `n` in Ωn, guaranteed to be in `1..=15`.
///
/// # Examples
///
/// ```
/// use revet_sltf::BarrierLevel;
///
/// let b = BarrierLevel::new(2).unwrap();
/// assert_eq!(b.get(), 2);
/// assert_eq!(b.raised().unwrap().get(), 3);
/// assert_eq!(b.lowered().unwrap().get(), 1);
/// assert!(BarrierLevel::new(1).unwrap().lowered().is_none());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BarrierLevel(u8);

impl BarrierLevel {
    /// Ω1, the innermost dimension terminator.
    pub const L1: BarrierLevel = BarrierLevel(1);
    /// Ω2.
    pub const L2: BarrierLevel = BarrierLevel(2);
    /// Ω3.
    pub const L3: BarrierLevel = BarrierLevel(3);
    /// Ω4.
    pub const L4: BarrierLevel = BarrierLevel(4);

    /// Creates a barrier level, returning `None` unless `1 <= n <= 15`.
    #[inline]
    pub const fn new(n: u8) -> Option<Self> {
        if n >= 1 && n <= MAX_BARRIER_LEVEL {
            Some(BarrierLevel(n))
        } else {
            None
        }
    }

    /// Creates a barrier level, panicking on an invalid value.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= n <= 15`.
    #[inline]
    pub const fn of(n: u8) -> Self {
        match Self::new(n) {
            Some(l) => l,
            None => panic!("barrier level must be in 1..=15"),
        }
    }

    /// The numeric level `n` of Ωn.
    #[inline]
    pub const fn get(self) -> u8 {
        self.0
    }

    /// Ω(n+1), or `None` at the ceiling. Loop headers raise incoming barriers
    /// one level to reserve Ω1 for body-drain detection (§III-B d).
    #[inline]
    pub const fn raised(self) -> Option<Self> {
        Self::new(self.0 + 1)
    }

    /// Ω(n-1), or `None` for Ω1. Loop exits lower barriers one level.
    #[inline]
    pub const fn lowered(self) -> Option<Self> {
        if self.0 > 1 {
            Some(BarrierLevel(self.0 - 1))
        } else {
            None
        }
    }
}

impl fmt::Debug for BarrierLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ω{}", self.0)
    }
}

impl fmt::Display for BarrierLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ω{}", self.0)
    }
}

/// A generic stream token: either a data payload or a barrier Ωn.
///
/// The payload type is generic so that single-word streams (`Token`) and the
/// machine's tuple-of-live-variables streams share one representation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Tok<T> {
    /// A data element (one dataflow-thread's worth of payload).
    Data(T),
    /// A barrier Ωn terminating dimension `n`.
    Barrier(BarrierLevel),
}

impl<T> Tok<T> {
    /// True for [`Tok::Data`].
    #[inline]
    pub const fn is_data(&self) -> bool {
        matches!(self, Tok::Data(_))
    }

    /// True for [`Tok::Barrier`].
    #[inline]
    pub const fn is_barrier(&self) -> bool {
        matches!(self, Tok::Barrier(_))
    }

    /// The barrier level, if this token is a barrier.
    #[inline]
    pub fn barrier_level(&self) -> Option<BarrierLevel> {
        match self {
            Tok::Barrier(l) => Some(*l),
            Tok::Data(_) => None,
        }
    }

    /// A reference to the payload, if this token is data.
    #[inline]
    pub fn data(&self) -> Option<&T> {
        match self {
            Tok::Data(d) => Some(d),
            Tok::Barrier(_) => None,
        }
    }

    /// Consumes the token, returning the payload if it is data.
    #[inline]
    pub fn into_data(self) -> Option<T> {
        match self {
            Tok::Data(d) => Some(d),
            Tok::Barrier(_) => None,
        }
    }

    /// Maps the data payload, passing barriers through unchanged.
    #[inline]
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> Tok<U> {
        match self {
            Tok::Data(d) => Tok::Data(f(d)),
            Tok::Barrier(l) => Tok::Barrier(l),
        }
    }
}

/// A single-word stream token, the payload of one lane of an on-chip link.
pub type Token = Tok<Word>;

/// Shorthand constructor for a data token.
///
/// ```
/// use revet_sltf::{data, Token, Word};
/// assert_eq!(data(7), Token::Data(Word::from_u32(7)));
/// ```
pub fn data(v: impl Into<Word>) -> Token {
    Tok::Data(v.into())
}

/// Shorthand constructor for a barrier token Ωn.
///
/// # Panics
///
/// Panics unless `1 <= n <= 15`.
///
/// ```
/// use revet_sltf::{omega, BarrierLevel, Token};
/// assert_eq!(omega(2), Token::Barrier(BarrierLevel::of(2)));
/// ```
pub fn omega(n: u8) -> Token {
    Tok::Barrier(BarrierLevel::of(n))
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Data(w) => write!(f, "{w}"),
            Tok::Barrier(l) => write!(f, "{l}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_bounds() {
        assert!(BarrierLevel::new(0).is_none());
        assert!(BarrierLevel::new(16).is_none());
        assert_eq!(BarrierLevel::new(15).unwrap().get(), 15);
    }

    #[test]
    fn raise_lower() {
        assert_eq!(BarrierLevel::of(15).raised(), None);
        assert_eq!(BarrierLevel::of(1).lowered(), None);
        assert_eq!(BarrierLevel::of(3).lowered(), Some(BarrierLevel::of(2)));
    }

    #[test]
    fn tok_accessors() {
        let d = data(5u32);
        assert!(d.is_data());
        assert_eq!(d.data(), Some(&Word::from_u32(5)));
        assert_eq!(d.barrier_level(), None);
        let b = omega(3);
        assert!(b.is_barrier());
        assert_eq!(b.barrier_level(), Some(BarrierLevel::of(3)));
        assert_eq!(b.into_data(), None);
    }

    #[test]
    fn tok_map_preserves_barriers() {
        let b: Tok<u32> = Tok::Barrier(BarrierLevel::L2);
        assert_eq!(b.map(|x| x + 1), Tok::Barrier(BarrierLevel::L2));
        assert_eq!(Tok::Data(2u32).map(|x| x + 1), Tok::Data(3u32));
    }

    #[test]
    fn display_forms() {
        assert_eq!(format!("{}", omega(4)), "Ω4");
        assert_eq!(format!("{}", data(9u32)), "9");
    }
}
