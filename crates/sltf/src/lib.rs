//! # revet-sltf — the Structured-Link Tensor Format
//!
//! The on-chip data representation of the Revet dataflow-threads machine
//! (§III-A of *"Revet: A Language and Compiler for Dataflow Threads"*,
//! HPCA 2024).
//!
//! Dataflow threads are sets of live values kept together in a pipeline.
//! Hierarchy across groups of threads (loop nests, parallel regions) is
//! encoded as **barrier tokens** Ωn terminating dimension `n` of a ragged
//! tensor, streamed in-band with the data. This crate provides:
//!
//! - [`Word`]: the 32-bit lane payload, with sub-word views,
//! - [`Token`]/[`Tok`]: data-or-barrier stream tokens and [`BarrierLevel`],
//! - [`Ragged`]: ragged k-D tensors with canonical/explicit SLTF encodings
//!   and an incremental [`Decoder`],
//! - [`Stream`]: whole-stream utilities (link-cycle accounting, round-trips).
//!
//! ## Example
//!
//! The paper's running example: the 2-D tensor `[[0, 1], [2]]` is encoded as
//! `0 1 Ω1 2 Ω2` — the trailing Ω1 is implied by Ω2 following data.
//!
//! ```
//! use revet_sltf::{data, omega, Ragged, Stream};
//!
//! let tensor = Ragged::node([Ragged::leaf([0u32, 1]), Ragged::leaf([2u32])]);
//! let stream = Stream::from_ragged(&tensor, 2);
//! assert_eq!(stream.tokens(), &[data(0u32), data(1u32), omega(1), data(2u32), omega(2)]);
//! assert_eq!(stream.to_ragged(2).unwrap(), tensor);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod ragged;
mod stream;
mod token;
mod word;

pub use ragged::{canonicalize, DecodeError, Decoder, Ragged};
pub use stream::Stream;
pub use token::{data, omega, BarrierLevel, Tok, Token, MAX_BARRIER_LEVEL};
pub use word::Word;
