//! # revet-baselines — GPU and CPU performance models
//!
//! The paper measures a real NVIDIA V100 (CUDA 11.6, RAPIDS, cuCollections)
//! and a 64-thread Ice Lake Xeon. We substitute analytical models that
//! encode the *mechanisms* the paper credits for the observed numbers
//! (§VI-B b):
//!
//! - **GPU**: SIMT executes 32-wide warps; threads reading *long* or
//!   *random* per-thread records cannot coalesce, and "the L1 cache can
//!   only execute a certain number of tag checks per cycle", so effective
//!   bandwidth collapses with per-thread record size; divergence serializes
//!   both sides of data-dependent branches; multi-kernel frontier expansion
//!   (tree traversal) pays per-kernel launch overhead.
//! - **CPU**: throughput is the min of DDR bandwidth and scalar instruction
//!   throughput over 64 threads.
//!
//! Per-application characteristic constants are calibrated once against the
//! paper's measured baselines (Table V) and documented here; the *model
//! structure* then determines how they scale.

#![warn(missing_docs)]

/// V100-class GPU parameters.
#[derive(Clone, Debug)]
pub struct GpuModel {
    /// Streaming multiprocessors.
    pub sms: u32,
    /// Threads per warp.
    pub warp: u32,
    /// Clock in GHz.
    pub clock_ghz: f64,
    /// HBM2 bandwidth in GB/s.
    pub mem_gbps: f64,
    /// Die area (mm²) for area-normalized comparisons.
    pub area_mm2: f64,
    /// Kernel launch + sync overhead in microseconds (multi-kernel apps).
    pub launch_us: f64,
}

impl Default for GpuModel {
    fn default() -> Self {
        GpuModel {
            sms: 80,
            warp: 32,
            clock_ghz: 1.53,
            mem_gbps: 900.0,
            area_mm2: 815.0,
            launch_us: 5.0,
        }
    }
}

/// Xeon-class CPU parameters (m6i.16xlarge: 64 threads, 205 GB/s DDR4).
#[derive(Clone, Debug)]
pub struct CpuModel {
    /// Hardware threads.
    pub threads: u32,
    /// Clock in GHz.
    pub clock_ghz: f64,
    /// DDR bandwidth in GB/s.
    pub mem_gbps: f64,
    /// Achievable fraction of peak DDR bandwidth.
    pub mem_efficiency: f64,
}

impl Default for CpuModel {
    fn default() -> Self {
        CpuModel {
            threads: 64,
            clock_ghz: 3.5,
            mem_gbps: 205.0,
            mem_efficiency: 0.6,
        }
    }
}

/// Per-application characteristics feeding the models. The instruction
/// densities are calibrated against the paper's measured Table V baselines;
/// the structural fields come from the workload definitions.
#[derive(Clone, Copy, Debug)]
pub struct AppTraits {
    /// Bytes each thread touches (drives GPU coalescing).
    pub bytes_per_thread: u64,
    /// Accesses are random (hash probes, tree descent).
    pub random_access: bool,
    /// Requires multiple kernel launches per unit work (GPU only).
    pub multi_kernel: bool,
    /// GPU instructions per byte (post-divergence serialization).
    pub gpu_ops_per_byte: f64,
    /// CPU instructions per byte.
    pub cpu_ops_per_byte: f64,
}

/// Calibrated traits for the Table III applications.
pub fn traits_for(app: &str) -> AppTraits {
    match app {
        "isipv4" => AppTraits {
            bytes_per_thread: 16,
            random_access: false,
            multi_kernel: false,
            gpu_ops_per_byte: 32.0,
            cpu_ops_per_byte: 30.0,
        },
        "ip2int" => AppTraits {
            bytes_per_thread: 16,
            random_access: false,
            multi_kernel: false,
            gpu_ops_per_byte: 10.0,
            cpu_ops_per_byte: 24.0,
        },
        "murmur3" => AppTraits {
            bytes_per_thread: 64,
            random_access: false,
            multi_kernel: false,
            gpu_ops_per_byte: 6.0,
            cpu_ops_per_byte: 1.8,
        },
        "hash-table" => AppTraits {
            bytes_per_thread: 12,
            random_access: true,
            multi_kernel: false,
            gpu_ops_per_byte: 12.0,
            cpu_ops_per_byte: 30.0,
        },
        "search" => AppTraits {
            bytes_per_thread: 256,
            random_access: false,
            multi_kernel: false,
            gpu_ops_per_byte: 16.0,
            cpu_ops_per_byte: 1.8,
        },
        "huff-dec" => AppTraits {
            bytes_per_thread: 160,
            random_access: false,
            multi_kernel: false,
            gpu_ops_per_byte: 24.0,
            cpu_ops_per_byte: 11.8,
        },
        "huff-enc" => AppTraits {
            bytes_per_thread: 84,
            random_access: false,
            multi_kernel: false,
            gpu_ops_per_byte: 14.0,
            cpu_ops_per_byte: 6.4,
        },
        "kD-tree" => AppTraits {
            bytes_per_thread: 64,
            random_access: true,
            multi_kernel: true,
            gpu_ops_per_byte: 40.0,
            cpu_ops_per_byte: 65.0,
        },
        other => panic!("no baseline traits for '{other}'"),
    }
}

impl GpuModel {
    /// Fraction of peak bandwidth SIMT threads achieve for a given
    /// per-thread record size: a warp touching 32 contiguous small records
    /// coalesces into a few transactions, while long or random records
    /// serialize on L1 tag checks (§VI-B b).
    pub fn coalescing_factor(&self, bytes_per_thread: u64, random: bool) -> f64 {
        if random {
            return 0.045;
        }
        match bytes_per_thread {
            0..=16 => 0.75,
            17..=32 => 0.5,
            33..=64 => 0.25,
            65..=128 => 0.12,
            _ => 0.06,
        }
    }

    /// Modelled throughput in GB/s.
    pub fn throughput_gbps(&self, t: &AppTraits) -> f64 {
        if t.multi_kernel {
            // Frontier expansion: each tree level is a kernel; little
            // parallelism amortizes the launch (paper: 1.5 GB/s).
            let levels = 14.0;
            let useful_bytes_per_wave = 64.0 * 1024.0;
            return useful_bytes_per_wave / (levels * self.launch_us * 1e-6) / 1e9;
        }
        let mem = self.mem_gbps * self.coalescing_factor(t.bytes_per_thread, t.random_access);
        let compute = self.sms as f64 * self.warp as f64 * self.clock_ghz / t.gpu_ops_per_byte;
        mem.min(compute)
    }
}

impl CpuModel {
    /// Modelled throughput in GB/s.
    pub fn throughput_gbps(&self, t: &AppTraits) -> f64 {
        let mem = self.mem_gbps * self.mem_efficiency * if t.random_access { 0.06 } else { 1.0 };
        let compute = self.threads as f64 * self.clock_ghz / t.cpu_ops_per_byte;
        mem.min(compute)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's measured baselines (Table V) as calibration targets; the
    /// models must land within 2× on every app (shape fidelity).
    #[test]
    fn models_track_paper_baselines() {
        let paper: &[(&str, f64, f64)] = &[
            ("isipv4", 121.0, 7.3),
            ("ip2int", 381.0, 9.1),
            ("murmur3", 218.0, 122.2),
            ("hash-table", 40.0, 7.4),
            ("search", 51.0, 120.6),
            ("huff-dec", 97.0, 19.0),
            ("huff-enc", 172.0, 35.0),
            ("kD-tree", 1.5, 3.4),
        ];
        let gpu = GpuModel::default();
        let cpu = CpuModel::default();
        for &(app, gpu_want, cpu_want) in paper {
            let t = traits_for(app);
            let g = gpu.throughput_gbps(&t);
            let c = cpu.throughput_gbps(&t);
            assert!(
                g > gpu_want / 2.0 && g < gpu_want * 2.0,
                "{app}: GPU model {g:.1} vs paper {gpu_want}"
            );
            assert!(
                c > cpu_want / 2.0 && c < cpu_want * 2.0,
                "{app}: CPU model {c:.1} vs paper {cpu_want}"
            );
        }
    }

    #[test]
    fn coalescing_monotone_in_record_size() {
        let g = GpuModel::default();
        assert!(g.coalescing_factor(16, false) > g.coalescing_factor(64, false));
        assert!(g.coalescing_factor(64, false) > g.coalescing_factor(256, false));
        assert!(g.coalescing_factor(16, true) < g.coalescing_factor(256, false));
    }

    #[test]
    fn traits_cover_all_apps() {
        for app in revet_apps::all_apps() {
            let t = traits_for(app.name);
            assert!(t.cpu_ops_per_byte > 0.0);
        }
    }
}
