//! Memory state shared by all contexts of one machine instance.
//!
//! Three kinds of state back the machine's memory instructions:
//!
//! - **DRAM**: one flat byte-addressed space reached through address
//!   generators (AGs). Applications place their inputs/outputs here.
//! - **SRAM regions**: on-chip scratchpads held in memory units (MUs). A
//!   region is a word array; Revet's allocator optimization (§V-B a) divides
//!   it into fixed-size thread-local buffers addressed as `ptr*stride + off`.
//! - **Allocator queues** (§V-B a): "Revet loads these pointers into a queue
//!   stored in a memory unit, so allocation pops a pointer from this queue
//!   and deallocation pushes it back". Pops block when empty, which is what
//!   produces the throughput-balanced work distribution of Fig. 14.

use revet_sltf::Word;
use std::collections::VecDeque;

/// Identifies an SRAM region.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct SramId(pub u32);

/// Identifies an allocator queue.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct AllocId(pub u32);

/// An on-chip SRAM region (one or more MUs' worth of scratchpad).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SramRegion {
    /// Backing words, zero-initialized.
    pub words: Vec<Word>,
    /// Human-readable name for reports.
    pub name: String,
}

/// An allocator queue of free buffer pointers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocQueue {
    /// Free pointers; initialized to `0..max`.
    pub free: VecDeque<u32>,
    /// The initial pointer count (`max`); used by reports.
    pub max: u32,
    /// Name for reports.
    pub name: String,
}

/// All memory state of a running machine.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemoryState {
    /// Flat DRAM image (byte addressed).
    pub dram: Vec<u8>,
    srams: Vec<SramRegion>,
    allocs: Vec<AllocQueue>,
    /// DRAM bytes read through AGs (statistics).
    pub dram_read_bytes: u64,
    /// DRAM bytes written through AGs (statistics).
    pub dram_written_bytes: u64,
    /// Monotonic count of allocator-queue pushes; event-driven executors
    /// compare it across a node step to detect pointer releases (the only
    /// progress-enabling state change invisible on the channel network).
    alloc_pushes: u64,
}

impl MemoryState {
    /// Creates empty memory state with a DRAM of `dram_bytes` zeroes.
    pub fn with_dram_size(dram_bytes: usize) -> Self {
        MemoryState {
            dram: vec![0; dram_bytes],
            ..Default::default()
        }
    }

    /// Adds an SRAM region of `words` zeroed words; returns its id.
    pub fn add_sram(&mut self, name: impl Into<String>, words: usize) -> SramId {
        let id = SramId(self.srams.len() as u32);
        self.srams.push(SramRegion {
            words: vec![Word::ZERO; words],
            name: name.into(),
        });
        id
    }

    /// Adds an allocator queue initialized with pointers `0..max`.
    pub fn add_alloc(&mut self, name: impl Into<String>, max: u32) -> AllocId {
        let id = AllocId(self.allocs.len() as u32);
        self.allocs.push(AllocQueue {
            free: (0..max).collect(),
            max,
            name: name.into(),
        });
        id
    }

    /// Number of SRAM regions.
    pub fn sram_count(&self) -> usize {
        self.srams.len()
    }

    /// Shared view of an SRAM region.
    ///
    /// # Panics
    ///
    /// Panics on an invalid id.
    pub fn sram(&self, id: SramId) -> &SramRegion {
        &self.srams[id.0 as usize]
    }

    /// Mutable view of an SRAM region.
    ///
    /// # Panics
    ///
    /// Panics on an invalid id.
    pub fn sram_mut(&mut self, id: SramId) -> &mut SramRegion {
        &mut self.srams[id.0 as usize]
    }

    /// Reads an SRAM word; out-of-range reads return zero (hardware wraps;
    /// we choose the safer semantics and let the verifier catch bad sizes).
    pub fn sram_read(&self, id: SramId, addr: u32) -> Word {
        self.srams[id.0 as usize]
            .words
            .get(addr as usize)
            .copied()
            .unwrap_or(Word::ZERO)
    }

    /// Writes an SRAM word.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is outside the region (a compiler bug, not a program
    /// input condition).
    pub fn sram_write(&mut self, id: SramId, addr: u32, val: Word) {
        let region = &mut self.srams[id.0 as usize];
        let len = region.words.len();
        match region.words.get_mut(addr as usize) {
            Some(w) => *w = val,
            None => panic!(
                "SRAM write out of range: region '{}' has {} words, address {}",
                region.name, len, addr
            ),
        }
    }

    /// The allocator queue for `id`.
    ///
    /// # Panics
    ///
    /// Panics on an invalid id.
    pub fn alloc(&self, id: AllocId) -> &AllocQueue {
        &self.allocs[id.0 as usize]
    }

    /// Free-pointer count of an allocator (0 = a pop would block).
    pub fn alloc_available(&self, id: AllocId) -> usize {
        self.allocs[id.0 as usize].free.len()
    }

    /// Pops a free pointer (returns `None` when the queue is empty; callers
    /// stall rather than fail).
    pub fn alloc_pop(&mut self, id: AllocId) -> Option<u32> {
        self.allocs[id.0 as usize].free.pop_front()
    }

    /// Returns a pointer to the free queue.
    pub fn alloc_push(&mut self, id: AllocId, ptr: u32) {
        self.allocs[id.0 as usize].free.push_back(ptr);
        self.alloc_pushes += 1;
    }

    /// Lifetime count of allocator pushes (scheduler wake-up detection).
    pub fn alloc_push_ops(&self) -> u64 {
        self.alloc_pushes
    }

    /// Reads one little-endian word from DRAM (unaligned allowed). Reads past
    /// the end return zero bytes.
    pub fn dram_read_word(&mut self, addr: u32) -> Word {
        let mut bytes = [0u8; 4];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = self.dram.get(addr as usize + i).copied().unwrap_or(0);
        }
        self.dram_read_bytes += 4;
        Word(u32::from_le_bytes(bytes))
    }

    /// Writes one little-endian word to DRAM.
    ///
    /// # Panics
    ///
    /// Panics if the write goes past the end of DRAM.
    pub fn dram_write_word(&mut self, addr: u32, val: Word) {
        let a = addr as usize;
        assert!(
            a + 4 <= self.dram.len(),
            "DRAM word write at {} past end ({} bytes)",
            addr,
            self.dram.len()
        );
        self.dram[a..a + 4].copy_from_slice(&val.as_u32().to_le_bytes());
        self.dram_written_bytes += 4;
    }

    /// Reads one byte from DRAM (zero past the end).
    pub fn dram_read_byte(&mut self, addr: u32) -> Word {
        self.dram_read_bytes += 1;
        Word(self.dram.get(addr as usize).copied().unwrap_or(0) as u32)
    }

    /// Writes one byte to DRAM.
    ///
    /// # Panics
    ///
    /// Panics if the address is past the end of DRAM.
    pub fn dram_write_byte(&mut self, addr: u32, val: Word) {
        let len = self.dram.len();
        match self.dram.get_mut(addr as usize) {
            Some(b) => *b = val.as_u32() as u8,
            None => panic!("DRAM byte write at {addr} past end ({len} bytes)"),
        }
        self.dram_written_bytes += 1;
    }

    /// Resets the read/write statistics (e.g. between warmup and measurement).
    pub fn reset_stats(&mut self) {
        self.dram_read_bytes = 0;
        self.dram_written_bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sram_rw() {
        let mut m = MemoryState::default();
        let s = m.add_sram("buf", 8);
        m.sram_write(s, 3, Word(42));
        assert_eq!(m.sram_read(s, 3), Word(42));
        assert_eq!(m.sram_read(s, 100), Word::ZERO);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn sram_write_oob_panics() {
        let mut m = MemoryState::default();
        let s = m.add_sram("buf", 2);
        m.sram_write(s, 2, Word(1));
    }

    #[test]
    fn alloc_queue_fifo() {
        let mut m = MemoryState::default();
        let a = m.add_alloc("ptrs", 2);
        assert_eq!(m.alloc_pop(a), Some(0));
        assert_eq!(m.alloc_pop(a), Some(1));
        assert_eq!(m.alloc_pop(a), None);
        m.alloc_push(a, 1);
        assert_eq!(m.alloc_pop(a), Some(1));
    }

    #[test]
    fn dram_word_roundtrip_and_stats() {
        let mut m = MemoryState::with_dram_size(16);
        m.dram_write_word(4, Word(0xDEADBEEF));
        assert_eq!(m.dram_read_word(4), Word(0xDEADBEEF));
        assert_eq!(m.dram_written_bytes, 4);
        assert_eq!(m.dram_read_bytes, 4);
    }

    #[test]
    fn dram_bytes() {
        let mut m = MemoryState::with_dram_size(4);
        m.dram_write_byte(1, Word(0xAB));
        assert_eq!(m.dram_read_byte(1), Word(0xAB));
        assert_eq!(m.dram_read_byte(100), Word(0)); // past end reads zero
    }

    #[test]
    fn unaligned_word_read() {
        let mut m = MemoryState::with_dram_size(8);
        m.dram_write_word(0, Word(0x04030201));
        assert_eq!(m.dram_read_word(1).as_u32() & 0xFFFFFF, 0x040302);
    }
}
